// cqp_serve — the personalization server binary.
//
//   $ cqp_serve --port 7433 --movies 5000 --profiles ./profiles
//   serving on 127.0.0.1:7433 (3 profiles)
//
// Speaks the line-delimited JSON protocol of docs/server.md. Without
// --profiles it serves one generated profile under the id "default", so a
// fresh checkout can talk to a live server in two commands. Reads stdin:
// 'stats' prints a stats snapshot, 'quit' (or EOF) shuts down gracefully.
// SIGTERM and SIGINT trigger the same graceful shutdown (drain in-flight
// requests, flush the journal), so `kill` and Ctrl-C never lose data.
//
// With --data-dir the profile store is durable (docs/durability.md):
// every Put/Remove is journaled + fsynced before it is acknowledged and
// the directory's snapshot + journal are replayed on startup. Adding
// --shards N switches to the sharded, demand-paged tier (docs/server.md):
// N independent shard directories under --data-dir, cold profiles paged
// in on demand, resident graph memory bounded by --resident-mb.

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "server/durable_profile_store.h"
#include "server/profile_store.h"
#include "server/server.h"
#include "server/shard/sharded_profile_store.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"
#include "workload/tourist_gen.h"

namespace {

/// Self-pipe for async-signal-safe shutdown: the handler only write()s one
/// byte; the main loop polls the read end next to stdin.
int g_signal_pipe[2] = {-1, -1};

void OnShutdownSignal(int) {
  char byte = 1;
  // The pipe is non-blocking; if it is somehow full the first byte already
  // queued a shutdown, so a failed write is fine to ignore.
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

bool InstallSignalHandlers() {
  if (::pipe(g_signal_pipe) != 0) return false;
  for (int fd : g_signal_pipe) {
    int fl = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
  }
  struct sigaction action {};
  action.sa_handler = OnShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  return ::sigaction(SIGTERM, &action, nullptr) == 0 &&
         ::sigaction(SIGINT, &action, nullptr) == 0;
}

struct Flags {
  int port = 7433;
  int64_t movies = 5000;
  bool tourist = false;
  std::string profiles_dir;
  size_t threads = 0;
  size_t io_threads = 0;  ///< epoll event loops; 0 = auto
  size_t write_queue_kb = 0;  ///< 0 = server default watermark
  size_t max_pending = 256;
  size_t soft_pending = 0;
  double degraded_deadline_ms = 25.0;
  double stats_interval_s = 0.0;
  double cmax_ms = 400.0;
  size_t max_k = 20;
  std::string algorithm = "auto";
  std::string data_dir;  ///< durable mode when non-empty
  double group_commit_ms = 0.0;
  double compact_mb = 4.0;
  double drain_deadline_ms = 1000.0;
  size_t shards = 0;        ///< >0 = sharded, demand-paged tier
  double resident_mb = 256.0;  ///< total resident-graph budget (sharded)
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--movies N | --tourist]\n"
               "          [--profiles DIR] [--threads N] [--io-threads N]\n"
               "          [--write-queue-kb N]\n"
               "          [--max-pending N] [--soft-pending N]\n"
               "          [--degraded-deadline-ms MS] [--stats-interval S]\n"
               "          [--cmax MS] [--k N] [--algorithm NAME]\n"
               "          [--data-dir DIR] [--group-commit-ms MS]\n"
               "          [--compact-mb MB] [--drain-deadline-ms MS]\n"
               "          [--shards N] [--resident-mb MB]\n",
               argv0);
  return 2;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      *out = std::strtod(argv[++i], &end);
      return end != argv[i] && *end == '\0';
    };
    double value = 0.0;
    if (arg == "--tourist") {
      flags->tourist = true;
    } else if (arg == "--profiles" && i + 1 < argc) {
      flags->profiles_dir = argv[++i];
    } else if (arg == "--algorithm" && i + 1 < argc) {
      flags->algorithm = argv[++i];
    } else if (arg == "--port" && next(&value)) {
      flags->port = static_cast<int>(value);
    } else if (arg == "--movies" && next(&value)) {
      flags->movies = static_cast<int64_t>(value);
    } else if (arg == "--threads" && next(&value)) {
      flags->threads = static_cast<size_t>(value);
    } else if (arg == "--io-threads" && next(&value)) {
      flags->io_threads = static_cast<size_t>(value);
    } else if (arg == "--write-queue-kb" && next(&value)) {
      flags->write_queue_kb = static_cast<size_t>(value);
    } else if (arg == "--max-pending" && next(&value)) {
      flags->max_pending = static_cast<size_t>(value);
    } else if (arg == "--soft-pending" && next(&value)) {
      flags->soft_pending = static_cast<size_t>(value);
    } else if (arg == "--degraded-deadline-ms" && next(&value)) {
      flags->degraded_deadline_ms = value;
    } else if (arg == "--stats-interval" && next(&value)) {
      flags->stats_interval_s = value;
    } else if (arg == "--cmax" && next(&value)) {
      flags->cmax_ms = value;
    } else if (arg == "--k" && next(&value)) {
      flags->max_k = static_cast<size_t>(value);
    } else if (arg == "--data-dir" && i + 1 < argc) {
      flags->data_dir = argv[++i];
    } else if (arg == "--group-commit-ms" && next(&value)) {
      flags->group_commit_ms = value;
    } else if (arg == "--compact-mb" && next(&value)) {
      flags->compact_mb = value;
    } else if (arg == "--drain-deadline-ms" && next(&value)) {
      flags->drain_deadline_ms = value;
    } else if (arg == "--shards" && next(&value)) {
      flags->shards = static_cast<size_t>(value);
    } else if (arg == "--resident-mb" && next(&value)) {
      flags->resident_mb = value;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqp;  // NOLINT

  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage(argv[0]);

  // 1. The database.
  storage::Database db;
  workload::MovieDbConfig movie_config;
  if (flags.tourist) {
    auto built = workload::BuildTouristDatabase({});
    if (!built.ok()) {
      std::fprintf(stderr, "tourist db: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    db = *std::move(built);
  } else {
    movie_config.n_movies = flags.movies;
    movie_config.n_directors = std::max<int64_t>(10, flags.movies / 10);
    movie_config.n_actors = std::max<int64_t>(20, flags.movies / 5);
    auto built = workload::BuildMovieDatabase(movie_config);
    if (!built.ok()) {
      std::fprintf(stderr, "movie db: %s\n", built.status().ToString().c_str());
      return 1;
    }
    db = *std::move(built);
  }

  // 2. The profiles: in-memory by default, journaled + snapshotted when
  // --data-dir names a directory (docs/durability.md).
  std::unique_ptr<server::ProfileStore> owned;
  // A directory with a MANIFEST is a sharded tier even without --shards:
  // opening it as a single-dir store would silently serve zero profiles.
  // num_shards = 0 adopts the manifest's count.
  const bool sharded_dir =
      !flags.data_dir.empty() &&
      ::access((flags.data_dir + "/MANIFEST").c_str(), F_OK) == 0;
  if (flags.shards > 0 || sharded_dir) {
    if (flags.data_dir.empty()) {
      std::fprintf(stderr, "--shards requires --data-dir\n");
      return Usage(argv[0]);
    }
    server::shard::ShardedStoreOptions sharded;
    sharded.dir = flags.data_dir;
    sharded.num_shards = flags.shards;
    sharded.resident_budget_bytes =
        static_cast<uint64_t>(flags.resident_mb * 1024.0 * 1024.0);
    sharded.compact_threshold_bytes =
        static_cast<uint64_t>(flags.compact_mb * 1024.0 * 1024.0);
    auto opened = server::shard::ShardedProfileStore::Open(&db, sharded);
    if (!opened.ok()) {
      std::fprintf(stderr, "data dir %s: %s\n", flags.data_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    auto ds = (*opened)->durability_stats();
    std::fprintf(stderr,
                 "opened %zu shards under %s (%zu profiles indexed, lazily "
                 "paged) in %.1f ms\n",
                 (*opened)->num_shards(), flags.data_dir.c_str(),
                 (*opened)->size(), ds ? ds->recovery_ms : 0.0);
    owned = *std::move(opened);
  } else if (flags.data_dir.empty()) {
    owned = std::make_unique<server::ProfileStore>(&db);
  } else {
    server::DurabilityOptions durability;
    durability.dir = flags.data_dir;
    durability.group_commit_interval_ms = flags.group_commit_ms;
    durability.compact_threshold_bytes =
        static_cast<uint64_t>(flags.compact_mb * 1024.0 * 1024.0);
    auto opened = server::DurableProfileStore::Open(&db, durability);
    if (!opened.ok()) {
      std::fprintf(stderr, "data dir %s: %s\n", flags.data_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    const server::DurableProfileStore::RecoveryInfo& recovery =
        (*opened)->recovery();
    std::fprintf(stderr,
                 "recovered %zu profiles from %s (%zu snapshot, %zu journal "
                 "records%s) in %.1f ms\n",
                 (*opened)->size(), flags.data_dir.c_str(),
                 recovery.snapshot_profiles, recovery.replayed_records,
                 recovery.torn_tail ? ", torn tail truncated" : "",
                 recovery.recovery_ms);
    owned = *std::move(opened);
  }
  server::ProfileStore& profiles = *owned;
  if (!flags.profiles_dir.empty()) {
    auto loaded = profiles.LoadDirectory(flags.profiles_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "profiles: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %zu profiles from %s\n", *loaded,
                 flags.profiles_dir.c_str());
  } else if (!flags.tourist && profiles.size() == 0) {
    auto profile = workload::GenerateProfile({}, movie_config);
    if (!profile.ok() || !profiles.Put("default", *profile).ok()) {
      std::fprintf(stderr, "cannot build the default profile\n");
      return 1;
    }
    std::fprintf(stderr, "serving one generated profile as 'default'\n");
  } else if (flags.tourist && profiles.size() == 0) {
    std::fprintf(stderr,
                 "warning: --tourist without --profiles serves no profile; "
                 "personalize requests will fail with NotFound\n");
  }

  // 3. The server.
  server::ServerOptions options;
  options.port = flags.port;
  options.num_threads = flags.threads;
  options.io_threads = flags.io_threads;
  if (flags.write_queue_kb > 0) {
    options.write_queue_watermark_bytes = flags.write_queue_kb * 1024;
    // Keep the hard cap a multiple of the watermark so shrinking one
    // shrinks the other coherently.
    options.write_queue_limit_bytes = flags.write_queue_kb * 1024 * 16;
  }
  options.admission.max_pending = flags.max_pending;
  options.admission.soft_pending = flags.soft_pending;
  options.admission.degraded_deadline_ms = flags.degraded_deadline_ms;
  options.stats_interval_s = flags.stats_interval_s;
  options.default_problem = ::cqp::cqp::ProblemSpec::Problem2(flags.cmax_ms);
  options.default_algorithm = flags.algorithm;
  options.default_max_k = flags.max_k;
  options.drain_deadline_ms = flags.drain_deadline_ms;

  server::Server server(&db, &profiles, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%d (%zu profiles)\n", server.port(),
              profiles.size());
  std::fflush(stdout);

  if (!InstallSignalHandlers()) {
    std::fprintf(stderr, "warning: signal handlers not installed (%s); "
                 "SIGTERM will not drain\n", std::strerror(errno));
  }

  // Wait for 'quit' on stdin, stdin EOF, or SIGTERM/SIGINT via the
  // self-pipe — whichever comes first triggers the same graceful Stop().
  bool shutdown = false;
  std::string line;
  while (!shutdown) {
    pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0}, {g_signal_pipe[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;  // handler ran; the pipe byte is queued
      break;
    }
    if (fds[1].revents & POLLIN) {
      std::fprintf(stderr, "shutdown signal received; draining\n");
      break;
    }
    if (fds[0].revents & (POLLIN | POLLHUP)) {
      if (!std::getline(std::cin, line)) break;  // EOF, as before
      if (line == "quit" || line == "stop" || line == "exit") shutdown = true;
      if (line == "stats") {
        std::printf("%s\n", server.StatsJson().Dump().c_str());
        std::fflush(stdout);
      }
    }
  }
  server.Stop();
  std::printf("stopped after %llu requests\n",
              static_cast<unsigned long long>(server.stats().requests_total()));
  return 0;
}
