// cqp_serve — the personalization server binary.
//
//   $ cqp_serve --port 7433 --movies 5000 --profiles ./profiles
//   serving on 127.0.0.1:7433 (3 profiles)
//
// Speaks the line-delimited JSON protocol of docs/server.md. Without
// --profiles it serves one generated profile under the id "default", so a
// fresh checkout can talk to a live server in two commands. Reads stdin:
// 'stats' prints a stats snapshot, 'quit' (or EOF) shuts down gracefully.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "server/profile_store.h"
#include "server/server.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"
#include "workload/tourist_gen.h"

namespace {

struct Flags {
  int port = 7433;
  int64_t movies = 5000;
  bool tourist = false;
  std::string profiles_dir;
  size_t threads = 0;
  size_t max_pending = 256;
  size_t soft_pending = 0;
  double degraded_deadline_ms = 25.0;
  double stats_interval_s = 0.0;
  double cmax_ms = 400.0;
  size_t max_k = 20;
  std::string algorithm = "auto";
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--movies N | --tourist]\n"
               "          [--profiles DIR] [--threads N]\n"
               "          [--max-pending N] [--soft-pending N]\n"
               "          [--degraded-deadline-ms MS] [--stats-interval S]\n"
               "          [--cmax MS] [--k N] [--algorithm NAME]\n",
               argv0);
  return 2;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      *out = std::strtod(argv[++i], &end);
      return end != argv[i] && *end == '\0';
    };
    double value = 0.0;
    if (arg == "--tourist") {
      flags->tourist = true;
    } else if (arg == "--profiles" && i + 1 < argc) {
      flags->profiles_dir = argv[++i];
    } else if (arg == "--algorithm" && i + 1 < argc) {
      flags->algorithm = argv[++i];
    } else if (arg == "--port" && next(&value)) {
      flags->port = static_cast<int>(value);
    } else if (arg == "--movies" && next(&value)) {
      flags->movies = static_cast<int64_t>(value);
    } else if (arg == "--threads" && next(&value)) {
      flags->threads = static_cast<size_t>(value);
    } else if (arg == "--max-pending" && next(&value)) {
      flags->max_pending = static_cast<size_t>(value);
    } else if (arg == "--soft-pending" && next(&value)) {
      flags->soft_pending = static_cast<size_t>(value);
    } else if (arg == "--degraded-deadline-ms" && next(&value)) {
      flags->degraded_deadline_ms = value;
    } else if (arg == "--stats-interval" && next(&value)) {
      flags->stats_interval_s = value;
    } else if (arg == "--cmax" && next(&value)) {
      flags->cmax_ms = value;
    } else if (arg == "--k" && next(&value)) {
      flags->max_k = static_cast<size_t>(value);
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqp;  // NOLINT

  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage(argv[0]);

  // 1. The database.
  storage::Database db;
  workload::MovieDbConfig movie_config;
  if (flags.tourist) {
    auto built = workload::BuildTouristDatabase({});
    if (!built.ok()) {
      std::fprintf(stderr, "tourist db: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    db = *std::move(built);
  } else {
    movie_config.n_movies = flags.movies;
    movie_config.n_directors = std::max<int64_t>(10, flags.movies / 10);
    movie_config.n_actors = std::max<int64_t>(20, flags.movies / 5);
    auto built = workload::BuildMovieDatabase(movie_config);
    if (!built.ok()) {
      std::fprintf(stderr, "movie db: %s\n", built.status().ToString().c_str());
      return 1;
    }
    db = *std::move(built);
  }

  // 2. The profiles.
  server::ProfileStore profiles(&db);
  if (!flags.profiles_dir.empty()) {
    auto loaded = profiles.LoadDirectory(flags.profiles_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "profiles: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %zu profiles from %s\n", *loaded,
                 flags.profiles_dir.c_str());
  } else if (!flags.tourist) {
    auto profile = workload::GenerateProfile({}, movie_config);
    if (!profile.ok() || !profiles.Put("default", *profile).ok()) {
      std::fprintf(stderr, "cannot build the default profile\n");
      return 1;
    }
    std::fprintf(stderr, "serving one generated profile as 'default'\n");
  } else {
    std::fprintf(stderr,
                 "warning: --tourist without --profiles serves no profile; "
                 "personalize requests will fail with NotFound\n");
  }

  // 3. The server.
  server::ServerOptions options;
  options.port = flags.port;
  options.num_threads = flags.threads;
  options.admission.max_pending = flags.max_pending;
  options.admission.soft_pending = flags.soft_pending;
  options.admission.degraded_deadline_ms = flags.degraded_deadline_ms;
  options.stats_interval_s = flags.stats_interval_s;
  options.default_problem = ::cqp::cqp::ProblemSpec::Problem2(flags.cmax_ms);
  options.default_algorithm = flags.algorithm;
  options.default_max_k = flags.max_k;

  server::Server server(&db, &profiles, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%d (%zu profiles)\n", server.port(),
              profiles.size());
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "stop" || line == "exit") break;
    if (line == "stats") {
      std::printf("%s\n", server.stats().ToJsonString().c_str());
      std::fflush(stdout);
    }
  }
  server.Stop();
  std::printf("stopped after %llu requests\n",
              static_cast<unsigned long long>(server.stats().requests_total()));
  return 0;
}
