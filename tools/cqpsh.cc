// cqpsh — interactive Constrained Query Personalization shell.
//
//   $ cqpsh
//   cqp> .gen movies
//   cqp> .profile add doi(GENRE.genre = 'musical') = 0.5
//   cqp> .profile add doi(MOVIE.mid = GENRE.mid) = 0.9
//   cqp> .problem 3 cmax=400 smin=1 smax=50
//   cqp> SELECT title FROM MOVIE
//
// Reads commands from stdin (scriptable: `cqpsh < script.cqp`); see .help.

#include <iostream>
#include <string>

#include "shell/shell.h"

int main() {
  cqp::shell::CqpShell shell;
  bool interactive = isatty(0);
  if (interactive) {
    std::cout << "cqp shell — type .help for commands, .quit to exit\n";
  }
  std::string line;
  while (true) {
    if (interactive) std::cout << "cqp> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (!shell.ProcessLine(line, std::cout)) break;
  }
  return 0;
}
