// cqp_crashfuzz — fault-injected crash/recovery fuzzer for the durable
// profile store (docs/durability.md).
//
//   $ cqp_crashfuzz --campaigns 1000 --seed 7
//   1000 campaigns: 612 crashes, 389 torn tails recovered, ... OK
//
// Each campaign runs a seeded random Put/Remove workload against a
// DurableProfileStore on a FaultyFileSystem, kills the store at a random
// byte offset (or with probabilistic failpoint faults: torn appends,
// ENOSPC, fsync failures, rename failures, split writes), then reopens the
// directory and checks the recovered state against a shadow in-memory
// oracle — the same differential pattern as src/testing, aimed at the
// durability layer.
//
// The acknowledgement rule under test: if Put/Remove returned OK, the
// mutation MUST survive the crash; the one mutation in flight when the
// fault hit MAY be present (its record reached the disk) or absent (torn),
// but nothing else may change and nothing acknowledged may be lost. With a
// single-threaded workload the recovered state must therefore equal the
// oracle either before or after the failed operation — any other state is
// data loss or corruption and fails the campaign.
//
// Recovery is also re-run a second time per campaign (recovery must be
// idempotent: recovering a recovered directory changes nothing), and a
// post-recovery Put must succeed with a version above everything
// recovered (persisted snapshot-version monotonicity — the property that
// keeps version-keyed caches coherent across restarts).
//
// --sharded runs the same differential campaigns against the sharded,
// demand-paged tier (ShardedProfileStore) instead: 1–4 shards over one
// FaultyFileSystem, a tiny resident budget so paging/eviction runs inside
// the workload, and interleaved Find()s checked against the oracle. A
// crash lands mid-write on ONE shard; recovery must keep every other
// shard's acknowledged state intact (shard independence), and version
// monotonicity is checked per shard — each shard owns its own counter.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"
#include "server/durable_profile_store.h"
#include "server/shard/sharded_profile_store.h"
#include "storage/journal/faulty_file.h"
#include "storage/journal/file.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"

namespace {

using cqp::Status;
using cqp::StatusOr;
using cqp::server::DurabilityOptions;
using cqp::server::DurableProfileStore;
using cqp::storage::FaultyFileSystem;

/// splitmix64: cheap deterministic per-campaign randomness.
uint64_t Mix(uint64_t& state) {
  uint64_t z = state += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct Flags {
  uint64_t campaigns = 1000;
  uint64_t seed = 1;
  bool verbose = false;
  bool sharded = false;  ///< fuzz ShardedProfileStore instead
};

/// The shadow oracle: id → (version, profile text), plus the version
/// counter the store should be at. Mirrors exactly what an OK Put/Remove
/// promises to persist.
struct Oracle {
  std::map<std::string, std::pair<uint64_t, std::string>> entries;
  uint64_t next_version = 1;

  void Put(const std::string& id, const std::string& text) {
    entries[id] = {next_version++, text};
  }
  void Remove(const std::string& id) {
    entries.erase(id);
    ++next_version;
  }
  bool operator==(const Oracle& other) const {
    return entries == other.entries;
  }
};

using EntryMap = std::map<std::string, std::pair<uint64_t, std::string>>;

std::string DescribeEntries(const EntryMap& entries) {
  std::string out = "{";
  for (const auto& [id, entry] : entries) {
    out += id + "@v" + std::to_string(entry.first) + " ";
  }
  return out + "}";
}

std::string Describe(const Oracle& oracle) {
  return DescribeEntries(oracle.entries);
}

Oracle RecoveredState(const DurableProfileStore& store) {
  Oracle state;
  for (const auto& entry : store.Contents()) {
    state.entries[entry.key] = {entry.version, entry.value};
  }
  return state;
}

struct CampaignTally {
  uint64_t crashes = 0;
  uint64_t wedges = 0;
  uint64_t torn_tails = 0;
  uint64_t compactions = 0;
  uint64_t records_replayed = 0;
  uint64_t page_ins = 0;    ///< sharded mode only
  uint64_t evictions = 0;   ///< sharded mode only
  uint64_t failures = 0;
};

/// One generated profile: the object (for Put) plus its canonical text
/// (what the journal will persist — the oracle compares against this).
struct PoolEntry {
  cqp::prefs::Profile profile;
  std::string text;
};

bool RunCampaign(uint64_t campaign, const Flags& flags,
                 const cqp::storage::Database& db,
                 const std::vector<PoolEntry>& pool,
                 const std::string& base_dir, uint64_t calibrated_bytes,
                 CampaignTally* tally) {
  uint64_t rng = flags.seed * 0x100000001b3ull + campaign * 2654435761ull;
  const std::string dir =
      base_dir + "/campaign" + std::to_string(campaign);

  FaultyFileSystem fs(cqp::storage::PosixFileSystem());
  DurabilityOptions options;
  options.dir = dir;
  options.fs = &fs;
  // Even campaigns fsync inline; odd campaigns group-commit with a short
  // window so the flusher thread and commit tokens are in play.
  options.group_commit_interval_ms = (campaign % 2 == 0) ? 0.0 : 0.2;
  // Small threshold: compaction (snapshot write + journal swap) happens
  // mid-workload, so crashes land inside it too.
  options.compact_threshold_bytes = 1500 + Mix(rng) % 6000;

  // Fault schedule: mostly crash-at-offset, some failpoint-driven partial
  // failures, and a few clean (sanity) runs.
  const uint64_t mode = Mix(rng) % 10;
  bool armed_crash = false;
  if (mode < 6) {
    fs.CrashAfterBytes(1 + Mix(rng) % (calibrated_bytes +
                                       calibrated_bytes / 4 + 1));
    armed_crash = true;
  } else if (mode < 9) {
    uint64_t fp_seed = Mix(rng);
    std::string spec =
        "storage.file.append.torn=0.03:" + std::to_string(fp_seed) +
        ",storage.file.append.enospc=0.02:" + std::to_string(fp_seed + 1) +
        ",storage.file.sync.fail=0.03:" + std::to_string(fp_seed + 2) +
        ",storage.file.rename.fail=0.05:" + std::to_string(fp_seed + 3) +
        ",storage.file.append.split=0.20:" + std::to_string(fp_seed + 4);
    Status configured = cqp::failpoint::Configure(spec);
    if (!configured.ok()) {
      std::fprintf(stderr, "campaign %llu: bad failpoint spec: %s\n",
                   static_cast<unsigned long long>(campaign),
                   configured.ToString().c_str());
      return false;
    }
  }  // else: clean run

  Oracle oracle;
  Oracle after_failed_op;  ///< oracle with the failed op applied anyway
  bool fault_hit = false;

  {
    auto opened = DurableProfileStore::Open(&db, options);
    if (!opened.ok()) {
      std::fprintf(stderr, "campaign %llu: fresh open failed: %s\n",
                   static_cast<unsigned long long>(campaign),
                   opened.status().ToString().c_str());
      cqp::failpoint::Reset();
      return false;
    }
    DurableProfileStore& store = **opened;

    const uint64_t n_ops = 10 + Mix(rng) % 40;
    for (uint64_t op = 0; op < n_ops; ++op) {
      const std::string id = "u" + std::to_string(Mix(rng) % 4);
      Status result;
      after_failed_op = oracle;
      if (Mix(rng) % 10 < 7) {
        const PoolEntry& entry = pool[Mix(rng) % pool.size()];
        after_failed_op.Put(id, entry.text);
        result = store.Put(id, entry.profile);
        if (result.ok()) oracle.Put(id, entry.text);
      } else {
        after_failed_op.Remove(id);
        result = store.Remove(id);
        if (result.ok()) oracle.Remove(id);
      }
      if (result.ok()) continue;
      if (result.code() == cqp::StatusCode::kNotFound) continue;  // no-op
      // A fault (injected or crash) ended the workload: exactly one
      // operation is in limbo.
      fault_hit = true;
      break;
    }
    if (!fault_hit) after_failed_op = oracle;

    if (store.wedged()) ++tally->wedges;
    if (auto stats = store.durability_stats()) {
      tally->compactions += stats->compactions;
    }
    // The store is destroyed here — as after a kill, nothing more is
    // written (the filesystem refuses everything once crashed anyway).
  }
  if (fs.crashed()) ++tally->crashes;

  // ---- "Reboot": clear the fault machinery and recover. ----
  cqp::failpoint::Reset();
  fs.ClearCrash();

  auto reopened = DurableProfileStore::Open(&db, options);
  if (!reopened.ok()) {
    std::fprintf(stderr,
                 "campaign %llu: FAIL — recovery refused to start: %s\n",
                 static_cast<unsigned long long>(campaign),
                 reopened.status().ToString().c_str());
    return false;
  }
  DurableProfileStore& recovered = **reopened;
  if (recovered.recovery().torn_tail) ++tally->torn_tails;
  tally->records_replayed += recovered.recovery().replayed_records;

  Oracle state = RecoveredState(recovered);
  const bool matches_acked = state == oracle;
  const bool matches_next = state == after_failed_op;
  if (!matches_acked && !matches_next) {
    std::fprintf(
        stderr,
        "campaign %llu: FAIL — recovered state matches neither oracle\n"
        "  acked:     %s\n  with-last: %s\n  recovered: %s\n  dir: %s\n",
        static_cast<unsigned long long>(campaign), Describe(oracle).c_str(),
        Describe(after_failed_op).c_str(), Describe(state).c_str(),
        dir.c_str());
    return false;  // keep the directory for post-mortem
  }

  // Version monotonicity across the restart: a fresh Put must land above
  // everything recovered, or version-keyed caches could alias pre-crash
  // state.
  uint64_t max_recovered = 0;
  for (const auto& [id, entry] : state.entries) {
    max_recovered = std::max(max_recovered, entry.first);
  }
  Status final_put = recovered.Put("post", pool[0].profile);
  if (!final_put.ok()) {
    std::fprintf(stderr,
                 "campaign %llu: FAIL — post-recovery Put failed: %s\n",
                 static_cast<unsigned long long>(campaign),
                 final_put.ToString().c_str());
    return false;
  }
  uint64_t post_version = recovered.FindSnapshot("post").version;
  if (post_version <= max_recovered) {
    std::fprintf(stderr,
                 "campaign %llu: FAIL — post-recovery version %llu not "
                 "above recovered max %llu\n",
                 static_cast<unsigned long long>(campaign),
                 static_cast<unsigned long long>(post_version),
                 static_cast<unsigned long long>(max_recovered));
    return false;
  }

  // Recovery idempotence: reopening the (now clean) directory again must
  // reproduce the exact same state, torn-tail-free.
  Oracle expected_second = state;
  expected_second.entries["post"] = {post_version, pool[0].text};
  {
    auto third = DurableProfileStore::Open(&db, options);
    if (!third.ok()) {
      std::fprintf(stderr,
                   "campaign %llu: FAIL — second recovery failed: %s\n",
                   static_cast<unsigned long long>(campaign),
                   third.status().ToString().c_str());
      return false;
    }
    if ((*third)->recovery().torn_tail) {
      std::fprintf(stderr,
                   "campaign %llu: FAIL — second recovery still sees a "
                   "torn tail (truncation did not stick)\n",
                   static_cast<unsigned long long>(campaign));
      return false;
    }
    Oracle second_state = RecoveredState(**third);
    if (!(second_state == expected_second)) {
      std::fprintf(stderr,
                   "campaign %llu: FAIL — recovery not idempotent\n"
                   "  first+put: %s\n  second:    %s\n",
                   static_cast<unsigned long long>(campaign),
                   Describe(expected_second).c_str(),
                   Describe(second_state).c_str());
      return false;
    }
  }

  if (flags.verbose) {
    std::fprintf(stderr,
                 "campaign %llu ok: mode=%s fault=%d crash=%d torn=%d "
                 "replayed=%zu\n",
                 static_cast<unsigned long long>(campaign),
                 mode < 6 ? "crash" : (mode < 9 ? "failpoints" : "clean"),
                 fault_hit ? 1 : 0, fs.crashed() ? 1 : 0,
                 recovered.recovery().torn_tail ? 1 : 0,
                 recovered.recovery().replayed_records);
  }
  (void)armed_crash;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return true;
}

using cqp::server::shard::ShardedProfileStore;
using cqp::server::shard::ShardedStoreOptions;

/// Oracle for the sharded tier. Versions are PER SHARD — each shard
/// persists its own counter — so the oracle routes ids exactly like the
/// store (same FNV hash) and keeps one counter per shard.
struct ShardedOracle {
  explicit ShardedOracle(size_t shards)
      : num_shards(shards), next_version(shards, 1) {}

  size_t ShardOf(const std::string& id) const {
    return ShardedProfileStore::ShardIndexForId(id, num_shards);
  }
  void Put(const std::string& id, const std::string& text) {
    entries[id] = {next_version[ShardOf(id)]++, text};
  }
  void Remove(const std::string& id) {
    entries.erase(id);
    ++next_version[ShardOf(id)];
  }

  size_t num_shards;
  EntryMap entries;
  std::vector<uint64_t> next_version;
};

bool RunShardedCampaign(uint64_t campaign, const Flags& flags,
                        const cqp::storage::Database& db,
                        const std::vector<PoolEntry>& pool,
                        const std::string& base_dir, uint64_t calibrated_bytes,
                        CampaignTally* tally) {
  uint64_t rng = flags.seed * 0x100000001b3ull + campaign * 2654435761ull;
  const std::string dir = base_dir + "/campaign" + std::to_string(campaign);
  const size_t num_shards = 1 + Mix(rng) % 4;  // 1 covers the PR 6 layout

  FaultyFileSystem fs(cqp::storage::PosixFileSystem());
  ShardedStoreOptions options;
  options.dir = dir;
  options.num_shards = num_shards;
  options.fs = &fs;
  options.compact_threshold_bytes = 1500 + Mix(rng) % 6000;
  // Mostly tiny budgets, so page-outs and cold Find()s run INSIDE the
  // fault window; a quarter of campaigns keep everything resident as the
  // control.
  options.resident_budget_bytes =
      (Mix(rng) % 4 == 0) ? (64ull << 20) : (1 + Mix(rng) % 32768);

  const uint64_t mode = Mix(rng) % 10;
  if (mode < 6) {
    fs.CrashAfterBytes(1 + Mix(rng) % (calibrated_bytes +
                                       calibrated_bytes / 4 + 1));
  } else if (mode < 9) {
    uint64_t fp_seed = Mix(rng);
    std::string spec =
        "storage.file.append.torn=0.03:" + std::to_string(fp_seed) +
        ",storage.file.append.enospc=0.02:" + std::to_string(fp_seed + 1) +
        ",storage.file.sync.fail=0.03:" + std::to_string(fp_seed + 2) +
        ",storage.file.rename.fail=0.05:" + std::to_string(fp_seed + 3) +
        ",storage.file.append.split=0.20:" + std::to_string(fp_seed + 4);
    Status configured = cqp::failpoint::Configure(spec);
    if (!configured.ok()) {
      std::fprintf(stderr, "campaign %llu: bad failpoint spec: %s\n",
                   static_cast<unsigned long long>(campaign),
                   configured.ToString().c_str());
      return false;
    }
  }  // else: clean run

  ShardedOracle oracle(num_shards);
  ShardedOracle after_failed_op(num_shards);
  bool fault_hit = false;

  {
    auto opened = ShardedProfileStore::Open(&db, options);
    if (!opened.ok()) {
      // Open writes the MANIFEST and creates N journals, so an armed fault
      // can kill setup itself. That is a legal crash point: recovery must
      // then produce an EMPTY store. A clean-mode open failure is a bug.
      if (mode >= 9) {
        std::fprintf(stderr, "campaign %llu: clean open failed: %s\n",
                     static_cast<unsigned long long>(campaign),
                     opened.status().ToString().c_str());
        cqp::failpoint::Reset();
        return false;
      }
      fault_hit = false;  // nothing was ever acknowledged
    } else {
      ShardedProfileStore& store = **opened;
      // 8 ids over 1–4 shards: every shard sees traffic, and the same id
      // keeps revisiting its shard so versions stack up.
      const uint64_t n_ops = 10 + Mix(rng) % 40;
      for (uint64_t op = 0; op < n_ops; ++op) {
        const std::string id = "u" + std::to_string(Mix(rng) % 8);
        const uint64_t action = Mix(rng) % 10;
        // A crash can fire inside the background compaction of an ACKED
        // Put (the Put rightly returned OK; the snapshot rewrite died).
        // From that point reads fail too, so the workload is over — with
        // no operation in limbo.
        if (fs.crashed()) break;
        if (action >= 8) {
          // Read check: no fault has fired yet (the crash case broke out
          // above, failpoints only trip writes), so Find must agree with
          // the oracle exactly — paging in from disk when the id went
          // cold.
          cqp::server::ProfileStore::Snapshot snap = store.FindSnapshot(id);
          auto it = oracle.entries.find(id);
          if (it == oracle.entries.end()) {
            if (snap.graph != nullptr) {
              std::fprintf(stderr,
                           "campaign %llu: FAIL — Find(%s) returned a "
                           "profile the oracle does not have\n",
                           static_cast<unsigned long long>(campaign),
                           id.c_str());
              cqp::failpoint::Reset();
              return false;
            }
          } else if (snap.graph == nullptr ||
                     snap.version != it->second.first) {
            std::fprintf(stderr,
                         "campaign %llu: FAIL — Find(%s) gave v%llu/%s, "
                         "oracle has v%llu\n",
                         static_cast<unsigned long long>(campaign),
                         id.c_str(),
                         static_cast<unsigned long long>(snap.version),
                         snap.graph == nullptr ? "null" : "graph",
                         static_cast<unsigned long long>(it->second.first));
            cqp::failpoint::Reset();
            return false;
          }
          continue;
        }
        Status result;
        after_failed_op.entries = oracle.entries;
        after_failed_op.next_version = oracle.next_version;
        if (action < 6) {
          const PoolEntry& entry = pool[Mix(rng) % pool.size()];
          after_failed_op.Put(id, entry.text);
          result = store.Put(id, entry.profile);
          if (result.ok()) oracle.Put(id, entry.text);
        } else {
          after_failed_op.Remove(id);
          result = store.Remove(id);
          if (result.ok()) oracle.Remove(id);
        }
        if (result.ok()) continue;
        if (result.code() == cqp::StatusCode::kNotFound) continue;  // no-op
        fault_hit = true;
        break;
      }
      if (!fault_hit) {
        after_failed_op.entries = oracle.entries;
        after_failed_op.next_version = oracle.next_version;
      }

      if (store.wedged()) ++tally->wedges;
      if (auto stats = store.durability_stats()) {
        tally->compactions += stats->compactions;
      }
      if (auto tier = store.shard_stats()) {
        tally->page_ins += tier->page_ins;
        tally->evictions += tier->evictions;
      }
    }
  }
  if (fs.crashed()) ++tally->crashes;

  // ---- "Reboot": clear the fault machinery and recover every shard. ----
  cqp::failpoint::Reset();
  fs.ClearCrash();

  auto reopened = ShardedProfileStore::Open(&db, options);
  if (!reopened.ok()) {
    std::fprintf(stderr,
                 "campaign %llu: FAIL — sharded recovery refused: %s\n",
                 static_cast<unsigned long long>(campaign),
                 reopened.status().ToString().c_str());
    return false;
  }
  ShardedProfileStore& recovered = **reopened;
  if (auto ds = recovered.durability_stats()) {
    if (ds->torn_tail_recovered) ++tally->torn_tails;
    tally->records_replayed += ds->replayed_records;
  }

  auto contents = recovered.Contents();
  if (!contents.ok()) {
    std::fprintf(stderr,
                 "campaign %llu: FAIL — recovered contents unreadable: %s\n",
                 static_cast<unsigned long long>(campaign),
                 contents.status().ToString().c_str());
    return false;
  }
  EntryMap state;
  for (const auto& entry : *contents) {
    state[entry.key] = {entry.version, entry.value};
  }
  // A crash interrupts exactly one shard's write; every other shard must
  // hold exactly its acknowledged state, so globally the recovered map is
  // the acked oracle with or without the one in-limbo mutation.
  const bool matches_acked = state == oracle.entries;
  const bool matches_next = state == after_failed_op.entries;
  if (!matches_acked && !matches_next) {
    std::fprintf(
        stderr,
        "campaign %llu: FAIL — recovered state matches neither oracle\n"
        "  acked:     %s\n  with-last: %s\n  recovered: %s\n  dir: %s\n",
        static_cast<unsigned long long>(campaign),
        DescribeEntries(oracle.entries).c_str(),
        DescribeEntries(after_failed_op.entries).c_str(),
        DescribeEntries(state).c_str(), dir.c_str());
    return false;  // keep the directory for post-mortem
  }

  // Version monotonicity is a PER-SHARD property: a fresh Put must land
  // above everything recovered on ITS shard (other shards' counters are
  // independent and may be higher).
  const size_t post_shard =
      ShardedProfileStore::ShardIndexForId("post", num_shards);
  uint64_t max_recovered = 0;
  for (const auto& [id, entry] : state) {
    if (ShardedProfileStore::ShardIndexForId(id, num_shards) == post_shard) {
      max_recovered = std::max(max_recovered, entry.first);
    }
  }
  Status final_put = recovered.Put("post", pool[0].profile);
  if (!final_put.ok()) {
    std::fprintf(stderr,
                 "campaign %llu: FAIL — post-recovery Put failed: %s\n",
                 static_cast<unsigned long long>(campaign),
                 final_put.ToString().c_str());
    return false;
  }
  uint64_t post_version = recovered.FindSnapshot("post").version;
  if (post_version <= max_recovered) {
    std::fprintf(stderr,
                 "campaign %llu: FAIL — post-recovery version %llu not "
                 "above shard %zu's recovered max %llu\n",
                 static_cast<unsigned long long>(campaign),
                 static_cast<unsigned long long>(post_version), post_shard,
                 static_cast<unsigned long long>(max_recovered));
    return false;
  }

  // Recovery idempotence, shard by shard: a third open of the (now clean)
  // directory reproduces the state exactly and sees no torn tail.
  EntryMap expected_second = state;
  expected_second["post"] = {post_version, pool[0].text};
  {
    auto third = ShardedProfileStore::Open(&db, options);
    if (!third.ok()) {
      std::fprintf(stderr,
                   "campaign %llu: FAIL — second recovery failed: %s\n",
                   static_cast<unsigned long long>(campaign),
                   third.status().ToString().c_str());
      return false;
    }
    if (auto ds = (*third)->durability_stats();
        ds && ds->torn_tail_recovered) {
      std::fprintf(stderr,
                   "campaign %llu: FAIL — second recovery still sees a "
                   "torn tail (truncation did not stick)\n",
                   static_cast<unsigned long long>(campaign));
      return false;
    }
    auto second = (*third)->Contents();
    if (!second.ok()) {
      std::fprintf(stderr,
                   "campaign %llu: FAIL — second contents unreadable: %s\n",
                   static_cast<unsigned long long>(campaign),
                   second.status().ToString().c_str());
      return false;
    }
    EntryMap second_state;
    for (const auto& entry : *second) {
      second_state[entry.key] = {entry.version, entry.value};
    }
    if (second_state != expected_second) {
      std::fprintf(stderr,
                   "campaign %llu: FAIL — recovery not idempotent\n"
                   "  first+put: %s\n  second:    %s\n",
                   static_cast<unsigned long long>(campaign),
                   DescribeEntries(expected_second).c_str(),
                   DescribeEntries(second_state).c_str());
      return false;
    }
  }

  if (flags.verbose) {
    std::fprintf(stderr,
                 "campaign %llu ok: shards=%zu mode=%s fault=%d crash=%d\n",
                 static_cast<unsigned long long>(campaign), num_shards,
                 mode < 6 ? "crash" : (mode < 9 ? "failpoints" : "clean"),
                 fault_hit ? 1 : 0, fs.crashed() ? 1 : 0);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--campaigns N] [--seed N] [--sharded] "
               "[--verbose]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--campaigns" && i + 1 < argc) {
      flags.campaigns = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      flags.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--sharded") {
      flags.sharded = true;
    } else if (arg == "--verbose") {
      flags.verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }

  // A small database + tiny profiles keep one campaign in the hundreds of
  // microseconds: the adversarial coverage comes from the fault schedule,
  // not from profile size.
  cqp::workload::MovieDbConfig movie_config;
  movie_config.n_movies = 150;
  movie_config.n_directors = 15;
  movie_config.n_actors = 30;
  auto db = cqp::workload::BuildMovieDatabase(movie_config);
  if (!db.ok()) {
    std::fprintf(stderr, "movie db: %s\n", db.status().ToString().c_str());
    return 1;
  }

  std::vector<PoolEntry> pool;
  for (uint64_t i = 0; i < 6; ++i) {
    cqp::workload::ProfileGenConfig config;
    config.seed = flags.seed * 131 + i;
    config.n_genre_prefs = 2 + static_cast<int>(i % 3);
    config.n_director_prefs = 2;
    config.n_actor_prefs = 2;
    config.n_year_prefs = 1 + static_cast<int>(i % 2);
    config.n_duration_prefs = 1;
    auto profile = cqp::workload::GenerateProfile(config, movie_config);
    if (!profile.ok()) {
      std::fprintf(stderr, "profile gen: %s\n",
                   profile.status().ToString().c_str());
      return 1;
    }
    std::string text = profile->ToText();
    pool.push_back(PoolEntry{*std::move(profile), std::move(text)});
  }

  char dir_template[] = "/tmp/cqp_crashfuzz.XXXXXX";
  char* base = ::mkdtemp(dir_template);
  if (base == nullptr) {
    std::fprintf(stderr, "mkdtemp: %s\n", std::strerror(errno));
    return 1;
  }
  const std::string base_dir = base;

  // Calibration: one clean max-length workload measures how many bytes a
  // campaign writes, so crash offsets can cover the whole range (including
  // "never fires" at the top — a clean-run control).
  uint64_t calibrated_bytes = 4096;
  if (flags.sharded) {
    FaultyFileSystem fs(cqp::storage::PosixFileSystem());
    cqp::server::shard::ShardedStoreOptions options;
    options.dir = base_dir + "/calibrate";
    options.num_shards = 4;  // the fuzz maximum — upper-bounds the bytes
    options.fs = &fs;
    auto store = cqp::server::shard::ShardedProfileStore::Open(&*db, options);
    if (store.ok()) {
      for (int op = 0; op < 50; ++op) {
        (void)(*store)->Put("u" + std::to_string(op % 8),
                            pool[op % pool.size()].profile);
      }
      calibrated_bytes = std::max<uint64_t>(fs.bytes_written(), 4096);
    }
    std::error_code ec;
    std::filesystem::remove_all(options.dir, ec);
  } else {
    FaultyFileSystem fs(cqp::storage::PosixFileSystem());
    DurabilityOptions options;
    options.dir = base_dir + "/calibrate";
    options.fs = &fs;
    auto store = DurableProfileStore::Open(&*db, options);
    if (store.ok()) {
      for (int op = 0; op < 50; ++op) {
        (void)(*store)->Put("u" + std::to_string(op % 4),
                            pool[op % pool.size()].profile);
      }
      calibrated_bytes = std::max<uint64_t>(fs.bytes_written(), 4096);
    }
    std::error_code ec;
    std::filesystem::remove_all(options.dir, ec);
  }

  CampaignTally tally;
  for (uint64_t campaign = 0; campaign < flags.campaigns; ++campaign) {
    const bool ok =
        flags.sharded
            ? RunShardedCampaign(campaign, flags, *db, pool, base_dir,
                                 calibrated_bytes, &tally)
            : RunCampaign(campaign, flags, *db, pool, base_dir,
                          calibrated_bytes, &tally);
    if (!ok) ++tally.failures;
  }

  std::printf(
      "%llu%s campaigns: %llu crashes, %llu wedges, %llu torn tails "
      "recovered, %llu compactions, %llu records replayed, %llu page-ins, "
      "%llu evictions, %llu failures — %s\n",
      static_cast<unsigned long long>(flags.campaigns),
      flags.sharded ? " sharded" : "",
      static_cast<unsigned long long>(tally.crashes),
      static_cast<unsigned long long>(tally.wedges),
      static_cast<unsigned long long>(tally.torn_tails),
      static_cast<unsigned long long>(tally.compactions),
      static_cast<unsigned long long>(tally.records_replayed),
      static_cast<unsigned long long>(tally.page_ins),
      static_cast<unsigned long long>(tally.evictions),
      static_cast<unsigned long long>(tally.failures),
      tally.failures == 0 ? "OK" : "FAIL");
  if (tally.failures == 0) {
    std::error_code ec;
    std::filesystem::remove_all(base_dir, ec);
  } else {
    std::fprintf(stderr, "failing campaign dirs kept under %s\n",
                 base_dir.c_str());
  }
  return tally.failures == 0 ? 0 : 1;
}
