// Differential & metamorphic fuzzing driver for the CQP engine.
//
// Modes:
//   cqp_fuzz --count 10000            fixed instance budget (default 1000)
//   cqp_fuzz --duration 600           run for N seconds instead
//   cqp_fuzz --replay a.cqprepro ...  re-check reproducer files
//   cqp_fuzz --minimize a.cqprepro    shrink a failing reproducer further
//   cqp_fuzz --pipeline               end-to-end path-parity sweep
//   cqp_fuzz --batch-eval             only the SoA/SIMD batch-parity checks
//   cqp_fuzz --rewrite                semantic-rewrite metamorphic campaign
//                                     (optimized vs unoptimized equality,
//                                     vacuity of pruned candidates,
//                                     constraint-revision invalidation);
//                                     --count scales the seeds swept
//
// On a violation the instance is delta-debugged down and written as a
// self-contained .cqprepro file (see docs/testing.md); exit status is the
// number of failing instances (capped at 125).

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "testing/generator.h"
#include "testing/instance.h"
#include "testing/isolation.h"
#include "testing/oracle.h"
#include "testing/pipeline_check.h"
#include "testing/rewrite_check.h"
#include "testing/shrinker.h"

namespace {

using cqp::testing::CheckInstance;
using cqp::testing::CheckOptions;
using cqp::testing::CheckReport;
using cqp::testing::CqpInstance;
using cqp::testing::GeneratorConfig;
using cqp::testing::IsolatedOutcome;

/// One instance's checks, run in a forked child so that a CHECK abort or
/// segfault in an algorithm is recorded as a failure instead of taking the
/// whole campaign down.
IsolatedOutcome CheckIsolated(const CqpInstance& instance,
                              const CheckOptions& options) {
  return cqp::testing::RunIsolated([&](std::string* text, int* solves) {
    CheckReport report = CheckInstance(instance, options);
    *text = report.ToString();
    *solves = static_cast<int>(report.solves);
    return !report.ok();
  });
}

struct Args {
  uint64_t seed = 1;
  uint64_t count = 1000;
  double duration_s = 0.0;  ///< > 0 switches to the timed mode
  GeneratorConfig generator;
  CheckOptions check;
  std::string out_dir = ".";
  bool pipeline = false;
  bool rewrite = false;
  bool no_shrink = false;
  std::vector<std::string> replay;
  std::string minimize;
  bool verbose = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: cqp_fuzz [--seed N] [--count N] [--duration SECONDS]\n"
               "                [--class 1..6] [--k-min N] [--k-max N]\n"
               "                [--out DIR] [--no-shrink] [--verbose]\n"
               "                [--pipeline] [--batch-eval] [--rewrite]\n"
               "                [--replay FILE...] [--minimize FILE]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--count") {
      const char* v = next();
      if (v == nullptr) return false;
      args->count = std::strtoull(v, nullptr, 10);
    } else if (flag == "--duration") {
      const char* v = next();
      if (v == nullptr) return false;
      args->duration_s = std::strtod(v, nullptr);
    } else if (flag == "--class") {
      const char* v = next();
      if (v == nullptr) return false;
      args->generator.problem_class = std::atoi(v);
      if (args->generator.problem_class < 1 ||
          args->generator.problem_class > 6) {
        std::fprintf(stderr, "--class must be 1..6\n");
        return false;
      }
    } else if (flag == "--k-min") {
      const char* v = next();
      if (v == nullptr) return false;
      args->generator.k_min = static_cast<size_t>(std::atoi(v));
    } else if (flag == "--k-max") {
      const char* v = next();
      if (v == nullptr) return false;
      args->generator.k_max = static_cast<size_t>(std::atoi(v));
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->out_dir = v;
    } else if (flag == "--pipeline") {
      args->pipeline = true;
    } else if (flag == "--rewrite") {
      args->rewrite = true;
    } else if (flag == "--batch-eval") {
      // Focused campaign for the SoA/SIMD batch evaluation core: only the
      // kernel- and solve-level batch-vs-scalar parity checks (plus the
      // feasibility recheck, which is what makes a wrong answer visible
      // without the full oracle). Much faster per instance, so the same
      // budget covers far more of the preference-space shapes the batch
      // tail enumeration has to get right.
      args->check = CheckOptions();
      args->check.check_oracle = false;
      args->check.check_invariants = false;
      args->check.check_cache_parity = false;
      args->check.check_budget = false;
      args->check.check_determinism = false;
      args->check.check_prepared = false;
      args->check.check_feasibility = true;
      args->check.check_batch_parity = true;
    } else if (flag == "--no-shrink") {
      args->no_shrink = true;
    } else if (flag == "--verbose") {
      args->verbose = true;
    } else if (flag == "--replay") {
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        args->replay.push_back(argv[++i]);
      }
      if (args->replay.empty()) {
        std::fprintf(stderr, "--replay needs at least one file\n");
        return false;
      }
    } else if (flag == "--minimize") {
      const char* v = next();
      if (v == nullptr) return false;
      args->minimize = v;
    } else if (flag == "--help" || flag == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      Usage();
      return false;
    }
  }
  if (args->generator.k_min < 1 ||
      args->generator.k_max < args->generator.k_min) {
    std::fprintf(stderr, "bad k range\n");
    return false;
  }
  return true;
}

/// Shrinks (unless disabled), writes the reproducer file and prints the
/// violation report.
void HandleFailure(const Args& args, const CqpInstance& instance,
                   const std::string& report_text, int failure_index) {
  std::fprintf(stderr, "FAIL %s seed=%llu\n%s", instance.Summary().c_str(),
               static_cast<unsigned long long>(instance.seed),
               report_text.c_str());
  CqpInstance to_write = instance;
  if (!args.no_shrink) {
    cqp::testing::ShrinkResult shrunk =
        cqp::testing::ShrinkInstance(instance, args.check);
    std::fprintf(stderr, "shrunk K=%zu -> K=%zu (%d probes)\n", instance.K(),
                 shrunk.instance.K(), shrunk.probes);
    to_write = shrunk.instance;
  }
  mkdir(args.out_dir.c_str(), 0755);  // fine if it already exists
  std::string path = args.out_dir + "/cqp_repro_" +
                     std::to_string(instance.seed) + "_" +
                     std::to_string(failure_index) + ".cqprepro";
  cqp::Status written = to_write.WriteFile(path);
  if (written.ok()) {
    std::fprintf(stderr, "reproducer written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s: %s\n", path.c_str(),
                 std::string(written.message()).c_str());
  }
}

int RunReplay(const Args& args) {
  int failures = 0;
  for (const std::string& path : args.replay) {
    auto instance = CqpInstance::ReadFile(path);
    if (!instance.ok()) {
      std::fprintf(stderr, "%s\n",
                   std::string(instance.status().message()).c_str());
      ++failures;
      continue;
    }
    IsolatedOutcome outcome = CheckIsolated(*instance, args.check);
    if (!outcome.failed) {
      std::printf("PASS %s (%s)\n", path.c_str(),
                  instance->Summary().c_str());
    } else {
      std::fprintf(stderr, "FAIL %s\n%s", path.c_str(),
                   outcome.report_text.c_str());
      ++failures;
    }
  }
  return failures;
}

int RunMinimize(const Args& args) {
  auto instance = CqpInstance::ReadFile(args.minimize);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n",
                 std::string(instance.status().message()).c_str());
    return 1;
  }
  cqp::testing::ShrinkResult shrunk =
      cqp::testing::ShrinkInstance(*instance, args.check);
  if (shrunk.report.ok()) {
    std::printf("%s passes all checks; nothing to minimize\n",
                args.minimize.c_str());
    return 0;
  }
  std::string path = args.minimize + ".min";
  cqp::Status written = shrunk.instance.WriteFile(path);
  if (!written.ok()) {
    std::fprintf(stderr, "write %s: %s\n", path.c_str(),
                 std::string(written.message()).c_str());
    return 1;
  }
  std::printf("K=%zu -> K=%zu (%d accepted steps, %d probes) -> %s\n",
              instance->K(), shrunk.instance.K(), shrunk.steps, shrunk.probes,
              path.c_str());
  std::printf("%s", shrunk.report.ToString().c_str());
  return 0;
}

int RunPipeline(const Args& args) {
  cqp::testing::PipelineCheckConfig config;
  config.seed = args.seed;
  cqp::testing::PipelineCheckResult result =
      cqp::testing::RunPipelineCheck(config);
  std::printf("pipeline parity: %zu requests compared, %zu violations\n",
              result.requests, result.report.violations.size());
  if (!result.report.ok()) {
    std::fprintf(stderr, "%s", result.report.ToString().c_str());
    return 1;
  }
  return 0;
}

/// The --rewrite campaign: RunRewriteCheck over `count` consecutive seeds
/// (each seed is a fresh database + mined constraints + workload), so one
/// invocation covers many constraint shapes. Instance counts scale the
/// per-seed workload only implicitly — the sweep is seed-parallelizable by
/// splitting the seed range across invocations.
int RunRewrite(const Args& args) {
  // Each seed personalizes n_profiles * n_queries requests; size the sweep
  // so --count roughly equals the number of requests checked.
  cqp::testing::RewriteCheckConfig config;
  uint64_t per_seed =
      static_cast<uint64_t>(config.n_profiles * config.n_queries);
  uint64_t seeds = (args.count + per_seed - 1) / per_seed;
  if (seeds == 0) seeds = 1;
  size_t requests = 0;
  uint64_t conjuncts_dropped = 0, branches_eliminated = 0, prefs_pruned = 0,
           vacuity_probes = 0;
  int failures = 0;
  for (uint64_t s = 0; s < seeds; ++s) {
    config.seed = args.seed + s;
    cqp::testing::RewriteCheckResult result =
        cqp::testing::RunRewriteCheck(config);
    requests += result.requests;
    conjuncts_dropped += result.conjuncts_dropped;
    branches_eliminated += result.branches_eliminated;
    prefs_pruned += result.prefs_pruned;
    vacuity_probes += result.vacuity_probes;
    if (!result.report.ok()) {
      std::fprintf(stderr, "FAIL seed=%llu\n%s",
                   static_cast<unsigned long long>(config.seed),
                   result.report.ToString().c_str());
      ++failures;
      if (failures >= 20) {
        std::fprintf(stderr, "too many failures; stopping early\n");
        break;
      }
    }
    if (args.verbose || (s + 1) % 50 == 0) {
      std::printf("... %llu/%llu seeds, %zu requests, %d failing\n",
                  static_cast<unsigned long long>(s + 1),
                  static_cast<unsigned long long>(seeds), requests, failures);
      std::fflush(stdout);
    }
  }
  std::printf(
      "rewrite sweep: %llu seeds, %zu requests, %llu conjuncts dropped, "
      "%llu branches eliminated, %llu candidates pruned "
      "(%llu vacuity probes), %d failing\n",
      static_cast<unsigned long long>(seeds), requests,
      static_cast<unsigned long long>(conjuncts_dropped),
      static_cast<unsigned long long>(branches_eliminated),
      static_cast<unsigned long long>(prefs_pruned),
      static_cast<unsigned long long>(vacuity_probes), failures);
  return failures;
}

int RunFuzz(const Args& args) {
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(args.duration_s));
  int failures = 0;
  uint64_t ran = 0;
  uint64_t solves = 0;
  for (uint64_t i = 0;; ++i) {
    if (args.duration_s > 0.0) {
      if (std::chrono::steady_clock::now() >= deadline) break;
    } else if (i >= args.count) {
      break;
    }
    uint64_t instance_seed = args.seed + i;
    cqp::Rng rng(instance_seed);
    CqpInstance instance =
        cqp::testing::GenerateInstance(rng, args.generator);
    instance.seed = instance_seed;
    IsolatedOutcome outcome = CheckIsolated(instance, args.check);
    ++ran;
    solves += static_cast<uint64_t>(outcome.solves);
    if (args.verbose) {
      std::printf("#%llu %s: %s\n", static_cast<unsigned long long>(i),
                  instance.Summary().c_str(),
                  outcome.failed ? "FAIL" : "ok");
    }
    if (outcome.failed) {
      HandleFailure(args, instance, outcome.report_text, failures);
      ++failures;
      if (failures >= 20) {
        std::fprintf(stderr, "too many failures; stopping early\n");
        break;
      }
    }
    if (ran % 1000 == 0) {
      double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      std::printf("... %llu instances, %llu solves, %d failures, %.1fs\n",
                  static_cast<unsigned long long>(ran),
                  static_cast<unsigned long long>(solves), failures, elapsed);
      std::fflush(stdout);
    }
  }
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  std::printf("%llu instances (%llu solves) in %.1fs, %d failing\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(solves), elapsed, failures);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 125;
  int failures = 0;
  if (!args.replay.empty()) {
    failures = RunReplay(args);
  } else if (!args.minimize.empty()) {
    return RunMinimize(args);
  } else if (args.pipeline) {
    return RunPipeline(args);
  } else if (args.rewrite) {
    failures = RunRewrite(args);
  } else {
    failures = RunFuzz(args);
  }
  return failures > 125 ? 125 : failures;
}
