#!/usr/bin/env python3
"""Diff checked-in BENCH_*.json results against a previous commit.

Every bench binary writes a JSON report with a top-level "cells" list;
each cell mixes identity keys (batch, threads, concurrency, deadline_ms,
...) with measured metrics (qps, wall_ms, p50_ms, p99_ms, ...). This
script matches cells between the working tree and `git show REF:FILE` by
their identity keys and warns when a metric regressed by more than the
threshold (default 20%).

Usage:
    scripts/bench_diff.py [--ref HEAD~1] [--threshold 0.2] [FILE...]

With no FILE arguments it checks every BENCH_*.json in the repo root.
Exit code 0 always, unless --fail-on-regression is given (then 1 when
any warning fired) — benchmarks are noisy, so the default is advisory.
"""

import argparse
import glob
import json
import os
import subprocess
import sys

# Metrics where a LOWER working-tree value is a regression.
HIGHER_IS_BETTER = {"qps", "ok", "cache_hit_rate", "cache_hits",
                    "puts_per_sec", "records_per_sec", "states_per_sec",
                    # Semantic rewrite layer (BENCH_rewrite.json): how much
                    # of the admitted space / emitted cost the optimizer
                    # removes, and its raw activity counters (the workload
                    # is seeded, so fewer drops means the passes got weaker).
                    "k_reduction_pct", "cost_reduction_pct",
                    "size_reduction_pct", "conjuncts_dropped",
                    "branches_eliminated", "prefs_pruned"}
# Metrics where a HIGHER working-tree value is a regression.
LOWER_IS_BETTER = {"wall_ms", "p50_ms", "p99_ms", "degraded",
                   "transport_errors", "identity_mismatches", "cache_misses",
                   "server_ms_avg", "search_ms_avg",
                   "put_avg_ms", "put_p50_ms", "put_p99_ms", "recovery_ms",
                   "fsync_per_put",
                   # Sharded tier (BENCH_shard.json): cold page-in latency,
                   # memory held by resident graphs, and eviction churn.
                   "p50_cold_ms", "p99_cold_ms", "resident_mb", "evictions",
                   # Semantic rewrite layer: what is left after the passes.
                   "states_after_prune", "cost_qx_ms"}
# Measured values that are neither identity nor judged (counters that
# legitimately move when the code under test changes).
IGNORED = {"states", "requests", "identity_checked", "shed", "other",
           "journal_bytes", "group_commits", "frontiers", "frontier_states",
           "avg_frontier_width", "lanes_wasted",
           # Sharded tier: traffic counters and environment readings that
           # track workload shape, not quality. resident_within_budget is
           # enforced by the bench itself (it fails the run).
           "page_ins", "page_in_waits", "pinned_skips", "cold_finds",
           "mixed_requests", "rss_mb", "open_ms", "build_ms",
           # EvalCache traffic of the throughput bench: the SoA/SIMD batch
           # path evaluates frontiers cachelessly by design (docs/simd.md),
           # so probe counts track code structure, not quality. The plan
           # cache bench's `cache_hits` stays judged.
           "eval_cache_hits", "eval_cache_misses", "eval_cache_hit_rate",
           # Rewrite bench: the unoptimized side of each delta (tracks the
           # generated workload, judged only through the *_reduction_pct
           # and the post-rewrite metrics above).
           "k_baseline", "cost_baseline_ms", "size_baseline", "size_qx"}


def cell_identity(cell):
    """The non-metric keys of a cell, as a hashable signature."""
    metrics = HIGHER_IS_BETTER | LOWER_IS_BETTER | IGNORED
    items = []
    for key, value in sorted(cell.items()):
        if key in metrics or isinstance(value, (dict, list)):
            continue
        items.append((key, value))
    return tuple(items)


def load_ref(path, ref):
    rel = os.path.relpath(path, start=repo_root())
    try:
        out = subprocess.run(
            ["git", "show", f"{ref}:{rel}"], cwd=repo_root(),
            capture_output=True, check=True)
    except subprocess.CalledProcessError:
        return None  # file did not exist at REF
    return json.loads(out.stdout)


def repo_root():
    out = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                         capture_output=True, check=True, text=True)
    return out.stdout.strip()


def diff_file(path, ref, threshold):
    with open(path) as f:
        current = json.load(f)
    baseline = load_ref(path, ref)
    if baseline is None:
        print(f"{path}: no baseline at {ref}, skipping")
        return []
    base_cells = {cell_identity(c): c for c in baseline.get("cells", [])}
    warnings = []
    for cell in current.get("cells", []):
        ident = cell_identity(cell)
        base = base_cells.get(ident)
        if base is None:
            continue  # grid changed; nothing to compare against
        label = ", ".join(f"{k}={v}" for k, v in ident)
        for key, value in cell.items():
            if not isinstance(value, (int, float)) or key not in base:
                continue
            old = base[key]
            if not isinstance(old, (int, float)) or old == 0:
                continue
            if key in HIGHER_IS_BETTER:
                change = (old - value) / abs(old)
            elif key in LOWER_IS_BETTER:
                change = (value - old) / abs(old)
            else:
                continue
            if change > threshold:
                warnings.append(
                    f"{os.path.basename(path)} [{label}] {key}: "
                    f"{old:g} -> {value:g} ({change:+.0%} worse)")
    return warnings


def main():
    parser = argparse.ArgumentParser(
        description="warn on BENCH_*.json regressions vs a previous commit")
    parser.add_argument("--ref", default="HEAD~1",
                        help="git ref to diff against (default HEAD~1)")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="relative regression to warn at (default 0.2)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 if any warning fired")
    parser.add_argument("files", nargs="*",
                        help="BENCH_*.json files (default: repo root glob)")
    args = parser.parse_args()

    files = args.files or sorted(
        glob.glob(os.path.join(repo_root(), "BENCH_*.json")))
    if not files:
        print("no BENCH_*.json files found")
        return 0

    all_warnings = []
    for path in files:
        all_warnings.extend(diff_file(path, args.ref, args.threshold))

    if all_warnings:
        print(f"=== {len(all_warnings)} regression(s) worse than "
              f"{args.threshold:.0%} vs {args.ref} ===")
        for w in all_warnings:
            print("  " + w)
    else:
        print(f"no regressions worse than {args.threshold:.0%} "
              f"vs {args.ref} across {len(files)} file(s)")
    return 1 if (all_warnings and args.fail_on_regression) else 0


if __name__ == "__main__":
    sys.exit(main())
