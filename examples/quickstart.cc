// Quickstart: the paper's running example end to end.
//
// Builds a tiny movie database, loads the Figure 1 profile, and
// personalizes "SELECT title FROM MOVIE" twice:
//
//   1. Problem 2 (cost bound only) — the search happily over-personalizes
//      and the answer comes back empty, the exact failure mode the paper's
//      introduction warns about;
//   2. Problem 3 (cost bound + size >= 1) — the size constraint steers the
//      search to a subset of preferences whose answer is non-empty.
//
// Both runs print the §4.2 UNION ALL / HAVING rewriting and the doi-ranked
// answer.
//
// Run:  ./quickstart

#include <cstdio>

#include "construct/personalizer.h"
#include "exec/executor.h"
#include "prefs/graph.h"
#include "prefs/profile.h"
#include "sql/parser.h"
#include "storage/database.h"
#include "workload/movie_gen.h"

namespace {

using cqp::construct::PersonalizeRequest;
using cqp::construct::Personalizer;

int Run() {
  // 1. A small IMDb-like database (synthetic; deterministic in the seed).
  cqp::workload::MovieDbConfig db_config;
  db_config.n_movies = 2000;
  db_config.n_directors = 150;
  db_config.n_actors = 400;
  auto db_or = cqp::workload::BuildMovieDatabase(db_config);
  if (!db_or.ok()) {
    std::fprintf(stderr, "db: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  cqp::storage::Database db = *std::move(db_or);

  // 2. The user profile — Figure 1 of the paper, plus a couple of extras
  //    so the search has something to trade off.
  auto profile_or = cqp::prefs::Profile::Parse(R"(
      # Figure 1 (paper) + extras
      doi(GENRE.genre = 'musical') = 0.5
      doi(MOVIE.mid = GENRE.mid) = 0.9
      doi(MOVIE.did = DIRECTOR.did) = 1.0
      doi(DIRECTOR.name = 'Director 00007') = 0.8
      doi(GENRE.genre = 'comedy') = 0.35
      doi(MOVIE.year >= 1990) = 0.6
      doi(MOVIE.duration <= 120) = 0.25
  )");
  if (!profile_or.ok()) {
    std::fprintf(stderr, "profile: %s\n",
                 profile_or.status().ToString().c_str());
    return 1;
  }
  auto graph_or =
      cqp::prefs::PersonalizationGraph::Build(*std::move(profile_or), db);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  cqp::prefs::PersonalizationGraph graph = *std::move(graph_or);

  // 3. Personalize: first with a cost bound only, then adding the size
  //    lower bound that rules out empty answers.
  Personalizer personalizer(&db, &graph);
  bool first = true;
  for (const cqp::cqp::ProblemSpec& problem :
       {cqp::cqp::ProblemSpec::Problem2(/*cmax_ms=*/60.0),
        cqp::cqp::ProblemSpec::Problem3(/*cmax_ms=*/60.0, /*smin=*/1.0,
                                        /*smax=*/100.0)}) {
    PersonalizeRequest request;
    request.sql = "SELECT title FROM MOVIE";
    request.problem = problem;
    request.algorithm = "C-Boundaries";  // provably optimal

    auto result_or = personalizer.Personalize(request);
    if (!result_or.ok()) {
      std::fprintf(stderr, "personalize: %s\n",
                   result_or.status().ToString().c_str());
      return 1;
    }
    const auto& result = *result_or;

    std::printf("original query : %s\n", request.sql.c_str());
    std::printf("problem        : %s\n", request.problem.ToString().c_str());
    if (first) {
      std::printf("preference space (K=%zu):\n", result.space->K());
      for (const auto& p : result.space->prefs) {
        std::printf("  doi=%.3f cost=%7.1fms size=%8.1f  %s\n", p.doi,
                    p.cost_ms, p.size, p.pref.ConditionString().c_str());
      }
    }
    if (!result.solution.feasible) {
      std::printf("no feasible personalized query; running Q unchanged\n");
    } else {
      std::printf(
          "chosen subset  : %s  (doi=%.3f, est cost=%.1fms, est size=%.1f)\n",
          result.solution.chosen.ToString().c_str(),
          result.solution.params.doi, result.solution.params.cost_ms,
          result.solution.params.size);
    }
    std::printf("\npersonalized SQL:\n%s\n\n", result.final_sql.c_str());

    // Execute and show the doi-ranked answer.
    cqp::exec::ExecStats stats;
    auto rows_or = personalizer.Execute(result, &stats);
    if (!rows_or.ok()) {
      std::fprintf(stderr, "execute: %s\n",
                   rows_or.status().ToString().c_str());
      return 1;
    }
    std::printf("answer (%zu rows, %llu blocks read, simulated %.1f ms):\n",
                rows_or->rows.size(),
                static_cast<unsigned long long>(stats.blocks_read),
                stats.SimulatedMillis(cqp::exec::CostModelParams()));
    size_t shown = 0;
    for (const auto& row : rows_or->rows) {
      if (shown++ >= 10) {
        std::printf("  ... (%zu more)\n", rows_or->rows.size() - 10);
        break;
      }
      std::printf("  doi=%.3f  %s\n", row.doi, row.row.ToString().c_str());
    }
    if (first) {
      std::printf(
          "\n--- maximum interest over-personalized the query into an empty\n"
          "--- answer; re-running with the Problem 3 size constraint:\n\n");
    } else if (!result.personalized.subqueries.empty()) {
      // 5. The printed SQL is a real statement: parse it back and run it
      //    through the engine's UNION/GROUP BY/HAVING path.
      auto reparsed = cqp::sql::ParseUnionGroup(result.final_sql);
      if (reparsed.ok()) {
        cqp::exec::Executor executor(&db);
        auto rerun = executor.ExecuteUnionGroup(*reparsed, nullptr);
        if (rerun.ok()) {
          std::printf(
              "\n(round trip: parsing the printed SQL and executing it "
              "returns %zu rows — same answer)\n",
              rerun->row_count());
        }
      }
    }
    first = false;
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
