// The paper's §1 motivating scenario: Al and the tourist-information
// service.
//
// The same user asks the same question ("restaurants, please") in two
// search contexts:
//   * office laptop, fast link  -> CQP Problem 2 with a generous cost bound;
//   * palmtop in Pisa's old town -> CQP Problem 3: tight cost bound and at
//     most three results (smax = 3).
//
// Run:  ./mobile_tourist

#include <cstdio>

#include "construct/personalizer.h"
#include "prefs/graph.h"
#include "workload/tourist_gen.h"

namespace {

using cqp::construct::PersonalizeRequest;
using cqp::construct::Personalizer;

void Report(const char* context, const Personalizer& personalizer,
            const cqp::construct::PersonalizeResult& result) {
  std::printf("=== %s ===\n", context);
  if (!result.solution.feasible) {
    std::printf("no personalized query satisfies the constraints; the\n"
                "original query would run unchanged.\n\n");
    return;
  }
  std::printf("integrated preferences:\n");
  for (int32_t i : result.solution.chosen) {
    const auto& p = result.space->prefs[static_cast<size_t>(i)];
    std::printf("  doi=%.2f  %s\n", p.doi, p.pref.ConditionString().c_str());
  }
  std::printf("estimates: doi=%.3f cost=%.1fms size=%.1f\n",
              result.solution.params.doi, result.solution.params.cost_ms,
              result.solution.params.size);
  std::printf("SQL:\n%s\n", result.final_sql.c_str());

  cqp::exec::ExecStats stats;
  auto rows = personalizer.Execute(result, &stats);
  if (!rows.ok()) {
    std::printf("execution failed: %s\n", rows.status().ToString().c_str());
    return;
  }
  std::printf("answer (%zu rows, simulated %.1f ms):\n", rows->rows.size(),
              stats.SimulatedMillis(cqp::exec::CostModelParams()));
  size_t shown = 0;
  for (const auto& row : rows->rows) {
    if (shown++ >= 5) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  doi=%.3f  %s\n", row.doi, row.row.ToString().c_str());
  }
  std::printf("\n");
}

int Run() {
  auto db_or =
      cqp::workload::BuildTouristDatabase(cqp::workload::TouristDbConfig{});
  if (!db_or.ok()) {
    std::fprintf(stderr, "db: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  cqp::storage::Database db = *std::move(db_or);

  auto profile_or = cqp::workload::BuildAlProfile();
  auto graph_or =
      cqp::prefs::PersonalizationGraph::Build(*std::move(profile_or), db);
  cqp::prefs::PersonalizationGraph graph = *std::move(graph_or);

  Personalizer personalizer(&db, &graph);

  PersonalizeRequest request;
  request.sql = "SELECT name FROM RESTAURANT";
  request.algorithm = "C-Boundaries";

  // Context 1: laptop + broadband. Expensive queries and long answers are
  // fine; maximize interest under a loose cost bound.
  request.problem = cqp::cqp::ProblemSpec::Problem2(/*cmax_ms=*/5000.0);
  auto laptop = personalizer.Personalize(request);
  if (!laptop.ok()) {
    std::fprintf(stderr, "%s\n", laptop.status().ToString().c_str());
    return 1;
  }
  Report("office laptop, broadband (Problem 2, cmax=5000ms)", personalizer,
         *laptop);

  // Context 2: palmtop in Pisa. Tight response time, a handful of answers.
  request.problem = cqp::cqp::ProblemSpec::Problem3(/*cmax_ms=*/320.0,
                                                    /*smin=*/1.0,
                                                    /*smax=*/12.0);
  auto palmtop = personalizer.Personalize(request);
  if (!palmtop.ok()) {
    std::fprintf(stderr, "%s\n", palmtop.status().ToString().c_str());
    return 1;
  }
  Report("palmtop in Pisa, low bandwidth (Problem 3, cmax=320ms, smax=12)",
         personalizer, *palmtop);
  return 0;
}

}  // namespace

int main() { return Run(); }
