// Mapping a search context to a CQP problem.
//
// The paper deliberately leaves the "which problem when" policy out of
// scope (§1, §8: ongoing work). This example ships a small, transparent
// policy as an extension: device class, network quality and user urgency
// are mapped to one of the Table 1 problems with concrete bounds, and the
// resulting personalized queries are compared.
//
// Run:  ./context_policy

#include <cstdio>
#include <string>
#include <vector>

#include "construct/personalizer.h"
#include "prefs/graph.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"

namespace {

using cqp::construct::PersonalizeRequest;
using cqp::construct::Personalizer;
using cqp::cqp::ProblemSpec;

/// The runtime factors the paper's §1 example mentions.
struct SearchContext {
  enum class Device { kDesktop, kLaptop, kPhone };
  enum class Network { kBroadband, kMobile, kPoor };

  Device device = Device::kDesktop;
  Network network = Network::kBroadband;
  bool user_in_a_hurry = false;
  /// Explicit user ask ("up to three restaurants"), 0 = unspecified.
  int requested_results = 0;
};

/// Policy: derive the CQP problem from the context.
///
/// * Poor connectivity or small screens bound result size.
/// * Slow links and urgency bound (or minimize) execution cost.
/// * Otherwise maximize interest under a device-dependent cost budget.
ProblemSpec ProblemForContext(const SearchContext& context) {
  double cmax = 5000.0;
  switch (context.network) {
    case SearchContext::Network::kBroadband:
      cmax = 5000.0;
      break;
    case SearchContext::Network::kMobile:
      cmax = 800.0;
      break;
    case SearchContext::Network::kPoor:
      cmax = 250.0;
      break;
  }
  if (context.user_in_a_hurry) cmax /= 4.0;

  double smax = 0.0;  // 0 = unbounded
  if (context.device == SearchContext::Device::kPhone) smax = 20.0;
  if (context.requested_results > 0) {
    smax = static_cast<double>(context.requested_results);
  }

  if (context.user_in_a_hurry && smax > 0.0) {
    // Urgent and bounded output: get the cheapest acceptable answer.
    return ProblemSpec::Problem6(1.0, smax);
  }
  if (smax > 0.0) return ProblemSpec::Problem3(cmax, 1.0, smax);
  return ProblemSpec::Problem2(cmax);
}

const char* DeviceName(SearchContext::Device d) {
  switch (d) {
    case SearchContext::Device::kDesktop:
      return "desktop";
    case SearchContext::Device::kLaptop:
      return "laptop";
    case SearchContext::Device::kPhone:
      return "phone";
  }
  return "?";
}

const char* NetworkName(SearchContext::Network n) {
  switch (n) {
    case SearchContext::Network::kBroadband:
      return "broadband";
    case SearchContext::Network::kMobile:
      return "mobile";
    case SearchContext::Network::kPoor:
      return "poor";
  }
  return "?";
}

int Run() {
  cqp::workload::MovieDbConfig db_config;
  db_config.n_movies = 5000;
  db_config.n_directors = 300;
  db_config.n_actors = 800;
  auto db_or = cqp::workload::BuildMovieDatabase(db_config);
  if (!db_or.ok()) return 1;
  cqp::storage::Database db = *std::move(db_or);

  cqp::workload::ProfileGenConfig pc;
  auto graph_or = cqp::prefs::PersonalizationGraph::Build(
      *cqp::workload::GenerateProfile(pc, db_config), db);
  cqp::prefs::PersonalizationGraph graph = *std::move(graph_or);
  Personalizer personalizer(&db, &graph);

  std::vector<SearchContext> contexts(4);
  contexts[0] = {};  // desktop / broadband
  contexts[1].device = SearchContext::Device::kPhone;
  contexts[1].network = SearchContext::Network::kMobile;
  contexts[2].device = SearchContext::Device::kPhone;
  contexts[2].network = SearchContext::Network::kPoor;
  contexts[2].requested_results = 3;
  contexts[3].device = SearchContext::Device::kPhone;
  contexts[3].network = SearchContext::Network::kPoor;
  contexts[3].user_in_a_hurry = true;
  contexts[3].requested_results = 3;

  std::printf("query: SELECT title FROM MOVIE\n\n");
  for (const SearchContext& context : contexts) {
    ProblemSpec problem = ProblemForContext(context);
    std::printf("context: %-7s / %-9s%s%s\n", DeviceName(context.device),
                NetworkName(context.network),
                context.user_in_a_hurry ? " / in a hurry" : "",
                context.requested_results
                    ? (" / wants " + std::to_string(context.requested_results))
                          .c_str()
                    : "");
    std::printf("  -> problem %d: %s\n", problem.ProblemNumber(),
                problem.ToString().c_str());

    PersonalizeRequest request;
    request.sql = "SELECT title FROM MOVIE";
    request.problem = problem;
    request.algorithm = problem.objective == cqp::cqp::Objective::kMaximizeDoi
                            ? "C-Boundaries"
                            : "MinCost-BB";
    request.space_options.max_k = 12;
    auto result = personalizer.Personalize(request);
    if (!result.ok()) {
      std::printf("  -> error: %s\n\n", result.status().ToString().c_str());
      continue;
    }
    if (!result->solution.feasible) {
      std::printf("  -> infeasible; original query runs unchanged\n\n");
      continue;
    }
    std::printf("  -> |Px|=%zu doi=%.3f cost=%.0fms size=%.0f\n\n",
                result->solution.chosen.size(), result->solution.params.doi,
                result->solution.params.cost_ms,
                result->solution.params.size);
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
