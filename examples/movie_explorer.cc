// All six CQP problems (Table 1) on the same query and profile.
//
// Shows how the same user asking the same question receives different
// personalized queries depending on which parameter is optimized and which
// are constrained — the core point of the paper.
//
// Run:  ./movie_explorer

#include <cstdio>
#include <vector>

#include "construct/personalizer.h"
#include "prefs/graph.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"

namespace {

using cqp::construct::PersonalizeRequest;
using cqp::construct::Personalizer;
using cqp::cqp::ProblemSpec;

struct Scenario {
  const char* label;
  ProblemSpec problem;
  const char* algorithm;
};

int Run() {
  cqp::workload::MovieDbConfig db_config;
  db_config.n_movies = 5000;
  db_config.n_directors = 300;
  db_config.n_actors = 800;
  auto db_or = cqp::workload::BuildMovieDatabase(db_config);
  if (!db_or.ok()) {
    std::fprintf(stderr, "db: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  cqp::storage::Database db = *std::move(db_or);

  cqp::workload::ProfileGenConfig pc;
  pc.seed = 5;
  auto profile_or = cqp::workload::GenerateProfile(pc, db_config);
  auto graph_or =
      cqp::prefs::PersonalizationGraph::Build(*std::move(profile_or), db);
  cqp::prefs::PersonalizationGraph graph = *std::move(graph_or);

  Personalizer personalizer(&db, &graph);

  const double cmax = 500.0;
  const std::vector<Scenario> scenarios = {
      {"P1: MAX doi, 1 <= size <= 200", ProblemSpec::Problem1(1, 200),
       "C-Boundaries"},
      {"P2: MAX doi, cost <= 500ms", ProblemSpec::Problem2(cmax),
       "C-Boundaries"},
      {"P3: MAX doi, cost <= 500ms, 1 <= size <= 200",
       ProblemSpec::Problem3(cmax, 1, 200), "C-Boundaries"},
      {"P4: MIN cost, doi >= 0.9", ProblemSpec::Problem4(0.9), "MinCost-BB"},
      {"P5: MIN cost, doi >= 0.9, 1 <= size <= 200",
       ProblemSpec::Problem5(0.9, 1, 200), "MinCost-BB"},
      {"P6: MIN cost, 1 <= size <= 200", ProblemSpec::Problem6(1, 200),
       "MinCost-BB"},
  };

  std::printf("query: SELECT title FROM MOVIE   (user profile seed %llu)\n\n",
              static_cast<unsigned long long>(pc.seed));
  std::printf("%-48s %8s %10s %10s %6s\n", "problem", "doi", "cost(ms)",
              "size", "|Px|");

  for (const Scenario& scenario : scenarios) {
    PersonalizeRequest request;
    request.sql = "SELECT title FROM MOVIE";
    request.problem = scenario.problem;
    request.algorithm = scenario.algorithm;
    request.space_options.max_k = 12;
    auto result = personalizer.Personalize(request);
    if (!result.ok()) {
      std::printf("%-48s %s\n", scenario.label,
                  result.status().ToString().c_str());
      continue;
    }
    if (!result->solution.feasible) {
      std::printf("%-48s infeasible\n", scenario.label);
      continue;
    }
    std::printf("%-48s %8.3f %10.1f %10.1f %6zu\n", scenario.label,
                result->solution.params.doi,
                result->solution.params.cost_ms, result->solution.params.size,
                result->solution.chosen.size());
  }

  std::printf(
      "\nNote how the MIN-cost problems choose just enough preferences to\n"
      "meet the doi/size constraints, while the MAX-doi problems spend the\n"
      "whole cost budget.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
