// Bring-your-own-data: load CSV files into the engine, attach a profile,
// and personalize queries over a schema the library has never seen.
//
// Writes two small CSV files to a temp directory, loads them as
// PRODUCT(pid, name, cid, price) and CATEGORY(cid, cname), then runs a
// Problem 3 personalization of "SELECT name FROM PRODUCT".
//
// Run:  ./csv_import

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "construct/personalizer.h"
#include "prefs/graph.h"
#include "prefs/profile.h"
#include "storage/csv.h"
#include "storage/database.h"

namespace {

using cqp::catalog::AttributeDef;
using cqp::catalog::RelationDef;
using cqp::catalog::ValueType;

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

bool WriteFile(const std::string& path, const char* contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << contents;
  return out.good();
}

int Run() {
  // 1. The user's data, as plain CSV.
  std::string products_csv = TempPath("cqp_products.csv");
  std::string categories_csv = TempPath("cqp_categories.csv");
  if (!WriteFile(products_csv, R"(pid,name,cid,price
1,Espresso Machine,1,240
2,Moka Pot,1,35
3,Pour-over Kettle,1,55
4,Road Bike,2,900
5,Commuter Bike,2,420
6,Bike Lights,2,25
7,Mystery Novel,3,15
8,Cookbook,3,30
9,Coffee Table Book,3,60
10,Burr Grinder,1,120
11,Bike Helmet,2,70
12,Travel Guide,3,20
)") ||
      !WriteFile(categories_csv, R"(cid,cname
1,coffee
2,cycling
3,books
)")) {
    std::fprintf(stderr, "cannot write CSV files\n");
    return 1;
  }

  // 2. Load them into a fresh database.
  cqp::storage::Database db;
  auto product = cqp::storage::LoadCsvFile(
      &db,
      RelationDef("PRODUCT", {AttributeDef{"pid", ValueType::kInt},
                              AttributeDef{"name", ValueType::kString},
                              AttributeDef{"cid", ValueType::kInt},
                              AttributeDef{"price", ValueType::kInt}}),
      products_csv);
  auto category = cqp::storage::LoadCsvFile(
      &db,
      RelationDef("CATEGORY", {AttributeDef{"cid", ValueType::kInt},
                               AttributeDef{"cname", ValueType::kString}}),
      categories_csv);
  if (!product.ok() || !category.ok()) {
    std::fprintf(stderr, "load failed: %s / %s\n",
                 product.status().ToString().c_str(),
                 category.status().ToString().c_str());
    return 1;
  }
  db.Analyze();
  std::printf("loaded %llu products, %llu categories\n",
              static_cast<unsigned long long>((*product)->row_count()),
              static_cast<unsigned long long>((*category)->row_count()));

  // 3. The user's profile over that schema.
  auto profile_or = cqp::prefs::Profile::Parse(R"(
      doi(PRODUCT.cid = CATEGORY.cid) = 0.9
      doi(CATEGORY.cname = 'coffee') = 0.8
      doi(CATEGORY.cname = 'cycling') = 0.3
      doi(PRODUCT.price <= 100) = 0.6
  )");
  auto graph_or =
      cqp::prefs::PersonalizationGraph::Build(*std::move(profile_or), db);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  cqp::prefs::PersonalizationGraph graph = *std::move(graph_or);

  // 4. Personalize with a size window: a handful of affordable coffee gear.
  cqp::construct::Personalizer personalizer(&db, &graph);
  cqp::construct::PersonalizeRequest request;
  request.sql = "SELECT name, price FROM PRODUCT";
  request.problem = cqp::cqp::ProblemSpec::Problem3(/*cmax_ms=*/50.0,
                                                    /*smin=*/1.0,
                                                    /*smax=*/6.0);
  request.algorithm = "auto";
  auto result = personalizer.Personalize(request);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("problem: %s\n", request.problem.ToString().c_str());
  std::printf("sql:\n%s\n", result->final_sql.c_str());
  cqp::exec::ExecStats stats;
  auto rows = personalizer.Execute(*result, &stats);
  if (!rows.ok()) {
    std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf("answer (%zu rows):\n", rows->rows.size());
  for (const auto& row : rows->rows) {
    std::printf("  doi=%.3f  %s\n", row.doi, row.row.ToString().c_str());
  }

  std::remove(products_csv.c_str());
  std::remove(categories_csv.c_str());
  return 0;
}

}  // namespace

int main() { return Run(); }
