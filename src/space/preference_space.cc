#include "space/preference_space.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "rewrite/passes.h"

namespace cqp::space {

namespace {

using estimation::PreferenceEstimate;
using estimation::ScoredPreference;
using prefs::AtomicJoin;
using prefs::AtomicSelection;
using prefs::ImplicitPreference;

/// A queue entry: either a complete implicit preference (join path ending in
/// a selection) or a partial join-only path still being expanded.
struct Candidate {
  double doi = 0.0;  // composed doi of the conditions present so far
  bool complete = false;
  ImplicitPreference pref;        // valid when complete
  std::vector<AtomicJoin> joins;  // the path so far (also set when complete)
  std::string tie_break;          // deterministic ordering among equal dois

  std::string TailRelation() const {
    return joins.empty() ? pref.selection.relation : joins.back().to_relation;
  }
};

struct CandidateLess {
  bool operator()(const Candidate& a, const Candidate& b) const {
    if (a.doi != b.doi) return a.doi < b.doi;  // max-heap by doi
    return a.tie_break > b.tie_break;
  }
};

double ComposeJoins(const std::vector<AtomicJoin>& joins,
                    prefs::PathComposition mode) {
  std::vector<double> dois;
  dois.reserve(joins.size());
  for (const AtomicJoin& j : joins) dois.push_back(j.doi);
  if (dois.empty()) return 1.0;
  return prefs::ComposePathDoi(dois, mode);
}

bool PathAcyclicWith(const std::vector<AtomicJoin>& joins,
                     const std::string& anchor, const AtomicJoin& next) {
  if (joins.empty()) {
    return !EqualsIgnoreCase(anchor, next.to_relation);
  }
  if (EqualsIgnoreCase(anchor, next.to_relation)) return false;
  for (const AtomicJoin& j : joins) {
    if (EqualsIgnoreCase(j.to_relation, next.to_relation)) return false;
  }
  return true;
}

}  // namespace

StatusOr<PreferenceSpaceResult> ExtractPreferenceSpace(
    const sql::SelectQuery& q, const prefs::PersonalizationGraph& graph,
    const estimation::ParameterEstimator& estimator,
    const PreferenceSpaceOptions& options) {
  CQP_FAILPOINT("space.extract");

  PreferenceSpaceResult result;
  result.query = q;
  result.conjunction_model = options.conjunction_model;
  CQP_ASSIGN_OR_RETURN(result.base, estimator.EstimateBase(q));

  // Anchor relations: the relations of Q (deduplicated).
  std::set<std::string> anchors;
  for (const sql::TableRef& t : q.from) anchors.insert(ToUpper(t.relation));

  std::priority_queue<Candidate, std::vector<Candidate>, CandidateLess> qp;

  // Seed with the atomic preferences attached to Q's relations.
  for (const std::string& anchor : anchors) {
    for (const AtomicSelection* sel : graph.SelectionsFrom(anchor)) {
      Candidate c;
      c.complete = true;
      c.pref.selection = *sel;
      c.pref.doi = sel->doi;
      c.doi = sel->doi;
      c.tie_break = c.pref.ConditionString();
      qp.push(std::move(c));
    }
    if (options.max_path_joins == 0) continue;
    for (const AtomicJoin* join : graph.JoinsFrom(anchor)) {
      if (EqualsIgnoreCase(join->to_relation, anchor)) continue;
      Candidate c;
      c.complete = false;
      c.joins = {*join};
      c.doi = ComposeJoins(c.joins, options.path_composition);
      c.tie_break = join->ConditionString();
      qp.push(std::move(c));
    }
  }

  std::set<std::string> seen_conditions;
  std::vector<ScoredPreference> prefs;
  static const catalog::ConstraintSet kNoConstraints;
  const catalog::ConstraintSet& constraints =
      options.constraints != nullptr ? *options.constraints : kNoConstraints;

  while (!qp.empty() && prefs.size() < options.max_k) {
    Candidate c = qp.top();
    qp.pop();

    // Candidates pop in non-increasing doi order, so once the best
    // remaining doi is below the floor nothing else qualifies.
    if (c.doi <= options.min_doi) break;

    if (c.complete) {
      std::string key = ToUpper(c.pref.ConditionString());
      if (!seen_conditions.insert(key).second) continue;

      // Pre-search semantic pruning: a preference whose branch provably
      // contradicts Q's own conjuncts or the integrity constraints can only
      // produce a vacuous branch — keep it out of P (it occupies no
      // max_k slot either; the next-best candidate takes its place).
      if (options.constraint_prune &&
          PreferenceContradictsQuery(q, c.pref, constraints)) {
        ++result.constraint_pruned;
        continue;
      }

      CQP_ASSIGN_OR_RETURN(PreferenceEstimate est,
                           estimator.EstimatePreference(result.base, c.pref));
      ScoredPreference scored;
      scored.pref = c.pref;
      scored.pref.doi = c.doi;
      scored.doi = c.doi;
      scored.cost_ms = est.cost_ms;
      scored.size = est.size;
      scored.selectivity = est.selectivity;
      prefs.push_back(std::move(scored));
      continue;
    }

    const std::string tail = c.TailRelation();
    const std::string anchor = c.joins.front().from_relation;
    for (const AtomicSelection* sel : graph.SelectionsFrom(tail)) {
      Candidate next;
      next.complete = true;
      next.joins = c.joins;
      next.pref.joins = c.joins;
      next.pref.selection = *sel;
      next.pref.doi = next.pref.ComputeDoi(options.path_composition);
      next.doi = next.pref.doi;
      next.tie_break = next.pref.ConditionString();
      qp.push(std::move(next));
    }
    if (c.joins.size() < options.max_path_joins) {
      for (const AtomicJoin* join : graph.JoinsFrom(tail)) {
        if (!PathAcyclicWith(c.joins, anchor, *join)) continue;
        Candidate next;
        next.complete = false;
        next.joins = c.joins;
        next.joins.push_back(*join);
        next.doi = ComposeJoins(next.joins, options.path_composition);
        next.tie_break = join->ConditionString();
        qp.push(std::move(next));
      }
    }
  }

  // P is already in non-increasing doi order; make the order canonical for
  // ties (stable by extraction order is fine and deterministic).
  result.prefs = std::move(prefs);
  if (options.build_cost_size_vectors) {
    BuildPointerVectors(result.prefs, &result.D, &result.C, &result.S);
  } else {
    result.D.resize(result.prefs.size());
    for (size_t i = 0; i < result.prefs.size(); ++i) {
      result.D[i] = static_cast<int32_t>(i);
    }
  }
  return result;
}

bool PreferenceContradictsQuery(const sql::SelectQuery& q,
                                const ImplicitPreference& pref,
                                const catalog::ConstraintSet& constraints) {
  // Mirror construct::BuildSubQuery's shape without building it: the base
  // FROM aliases plus one fresh alias per path relation, the base WHERE
  // conjuncts plus the preference's final selection on the path tail (the
  // join edges contribute nothing to the single-attribute range analysis).
  rewrite::AliasMap aliases;
  for (const sql::TableRef& t : q.from) {
    aliases[ToUpper(t.EffectiveAlias())] = ToUpper(t.relation);
  }
  std::string tail_alias;
  for (const sql::TableRef& t : q.from) {
    if (EqualsIgnoreCase(t.relation, pref.AnchorRelation())) {
      tail_alias = ToUpper(t.EffectiveAlias());
      break;
    }
  }
  if (tail_alias.empty()) return false;  // not related to Q; nothing to prove
  for (size_t j = 0; j < pref.joins.size(); ++j) {
    tail_alias = StrFormat("P%zu_%s", j,
                           ToUpper(pref.joins[j].to_relation).c_str());
    aliases[tail_alias] = ToUpper(pref.joins[j].to_relation);
  }
  std::vector<sql::Predicate> conjuncts = q.where;
  conjuncts.push_back(sql::Predicate::Selection(
      sql::ColumnRef{tail_alias, pref.selection.attribute}, pref.selection.op,
      pref.selection.value));
  return rewrite::ConjunctsUnsatisfiable(conjuncts, aliases, constraints);
}

bool PrunedByProblem(const ScoredPreference& pref,
                     const cqp::ProblemSpec& problem) {
  // Monotone constraint pruning: a preference whose own sub-query violates
  // the cost bound (Formula 7) or whose size already undershoots smin
  // (Formula 8) can never appear in a feasible personalized query.
  if (problem.cmax_ms && pref.cost_ms > *problem.cmax_ms) return true;
  if (problem.smin && pref.size < *problem.smin) return true;
  return false;
}

PreferenceSpaceResult PruneSpaceForProblem(const PreferenceSpaceResult& space,
                                           const cqp::ProblemSpec& problem) {
  PreferenceSpaceResult view;
  view.query = space.query;
  view.base = space.base;
  view.conjunction_model = space.conjunction_model;
  view.constraint_pruned = space.constraint_pruned;
  view.prefs.reserve(space.prefs.size());
  for (const ScoredPreference& p : space.prefs) {
    if (!PrunedByProblem(p, problem)) view.prefs.push_back(p);
  }
  // Filtering a doi-descending list keeps it doi-descending, so the view
  // satisfies the D = identity requirement of the search algorithms. C/S are
  // rebuilt only when the source space carried them (build_cost_size_vectors).
  if (!space.C.empty()) {
    BuildPointerVectors(view.prefs, &view.D, &view.C, &view.S);
  } else {
    view.D.resize(view.prefs.size());
    for (size_t i = 0; i < view.prefs.size(); ++i) {
      view.D[i] = static_cast<int32_t>(i);
    }
  }
  return view;
}

StatusOr<PreferenceSpaceResult> ExtractPreferenceSpace(
    const sql::SelectQuery& q, const prefs::PersonalizationGraph& graph,
    const estimation::ParameterEstimator& estimator,
    const cqp::ProblemSpec& problem, const PreferenceSpaceOptions& options) {
  CQP_RETURN_IF_ERROR(problem.Validate());
  CQP_ASSIGN_OR_RETURN(PreferenceSpaceResult unpruned,
                       ExtractPreferenceSpace(q, graph, estimator, options));
  return PruneSpaceForProblem(unpruned, problem);
}

void BuildPointerVectors(const std::vector<ScoredPreference>& prefs,
                         std::vector<int32_t>* d, std::vector<int32_t>* c,
                         std::vector<int32_t>* s) {
  const size_t k = prefs.size();
  d->resize(k);
  for (size_t i = 0; i < k; ++i) (*d)[i] = static_cast<int32_t>(i);
  // P is doi-sorted by construction, but D is re-derived here so the
  // function is also correct for hand-built preference lists (tests).
  std::sort(d->begin(), d->end(), [&](int32_t a, int32_t b) {
    const auto& pa = prefs[static_cast<size_t>(a)];
    const auto& pb = prefs[static_cast<size_t>(b)];
    if (pa.doi != pb.doi) return pa.doi > pb.doi;
    return a < b;
  });
  *c = *d;
  std::sort(c->begin(), c->end(), [&](int32_t a, int32_t b) {
    const auto& pa = prefs[static_cast<size_t>(a)];
    const auto& pb = prefs[static_cast<size_t>(b)];
    if (pa.cost_ms != pb.cost_ms) return pa.cost_ms > pb.cost_ms;
    return a < b;
  });
  *s = *d;
  std::sort(s->begin(), s->end(), [&](int32_t a, int32_t b) {
    const auto& pa = prefs[static_cast<size_t>(a)];
    const auto& pb = prefs[static_cast<size_t>(b)];
    if (pa.size != pb.size) return pa.size < pb.size;
    return a < b;
  });
}

}  // namespace cqp::space
