#ifndef CQP_SPACE_PREPARED_SPACE_H_
#define CQP_SPACE_PREPARED_SPACE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cqp/problem.h"
#include "space/preference_space.h"

namespace cqp::estimation {
class BatchEvaluator;
}  // namespace cqp::estimation

namespace cqp::space {

/// Canonical key of the monotone prune bounds a ProblemSpec applies to a
/// preference space: the exact bit patterns of cmax_ms and smin ("-" when
/// absent). Two problems with equal keys admit exactly the same preferences
/// from any extracted space, so per-problem views — and the EvalCaches built
/// over them — may be shared across such problems.
std::string ProblemPruneKey(const cqp::ProblemSpec& problem);

/// The immutable, shareable artifact of the query-dependent half of the
/// pipeline (paper Fig. 3): one problem-independent extraction — P with its
/// estimated parameters and pointer vectors — from which the per-problem
/// views required by the search half are derived on demand.
///
/// A PreparedSpace is created once (Personalizer::Prepare, or directly from
/// an extraction result) and then only read: ForProblem() memoizes derived
/// views under a mutex but never changes what any earlier caller observed.
/// All returned pointers own their referent, so views stay valid even after
/// the PreparedSpace itself is destroyed — there is no lifetime footgun in
/// handing them to evaluators or keeping them inside PersonalizeResults.
class PreparedSpace {
 public:
  /// Wraps an extraction result (from the problem-free
  /// ExtractPreferenceSpace) as a shared immutable artifact.
  static std::shared_ptr<const PreparedSpace> Create(
      PreferenceSpaceResult unpruned);

  /// The full unpruned space (K = options.max_k-capped extraction).
  const std::shared_ptr<const PreferenceSpaceResult>& unpruned() const {
    return unpruned_;
  }
  size_t K() const { return unpruned_->K(); }

  /// The view of this space admitted by `problem`'s monotone bounds
  /// (PruneSpaceForProblem), memoized per ProblemPruneKey. When nothing is
  /// pruned the unpruned artifact itself is returned — no copy is made for
  /// the common unconstrained case.
  std::shared_ptr<const PreferenceSpaceResult> ForProblem(
      const cqp::ProblemSpec& problem) const;

  /// Shared SoA batch evaluator over the `problem`-admitted view
  /// (docs/simd.md), memoized per ProblemPruneKey next to the view itself
  /// so concurrent solves of equal-bound problems reuse one set of arrays.
  /// Returns nullptr when the admitted space does not fit a uint64 state
  /// mask (K >= 64). The returned pointer keeps the view it was built
  /// over alive.
  std::shared_ptr<const estimation::BatchEvaluator> BatchForProblem(
      const cqp::ProblemSpec& problem) const;

  /// Number of distinct pruned views materialized so far (diagnostics).
  size_t view_count() const;

 private:
  explicit PreparedSpace(PreferenceSpaceResult unpruned)
      : unpruned_(std::make_shared<const PreferenceSpaceResult>(
            std::move(unpruned))) {}

  std::shared_ptr<const PreferenceSpaceResult> unpruned_;
  mutable std::mutex mu_;
  mutable std::map<std::string, std::shared_ptr<const PreferenceSpaceResult>>
      views_;
  mutable std::map<std::string,
                   std::shared_ptr<const estimation::BatchEvaluator>>
      batch_evals_;
};

}  // namespace cqp::space

#endif  // CQP_SPACE_PREPARED_SPACE_H_
