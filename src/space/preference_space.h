#ifndef CQP_SPACE_PREFERENCE_SPACE_H_
#define CQP_SPACE_PREFERENCE_SPACE_H_

#include <cstdint>
#include <vector>

#include "catalog/constraints.h"
#include "common/status.h"
#include "cqp/problem.h"
#include "estimation/estimate.h"
#include "estimation/evaluator.h"
#include "prefs/graph.h"
#include "sql/ast.h"

namespace cqp::space {

/// Tuning knobs of the preference-space extraction.
struct PreferenceSpaceOptions {
  /// Maximum number of preferences extracted (the paper's K).
  size_t max_k = 20;
  /// Maximum number of join edges on an implicit-preference path.
  size_t max_path_joins = 3;
  /// How dois compose along a path (Formula 1; paper uses product).
  prefs::PathComposition path_composition = prefs::PathComposition::kProduct;
  /// How dois of conjunctions combine (Formula 3; paper uses Formula 10).
  /// Recorded in the result so downstream state evaluation agrees.
  prefs::ConjunctionModel conjunction_model =
      prefs::ConjunctionModel::kNoisyOr;
  /// Preferences with doi <= this are never extracted (doi 0 expresses
  /// "no interest" in the model).
  double min_doi = 0.0;
  /// If false, only the doi vector D is produced (the paper's
  /// D_PrefSelTime configuration in Fig. 12(b)); if true, the cost and
  /// size vectors C and S are ranked as well (C_PrefSelTime).
  bool build_cost_size_vectors = true;
  /// Pre-search semantic pruning (docs/rewriting.md): a candidate whose
  /// integrated branch would provably contradict the query's own conjuncts
  /// or the catalog constraints is never admitted to P — it could only ever
  /// produce a vacuous (zero-row) union branch, and excluding it shrinks K
  /// before the search starts. The flag is part of the plan-cache config
  /// key; the constraint-set revision joins the key separately.
  bool constraint_prune = true;
  /// Integrity constraints consulted by the pruning pass; nullptr means
  /// "no catalog constraints" (query-self-contradictions are still caught).
  /// Borrowed for the duration of the extraction call only.
  const catalog::ConstraintSet* constraints = nullptr;
};

/// The output of the Preference Space module (paper Fig. 3): the set P of
/// candidate preferences related to Q, with the pointer vectors D, C, S.
struct PreferenceSpaceResult {
  sql::SelectQuery query;                 ///< the original query Q
  estimation::QueryBaseEstimate base;     ///< estimated cost/size of Q
  std::vector<estimation::ScoredPreference> prefs;  ///< P, doi-descending
  /// Conjunction model the space was extracted under (used by evaluators).
  prefs::ConjunctionModel conjunction_model =
      prefs::ConjunctionModel::kNoisyOr;

  /// Builds a StateEvaluator over this preference space. `cache`, when
  /// given, memoizes full evaluations; it must hold entries for this
  /// (query, profile, prune-bounds) triple only and must outlive the
  /// evaluator. The evaluator borrows `prefs` — it is only callable on an
  /// lvalue space that outlives it (calling on a temporary is a compile
  /// error; the deep copy that used to make that silent is gone).
  estimation::StateEvaluator MakeEvaluator(
      estimation::EvalCache* cache = nullptr) const& {
    estimation::StateEvaluator evaluator(base, prefs, conjunction_model);
    evaluator.set_cache(cache);
    return evaluator;
  }
  estimation::StateEvaluator MakeEvaluator(
      estimation::EvalCache* cache = nullptr) const&& = delete;

  /// Pointer vectors (0-based indices into `prefs`):
  /// D: doi descending (identity by construction, kept for symmetry),
  /// C: cost(Q ∧ p) descending, S: size(Q ∧ p) ascending.
  std::vector<int32_t> D;
  std::vector<int32_t> C;
  std::vector<int32_t> S;

  /// Candidates rejected by the pre-search constraint pruning pass (they
  /// occupied no slot of max_k). Copied into every per-problem view.
  uint64_t constraint_pruned = 0;

  size_t K() const { return prefs.size(); }
};

/// Builds the pointer vectors of §4.4 for a preference list:
/// D by doi descending, C by cost(Q ∧ p) descending, S by size(Q ∧ p)
/// ascending (ties broken by P index for determinism). Reproduces the
/// paper's Table 2 example exactly (see space_test). Note: the search
/// algorithms additionally require P itself to be doi-sorted (D =
/// identity), which ExtractPreferenceSpace guarantees; this function also
/// accepts unsorted lists for testing the vectors in isolation.
void BuildPointerVectors(const std::vector<estimation::ScoredPreference>& prefs,
                         std::vector<int32_t>* d, std::vector<int32_t>* c,
                         std::vector<int32_t>* s);

/// Extracts the preference space for query `q` from `graph`, independent of
/// any concrete ProblemSpec.
///
/// Implements the best-first traversal of Fig. 3: candidates are expanded in
/// decreasing doi order (valid because f⊗ is non-increasing in path length,
/// Formula 2) and join paths are kept acyclic. Constraint handling is NOT
/// done here: cmax/smin pruning is problem-dependent, so it happens when a
/// per-problem view is derived (PruneSpaceForProblem / PreparedSpace::
/// ForProblem). Hoisting it out makes one extraction valid for all six
/// Table 1 problem classes and lets the result be cached and shared.
StatusOr<PreferenceSpaceResult> ExtractPreferenceSpace(
    const sql::SelectQuery& q, const prefs::PersonalizationGraph& graph,
    const estimation::ParameterEstimator& estimator,
    const PreferenceSpaceOptions& options = PreferenceSpaceOptions());

/// True when `pref` can never appear in a feasible state of `problem`:
/// cost(Q∧p) > cmax (state cost sums sub-query costs, Formula 6) or
/// size(Q∧p) < smin (state size only shrinks as selectivities multiply,
/// Formula 8). Both tests are monotone, so dropping such a preference never
/// removes a feasible solution.
bool PrunedByProblem(const estimation::ScoredPreference& pref,
                     const cqp::ProblemSpec& problem);

/// True when integrating `pref` into `q` yields a union branch whose
/// conjuncts (q's WHERE plus the preference's final selection, under the
/// domain/implication constraints of the involved relations) are provably
/// unsatisfiable — the branch would return zero rows on every
/// constraint-valid database. Used by the pre-search pruning pass and
/// exposed for the fuzz harness's vacuity oracle (a pruned preference's
/// branch must execute to zero rows).
bool PreferenceContradictsQuery(const sql::SelectQuery& q,
                                const prefs::ImplicitPreference& pref,
                                const catalog::ConstraintSet& constraints);

/// Derives the per-problem view of an extracted space: preferences pruned
/// by `problem`'s monotone bounds are dropped, survivors are reindexed
/// (doi order — and hence D = identity — is preserved, since filtering a
/// doi-sorted sequence keeps it sorted) and the C/S pointer vectors are
/// rebuilt. The view is itself a PreferenceSpaceResult, so every search
/// algorithm runs on it unchanged.
PreferenceSpaceResult PruneSpaceForProblem(const PreferenceSpaceResult& space,
                                           const cqp::ProblemSpec& problem);

/// Legacy single-problem entry point: unpruned extraction followed by
/// PruneSpaceForProblem. Equivalent to the pre-refactor behavior except
/// that `options.max_k` now caps the space BEFORE pruning (a candidate the
/// problem rejects still occupies its doi-ranked slot, exactly as it does
/// on the prepared path — both paths must agree bit for bit).
StatusOr<PreferenceSpaceResult> ExtractPreferenceSpace(
    const sql::SelectQuery& q, const prefs::PersonalizationGraph& graph,
    const estimation::ParameterEstimator& estimator,
    const cqp::ProblemSpec& problem,
    const PreferenceSpaceOptions& options = PreferenceSpaceOptions());

}  // namespace cqp::space

#endif  // CQP_SPACE_PREFERENCE_SPACE_H_
