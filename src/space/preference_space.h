#ifndef CQP_SPACE_PREFERENCE_SPACE_H_
#define CQP_SPACE_PREFERENCE_SPACE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "cqp/problem.h"
#include "estimation/estimate.h"
#include "estimation/evaluator.h"
#include "prefs/graph.h"
#include "sql/ast.h"

namespace cqp::space {

/// Tuning knobs of the preference-space extraction.
struct PreferenceSpaceOptions {
  /// Maximum number of preferences extracted (the paper's K).
  size_t max_k = 20;
  /// Maximum number of join edges on an implicit-preference path.
  size_t max_path_joins = 3;
  /// How dois compose along a path (Formula 1; paper uses product).
  prefs::PathComposition path_composition = prefs::PathComposition::kProduct;
  /// How dois of conjunctions combine (Formula 3; paper uses Formula 10).
  /// Recorded in the result so downstream state evaluation agrees.
  prefs::ConjunctionModel conjunction_model =
      prefs::ConjunctionModel::kNoisyOr;
  /// Preferences with doi <= this are never extracted (doi 0 expresses
  /// "no interest" in the model).
  double min_doi = 0.0;
  /// If false, only the doi vector D is produced (the paper's
  /// D_PrefSelTime configuration in Fig. 12(b)); if true, the cost and
  /// size vectors C and S are ranked as well (C_PrefSelTime).
  bool build_cost_size_vectors = true;
};

/// The output of the Preference Space module (paper Fig. 3): the set P of
/// candidate preferences related to Q, with the pointer vectors D, C, S.
struct PreferenceSpaceResult {
  sql::SelectQuery query;                 ///< the original query Q
  estimation::QueryBaseEstimate base;     ///< estimated cost/size of Q
  std::vector<estimation::ScoredPreference> prefs;  ///< P, doi-descending
  /// Conjunction model the space was extracted under (used by evaluators).
  prefs::ConjunctionModel conjunction_model =
      prefs::ConjunctionModel::kNoisyOr;

  /// Builds a StateEvaluator over this preference space. `cache`, when
  /// given, memoizes full evaluations; it must hold entries for this
  /// (query, profile) pair only and must outlive the evaluator.
  estimation::StateEvaluator MakeEvaluator(
      estimation::EvalCache* cache = nullptr) const {
    estimation::StateEvaluator evaluator(base, prefs, conjunction_model);
    evaluator.set_cache(cache);
    return evaluator;
  }

  /// Pointer vectors (0-based indices into `prefs`):
  /// D: doi descending (identity by construction, kept for symmetry),
  /// C: cost(Q ∧ p) descending, S: size(Q ∧ p) ascending.
  std::vector<int32_t> D;
  std::vector<int32_t> C;
  std::vector<int32_t> S;

  size_t K() const { return prefs.size(); }
};

/// Builds the pointer vectors of §4.4 for a preference list:
/// D by doi descending, C by cost(Q ∧ p) descending, S by size(Q ∧ p)
/// ascending (ties broken by P index for determinism). Reproduces the
/// paper's Table 2 example exactly (see space_test). Note: the search
/// algorithms additionally require P itself to be doi-sorted (D =
/// identity), which ExtractPreferenceSpace guarantees; this function also
/// accepts unsorted lists for testing the vectors in isolation.
void BuildPointerVectors(const std::vector<estimation::ScoredPreference>& prefs,
                         std::vector<int32_t>* d, std::vector<int32_t>* c,
                         std::vector<int32_t>* s);

/// Extracts the preference space for query `q` from `graph`.
///
/// Implements the best-first traversal of Fig. 3: candidates are expanded in
/// decreasing doi order (valid because f⊗ is non-increasing in path length,
/// Formula 2), join paths are kept acyclic, and candidates that can never
/// appear in a feasible personalized query under `problem`'s constraints are
/// pruned (cost(Q∧p) > cmax, or size(Q∧p) < smin — both monotone).
///
/// Deviation from the paper's pseudocode: a candidate failing the
/// constraints is *skipped* rather than terminating extraction, because cost
/// and size are not monotone in doi (the queue order); the paper leaves
/// these "details of such optimizations" unspecified.
StatusOr<PreferenceSpaceResult> ExtractPreferenceSpace(
    const sql::SelectQuery& q, const prefs::PersonalizationGraph& graph,
    const estimation::ParameterEstimator& estimator,
    const cqp::ProblemSpec& problem,
    const PreferenceSpaceOptions& options = PreferenceSpaceOptions());

}  // namespace cqp::space

#endif  // CQP_SPACE_PREFERENCE_SPACE_H_
