#include "space/prepared_space.h"

#include <bit>
#include <cstdint>
#include <utility>

#include "common/str_util.h"

namespace cqp::space {

namespace {

std::string BoundBits(const std::optional<double>& bound) {
  if (!bound.has_value()) return "-";
  return StrFormat("%llx", static_cast<unsigned long long>(
                               std::bit_cast<uint64_t>(*bound)));
}

}  // namespace

std::string ProblemPruneKey(const cqp::ProblemSpec& problem) {
  return "c" + BoundBits(problem.cmax_ms) + ":s" + BoundBits(problem.smin);
}

std::shared_ptr<const PreparedSpace> PreparedSpace::Create(
    PreferenceSpaceResult unpruned) {
  return std::shared_ptr<const PreparedSpace>(
      new PreparedSpace(std::move(unpruned)));
}

std::shared_ptr<const PreferenceSpaceResult> PreparedSpace::ForProblem(
    const cqp::ProblemSpec& problem) const {
  if (!problem.cmax_ms.has_value() && !problem.smin.has_value()) {
    return unpruned_;  // no bound can prune: the full space IS the view
  }
  const std::string key = ProblemPruneKey(problem);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(key);
  if (it != views_.end()) return it->second;
  PreferenceSpaceResult view = PruneSpaceForProblem(*unpruned_, problem);
  std::shared_ptr<const PreferenceSpaceResult> stored =
      view.prefs.size() == unpruned_->prefs.size()
          ? unpruned_  // bounds admitted everything: share, don't duplicate
          : std::make_shared<const PreferenceSpaceResult>(std::move(view));
  views_.emplace(key, stored);
  return stored;
}

size_t PreparedSpace::view_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.size();
}

}  // namespace cqp::space
