#include "space/prepared_space.h"

#include <bit>
#include <cstdint>
#include <utility>

#include "common/str_util.h"
#include "estimation/batch_evaluator.h"

namespace cqp::space {

namespace {

/// Owner of a shared BatchEvaluator: the evaluator borrows the view's
/// preference vector, so the two must live and die together. Handed out
/// via an aliasing shared_ptr pointing at `batch`.
struct BatchHolder {
  std::shared_ptr<const PreferenceSpaceResult> view;
  estimation::BatchEvaluator batch;

  explicit BatchHolder(std::shared_ptr<const PreferenceSpaceResult> v)
      : view(std::move(v)),
        batch(view->base, view->prefs, view->conjunction_model) {}
};

std::string BoundBits(const std::optional<double>& bound) {
  if (!bound.has_value()) return "-";
  return StrFormat("%llx", static_cast<unsigned long long>(
                               std::bit_cast<uint64_t>(*bound)));
}

}  // namespace

std::string ProblemPruneKey(const cqp::ProblemSpec& problem) {
  return "c" + BoundBits(problem.cmax_ms) + ":s" + BoundBits(problem.smin);
}

std::shared_ptr<const PreparedSpace> PreparedSpace::Create(
    PreferenceSpaceResult unpruned) {
  return std::shared_ptr<const PreparedSpace>(
      new PreparedSpace(std::move(unpruned)));
}

std::shared_ptr<const PreferenceSpaceResult> PreparedSpace::ForProblem(
    const cqp::ProblemSpec& problem) const {
  if (!problem.cmax_ms.has_value() && !problem.smin.has_value()) {
    return unpruned_;  // no bound can prune: the full space IS the view
  }
  const std::string key = ProblemPruneKey(problem);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(key);
  if (it != views_.end()) return it->second;
  PreferenceSpaceResult view = PruneSpaceForProblem(*unpruned_, problem);
  std::shared_ptr<const PreferenceSpaceResult> stored =
      view.prefs.size() == unpruned_->prefs.size()
          ? unpruned_  // bounds admitted everything: share, don't duplicate
          : std::make_shared<const PreferenceSpaceResult>(std::move(view));
  views_.emplace(key, stored);
  return stored;
}

std::shared_ptr<const estimation::BatchEvaluator>
PreparedSpace::BatchForProblem(const cqp::ProblemSpec& problem) const {
  std::shared_ptr<const PreferenceSpaceResult> view = ForProblem(problem);
  if (view->prefs.size() >= 64) return nullptr;
  const std::string key = ProblemPruneKey(problem);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = batch_evals_.find(key);
  if (it != batch_evals_.end()) return it->second;
  auto holder = std::make_shared<BatchHolder>(std::move(view));
  std::shared_ptr<const estimation::BatchEvaluator> batch(holder,
                                                          &holder->batch);
  batch_evals_.emplace(key, batch);
  return batch;
}

size_t PreparedSpace::view_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.size();
}

}  // namespace cqp::space
