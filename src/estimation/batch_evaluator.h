#ifndef CQP_ESTIMATION_BATCH_EVALUATOR_H_
#define CQP_ESTIMATION_BATCH_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "estimation/batch_kernel_impl.h"
#include "estimation/estimate.h"
#include "estimation/evaluator.h"
#include "prefs/doi.h"

namespace cqp::estimation {

/// Structure-of-arrays batch evaluation of Formulas 6/8/10 for a whole
/// frontier of sibling states at once (docs/simd.md).
///
/// Where StateEvaluator walks one IndexSet at a time through pointer-rich
/// ScoredPreference structs, BatchEvaluator copies the admitted space into
/// contiguous per-preference arrays at construction ("Prepare time" — a
/// shared instance rides on space::PreparedSpace) and evaluates N sibling
/// states per call through a SIMD kernel: lanes are states, the preference
/// sequence is walked in canonical ascending P-index order, and per-lane
/// membership masks select which lanes each update applies to.
///
/// Parity contract: every lane executes exactly the floating-point op
/// sequence of the scalar StateEvaluator chain (EvaluateBits /
/// ExtendWith), so results are bit-for-bit identical to the scalar oracle
/// — the differential harness compares with operator==, not a tolerance.
/// Kernels must therefore never reassociate, fuse (FMA) or reorder the
/// per-lane arithmetic; see batch_kernel_impl.h.
///
/// Kernel selection happens once per construction: AVX2 (4 lanes) when
/// compiled in (CQP_ENABLE_AVX2) and the CPU reports it, else SSE2
/// (2 lanes) on x86-64, else the portable scalar instantiation of the
/// same template. Setting CQP_FORCE_SCALAR_EVAL=1 in the environment
/// forces the scalar kernel regardless (differential testing).
///
/// Like StateEvaluator, the preference vector is BORROWED and must
/// outlive this object; the rvalue overload is deleted. All evaluation
/// entry points are const and thread-safe (no mutable state), so one
/// instance may be shared across concurrent solves.
class BatchEvaluator {
 public:
  /// SoA result container. Arrays are padded up to the lane width; `n` is
  /// the logical lane count requested by the caller.
  struct Results {
    std::vector<double> doi;
    std::vector<double> cost_ms;
    std::vector<double> size;
    std::vector<uint32_t> count;
    size_t n = 0;

    StateParams Get(size_t i) const {
      StateParams s;
      s.doi = doi[i];
      s.cost_ms = cost_ms[i];
      s.size = size[i];
      s.count = count[i];
      return s;
    }
  };

  BatchEvaluator(const QueryBaseEstimate& base,
                 const std::vector<ScoredPreference>& prefs,
                 prefs::ConjunctionModel model =
                     prefs::ConjunctionModel::kNoisyOr);
  BatchEvaluator(const QueryBaseEstimate& base,
                 std::vector<ScoredPreference>&& prefs,
                 prefs::ConjunctionModel model =
                     prefs::ConjunctionModel::kNoisyOr) = delete;

  size_t K() const { return cost_ms_.size(); }
  const QueryBaseEstimate& base() const { return base_; }
  prefs::ConjunctionModel conjunction_model() const { return model_; }
  size_t lane_width() const { return kernel_.width; }
  const char* kernel_name() const { return kernel_.name; }

  /// Identity of the borrowed preference vector — callers holding a
  /// PreferenceSpaceResult use this to tell whether a shared artifact was
  /// built over the same (pruned) space before trusting it.
  const std::vector<ScoredPreference>* prefs_identity() const {
    return prefs_;
  }

  /// Parameters of the empty state (the original query).
  StateParams EmptyState() const;

  /// Scalar-identical O(1) incremental extension (used for frontier
  /// parents between batch calls; same expressions as
  /// StateEvaluator::ExtendWith).
  StateParams ExtendWith(const StateParams& parent, int32_t i) const;

  /// Evaluates `n` arbitrary subsets given as P-index bitmasks, each in
  /// canonical ascending P-index order from the empty state. Requires
  /// K() < 64.
  void EvaluateMasks(const uint64_t* member_bits, size_t n,
                     Results* out) const;

  /// Evaluates `n` sibling states: lane l is `parent` extended with
  /// { seq[j] : bit j of lane_masks[l] }, applied in sequence order.
  /// `seq` holds distinct P indices not in the parent; seq_len <= 64.
  void EvaluateSequence(const StateParams& parent, const int32_t* seq,
                        size_t seq_len, const uint64_t* lane_masks, size_t n,
                        Results* out) const;

  /// Evaluates `n` single-preference extensions of `parent`: lane l is
  /// parent ⊕ pref_idx[l] (bit-identical to ExtendWith per lane).
  void ExtendBatch(const StateParams& parent, const int32_t* pref_idx,
                   size_t n, Results* out) const;

  /// Lanes the kernel actually runs for `n` logical lanes (padding burns
  /// roundup(n, width) - n lanes; SearchMetrics::frontier_lanes_wasted).
  size_t PaddedLanes(size_t n) const {
    return (n + kernel_.width - 1) / kernel_.width * kernel_.width;
  }

  // Log-domain companions of the SoA arrays, precomputed at construction:
  // log(selectivity) and log1p(-doi). Feasibility pre-screens can sum
  // these instead of multiplying probabilities (size and noisy-or doi
  // bounds become additive); the exact-parity kernels do not use them.
  const std::vector<double>& log_selectivity() const {
    return log_selectivity_;
  }
  const std::vector<double>& log1p_neg_doi() const { return log1p_neg_doi_; }

 private:
  void RunKernel(internal::KernelArgs args, size_t n, Results* out) const;

  QueryBaseEstimate base_;
  const std::vector<ScoredPreference>* prefs_;  ///< borrowed, never null
  prefs::ConjunctionModel model_;
  internal::KernelChoice kernel_;
  // The SoA mirror of *prefs_ (contiguous, indexed by P index).
  std::vector<double> cost_ms_;
  std::vector<double> selectivity_;
  std::vector<double> doi_;
  std::vector<double> one_minus_doi_;
  std::vector<double> log_selectivity_;
  std::vector<double> log1p_neg_doi_;
  std::vector<int32_t> identity_seq_;  ///< 0..K-1, EvaluateMasks' sequence
};

}  // namespace cqp::estimation

#endif  // CQP_ESTIMATION_BATCH_EVALUATOR_H_
