// Four-lane AVX2 instantiation of the batch-evaluation kernel template.
//
// This is the ONLY translation unit compiled with -mavx2; it must stay
// free of code reachable on non-AVX2 machines (dispatch happens in
// batch_evaluator.cc via __builtin_cpu_supports). It is compiled with
// -ffp-contract=off so `1.0 - a*b` can never fuse into an FMA — fusing
// would change the last ulp and break the bit-for-bit parity contract
// with the scalar StateEvaluator (docs/simd.md).

#include <immintrin.h>

#include "estimation/batch_kernel_impl.h"

namespace cqp::estimation::internal {
namespace {

struct Avx2Traits {
  static constexpr size_t kWidth = 4;
  using D = __m256d;
  using I = __m256i;
  using M = __m256d;

  static D Broadcast(double v) { return _mm256_set1_pd(v); }
  static I BroadcastI(int64_t v) { return _mm256_set1_epi64x(v); }
  static I LoadMasks(const uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static M TestBit(I bits, size_t j) {
    const __m256i bit =
        _mm256_set1_epi64x(static_cast<int64_t>(uint64_t{1} << j));
    return _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(bits, bit), bit));
  }
  static M CountIsZero(I count) {
    return _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(count, _mm256_setzero_si256()));
  }
  static D Select(M m, D t, D f) { return _mm256_blendv_pd(f, t, m); }
  static D ZeroWhere(M m, D v) { return _mm256_andnot_pd(m, v); }
  static D Add(D x, D y) { return _mm256_add_pd(x, y); }
  static D Sub(D x, D y) { return _mm256_sub_pd(x, y); }
  static D Mul(D x, D y) { return _mm256_mul_pd(x, y); }
  static D Min(D x, D y) { return _mm256_min_pd(x, y); }
  static I MaskSubI(I count, M m) {
    return _mm256_sub_epi64(count, _mm256_castpd_si256(m));
  }
  static void Store(double* p, D v) { _mm256_storeu_pd(p, v); }
  static void StoreCount(uint32_t* p, I count) {
    alignas(32) uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), count);
    p[0] = static_cast<uint32_t>(tmp[0]);
    p[1] = static_cast<uint32_t>(tmp[1]);
    p[2] = static_cast<uint32_t>(tmp[2]);
    p[3] = static_cast<uint32_t>(tmp[3]);
  }
};

}  // namespace

KernelChoice GetAvx2Kernel() {
  return {&EvalSequenceImpl<Avx2Traits>, Avx2Traits::kWidth, "avx2"};
}

}  // namespace cqp::estimation::internal
