#ifndef CQP_ESTIMATION_EVALUATOR_H_
#define CQP_ESTIMATION_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "common/index_set.h"
#include "estimation/estimate.h"
#include "prefs/doi.h"
#include "prefs/preference.h"

namespace cqp::estimation {

class EvalCache;

/// A preference admitted into the preference space P, together with its
/// estimated per-sub-query parameters.
struct ScoredPreference {
  prefs::ImplicitPreference pref;
  double doi = 0.0;          ///< composed doi of the (implicit) preference
  double cost_ms = 0.0;      ///< cost(Q ∧ pref) of the sub-query
  double size = 0.0;         ///< size(Q ∧ pref)
  double selectivity = 1.0;  ///< size / size(Q)
};

/// The three query parameters of a personalized-query state (§4.1).
struct StateParams {
  double doi = 0.0;
  double cost_ms = 0.0;
  double size = 0.0;
  uint32_t count = 0;  ///< number of integrated preferences (group size)
};

/// Computes StateParams for subsets of P, both from scratch and
/// incrementally (the partial orders of Formulas 4/7/8 make incremental
/// computation possible — paper §4.3).
///
/// Conventions:
///  * the empty state is the original query: doi 0, cost(Q), size(Q);
///  * cost of a non-empty state is Σ cost(Q ∧ p_i) over members
///    (Formula 6): the base relations are re-scanned by every sub-query;
///  * size is size(Q) × Π selectivity_i;
///  * doi follows the configured ConjunctionModel (default Formula 10).
///
/// The evaluator BORROWS the preference array — each ScoredPreference embeds
/// a SQL AST, and evaluators are built per Solve() rung, so copying here was
/// the pipeline's hottest allocation. The borrowed vector (usually the prefs
/// of a shared PreferenceSpaceResult artifact) must outlive the evaluator
/// and must not be resized while it is alive; the rvalue overload is deleted
/// so a temporary can never bind silently.
class StateEvaluator {
 public:
  StateEvaluator(const QueryBaseEstimate& base,
                 const std::vector<ScoredPreference>& prefs,
                 prefs::ConjunctionModel model =
                     prefs::ConjunctionModel::kNoisyOr);
  StateEvaluator(const QueryBaseEstimate& base,
                 std::vector<ScoredPreference>&& prefs,
                 prefs::ConjunctionModel model =
                     prefs::ConjunctionModel::kNoisyOr) = delete;

  size_t K() const { return prefs_->size(); }
  const std::vector<ScoredPreference>& prefs() const { return *prefs_; }
  const ScoredPreference& pref(size_t i) const { return (*prefs_)[i]; }
  const QueryBaseEstimate& base() const { return base_; }
  prefs::ConjunctionModel conjunction_model() const { return model_; }

  /// Parameters of the empty state (the original query).
  StateParams EmptyState() const;

  /// Parameters of the state with every preference of P (the "supreme"
  /// personalized query; its cost is the paper's Supreme Cost).
  StateParams SupremeState() const;

  /// O(|subset|) evaluation. `subset` holds indices into P. Routed through
  /// the attached EvalCache (if any) when K < 64.
  StateParams Evaluate(const IndexSet& subset) const;

  /// Evaluate() for a Bits()-encoded subset. Members are integrated in
  /// ascending P-index order — the same order as Evaluate(IndexSet) — so
  /// both entry points produce bit-for-bit identical floating-point results
  /// (noisy-or composition is order-sensitive in the last ulp).
  StateParams EvaluateBits(uint64_t bits) const;

  /// EvaluateBits() through the attached cache. Sets `*cache_hit` (when
  /// non-null) so callers can bump their own SearchMetrics counters; the
  /// evaluator itself keeps no mutable tallies and stays const-thread-safe.
  StateParams EvaluateBitsCached(uint64_t bits, bool* cache_hit) const;

  /// O(1) incremental evaluation: `parent` extended with P-index `i`
  /// (which must not already be a member — not checked here).
  StateParams ExtendWith(const StateParams& parent, int32_t i) const;

  /// doi of a conjunction given by P-indices, under the configured model.
  double ConjunctionDoi(const IndexSet& subset) const;

  /// Attaches a memo shared by every full evaluation this evaluator does.
  /// The cache must outlive the evaluator and must only hold entries for
  /// this evaluator's (query, profile) pair. nullptr detaches.
  void set_cache(EvalCache* cache) { cache_ = cache; }
  EvalCache* cache() const { return cache_; }

 private:
  QueryBaseEstimate base_;
  const std::vector<ScoredPreference>* prefs_;  ///< borrowed, never null
  prefs::ConjunctionModel model_;
  EvalCache* cache_ = nullptr;
};

}  // namespace cqp::estimation

#endif  // CQP_ESTIMATION_EVALUATOR_H_
