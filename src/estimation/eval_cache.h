#ifndef CQP_ESTIMATION_EVAL_CACHE_H_
#define CQP_ESTIMATION_EVAL_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "estimation/evaluator.h"

namespace cqp::estimation {

/// Memo of full state evaluations, keyed by IndexSet::Bits() (K < 64 makes
/// the key a single uint64_t).
///
/// Scope and invalidation: every entry is a pure function of the
/// (query, profile) pair that produced the StateEvaluator — StateParams
/// depend only on the base estimate and the scored preferences. A cache is
/// therefore safe to share across algorithms and across requests for the
/// SAME (query, profile), and must be Clear()ed (or replaced) the moment
/// either changes. Personalizer creates one cache per request by default
/// and lets callers pass a longer-lived one when they know the pair is
/// stable (see PersonalizeRequest::eval_cache).
///
/// Thread safety: fully thread-safe; read-mostly workloads take a shared
/// lock. The map is bounded — Insert is a no-op once max_entries is
/// reached (Exhaustive can touch 2^K subsets) — so memory stays capped and
/// eviction never invalidates a previously returned value.
class EvalCache {
 public:
  static constexpr size_t kDefaultMaxEntries = 1u << 18;  // ~256k states

  explicit EvalCache(size_t max_entries = kDefaultMaxEntries);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Copies the entry for `bits` into `*out` and returns true on a hit.
  bool Find(uint64_t bits, StateParams* out) const;

  /// Stores `params` under `bits`. No-op when full; last writer wins on a
  /// duplicate key (all writers compute identical values, so this is safe).
  void Insert(uint64_t bits, const StateParams& params);

  /// Drops every entry. Call when the (query, profile) pair changes.
  void Clear();

  size_t size() const;
  size_t max_entries() const { return max_entries_; }

 private:
  const size_t max_entries_;
  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, StateParams> map_;
};

}  // namespace cqp::estimation

#endif  // CQP_ESTIMATION_EVAL_CACHE_H_
