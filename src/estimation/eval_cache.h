#ifndef CQP_ESTIMATION_EVAL_CACHE_H_
#define CQP_ESTIMATION_EVAL_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "estimation/evaluator.h"

namespace cqp::estimation {

/// Memo of full state evaluations, keyed by IndexSet::Bits() (K < 64 makes
/// the key a single uint64_t).
///
/// Scope and invalidation: every entry is a pure function of the
/// (query, profile) pair that produced the StateEvaluator — StateParams
/// depend only on the base estimate and the scored preferences. A cache is
/// therefore safe to share across algorithms and across requests for the
/// SAME (query, profile), and must be Clear()ed (or replaced) the moment
/// either changes. Personalizer creates one cache per request by default
/// and lets callers pass a longer-lived one when they know the pair is
/// stable (see PersonalizeRequest::eval_cache).
///
/// Thread safety: fully thread-safe; read-mostly workloads take a shared
/// lock. The map is bounded — Insert is a no-op once max_entries is
/// reached (Exhaustive can touch 2^K subsets) — so memory stays capped and
/// eviction never invalidates a previously returned value.
class EvalCache {
 public:
  static constexpr size_t kDefaultMaxEntries = 1u << 18;  // ~256k states

  explicit EvalCache(size_t max_entries = kDefaultMaxEntries);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Copies the entry for `bits` into `*out` and returns true on a hit.
  bool Find(uint64_t bits, StateParams* out) const;

  /// Stores `params` under `bits`. No-op when full; last writer wins on a
  /// duplicate key (all writers compute identical values, so this is safe).
  void Insert(uint64_t bits, const StateParams& params);

  /// Drops every entry. Call when the (query, profile) pair changes.
  void Clear();

  size_t size() const;
  size_t max_entries() const { return max_entries_; }

 private:
  const size_t max_entries_;
  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, StateParams> map_;
};

/// Keyed collection of EvalCaches for a long-running service: one cache per
/// (profile id, query key) pair, created lazily and shared across requests
/// of the same pair. The query key is an opaque caller-chosen string (the
/// personalization server uses the raw SQL text — conservative: textually
/// different but equivalent queries get separate caches, which is always
/// safe).
///
/// Invalidation granularity: a profile update must drop every cache built
/// under that profile, whatever the query — EvalCache alone only supports
/// per-(query, profile) invalidation via Clear(). InvalidateProfile()
/// detaches all of a profile's caches at once; requests already holding a
/// shared_ptr keep their (still internally consistent) memo until they
/// finish, while every later GetOrCreate() sees a fresh cache.
///
/// Thread safety: fully thread-safe (shared_mutex; lookups take the shared
/// lock on the hit path).
class EvalCacheRegistry {
 public:
  explicit EvalCacheRegistry(
      size_t max_entries_per_cache = EvalCache::kDefaultMaxEntries);

  EvalCacheRegistry(const EvalCacheRegistry&) = delete;
  EvalCacheRegistry& operator=(const EvalCacheRegistry&) = delete;

  /// Returns the cache for (profile_id, query_key), creating it on first
  /// use. Never null.
  std::shared_ptr<EvalCache> GetOrCreate(const std::string& profile_id,
                                         const std::string& query_key);

  /// Drops every cache registered under `profile_id` (all query keys).
  /// Returns the number of caches dropped. In-flight holders of the old
  /// shared_ptrs are unaffected; new lookups start cold.
  size_t InvalidateProfile(const std::string& profile_id);

  /// Drops every cache for every profile.
  void Clear();

  /// Number of live (profile, query) caches.
  size_t size() const;

  /// Profile ids currently holding at least one cache (sorted).
  std::vector<std::string> ProfileIds() const;

 private:
  const size_t max_entries_per_cache_;
  mutable std::shared_mutex mu_;
  /// profile id -> query key -> cache. The two-level map makes
  /// InvalidateProfile a single erase.
  std::map<std::string, std::map<std::string, std::shared_ptr<EvalCache>>>
      caches_;
};

}  // namespace cqp::estimation

#endif  // CQP_ESTIMATION_EVAL_CACHE_H_
