#ifndef CQP_ESTIMATION_ESTIMATE_H_
#define CQP_ESTIMATION_ESTIMATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "exec/exec_stats.h"
#include "prefs/preference.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace cqp::estimation {

/// Estimated parameters of the original query Q.
struct QueryBaseEstimate {
  double cost_ms = 0.0;  ///< b × Σ blocks of Q's relations (Formula in §7.1)
  double size = 0.0;     ///< estimated result cardinality of Q
};

/// Estimated parameters of one candidate preference p relative to Q.
struct PreferenceEstimate {
  double cost_ms = 0.0;      ///< cost(Q ∧ p): one sub-query of the rewriting
  double size = 0.0;         ///< size(Q ∧ p) = size(Q) × selectivity
  double selectivity = 1.0;  ///< fraction of Q's rows satisfying p, in (0,1]
};

/// Cardinality/cost estimation for queries and preference sub-queries.
///
/// Deliberately coarse (paper §2/§4.3): CQP "can afford a much less detailed
/// cost model than a typical query optimizer". Cost is block I/O only
/// (Formula 6 + §7.1); cardinalities use uniform-tail MCV selectivities and
/// 1/max(ndv) equi-join selectivity with independence between conjuncts.
class ParameterEstimator {
 public:
  /// `db` must be Analyze()d and must outlive the estimator.
  ParameterEstimator(const storage::Database* db,
                     exec::CostModelParams params = exec::CostModelParams());

  /// Estimates cost and result size of the plain query `q`.
  StatusOr<QueryBaseEstimate> EstimateBase(const sql::SelectQuery& q) const;

  /// Estimates cost/size/selectivity of integrating `pref` into a query
  /// with base estimate `base`.
  StatusOr<PreferenceEstimate> EstimatePreference(
      const QueryBaseEstimate& base,
      const prefs::ImplicitPreference& pref) const;

  /// Cost of a sub-query consisting of the base query plus the relations
  /// introduced by `joins` (the cost part of Formula 6/§7.1). Used by the
  /// Preference Space module to prune partial join paths.
  StatusOr<double> PathCost(const QueryBaseEstimate& base,
                            const std::vector<prefs::AtomicJoin>& joins) const;

  /// Selectivity of one selection predicate against the stats of its
  /// relation (exposed for tests).
  StatusOr<double> SelectionSelectivity(const std::string& relation,
                                        const std::string& attribute,
                                        catalog::CompareOp op,
                                        const catalog::Value& value) const;

  const exec::CostModelParams& cost_params() const { return params_; }

 private:
  StatusOr<const catalog::RelationStats*> StatsFor(
      const std::string& relation) const;

  const storage::Database* db_;
  exec::CostModelParams params_;
};

}  // namespace cqp::estimation

#endif  // CQP_ESTIMATION_ESTIMATE_H_
