#include "estimation/eval_cache.h"

#include <mutex>

namespace cqp::estimation {

EvalCache::EvalCache(size_t max_entries) : max_entries_(max_entries) {}

bool EvalCache::Find(uint64_t bits, StateParams* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = map_.find(bits);
  if (it == map_.end()) return false;
  *out = it->second;
  return true;
}

void EvalCache::Insert(uint64_t bits, const StateParams& params) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (map_.size() >= max_entries_ && map_.find(bits) == map_.end()) return;
  map_[bits] = params;
}

void EvalCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  map_.clear();
}

size_t EvalCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return map_.size();
}

EvalCacheRegistry::EvalCacheRegistry(size_t max_entries_per_cache)
    : max_entries_per_cache_(max_entries_per_cache) {}

std::shared_ptr<EvalCache> EvalCacheRegistry::GetOrCreate(
    const std::string& profile_id, const std::string& query_key) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto profile_it = caches_.find(profile_id);
    if (profile_it != caches_.end()) {
      auto query_it = profile_it->second.find(query_key);
      if (query_it != profile_it->second.end()) return query_it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::shared_ptr<EvalCache>& slot = caches_[profile_id][query_key];
  if (slot == nullptr) {
    slot = std::make_shared<EvalCache>(max_entries_per_cache_);
  }
  return slot;
}

size_t EvalCacheRegistry::InvalidateProfile(const std::string& profile_id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = caches_.find(profile_id);
  if (it == caches_.end()) return 0;
  size_t dropped = it->second.size();
  caches_.erase(it);
  return dropped;
}

void EvalCacheRegistry::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  caches_.clear();
}

size_t EvalCacheRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, by_query] : caches_) n += by_query.size();
  return n;
}

std::vector<std::string> EvalCacheRegistry::ProfileIds() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(caches_.size());
  for (const auto& [id, by_query] : caches_) ids.push_back(id);
  return ids;
}

}  // namespace cqp::estimation
