#include "estimation/eval_cache.h"

#include <mutex>

namespace cqp::estimation {

EvalCache::EvalCache(size_t max_entries) : max_entries_(max_entries) {}

bool EvalCache::Find(uint64_t bits, StateParams* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = map_.find(bits);
  if (it == map_.end()) return false;
  *out = it->second;
  return true;
}

void EvalCache::Insert(uint64_t bits, const StateParams& params) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (map_.size() >= max_entries_ && map_.find(bits) == map_.end()) return;
  map_[bits] = params;
}

void EvalCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  map_.clear();
}

size_t EvalCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return map_.size();
}

}  // namespace cqp::estimation
