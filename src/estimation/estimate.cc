#include "estimation/estimate.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/str_util.h"

namespace cqp::estimation {

namespace {

using catalog::RelationStats;

/// Equi-join selectivity 1 / max(ndv(a), ndv(b)) (System-R).
double JoinSelectivity(const catalog::AttributeStats& a,
                       const catalog::AttributeStats& b) {
  uint64_t ndv = std::max<uint64_t>(std::max(a.ndv(), b.ndv()), 1);
  return 1.0 / static_cast<double>(ndv);
}

}  // namespace

ParameterEstimator::ParameterEstimator(const storage::Database* db,
                                       exec::CostModelParams params)
    : db_(db), params_(params) {
  CQP_CHECK(db_ != nullptr);
}

StatusOr<const RelationStats*> ParameterEstimator::StatsFor(
    const std::string& relation) const {
  return db_->GetStats(relation);
}

StatusOr<QueryBaseEstimate> ParameterEstimator::EstimateBase(
    const sql::SelectQuery& q) const {
  CQP_FAILPOINT("estimation.base");
  if (q.from.empty()) return InvalidArgument("query has no FROM clause");

  QueryBaseEstimate out;
  double card = 1.0;
  // Stats per FROM entry, aligned with q.from.
  std::vector<const RelationStats*> stats;
  stats.reserve(q.from.size());
  for (const sql::TableRef& t : q.from) {
    CQP_ASSIGN_OR_RETURN(const RelationStats* s, StatsFor(t.relation));
    stats.push_back(s);
    out.cost_ms += static_cast<double>(s->blocks) * params_.millis_per_block;
    card *= static_cast<double>(s->row_count);
  }

  // Resolve a column reference to (from-index, attribute stats).
  auto resolve = [&](const sql::ColumnRef& col)
      -> StatusOr<const catalog::AttributeStats*> {
    for (size_t t = 0; t < q.from.size(); ++t) {
      if (!col.qualifier.empty() &&
          !EqualsIgnoreCase(q.from[t].EffectiveAlias(), col.qualifier)) {
        continue;
      }
      CQP_ASSIGN_OR_RETURN(const storage::Table* table,
                           db_->GetTable(q.from[t].relation));
      auto idx = table->schema().AttributeIndex(col.attribute);
      if (!idx.ok()) {
        if (!col.qualifier.empty()) return idx.status();
        continue;
      }
      return &stats[t]->attributes[static_cast<size_t>(*idx)];
    }
    return NotFound("column " + col.ToSql());
  };

  for (const sql::Predicate& p : q.where) {
    if (p.kind == sql::Predicate::Kind::kSelection) {
      CQP_ASSIGN_OR_RETURN(const catalog::AttributeStats* s, resolve(p.lhs));
      card *= s->Selectivity(p.op, p.literal);
    } else {
      CQP_ASSIGN_OR_RETURN(const catalog::AttributeStats* l, resolve(p.lhs));
      CQP_ASSIGN_OR_RETURN(const catalog::AttributeStats* r, resolve(p.rhs));
      if (p.op == catalog::CompareOp::kEq) {
        card *= JoinSelectivity(*l, *r);
      } else {
        card *= 1.0 / 3.0;  // theta join magic fraction
      }
    }
  }
  out.size = std::max(card, 0.0);
  return out;
}

StatusOr<PreferenceEstimate> ParameterEstimator::EstimatePreference(
    const QueryBaseEstimate& base,
    const prefs::ImplicitPreference& pref) const {
  CQP_FAILPOINT("estimation.preference");
  PreferenceEstimate out;

  // Cost: the sub-query re-scans all of Q's relations plus every relation
  // the preference path introduces (each under a fresh alias).
  CQP_ASSIGN_OR_RETURN(out.cost_ms, PathCost(base, pref.joins));

  // Selectivity: walk the path accumulating join fan-out, then apply the
  // final selection. The product is capped at 1 because the rewriting
  // intersects with Q's (distinct) result, which can only shrink it
  // (Formula 8 requires monotonicity).
  double factor = 1.0;
  for (const prefs::AtomicJoin& j : pref.joins) {
    CQP_ASSIGN_OR_RETURN(const storage::Table* from,
                         db_->GetTable(j.from_relation));
    CQP_ASSIGN_OR_RETURN(const RelationStats* from_stats,
                         StatsFor(j.from_relation));
    CQP_ASSIGN_OR_RETURN(const storage::Table* to,
                         db_->GetTable(j.to_relation));
    CQP_ASSIGN_OR_RETURN(const RelationStats* to_stats,
                         StatsFor(j.to_relation));
    CQP_ASSIGN_OR_RETURN(int fi,
                         from->schema().AttributeIndex(j.from_attribute));
    CQP_ASSIGN_OR_RETURN(int ti, to->schema().AttributeIndex(j.to_attribute));
    const catalog::AttributeStats& fs =
        from_stats->attributes[static_cast<size_t>(fi)];
    const catalog::AttributeStats& ts =
        to_stats->attributes[static_cast<size_t>(ti)];
    // Expected matches per source row: |to| × joinsel.
    factor *= static_cast<double>(to_stats->row_count) *
              JoinSelectivity(fs, ts);
  }
  CQP_ASSIGN_OR_RETURN(
      double sel, SelectionSelectivity(pref.selection.relation,
                                       pref.selection.attribute,
                                       pref.selection.op,
                                       pref.selection.value));
  factor *= sel;
  out.selectivity = std::clamp(factor, 0.0, 1.0);
  out.size = base.size * out.selectivity;
  return out;
}

StatusOr<double> ParameterEstimator::PathCost(
    const QueryBaseEstimate& base,
    const std::vector<prefs::AtomicJoin>& joins) const {
  double cost = base.cost_ms;
  for (const prefs::AtomicJoin& j : joins) {
    CQP_ASSIGN_OR_RETURN(const RelationStats* s, StatsFor(j.to_relation));
    cost += static_cast<double>(s->blocks) * params_.millis_per_block;
  }
  return cost;
}

StatusOr<double> ParameterEstimator::SelectionSelectivity(
    const std::string& relation, const std::string& attribute,
    catalog::CompareOp op, const catalog::Value& value) const {
  CQP_ASSIGN_OR_RETURN(const storage::Table* table, db_->GetTable(relation));
  CQP_ASSIGN_OR_RETURN(const RelationStats* stats, StatsFor(relation));
  CQP_ASSIGN_OR_RETURN(int idx, table->schema().AttributeIndex(attribute));
  return stats->attributes[static_cast<size_t>(idx)].Selectivity(op, value);
}

}  // namespace cqp::estimation
