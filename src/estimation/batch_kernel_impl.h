#ifndef CQP_ESTIMATION_BATCH_KERNEL_IMPL_H_
#define CQP_ESTIMATION_BATCH_KERNEL_IMPL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace cqp::estimation::internal {

/// Argument block of one batch-evaluation call. One "lane" is one sibling
/// state of the frontier; the preference sequence is shared by every lane
/// and each lane's membership is a bitmask over sequence *positions*
/// (bit j of lane_masks[l] set ⇔ lane l integrates seq[j]).
///
/// Kernels walk the sequence in order and apply the exact Formula 6/8/10
/// update of StateEvaluator::ExtendWith to the member lanes, so each lane
/// executes the same floating-point op sequence on the same values as the
/// scalar chain EmptyState()/parent → ExtendWith(seq[j0]) → ... — results
/// are bit-for-bit identical, not merely close (docs/simd.md).
struct KernelArgs {
  // SoA preference arrays, indexed by P index (BatchEvaluator owns them).
  const double* cost_ms = nullptr;
  const double* selectivity = nullptr;
  const double* doi = nullptr;
  const double* one_minus_doi = nullptr;
  // The shared extension sequence (P indices) and per-lane membership.
  const int32_t* seq = nullptr;
  size_t seq_len = 0;           ///< at most 64
  const uint64_t* lane_masks = nullptr;
  size_t n_lanes = 0;           ///< padded to a multiple of the lane width
  // The parent state, broadcast into every lane.
  double parent_doi = 0.0;
  double parent_cost_ms = 0.0;
  double parent_size = 0.0;
  uint32_t parent_count = 0;
  bool sum_capped = false;      ///< ConjunctionModel::kSumCapped vs kNoisyOr
  // SoA outputs, n_lanes entries each.
  double* out_doi = nullptr;
  double* out_cost_ms = nullptr;
  double* out_size = nullptr;
  uint32_t* out_count = nullptr;
};

using KernelFn = void (*)(const KernelArgs&);

/// A resolved kernel: function pointer, lane width, display name.
struct KernelChoice {
  KernelFn fn = nullptr;
  size_t width = 1;
  const char* name = "scalar";
};

/// The one kernel template. Every width — scalar, SSE2, AVX2 — is an
/// instantiation over a Traits pack so the arithmetic cannot drift between
/// them. Traits contract:
///   kWidth          lanes per pack
///   D / I / M       double pack, 64-bit int pack, lane-mask pack
///   Broadcast(x)    D of x in every lane
///   BroadcastI(v)   I of v in every lane
///   LoadMasks(p)    I from kWidth consecutive uint64 membership masks
///   TestBit(b, j)   M: all-ones lanes where bit j of the mask is set
///   CountIsZero(c)  M: all-ones lanes where the count is 0
///   Select(m, t, f) per-lane m ? t : f (m is all-ones/all-zeros)
///   ZeroWhere(m, v) per-lane m ? 0.0 : v
///   Add/Sub/Mul     lanewise double arithmetic
///   Min(a, b)       lanewise a < b ? a : b (matches _mm_min_pd and the
///                   scalar std::min(1.0, x) with 1.0 first)
///   MaskSubI(c, m)  c - (m reinterpreted as int64: -1 or 0) == c + member
///   Store(p, v) / StoreCount(p, c)
template <typename Traits>
void EvalSequenceImpl(const KernelArgs& a) {
  using D = typename Traits::D;
  using I = typename Traits::I;
  using M = typename Traits::M;
  const D one = Traits::Broadcast(1.0);
  const D parent_doi = Traits::Broadcast(a.parent_doi);
  const D parent_cost = Traits::Broadcast(a.parent_cost_ms);
  const D parent_size = Traits::Broadcast(a.parent_size);
  const I parent_count =
      Traits::BroadcastI(static_cast<int64_t>(a.parent_count));
  for (size_t lane = 0; lane < a.n_lanes; lane += Traits::kWidth) {
    const I bits = Traits::LoadMasks(a.lane_masks + lane);
    D doi = parent_doi;
    D cost = parent_cost;
    D size = parent_size;
    I count = parent_count;
    for (size_t j = 0; j < a.seq_len; ++j) {
      const size_t p = static_cast<size_t>(a.seq[j]);
      const M member = Traits::TestBit(bits, j);
      // Formula 6: the first member *replaces* the base-query cost.
      const M first = Traits::CountIsZero(count);
      const D cost_ext = Traits::Add(Traits::ZeroWhere(first, cost),
                                     Traits::Broadcast(a.cost_ms[p]));
      cost = Traits::Select(member, cost_ext, cost);
      // Formula 8: size multiplies by the member's selectivity.
      const D size_ext = Traits::Mul(size, Traits::Broadcast(a.selectivity[p]));
      size = Traits::Select(member, size_ext, size);
      // Formula 10 (noisy-or) or the capped-sum model.
      D doi_ext;
      if (a.sum_capped) {
        doi_ext = Traits::Min(Traits::Add(doi, Traits::Broadcast(a.doi[p])),
                              one);
      } else {
        doi_ext = Traits::Sub(
            one, Traits::Mul(Traits::Sub(one, doi),
                             Traits::Broadcast(a.one_minus_doi[p])));
      }
      doi = Traits::Select(member, doi_ext, doi);
      count = Traits::MaskSubI(count, member);
    }
    Traits::Store(a.out_doi + lane, doi);
    Traits::Store(a.out_cost_ms + lane, cost);
    Traits::Store(a.out_size + lane, size);
    Traits::StoreCount(a.out_count + lane, count);
  }
}

/// Portable width-1 instantiation: masks are uint64 bit patterns and the
/// blends are bitwise, so the scalar fallback is branch-free and literally
/// the same template as the SIMD kernels.
struct ScalarTraits {
  static constexpr size_t kWidth = 1;
  using D = double;
  using I = uint64_t;
  using M = uint64_t;  ///< 0 or ~0

  static uint64_t ToBits(double v) {
    uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
  }
  static double FromBits(uint64_t u) {
    double v;
    std::memcpy(&v, &u, sizeof(v));
    return v;
  }

  static D Broadcast(double v) { return v; }
  static I BroadcastI(int64_t v) { return static_cast<uint64_t>(v); }
  static I LoadMasks(const uint64_t* p) { return *p; }
  static M TestBit(I bits, size_t j) {
    return ((bits >> j) & 1u) != 0 ? ~uint64_t{0} : uint64_t{0};
  }
  static M CountIsZero(I count) {
    return count == 0 ? ~uint64_t{0} : uint64_t{0};
  }
  static D Select(M m, D t, D f) {
    return FromBits((m & ToBits(t)) | (~m & ToBits(f)));
  }
  static D ZeroWhere(M m, D v) { return FromBits(~m & ToBits(v)); }
  static D Add(D x, D y) { return x + y; }
  static D Sub(D x, D y) { return x - y; }
  static D Mul(D x, D y) { return x * y; }
  static D Min(D x, D y) { return x < y ? x : y; }
  static I MaskSubI(I count, M m) { return count - m; }
  static void Store(double* p, D v) { *p = v; }
  static void StoreCount(uint32_t* p, I count) {
    *p = static_cast<uint32_t>(count);
  }
};

}  // namespace cqp::estimation::internal

#endif  // CQP_ESTIMATION_BATCH_KERNEL_IMPL_H_
