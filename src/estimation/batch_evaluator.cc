#include "estimation/batch_evaluator.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace cqp::estimation {
namespace internal {

#if defined(CQP_HAVE_AVX2_KERNELS)
KernelChoice GetAvx2Kernel();  // batch_kernels_avx2.cc (own -mavx2 TU)
#endif

namespace {

#if defined(__SSE2__)
/// Two-lane SSE2 instantiation. SSE2 has no 64-bit integer compare, so
/// equality is emulated by comparing 32-bit halves and ANDing each half
/// with its swapped neighbour — all-ones only when both halves matched.
struct Sse2Traits {
  static constexpr size_t kWidth = 2;
  using D = __m128d;
  using I = __m128i;
  using M = __m128d;

  static __m128i Eq64(__m128i a, __m128i b) {
    const __m128i e32 = _mm_cmpeq_epi32(a, b);
    return _mm_and_si128(e32, _mm_shuffle_epi32(e32, _MM_SHUFFLE(2, 3, 0, 1)));
  }

  static D Broadcast(double v) { return _mm_set1_pd(v); }
  static I BroadcastI(int64_t v) { return _mm_set1_epi64x(v); }
  static I LoadMasks(const uint64_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static M TestBit(I bits, size_t j) {
    const __m128i bit =
        _mm_set1_epi64x(static_cast<int64_t>(uint64_t{1} << j));
    return _mm_castsi128_pd(Eq64(_mm_and_si128(bits, bit), bit));
  }
  static M CountIsZero(I count) {
    return _mm_castsi128_pd(Eq64(count, _mm_setzero_si128()));
  }
  static D Select(M m, D t, D f) {
    return _mm_or_pd(_mm_and_pd(m, t), _mm_andnot_pd(m, f));
  }
  static D ZeroWhere(M m, D v) { return _mm_andnot_pd(m, v); }
  static D Add(D x, D y) { return _mm_add_pd(x, y); }
  static D Sub(D x, D y) { return _mm_sub_pd(x, y); }
  static D Mul(D x, D y) { return _mm_mul_pd(x, y); }
  static D Min(D x, D y) { return _mm_min_pd(x, y); }
  static I MaskSubI(I count, M m) {
    return _mm_sub_epi64(count, _mm_castpd_si128(m));
  }
  static void Store(double* p, D v) { _mm_storeu_pd(p, v); }
  static void StoreCount(uint32_t* p, I count) {
    alignas(16) uint64_t tmp[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), count);
    p[0] = static_cast<uint32_t>(tmp[0]);
    p[1] = static_cast<uint32_t>(tmp[1]);
  }
};
#endif  // __SSE2__

bool ForceScalar() {
  const char* v = std::getenv("CQP_FORCE_SCALAR_EVAL");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

/// Resolved once per BatchEvaluator construction (not per process) so
/// tests can flip CQP_FORCE_SCALAR_EVAL between evaluators.
KernelChoice PickKernel() {
  if (ForceScalar()) {
    return {&EvalSequenceImpl<ScalarTraits>, ScalarTraits::kWidth,
            "scalar-forced"};
  }
#if defined(CQP_HAVE_AVX2_KERNELS) && (defined(__x86_64__) || defined(__i386__))
  if (__builtin_cpu_supports("avx2")) {
    return GetAvx2Kernel();
  }
#endif
#if defined(__SSE2__)
  return {&EvalSequenceImpl<Sse2Traits>, Sse2Traits::kWidth, "sse2"};
#else
  return {&EvalSequenceImpl<ScalarTraits>, ScalarTraits::kWidth, "scalar"};
#endif
}

}  // namespace
}  // namespace internal

BatchEvaluator::BatchEvaluator(const QueryBaseEstimate& base,
                               const std::vector<ScoredPreference>& prefs,
                               prefs::ConjunctionModel model)
    : base_(base),
      prefs_(&prefs),
      model_(model),
      kernel_(internal::PickKernel()) {
  const size_t k = prefs.size();
  cost_ms_.reserve(k);
  selectivity_.reserve(k);
  doi_.reserve(k);
  one_minus_doi_.reserve(k);
  log_selectivity_.reserve(k);
  log1p_neg_doi_.reserve(k);
  identity_seq_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const ScoredPreference& p = prefs[i];
    CQP_CHECK(prefs::IsValidDoi(p.doi));
    CQP_CHECK_GE(p.cost_ms, base_.cost_ms);
    CQP_CHECK_GE(p.selectivity, 0.0);
    CQP_CHECK_LE(p.selectivity, 1.0);
    cost_ms_.push_back(p.cost_ms);
    selectivity_.push_back(p.selectivity);
    doi_.push_back(p.doi);
    one_minus_doi_.push_back(1.0 - p.doi);
    log_selectivity_.push_back(std::log(p.selectivity));
    log1p_neg_doi_.push_back(std::log1p(-p.doi));
    identity_seq_.push_back(static_cast<int32_t>(i));
  }
}

StateParams BatchEvaluator::EmptyState() const {
  StateParams s;
  s.doi = 0.0;
  s.cost_ms = base_.cost_ms;
  s.size = base_.size;
  s.count = 0;
  return s;
}

StateParams BatchEvaluator::ExtendWith(const StateParams& parent,
                                       int32_t i) const {
  const size_t p = static_cast<size_t>(i);
  CQP_CHECK_LT(p, cost_ms_.size());
  StateParams s;
  // Same expressions as StateEvaluator::ExtendWith, for exact parity.
  s.cost_ms = (parent.count == 0 ? 0.0 : parent.cost_ms) + cost_ms_[p];
  s.size = parent.size * selectivity_[p];
  switch (model_) {
    case prefs::ConjunctionModel::kNoisyOr:
      s.doi = 1.0 - (1.0 - parent.doi) * one_minus_doi_[p];
      break;
    case prefs::ConjunctionModel::kSumCapped:
      s.doi = std::min(1.0, parent.doi + doi_[p]);
      break;
  }
  s.count = parent.count + 1;
  return s;
}

void BatchEvaluator::RunKernel(internal::KernelArgs args, size_t n,
                               Results* out) const {
  const size_t width = kernel_.width;
  const size_t padded = PaddedLanes(n);
  out->n = n;
  out->doi.resize(padded);
  out->cost_ms.resize(padded);
  out->size.resize(padded);
  out->count.resize(padded);
  args.cost_ms = cost_ms_.data();
  args.selectivity = selectivity_.data();
  args.doi = doi_.data();
  args.one_minus_doi = one_minus_doi_.data();
  args.sum_capped = model_ == prefs::ConjunctionModel::kSumCapped;
  args.out_doi = out->doi.data();
  args.out_cost_ms = out->cost_ms.data();
  args.out_size = out->size.data();
  args.out_count = out->count.data();
  const size_t full = n / width * width;
  if (full > 0) {
    internal::KernelArgs head = args;
    head.n_lanes = full;
    kernel_.fn(head);
  }
  if (full < n) {
    // The caller's mask array need not be padded: run the last partial
    // pack from a zero-padded stack copy (outputs are padded already).
    uint64_t tail_masks[8] = {0};
    CQP_CHECK_LE(width, sizeof(tail_masks) / sizeof(tail_masks[0]));
    for (size_t i = full; i < n; ++i) {
      tail_masks[i - full] = args.lane_masks[i];
    }
    internal::KernelArgs tail = args;
    tail.lane_masks = tail_masks;
    tail.n_lanes = width;
    tail.out_doi += full;
    tail.out_cost_ms += full;
    tail.out_size += full;
    tail.out_count += full;
    kernel_.fn(tail);
  }
}

void BatchEvaluator::EvaluateMasks(const uint64_t* member_bits, size_t n,
                                   Results* out) const {
  CQP_CHECK_LT(K(), size_t{64});
  const StateParams empty = EmptyState();
  internal::KernelArgs args;
  args.seq = identity_seq_.data();
  args.seq_len = identity_seq_.size();
  args.lane_masks = member_bits;
  args.parent_doi = empty.doi;
  args.parent_cost_ms = empty.cost_ms;
  args.parent_size = empty.size;
  args.parent_count = 0;
  RunKernel(args, n, out);
}

void BatchEvaluator::EvaluateSequence(const StateParams& parent,
                                      const int32_t* seq, size_t seq_len,
                                      const uint64_t* lane_masks, size_t n,
                                      Results* out) const {
  CQP_CHECK_LE(seq_len, size_t{64});
  internal::KernelArgs args;
  args.seq = seq;
  args.seq_len = seq_len;
  args.lane_masks = lane_masks;
  args.parent_doi = parent.doi;
  args.parent_cost_ms = parent.cost_ms;
  args.parent_size = parent.size;
  args.parent_count = parent.count;
  RunKernel(args, n, out);
}

void BatchEvaluator::ExtendBatch(const StateParams& parent,
                                 const int32_t* pref_idx, size_t n,
                                 Results* out) const {
  // One preference per lane needs a gather, not a shared sequence; the
  // scalar ExtendWith expressions are already O(1) per lane and the SoA
  // arrays keep them cache-friendly, so this path stays scalar.
  const size_t padded = PaddedLanes(n);
  out->n = n;
  out->doi.resize(padded);
  out->cost_ms.resize(padded);
  out->size.resize(padded);
  out->count.resize(padded);
  for (size_t l = 0; l < n; ++l) {
    const StateParams s = ExtendWith(parent, pref_idx[l]);
    out->doi[l] = s.doi;
    out->cost_ms[l] = s.cost_ms;
    out->size[l] = s.size;
    out->count[l] = s.count;
  }
}

}  // namespace cqp::estimation
