#include "estimation/evaluator.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "estimation/eval_cache.h"

namespace cqp::estimation {

StateEvaluator::StateEvaluator(const QueryBaseEstimate& base,
                               const std::vector<ScoredPreference>& prefs,
                               prefs::ConjunctionModel model)
    : base_(base), prefs_(&prefs), model_(model) {
  for (const ScoredPreference& p : *prefs_) {
    CQP_CHECK(prefs::IsValidDoi(p.doi));
    CQP_CHECK_GE(p.cost_ms, base_.cost_ms);
    CQP_CHECK_GE(p.selectivity, 0.0);
    CQP_CHECK_LE(p.selectivity, 1.0);
  }
}

StateParams StateEvaluator::EmptyState() const {
  StateParams s;
  s.doi = 0.0;
  s.cost_ms = base_.cost_ms;
  s.size = base_.size;
  s.count = 0;
  return s;
}

StateParams StateEvaluator::SupremeState() const {
  StateParams s = EmptyState();
  for (size_t i = 0; i < prefs_->size(); ++i) {
    s = ExtendWith(s, static_cast<int32_t>(i));
  }
  return s;
}

StateParams StateEvaluator::Evaluate(const IndexSet& subset) const {
  if (cache_ != nullptr && prefs_->size() < 64) {
    return EvaluateBitsCached(subset.Bits(), nullptr);
  }
  StateParams s = EmptyState();
  for (int32_t i : subset) {
    CQP_CHECK_LT(static_cast<size_t>(i), prefs_->size());
    s = ExtendWith(s, i);
  }
  return s;
}

StateParams StateEvaluator::EvaluateBits(uint64_t bits) const {
  StateParams s = EmptyState();
  while (bits != 0) {
    int32_t i = std::countr_zero(bits);
    CQP_CHECK_LT(static_cast<size_t>(i), prefs_->size());
    s = ExtendWith(s, i);
    bits &= bits - 1;
  }
  return s;
}

StateParams StateEvaluator::EvaluateBitsCached(uint64_t bits,
                                               bool* cache_hit) const {
  if (cache_ == nullptr) {
    if (cache_hit != nullptr) *cache_hit = false;
    return EvaluateBits(bits);
  }
  StateParams s;
  if (cache_->Find(bits, &s)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return s;
  }
  s = EvaluateBits(bits);
  cache_->Insert(bits, s);
  if (cache_hit != nullptr) *cache_hit = false;
  return s;
}

StateParams StateEvaluator::ExtendWith(const StateParams& parent,
                                       int32_t i) const {
  const ScoredPreference& p = (*prefs_)[static_cast<size_t>(i)];
  StateParams s;
  // Formula 6: the empty state's base-query cost is *replaced* by the first
  // sub-query's cost (which already includes scanning Q's relations).
  s.cost_ms = (parent.count == 0 ? 0.0 : parent.cost_ms) + p.cost_ms;
  s.size = parent.size * p.selectivity;
  switch (model_) {
    case prefs::ConjunctionModel::kNoisyOr:
      s.doi = 1.0 - (1.0 - parent.doi) * (1.0 - p.doi);
      break;
    case prefs::ConjunctionModel::kSumCapped:
      s.doi = std::min(1.0, parent.doi + p.doi);
      break;
  }
  s.count = parent.count + 1;
  return s;
}

double StateEvaluator::ConjunctionDoi(const IndexSet& subset) const {
  return Evaluate(subset).doi;
}

}  // namespace cqp::estimation
