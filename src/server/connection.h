#ifndef CQP_SERVER_CONNECTION_H_
#define CQP_SERVER_CONNECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/budget.h"

namespace cqp::server {

/// One accepted client socket. Owns the fd; thread-safe response writer
/// (the reader thread answers administrative ops inline while worker
/// threads stream personalize responses, so frames must not interleave).
///
/// The per-connection CancelToken is wired into every in-flight request's
/// SearchBudget: when the peer disappears, the reader cancels the token
/// and the searches unwind cooperatively instead of burning workers on
/// answers nobody will read.
class Connection {
 public:
  Connection(int fd, uint64_t id);
  ~Connection();  ///< closes the fd

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  uint64_t id() const { return id_; }

  CancelToken& cancel_token() { return cancel_; }

  /// Writes `line` plus '\n' atomically with respect to other WriteLine
  /// calls. Returns false once the peer is gone (EPIPE and friends); the
  /// error is latched, so later calls fail fast.
  bool WriteLine(const std::string& line);

  /// shutdown(SHUT_RDWR): unblocks a reader stuck in read() so the server
  /// can join it. The fd stays open until destruction.
  void Shutdown();

  /// True once the reader loop has exited (set by the server).
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  void MarkClosed() { closed_.store(true, std::memory_order_release); }

 private:
  const int fd_;
  const uint64_t id_;
  CancelToken cancel_;
  std::mutex write_mu_;
  bool write_failed_ = false;  ///< guarded by write_mu_
  std::atomic<bool> closed_{false};
};

}  // namespace cqp::server

#endif  // CQP_SERVER_CONNECTION_H_
