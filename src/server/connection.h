#ifndef CQP_SERVER_CONNECTION_H_
#define CQP_SERVER_CONNECTION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "common/budget.h"
#include "server/frame_decoder.h"

namespace cqp::server {

class EventLoop;

/// One accepted non-blocking client socket, owned by exactly one
/// EventLoop. All I/O state (frame decoder, write queue, epoll interest)
/// is loop-thread-only; worker threads interact solely through
/// WriteLine(), which posts the frame to the owning loop via its eventfd
/// wakeup when called off-thread.
///
/// The per-connection CancelToken is wired into every in-flight request's
/// SearchBudget: teardown cancels it, so searches for a vanished peer
/// unwind cooperatively instead of burning workers on answers nobody will
/// read.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  Connection(int fd, uint64_t id, EventLoop* loop, size_t max_frame_bytes);
  ~Connection();  ///< closes the fd

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  uint64_t id() const { return id_; }
  EventLoop* loop() const { return loop_; }

  CancelToken& cancel_token() { return cancel_; }

  /// Queues `line` plus '\n' for delivery, never interleaving frames. On
  /// the loop thread the frame is queued (and flushed unless inside a read
  /// batch — responses to coalesced requests leave in one writev); from a
  /// worker it is posted to the owning loop. Returns false once the
  /// connection is torn down; a post that loses the race with teardown is
  /// dropped there, which is indistinguishable from the peer vanishing a
  /// moment later.
  bool WriteLine(const std::string& line);

  /// True once the owning loop tore the connection down.
  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  friend class EventLoop;

  // --- everything below runs on the owning loop's thread only ---

  /// Drains the socket until EAGAIN (or EOF/error → teardown), feeding
  /// the frame decoder; dispatches complete frames through the loop's
  /// LineHandler. Applies read-side backpressure when the write queue
  /// crosses the watermark.
  void OnReadable();
  /// EPOLLOUT: the socket drained, continue flushing the write queue.
  void OnWritable();

  void QueueFrame(std::string frame);
  /// writev (sendmsg) as much of the write queue as the socket accepts;
  /// resumes paused reads under the watermark, tears down on write error
  /// or once drained with close_after_flush_ set.
  void FlushWrites();
  /// Reconciles desired epoll interest with what is registered.
  void SyncInterest();

  const int fd_;
  const uint64_t id_;
  EventLoop* const loop_;
  CancelToken cancel_;
  std::atomic<bool> closed_{false};

  FrameDecoder decoder_;
  std::deque<std::string> write_queue_;
  size_t write_offset_ = 0;  ///< bytes of write_queue_.front() already sent
  size_t queued_bytes_ = 0;  ///< total unsent bytes across the queue
  bool reg_read_ = true;     ///< EPOLLIN currently registered
  bool reg_write_ = false;   ///< EPOLLOUT currently registered
  bool read_paused_ = false; ///< backpressure: over the write watermark
  bool close_after_flush_ = false;
  bool in_read_batch_ = false;  ///< defer flushes until the read loop ends
};

}  // namespace cqp::server

#endif  // CQP_SERVER_CONNECTION_H_
