#ifndef CQP_SERVER_DURABLE_PROFILE_STORE_H_
#define CQP_SERVER_DURABLE_PROFILE_STORE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/profile_store.h"
#include "storage/journal/journal.h"
#include "storage/journal/snapshot.h"

namespace cqp::server {

/// Durability configuration for DurableProfileStore::Open.
struct DurabilityOptions {
  /// Directory holding `journal` and `snapshot`; created if missing.
  std::string dir;
  /// Group-commit window. 0 (the default) fsyncs inline on every mutation
  /// — strongest semantics (an error means the mutation was NOT applied).
  /// > 0 batches concurrent commits into one fsync every interval: each
  /// Put/Remove still blocks until its record is durable, but N writers
  /// share a single fsync.
  double group_commit_interval_ms = 0.0;
  /// Snapshot-compact the journal once it grows past this many bytes.
  uint64_t compact_threshold_bytes = 4ull << 20;
  /// File I/O goes through this filesystem; null = PosixFileSystem().
  /// Tests and the crash fuzzer pass a FaultyFileSystem.
  storage::FileSystem* fs = nullptr;
};

/// Crash-safe ProfileStore: every Put/Remove (including hot-reload puts)
/// is appended to a checksummed write-ahead journal before it mutates the
/// in-memory map, and Put/Remove return OK only once the record is fsynced
/// — a crash can lose at most mutations that were never acknowledged.
///
/// Startup replays `snapshot` (atomic, whole-file-checksummed) plus the
/// journal, truncating at the first torn or checksum-corrupt tail record
/// rather than refusing to start: a torn tail is the expected artifact of
/// a crash mid-append, and by the acknowledgement rule above the records
/// it can contain were never acknowledged. The persisted version counter
/// (snapshot header + per-record versions) keeps snapshot versions
/// monotonic across restarts, so version-keyed caches (EvalCacheRegistry,
/// PlanCache) can never confuse a pre-crash graph with a post-crash one.
///
/// Failure policy: any journal append or fsync error wedges the store —
/// mutations fail fast from then on (reads keep serving) until the process
/// reopens the store, which truncates the torn tail and resumes. This is
/// deliberate: after a failed write the journal tail is unknowable, and
/// after a failed fsync the kernel may have dropped dirty pages
/// ("fsyncgate"), so continuing to append would risk acknowledged data.
class DurableProfileStore : public ProfileStore {
 public:
  /// Opens (or creates) the store in options.dir and recovers its state.
  /// Fails on a corrupt snapshot (crashes cannot produce one — see
  /// snapshot.h) or unreadable directory; a torn journal tail is recovered
  /// from, not an error.
  static StatusOr<std::unique_ptr<DurableProfileStore>> Open(
      const storage::Database* db, DurabilityOptions options);

  ~DurableProfileStore() override;  ///< flushes and closes the journal

  /// fsyncs any buffered journal records now.
  Status Flush() override;

  /// Snapshot compaction: atomically writes the full current state to
  /// `snapshot` and truncates the journal. Runs automatically when the
  /// journal passes compact_threshold_bytes; callable explicitly.
  Status Compact();

  std::optional<DurabilityStats> durability_stats() const override;

  /// What recovery found at Open() time.
  struct RecoveryInfo {
    size_t snapshot_profiles = 0;  ///< restored from the snapshot
    size_t replayed_records = 0;   ///< journal records applied
    size_t skipped_records = 0;    ///< pre-snapshot records still in the journal
    size_t unloadable_profiles = 0;  ///< intact records that no longer validate
    bool torn_tail = false;
    uint64_t dropped_bytes = 0;
    double recovery_ms = 0.0;
  };
  const RecoveryInfo& recovery() const { return recovery_; }

  /// The full durable contents as (id, version, profile text), sorted by
  /// id — the oracle view used by tools/cqp_crashfuzz and the tests.
  std::vector<storage::journal::SnapshotEntry> Contents() const;

  /// True once a journal failure has made the store read-only.
  bool wedged() const;

 protected:
  Status WriteAheadLocked(const Mutation& mutation,
                          uint64_t* commit_token) override;
  Status WaitDurable(uint64_t commit_token) override;

 private:
  DurableProfileStore(const storage::Database* db, DurabilityOptions options);

  std::string JournalPath() const { return options_.dir + "/journal"; }
  std::string SnapshotPath() const { return options_.dir + "/snapshot"; }

  Status Recover();
  /// The compaction body; caller holds mu_ exclusively.
  Status CompactLocked();
  void FlusherLoop();
  /// Latches the wedge; caller holds commit_mu_.
  void WedgeLocked(const Status& status);

  const DurabilityOptions options_;
  storage::FileSystem* fs_;  ///< options_.fs or the posix filesystem
  RecoveryInfo recovery_;

  /// Profile texts mirroring graphs_ (same key set), guarded by mu_:
  /// compaction snapshots re-serialize from here instead of regenerating
  /// text from graphs.
  std::map<std::string, std::string> texts_;

  /// Serializes journal Sync()/swap against each other (appends are
  /// already serialized by mu_; File allows Append racing Sync).
  /// Lock order: mu_ → journal_io_mu_ → commit_mu_.
  std::mutex journal_io_mu_;
  std::unique_ptr<storage::journal::Writer> journal_;  ///< swap under mu_+io

  /// Group-commit state, guarded by commit_mu_.
  mutable std::mutex commit_mu_;
  std::condition_variable commit_cv_;   ///< durable_end_/epoch_/wedged_ changed
  std::condition_variable flusher_cv_;  ///< work for the flusher
  uint64_t appended_end_ = 0;  ///< journal bytes appended (commit tokens)
  uint64_t durable_end_ = 0;   ///< journal bytes known fsynced
  uint64_t epoch_ = 0;         ///< bumped by compaction (which is an fsync point)
  uint64_t commits_pending_ = 0;  ///< appends since the last fsync
  bool flush_requested_ = false;
  bool wedged_ = false;
  Status wedge_status_;
  bool stop_flusher_ = false;
  std::thread flusher_;

  /// Counters (relaxed; stats are advisory).
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> append_bytes_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> group_commits_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> snapshot_bytes_{0};
  std::atomic<uint64_t> journal_bytes_{0};  ///< current journal length
};

}  // namespace cqp::server

#endif  // CQP_SERVER_DURABLE_PROFILE_STORE_H_
