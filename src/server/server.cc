#include "server/server.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "space/prepared_space.h"

namespace cqp::server {

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Serializes `response`, guaranteeing the frame fits the protocol cap
/// the peer will enforce. An engine error echoing a huge query (e.g. the
/// SQL parser's `near "…"` context on a megabyte identifier) can push a
/// response past kMaxFrameBytes — the client would reject the frame and
/// see a hang instead of its typed error. Truncate the message first;
/// if the frame is somehow still oversized, degrade to a minimal typed
/// error with the same request id.
std::string SerializeResponseBounded(WireResponse response) {
  std::string frame = SerializeResponse(response);
  if (frame.size() <= kMaxFrameBytes) return frame;
  if (!response.status.ok()) {
    std::string clipped = response.status.message().substr(0, 1024);
    response.status =
        Status(response.status.code(), clipped + " ... [truncated]");
    frame = SerializeResponse(response);
    if (frame.size() <= kMaxFrameBytes) return frame;
  }
  WireResponse fallback;
  fallback.id = response.id;
  fallback.status = Internal("response exceeded the frame cap");
  return SerializeResponse(fallback);
}

size_t ResolveIoThreads(size_t requested) {
  if (requested != 0) return requested;
  size_t n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  // Past a handful of loops the bottleneck is the worker pool, not I/O;
  // more loops just fragment the admission budget.
  if (n > 8) n = 8;
  return n;
}

}  // namespace

Server::Server(const storage::Database* db, ProfileStore* profiles,
               ServerOptions options)
    : db_(db), profiles_(profiles), options_(std::move(options)) {
  CQP_CHECK(db_ != nullptr);
  CQP_CHECK(profiles_ != nullptr);
}

Server::~Server() { Stop(); }

AdmissionTotals Server::admission() const {
  std::vector<const AdmissionController*> slices;
  slices.reserve(loops_.size());
  for (const auto& loop : loops_) slices.push_back(&loop->admission());
  return AdmissionTotals(std::move(slices), &options_.admission);
}

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPrecondition("server already running");
  }
  const size_t num_loops = ResolveIoThreads(options_.io_threads);
  stats_.ConfigureLoops(num_loops);

  EventLoopOptions loop_options;
  loop_options.max_frame_bytes = kMaxFrameBytes;
  loop_options.write_queue_watermark_bytes =
      options_.write_queue_watermark_bytes;
  loop_options.write_queue_limit_bytes = options_.write_queue_limit_bytes;
  loop_options.so_sndbuf = options_.so_sndbuf;
  loop_options.admission =
      SliceAdmissionOptions(options_.admission, num_loops);

  loops_.clear();
  loops_.reserve(num_loops);
  for (size_t i = 0; i < num_loops; ++i) {
    loops_.push_back(
        std::make_unique<EventLoop>(i, loop_options, &stats_.loop(i)));
    // Loop 0 resolves an ephemeral port; the rest bind the same one via
    // SO_REUSEPORT so the kernel spreads connections across loops.
    Status listened =
        loops_[i]->Listen(options_.host, i == 0 ? options_.port : port_);
    if (!listened.ok()) {
      loops_.clear();
      return listened;
    }
    if (i == 0) port_ = loops_[0]->bound_port();
  }

  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  running_.store(true, std::memory_order_release);

  auto on_line = [this](const std::shared_ptr<Connection>& conn,
                        std::string&& line) {
    return HandleLine(conn, line);
  };
  auto on_open = [this](const std::shared_ptr<Connection>&) {
    stats_.OnConnectionOpened();
  };
  auto on_close = [this](const std::shared_ptr<Connection>&) {
    stats_.OnConnectionClosed();
  };
  auto on_oversize = [this](size_t cap) {
    stats_.OnProtocolError();
    WireResponse response;
    response.status =
        InvalidArgument("frame exceeds " + std::to_string(cap) + " bytes");
    return SerializeResponse(response);
  };
  for (size_t i = 0; i < num_loops; ++i) {
    loops_[i]->Start(on_line, on_open, on_close, on_oversize,
                     /*id_base=*/i + 1, /*id_step=*/num_loops);
  }
  if (options_.stats_interval_s > 0.0) {
    stats_thread_ = std::thread([this] { StatsLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // 1. Stop accepting; existing connections keep being served while
  // admitted work drains.
  for (auto& loop : loops_) loop->StopAccepting();
  if (stats_thread_.joinable()) stats_thread_.join();

  // 2. Drain: admitted requests get up to drain_deadline_ms to finish and
  // answer before we cancel them. Connected-but-idle clients do not hold
  // the drain open — only admitted work counts. The loops are still live
  // here, so responses posted by finishing workers flush to the wire.
  if (options_.drain_deadline_ms > 0.0) {
    Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               options_.drain_deadline_ms));
    AdmissionTotals totals = admission();
    while (totals.pending() > 0 && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  // 3. Stop the loops. Each runs its remaining posted tasks (late
  // responses get a final flush attempt), then tears every connection
  // down — cancelling its CancelToken so whatever outlived the drain
  // unwinds at the next ShouldStop() poll.
  for (auto& loop : loops_) loop->RequestStop();
  for (auto& loop : loops_) loop->Join();

  // 4. Drain the worker pool. Workers hold shared_ptr<Connection>; their
  // WriteLines fail fast (closed) or post to the stopped loops, where the
  // tasks accumulate harmlessly until the loops are destroyed.
  pool_.reset();
  loops_.clear();

  // 5. Make every acknowledged mutation durable before the process exits
  // (no-op for the in-memory store; inline-fsync durable stores have
  // nothing buffered either, but group commit may).
  Status flushed = profiles_->Flush();
  if (!flushed.ok()) {
    std::fprintf(stderr, "cqp_serve: journal flush on shutdown failed: %s\n",
                 flushed.ToString().c_str());
  }
}

bool Server::HandleLine(const std::shared_ptr<Connection>& conn,
                        const std::string& line) {
  StatusOr<WireRequest> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    // Malformed frames get a typed error response but do NOT close the
    // connection: one bad request must not kill a pipelining client's
    // other requests.
    stats_.OnProtocolError();
    WireResponse response;
    response.status = parsed.status();
    return conn->WriteLine(SerializeResponseBounded(std::move(response)));
  }
  WireRequest request = *std::move(parsed);
  switch (request.op) {
    case RequestOp::kPersonalize:
      HandlePersonalize(conn, std::move(request));
      return true;
    case RequestOp::kPing: {
      WireResponse response;
      response.id = request.id;
      response.extra = JsonValue::Object();
      response.extra.Set("pong", JsonValue::Bool(true));
      return conn->WriteLine(SerializeResponseBounded(std::move(response)));
    }
    case RequestOp::kStats: {
      WireResponse response;
      response.id = request.id;
      response.extra = StatsJson();
      return conn->WriteLine(SerializeResponseBounded(std::move(response)));
    }
    case RequestOp::kProfiles: {
      WireResponse response;
      response.id = request.id;
      response.extra = JsonValue::Object();
      JsonValue ids = JsonValue::Array();
      for (const std::string& id : profiles_->Ids()) {
        ids.Append(JsonValue::Str(id));
      }
      response.extra.Set("profiles", std::move(ids));
      return conn->WriteLine(SerializeResponseBounded(std::move(response)));
    }
    case RequestOp::kReload: {
      // Reload hits disk and rebuilds graphs — far too slow for a loop
      // thread (it used to only stall one blocking reader; here it would
      // stall every connection on this loop). Run it on the pool.
      pool_->Submit([this, conn, id = request.id] {
        WireResponse response;
        response.id = id;
        StatusOr<size_t> reloaded = profiles_->Reload();
        if (reloaded.ok()) {
          response.extra = JsonValue::Object();
          response.extra.Set(
              "reloaded", JsonValue::Number(static_cast<double>(*reloaded)));
        } else {
          response.status = reloaded.status();
        }
        conn->WriteLine(SerializeResponseBounded(std::move(response)));
      });
      return true;
    }
  }
  return true;
}

JsonValue Server::StatsJson() {
  auto num = [](auto v) { return JsonValue::Number(static_cast<double>(v)); };
  JsonValue out = stats_.ToJson();

  AdmissionTotals totals = admission();
  JsonValue admission = JsonValue::Object();
  admission.Set("pending", num(totals.pending()));
  admission.Set("max_pending", num(totals.options().max_pending));
  admission.Set("soft_pending", num(totals.options().soft_pending));
  out.Set("admission", std::move(admission));
  out.Set("io_threads", num(loops_.size()));

  construct::PlanCacheStats plan_stats = profiles_->plan_stats();
  JsonValue plans = JsonValue::Object();
  plans.Set("hits", num(plan_stats.hits));
  plans.Set("misses", num(plan_stats.misses));
  plans.Set("evictions", num(plan_stats.evictions));
  plans.Set("invalidations", num(plan_stats.invalidations));
  plans.Set("entries", num(plan_stats.entries));
  out.Set("plan_cache", std::move(plans));

  if (std::optional<DurabilityStats> ds = profiles_->durability_stats()) {
    JsonValue journal = JsonValue::Object();
    journal.Set("appends", num(ds->appends));
    journal.Set("append_bytes", num(ds->append_bytes));
    journal.Set("fsyncs", num(ds->fsyncs));
    journal.Set("group_commits", num(ds->group_commits));
    journal.Set("compactions", num(ds->compactions));
    journal.Set("journal_bytes", num(ds->journal_bytes));
    journal.Set("snapshot_bytes", num(ds->snapshot_bytes));
    journal.Set("wedged", JsonValue::Bool(ds->wedged));
    journal.Set("recovered_profiles", num(ds->recovered_profiles));
    journal.Set("replayed_records", num(ds->replayed_records));
    journal.Set("dropped_bytes", num(ds->dropped_bytes));
    journal.Set("torn_tail_recovered", JsonValue::Bool(ds->torn_tail_recovered));
    journal.Set("recovery_ms", JsonValue::Number(ds->recovery_ms));
    out.Set("journal", std::move(journal));
  }

  // The demand-paged tier, when the store is sharded: tier aggregates plus
  // one object per shard (paging counters + that shard's journal).
  if (std::optional<ShardTierStats> tier = profiles_->shard_stats()) {
    auto paging = [&num](const auto& s, JsonValue& obj) {
      obj.Set("profiles", num(s.profiles));
      obj.Set("resident_profiles", num(s.resident_profiles));
      obj.Set("resident_bytes", num(s.resident_bytes));
      obj.Set("resident_budget_bytes", num(s.resident_budget_bytes));
      obj.Set("hits", num(s.hits));
      obj.Set("misses", num(s.misses));
      obj.Set("page_ins", num(s.page_ins));
      obj.Set("page_in_waits", num(s.page_in_waits));
      obj.Set("page_in_errors", num(s.page_in_errors));
      obj.Set("evictions", num(s.evictions));
      obj.Set("pinned_skips", num(s.pinned_skips));
    };
    JsonValue shard_tier = JsonValue::Object();
    shard_tier.Set("shards", num(tier->shards));
    paging(*tier, shard_tier);
    JsonValue per_shard = JsonValue::Array();
    for (const ShardStats& s : tier->per_shard) {
      JsonValue one = JsonValue::Object();
      one.Set("shard", num(s.shard));
      paging(s, one);
      JsonValue journal = JsonValue::Object();
      journal.Set("appends", num(s.journal.appends));
      journal.Set("fsyncs", num(s.journal.fsyncs));
      journal.Set("compactions", num(s.journal.compactions));
      journal.Set("journal_bytes", num(s.journal.journal_bytes));
      journal.Set("snapshot_bytes", num(s.journal.snapshot_bytes));
      journal.Set("wedged", JsonValue::Bool(s.journal.wedged));
      one.Set("journal", std::move(journal));
      per_shard.Append(std::move(one));
    }
    shard_tier.Set("per_shard", std::move(per_shard));
    out.Set("shard_tier", std::move(shard_tier));
  }
  return out;
}

void Server::HandlePersonalize(const std::shared_ptr<Connection>& conn,
                               WireRequest request) {
  // Admission is sliced per loop: the owning loop's controller is
  // uncontended (touched by this loop thread and this loop's workers'
  // Releases only), so admitting costs one atomic RMW, no shared gauge.
  AdmissionController& admission = conn->loop()->admission();
  AdmissionController::Ticket ticket = admission.TryAdmit();
  if (!ticket.admitted) {
    // Shedding is always explicit on the wire — never a silent drop.
    stats_.OnShed();
    WireResponse response;
    response.id = request.id;
    response.status = ResourceExhausted(
        "server overloaded: " + std::to_string(admission.pending()) +
        " requests pending on loop " +
        std::to_string(conn->loop()->index()) + " (max " +
        std::to_string(admission.options().max_pending) + ")");
    conn->WriteLine(SerializeResponseBounded(std::move(response)));
    return;
  }
  stats_.OnAdmitted();
  if (ticket.degrade) stats_.OnDegradedAdmission();
  // The deadline anchors HERE: time spent queued on the pool counts
  // against it, so backlogged requests degrade instead of stacking up.
  Clock::time_point admitted_at = Clock::now();
  bool degrade = ticket.degrade;
  pool_->Submit([this, conn, request = std::move(request), admitted_at,
                 degrade, adm = &admission] {
    RunPersonalize(conn, request, admitted_at, degrade);
    adm->Release();
  });
}

void Server::RunPersonalize(const std::shared_ptr<Connection>& conn,
                            const WireRequest& request,
                            Clock::time_point admitted_at, bool degrade) {
  const PersonalizePayload& payload = request.personalize;
  WireResponse response;
  response.id = request.id;

  if (conn->cancel_token().cancelled()) {
    // Peer vanished while we were queued: there is nobody to answer, so
    // skip the search entirely (the whole point of connection-scoped
    // cancellation). Still counted as an errored request.
    stats_.OnRequestDone(/*ok=*/false, /*degraded_answer=*/false,
                         MillisSince(admitted_at), 0, 0, 0);
    return;
  }

  ProfileStore::Snapshot snapshot = profiles_->FindSnapshot(payload.profile_id);
  if (snapshot.graph == nullptr) {
    response.status = NotFound("no profile '" + payload.profile_id + "'");
    stats_.OnRequestDone(false, false, MillisSince(admitted_at), 0, 0, 0);
    conn->WriteLine(SerializeResponseBounded(std::move(response)));
    return;
  }

  construct::PersonalizeRequest engine_request;
  engine_request.sql = payload.sql;
  engine_request.problem =
      payload.problem.has_value() ? *payload.problem : options_.default_problem;
  engine_request.algorithm = payload.algorithm.empty()
                                 ? options_.default_algorithm
                                 : payload.algorithm;
  engine_request.space_options.max_k =
      payload.max_k != 0 ? payload.max_k : options_.default_max_k;
  engine_request.graph = snapshot.graph.get();

  SearchBudget budget;
  if (payload.deadline_ms > 0.0) {
    budget.deadline =
        admitted_at + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              payload.deadline_ms));
  }
  if (degrade) {
    // Above the soft watermark every request gets at most the degraded
    // deadline — this is what drives the PR 1 fallback ladder under load.
    Clock::time_point clamp =
        admitted_at +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                conn->loop()->admission().options().degraded_deadline_ms));
    if (!budget.deadline.has_value() || clamp < *budget.deadline) {
      budget.deadline = clamp;
    }
  }
  budget.max_expansions = payload.max_expansions;
  budget.max_memory_bytes =
      static_cast<size_t>(payload.max_memory_mb * 1024.0 * 1024.0);
  budget.cancel = &conn->cancel_token();
  engine_request.budget = budget;

  // Cross-request memoization: one EvalCache per (profile, query, problem
  // bounds) triple, keyed additionally by the profile snapshot's version
  // so a hot-reload can never serve values computed under the replaced
  // graph. The prune bounds participate because different cmax/smin yield
  // different per-problem views of the prepared space — the cache indexes
  // preferences by position in the view, so each view needs its own memo.
  std::shared_ptr<estimation::EvalCache> cache =
      profiles_->caches_for(payload.profile_id).GetOrCreate(
          payload.profile_id,
          std::to_string(snapshot.version) + ":" +
              space::ProblemPruneKey(engine_request.problem) + ":" +
              payload.sql);
  engine_request.eval_cache = cache.get();

  // The shared plan cache (this profile's shard slice when the store is
  // sharded): a repeated query skips parsing-to-extraction entirely. The
  // snapshot version in the key makes stale plans unreachable the instant
  // a profile is replaced.
  engine_request.plan_cache = &profiles_->plans_for(payload.profile_id);
  engine_request.profile_id = payload.profile_id;
  engine_request.profile_version = snapshot.version;

  construct::Personalizer personalizer(db_, snapshot.graph.get());
  StatusOr<construct::PersonalizeResult> result =
      personalizer.Personalize(engine_request);

  double latency_ms = MillisSince(admitted_at);
  if (!result.ok()) {
    response.status = result.status();
    stats_.OnRequestDone(false, false, latency_ms, 0, 0, 0);
    conn->WriteLine(SerializeResponseBounded(std::move(response)));
    return;
  }

  const construct::PersonalizeResult& r = *result;
  PersonalizeResultPayload out;
  out.final_sql = r.final_sql;
  out.rung = construct::FallbackRungName(r.rung);
  out.degraded = r.degraded();
  out.feasible = r.solution.feasible;
  out.chosen.assign(r.solution.chosen.begin(), r.solution.chosen.end());
  out.doi = r.solution.params.doi;
  out.cost_ms = r.solution.params.cost_ms;
  out.size = r.solution.params.size;
  out.states_examined = r.metrics.states_examined;
  out.search_wall_ms = r.metrics.wall_ms;
  out.eval_cache_hits = r.metrics.eval_cache_hits;
  out.eval_cache_misses = r.metrics.eval_cache_misses;
  out.plan_cache_hit = r.plan_cache_hit;
  out.server_ms = latency_ms;
  out.attempts = r.attempts;
  response.personalize = std::move(out);

  stats_.OnPlanLookup(r.plan_cache_hit);
  stats_.OnRewrite(r.personalized.rewrite.conjuncts_dropped,
                   r.personalized.rewrite.branches_contradicted,
                   r.personalized.rewrite.branches_subsumed,
                   r.space != nullptr ? r.space->constraint_pruned : 0);
  stats_.OnRequestDone(/*ok=*/true, r.degraded(), latency_ms,
                       r.metrics.eval_cache_hits, r.metrics.eval_cache_misses,
                       r.metrics.states_examined);
  conn->WriteLine(SerializeResponseBounded(std::move(response)));
}

void Server::StatsLoop() {
  auto next = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     options_.stats_interval_s));
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (Clock::now() < next) continue;
    next = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  options_.stats_interval_s));
    std::fprintf(stderr, "cqp_serve stats %s\n", StatsJson().Dump().c_str());
  }
}

}  // namespace cqp::server
