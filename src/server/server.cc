#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "server/io_util.h"
#include "space/prepared_space.h"

namespace cqp::server {

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

Server::Server(const storage::Database* db, ProfileStore* profiles,
               ServerOptions options)
    : db_(db),
      profiles_(profiles),
      options_(std::move(options)),
      admission_(options_.admission) {
  CQP_CHECK(db_ != nullptr);
  CQP_CHECK(profiles_ != nullptr);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPrecondition("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgument("bad bind address '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Internal("bind(" + options_.host + ":" +
                             std::to_string(options_.port) +
                             "): " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, SOMAXCONN) < 0) {
    Status status =
        Internal(std::string("listen(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (options_.stats_interval_s > 0.0) {
    stats_thread_ = std::thread([this] { StatsLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // 1. Unblock and join the accept loop. listen_fd_ is only overwritten
  // after the join — the accept thread reads it unsynchronized at startup.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (stats_thread_.joinable()) stats_thread_.join();
  listen_fd_ = -1;

  // 2. Drain: admitted requests get up to drain_deadline_ms to finish and
  // answer before we cancel them. Connected-but-idle clients do not hold
  // the drain open — only admitted work counts.
  if (options_.drain_deadline_ms > 0.0) {
    Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               options_.drain_deadline_ms));
    while (admission_.pending() > 0 && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  // 3. Cancel whatever outlived the drain and unblock every reader.
  std::map<uint64_t, std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      conn->cancel_token().Cancel();
      conn->Shutdown();
    }
    readers = std::move(readers_);
    readers_.clear();
    finished_readers_.clear();
  }
  for (auto& [id, thread] : readers) {
    if (thread.joinable()) thread.join();
  }

  // 4. Drain the worker pool (workers hold shared_ptr<Connection>, so the
  // sockets stay valid even though conns_ is about to be cleared; their
  // writes fail fast on the shut-down fds).
  pool_.reset();

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }

  // 5. Make every acknowledged mutation durable before the process exits
  // (no-op for the in-memory store; inline-fsync durable stores have
  // nothing buffered either, but group commit may).
  Status flushed = profiles_->Flush();
  if (!flushed.ok()) {
    std::fprintf(stderr, "cqp_serve: journal flush on shutdown failed: %s\n",
                 flushed.ToString().c_str());
  }
}

void Server::ReapFinishedReaders() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (uint64_t id : finished_readers_) {
      auto it = readers_.find(id);
      if (it == readers_.end()) continue;
      done.push_back(std::move(it->second));
      readers_.erase(it);
    }
    finished_readers_.clear();
  }
  for (std::thread& thread : done) {
    if (thread.joinable()) thread.join();
  }
}

void Server::AcceptLoop() {
  // listen_fd_ is fixed for the lifetime of this thread: Start() set it
  // before spawning us, and Stop() only overwrites it after joining us
  // (shutdown()/close() on the fd, not the overwrite, unblock accept()).
  const int listen_fd = listen_fd_;
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop(), or fatal
    }
    stats_.OnConnectionOpened();
    std::lock_guard<std::mutex> lock(conns_mu_);
    uint64_t id = next_conn_id_++;
    auto conn = std::make_shared<Connection>(fd, id);
    conns_[id] = conn;
    readers_[id] = std::thread([this, conn] { ReaderLoop(conn); });
    // Opportunistically join readers whose connection already ended, so a
    // long-lived server does not accumulate dead thread handles.
    std::vector<std::thread> done;
    for (uint64_t fid : finished_readers_) {
      auto it = readers_.find(fid);
      if (it != readers_.end()) {
        done.push_back(std::move(it->second));
        readers_.erase(it);
      }
    }
    finished_readers_.clear();
    for (std::thread& thread : done) {
      if (thread.joinable()) thread.join();
    }
  }
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  bool close_requested = false;
  while (!close_requested) {
    ssize_t n = ReadSome(conn->fd(), chunk, sizeof(chunk));
    if (n <= 0) break;  // peer closed, or Shutdown() during Stop()
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = nl + 1;
      if (!line.empty() && !HandleLine(conn, line)) {
        close_requested = true;
        break;
      }
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxFrameBytes) {
      stats_.OnProtocolError();
      WireResponse response;
      response.status = InvalidArgument(
          "frame exceeds " + std::to_string(kMaxFrameBytes) + " bytes");
      conn->WriteLine(SerializeResponse(response));
      break;
    }
  }
  // The peer is gone (or the server is stopping): cancel this connection's
  // in-flight searches so workers stop burning CPU on unanswerable work.
  conn->cancel_token().Cancel();
  conn->Shutdown();
  conn->MarkClosed();
  stats_.OnConnectionClosed();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(conn->id());
    finished_readers_.push_back(conn->id());
  }
}

bool Server::HandleLine(const std::shared_ptr<Connection>& conn,
                        const std::string& line) {
  StatusOr<WireRequest> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    // Malformed frames get a typed error response but do NOT close the
    // connection: one bad request must not kill a pipelining client's
    // other requests.
    stats_.OnProtocolError();
    WireResponse response;
    response.status = parsed.status();
    return conn->WriteLine(SerializeResponse(response));
  }
  WireRequest request = *std::move(parsed);
  switch (request.op) {
    case RequestOp::kPersonalize:
      HandlePersonalize(conn, std::move(request));
      return true;
    case RequestOp::kPing: {
      WireResponse response;
      response.id = request.id;
      response.extra = JsonValue::Object();
      response.extra.Set("pong", JsonValue::Bool(true));
      return conn->WriteLine(SerializeResponse(response));
    }
    case RequestOp::kStats: {
      WireResponse response;
      response.id = request.id;
      response.extra = StatsJson();
      return conn->WriteLine(SerializeResponse(response));
    }
    case RequestOp::kProfiles: {
      WireResponse response;
      response.id = request.id;
      response.extra = JsonValue::Object();
      JsonValue ids = JsonValue::Array();
      for (const std::string& id : profiles_->Ids()) {
        ids.Append(JsonValue::Str(id));
      }
      response.extra.Set("profiles", std::move(ids));
      return conn->WriteLine(SerializeResponse(response));
    }
    case RequestOp::kReload: {
      WireResponse response;
      response.id = request.id;
      StatusOr<size_t> reloaded = profiles_->Reload();
      if (reloaded.ok()) {
        response.extra = JsonValue::Object();
        response.extra.Set(
            "reloaded", JsonValue::Number(static_cast<double>(*reloaded)));
      } else {
        response.status = reloaded.status();
      }
      return conn->WriteLine(SerializeResponse(response));
    }
  }
  return true;
}

JsonValue Server::StatsJson() {
  auto num = [](auto v) { return JsonValue::Number(static_cast<double>(v)); };
  JsonValue out = stats_.ToJson();

  JsonValue admission = JsonValue::Object();
  admission.Set("pending", num(admission_.pending()));
  admission.Set("max_pending", num(admission_.options().max_pending));
  admission.Set("soft_pending", num(admission_.options().soft_pending));
  out.Set("admission", std::move(admission));

  construct::PlanCacheStats plan_stats = profiles_->plan_stats();
  JsonValue plans = JsonValue::Object();
  plans.Set("hits", num(plan_stats.hits));
  plans.Set("misses", num(plan_stats.misses));
  plans.Set("evictions", num(plan_stats.evictions));
  plans.Set("invalidations", num(plan_stats.invalidations));
  plans.Set("entries", num(plan_stats.entries));
  out.Set("plan_cache", std::move(plans));

  if (std::optional<DurabilityStats> ds = profiles_->durability_stats()) {
    JsonValue journal = JsonValue::Object();
    journal.Set("appends", num(ds->appends));
    journal.Set("append_bytes", num(ds->append_bytes));
    journal.Set("fsyncs", num(ds->fsyncs));
    journal.Set("group_commits", num(ds->group_commits));
    journal.Set("compactions", num(ds->compactions));
    journal.Set("journal_bytes", num(ds->journal_bytes));
    journal.Set("snapshot_bytes", num(ds->snapshot_bytes));
    journal.Set("wedged", JsonValue::Bool(ds->wedged));
    journal.Set("recovered_profiles", num(ds->recovered_profiles));
    journal.Set("replayed_records", num(ds->replayed_records));
    journal.Set("dropped_bytes", num(ds->dropped_bytes));
    journal.Set("torn_tail_recovered", JsonValue::Bool(ds->torn_tail_recovered));
    journal.Set("recovery_ms", JsonValue::Number(ds->recovery_ms));
    out.Set("journal", std::move(journal));
  }

  // The demand-paged tier, when the store is sharded: tier aggregates plus
  // one object per shard (paging counters + that shard's journal).
  if (std::optional<ShardTierStats> tier = profiles_->shard_stats()) {
    auto paging = [&num](const auto& s, JsonValue& obj) {
      obj.Set("profiles", num(s.profiles));
      obj.Set("resident_profiles", num(s.resident_profiles));
      obj.Set("resident_bytes", num(s.resident_bytes));
      obj.Set("resident_budget_bytes", num(s.resident_budget_bytes));
      obj.Set("hits", num(s.hits));
      obj.Set("misses", num(s.misses));
      obj.Set("page_ins", num(s.page_ins));
      obj.Set("page_in_waits", num(s.page_in_waits));
      obj.Set("page_in_errors", num(s.page_in_errors));
      obj.Set("evictions", num(s.evictions));
      obj.Set("pinned_skips", num(s.pinned_skips));
    };
    JsonValue shard_tier = JsonValue::Object();
    shard_tier.Set("shards", num(tier->shards));
    paging(*tier, shard_tier);
    JsonValue per_shard = JsonValue::Array();
    for (const ShardStats& s : tier->per_shard) {
      JsonValue one = JsonValue::Object();
      one.Set("shard", num(s.shard));
      paging(s, one);
      JsonValue journal = JsonValue::Object();
      journal.Set("appends", num(s.journal.appends));
      journal.Set("fsyncs", num(s.journal.fsyncs));
      journal.Set("compactions", num(s.journal.compactions));
      journal.Set("journal_bytes", num(s.journal.journal_bytes));
      journal.Set("snapshot_bytes", num(s.journal.snapshot_bytes));
      journal.Set("wedged", JsonValue::Bool(s.journal.wedged));
      one.Set("journal", std::move(journal));
      per_shard.Append(std::move(one));
    }
    shard_tier.Set("per_shard", std::move(per_shard));
    out.Set("shard_tier", std::move(shard_tier));
  }
  return out;
}

void Server::HandlePersonalize(const std::shared_ptr<Connection>& conn,
                               WireRequest request) {
  AdmissionController::Ticket ticket = admission_.TryAdmit();
  if (!ticket.admitted) {
    // Shedding is always explicit on the wire — never a silent drop.
    stats_.OnShed();
    WireResponse response;
    response.id = request.id;
    response.status = ResourceExhausted(
        "server overloaded: " + std::to_string(admission_.pending()) +
        " requests pending (max " +
        std::to_string(admission_.options().max_pending) + ")");
    conn->WriteLine(SerializeResponse(response));
    return;
  }
  stats_.OnAdmitted();
  if (ticket.degrade) stats_.OnDegradedAdmission();
  // The deadline anchors HERE: time spent queued on the pool counts
  // against it, so backlogged requests degrade instead of stacking up.
  Clock::time_point admitted_at = Clock::now();
  bool degrade = ticket.degrade;
  pool_->Submit([this, conn, request = std::move(request), admitted_at,
                 degrade] {
    RunPersonalize(conn, request, admitted_at, degrade);
    admission_.Release();
  });
}

void Server::RunPersonalize(const std::shared_ptr<Connection>& conn,
                            const WireRequest& request,
                            Clock::time_point admitted_at, bool degrade) {
  const PersonalizePayload& payload = request.personalize;
  WireResponse response;
  response.id = request.id;

  if (conn->cancel_token().cancelled()) {
    // Peer vanished while we were queued: there is nobody to answer, so
    // skip the search entirely (the whole point of connection-scoped
    // cancellation). Still counted as an errored request.
    stats_.OnRequestDone(/*ok=*/false, /*degraded_answer=*/false,
                         MillisSince(admitted_at), 0, 0, 0);
    return;
  }

  ProfileStore::Snapshot snapshot = profiles_->FindSnapshot(payload.profile_id);
  if (snapshot.graph == nullptr) {
    response.status = NotFound("no profile '" + payload.profile_id + "'");
    stats_.OnRequestDone(false, false, MillisSince(admitted_at), 0, 0, 0);
    conn->WriteLine(SerializeResponse(response));
    return;
  }

  construct::PersonalizeRequest engine_request;
  engine_request.sql = payload.sql;
  engine_request.problem =
      payload.problem.has_value() ? *payload.problem : options_.default_problem;
  engine_request.algorithm = payload.algorithm.empty()
                                 ? options_.default_algorithm
                                 : payload.algorithm;
  engine_request.space_options.max_k =
      payload.max_k != 0 ? payload.max_k : options_.default_max_k;
  engine_request.graph = snapshot.graph.get();

  SearchBudget budget;
  if (payload.deadline_ms > 0.0) {
    budget.deadline =
        admitted_at + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              payload.deadline_ms));
  }
  if (degrade) {
    // Above the soft watermark every request gets at most the degraded
    // deadline — this is what drives the PR 1 fallback ladder under load.
    Clock::time_point clamp =
        admitted_at + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              admission_.options().degraded_deadline_ms));
    if (!budget.deadline.has_value() || clamp < *budget.deadline) {
      budget.deadline = clamp;
    }
  }
  budget.max_expansions = payload.max_expansions;
  budget.max_memory_bytes =
      static_cast<size_t>(payload.max_memory_mb * 1024.0 * 1024.0);
  budget.cancel = &conn->cancel_token();
  engine_request.budget = budget;

  // Cross-request memoization: one EvalCache per (profile, query, problem
  // bounds) triple, keyed additionally by the profile snapshot's version
  // so a hot-reload can never serve values computed under the replaced
  // graph. The prune bounds participate because different cmax/smin yield
  // different per-problem views of the prepared space — the cache indexes
  // preferences by position in the view, so each view needs its own memo.
  std::shared_ptr<estimation::EvalCache> cache =
      profiles_->caches_for(payload.profile_id).GetOrCreate(
          payload.profile_id,
          std::to_string(snapshot.version) + ":" +
              space::ProblemPruneKey(engine_request.problem) + ":" +
              payload.sql);
  engine_request.eval_cache = cache.get();

  // The shared plan cache (this profile's shard slice when the store is
  // sharded): a repeated query skips parsing-to-extraction entirely. The
  // snapshot version in the key makes stale plans unreachable the instant
  // a profile is replaced.
  engine_request.plan_cache = &profiles_->plans_for(payload.profile_id);
  engine_request.profile_id = payload.profile_id;
  engine_request.profile_version = snapshot.version;

  construct::Personalizer personalizer(db_, snapshot.graph.get());
  StatusOr<construct::PersonalizeResult> result =
      personalizer.Personalize(engine_request);

  double latency_ms = MillisSince(admitted_at);
  if (!result.ok()) {
    response.status = result.status();
    stats_.OnRequestDone(false, false, latency_ms, 0, 0, 0);
    conn->WriteLine(SerializeResponse(response));
    return;
  }

  const construct::PersonalizeResult& r = *result;
  PersonalizeResultPayload out;
  out.final_sql = r.final_sql;
  out.rung = construct::FallbackRungName(r.rung);
  out.degraded = r.degraded();
  out.feasible = r.solution.feasible;
  out.chosen.assign(r.solution.chosen.begin(), r.solution.chosen.end());
  out.doi = r.solution.params.doi;
  out.cost_ms = r.solution.params.cost_ms;
  out.size = r.solution.params.size;
  out.states_examined = r.metrics.states_examined;
  out.search_wall_ms = r.metrics.wall_ms;
  out.eval_cache_hits = r.metrics.eval_cache_hits;
  out.eval_cache_misses = r.metrics.eval_cache_misses;
  out.plan_cache_hit = r.plan_cache_hit;
  out.server_ms = latency_ms;
  out.attempts = r.attempts;
  response.personalize = std::move(out);

  stats_.OnPlanLookup(r.plan_cache_hit);
  stats_.OnRequestDone(/*ok=*/true, r.degraded(), latency_ms,
                       r.metrics.eval_cache_hits, r.metrics.eval_cache_misses,
                       r.metrics.states_examined);
  conn->WriteLine(SerializeResponse(response));
}

void Server::StatsLoop() {
  auto next = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     options_.stats_interval_s));
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (Clock::now() < next) continue;
    next = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  options_.stats_interval_s));
    std::fprintf(stderr, "cqp_serve stats %s\n", StatsJson().Dump().c_str());
  }
}

}  // namespace cqp::server
