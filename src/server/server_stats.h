#ifndef CQP_SERVER_SERVER_STATS_H_
#define CQP_SERVER_SERVER_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "server/json.h"

namespace cqp::server {

/// Per-event-loop counters, one instance per epoll shard. All relaxed
/// atomics: loops mutate their own instance almost exclusively, so these
/// are effectively uncontended; the stats op reads a torn-but-usable view.
struct LoopStats {
  std::atomic<uint64_t> accepts{0};       ///< connections accepted
  std::atomic<uint64_t> frames{0};        ///< complete frames decoded
  std::atomic<uint64_t> wakeups{0};       ///< epoll_wait returns
  std::atomic<uint64_t> tasks{0};         ///< posted tasks run (eventfd)
  std::atomic<uint64_t> reads{0};         ///< read() calls returning data
  std::atomic<uint64_t> read_bytes{0};
  std::atomic<uint64_t> writevs{0};       ///< batched sendmsg calls
  std::atomic<uint64_t> write_bytes{0};
  std::atomic<uint64_t> read_pauses{0};   ///< backpressure: reads paused
  std::atomic<uint64_t> backpressure_closes{0};  ///< slow readers dropped
  std::atomic<uint64_t> frame_cap_closes{0};     ///< oversized-frame closes
  std::atomic<int64_t> connections{0};    ///< live-connection gauge
};

/// Lock-free latency histogram: power-of-two buckets over microseconds.
/// Bucket i counts samples in [2^i, 2^(i+1)) µs (bucket 0 additionally
/// absorbs sub-µs samples); the top bucket absorbs everything ≥ ~1.2 h.
/// Percentiles are estimated at bucket upper bounds — within 2× of the
/// true value, which is the resolution an ops dashboard needs.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Record(double millis);

  uint64_t TotalCount() const;

  /// Estimated p-quantile (p in [0,1]) in milliseconds; 0 when empty.
  double PercentileMillis(double p) const;

  /// {"count": n, "p50_ms": …, "p90_ms": …, "p99_ms": …,
  ///  "buckets": [{"le_us": 2^i+1, "count": …}, …]} — zero buckets omitted.
  JsonValue ToJson() const;

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Whole-server counters, updated per request. Everything is an atomic and
/// every mutation is a single relaxed RMW, so recording never serializes
/// worker threads; Snapshot/ToJson read a (possibly slightly torn across
/// counters, individually consistent) view, which is fine for monitoring.
class ServerStats {
 public:
  void OnConnectionOpened();
  void OnConnectionClosed();
  void OnProtocolError();

  void OnAdmitted();
  void OnShed();
  void OnDegradedAdmission();

  /// One finished personalize request.
  void OnRequestDone(bool ok, bool degraded_answer, double latency_ms,
                     uint64_t cache_hits, uint64_t cache_misses,
                     uint64_t states_examined);

  /// One plan-cache lookup outcome (a request whose Prepare() was served
  /// from — or had to populate — the shared PreparedSpace cache).
  void OnPlanLookup(bool hit);

  /// Semantic-rewrite work done by one successful request (docs/
  /// rewriting.md): conjuncts dropped as constraint-redundant, union
  /// branches eliminated (contradicted or subsumed), and preference-space
  /// candidates pruned before the search.
  void OnRewrite(uint64_t conjuncts_dropped, uint64_t branches_contradicted,
                 uint64_t branches_subsumed, uint64_t prefs_pruned);

  uint64_t requests_total() const {
    return requests_total_.load(std::memory_order_relaxed);
  }
  uint64_t shed_total() const {
    return shed_total_.load(std::memory_order_relaxed);
  }
  uint64_t errors_total() const {
    return errors_total_.load(std::memory_order_relaxed);
  }
  uint64_t degraded_total() const {
    return degraded_answers_total_.load(std::memory_order_relaxed);
  }
  uint64_t connections_opened() const {
    return connections_opened_.load(std::memory_order_relaxed);
  }

  const LatencyHistogram& latency() const { return latency_; }

  /// Allocates one LoopStats per event loop. Call before the loops spawn
  /// (not thread-safe against concurrent readers); idempotent per Start.
  void ConfigureLoops(size_t n);
  size_t num_loops() const { return loops_.size(); }
  LoopStats& loop(size_t i) { return *loops_[i]; }

  /// Full JSON snapshot (the `.stats` wire command and the periodic log
  /// line both emit exactly this object — benches scrape it).
  JsonValue ToJson() const;
  std::string ToJsonString() const;

 private:
  LatencyHistogram latency_;
  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> admitted_total_{0};
  std::atomic<uint64_t> shed_total_{0};
  std::atomic<uint64_t> degraded_admissions_{0};
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> errors_total_{0};
  std::atomic<uint64_t> degraded_answers_total_{0};
  std::atomic<uint64_t> cache_hits_total_{0};
  std::atomic<uint64_t> cache_misses_total_{0};
  std::atomic<uint64_t> plan_hits_total_{0};
  std::atomic<uint64_t> plan_misses_total_{0};
  std::atomic<uint64_t> states_total_{0};
  std::atomic<uint64_t> conjuncts_dropped_total_{0};
  std::atomic<uint64_t> branches_contradicted_total_{0};
  std::atomic<uint64_t> branches_subsumed_total_{0};
  std::atomic<uint64_t> prefs_pruned_total_{0};
  /// unique_ptr: LoopStats holds atomics and cannot be moved on resize.
  std::vector<std::unique_ptr<LoopStats>> loops_;
};

}  // namespace cqp::server

#endif  // CQP_SERVER_SERVER_STATS_H_
