#ifndef CQP_SERVER_JSON_H_
#define CQP_SERVER_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cqp::server {

/// A minimal JSON value for the wire protocol: null, bool, double, string,
/// array, object. Objects keep their members in a std::map, so Dump() is
/// deterministic (sorted keys) — handy for tests and for diffing captured
/// frames. No external dependency; the subset implemented is exactly what
/// the protocol needs (no comments, no NaN/Inf literals).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.type_ = Type::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue Str(std::string s) {
    JsonValue v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one is a fatal error (CQP_CHECK),
  /// so parsers must test the type (or use the Get* helpers) first.
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& array_items() const;
  const std::map<std::string, JsonValue>& object_members() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Object/array builders.
  JsonValue& Set(const std::string& key, JsonValue value);
  JsonValue& Append(JsonValue value);

  /// Compact single-line rendering (object keys sorted).
  std::string Dump() const;

  /// Strict parse of a complete JSON document (trailing garbage rejected).
  static StatusOr<JsonValue> Parse(std::string_view text);

  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace cqp::server

#endif  // CQP_SERVER_JSON_H_
