#include "server/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace cqp::server {

Connection::Connection(int fd, uint64_t id) : fd_(fd), id_(id) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

bool Connection::WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (write_failed_) return false;
  std::string frame = line;
  frame.push_back('\n');
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a vanished peer yields EPIPE instead of killing the
    // process with SIGPIPE.
    ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      write_failed_ = true;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void Connection::Shutdown() { ::shutdown(fd_, SHUT_RDWR); }

}  // namespace cqp::server
