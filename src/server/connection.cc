#include "server/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "server/io_util.h"

namespace cqp::server {

Connection::Connection(int fd, uint64_t id) : fd_(fd), id_(id) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

bool Connection::WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (write_failed_) return false;
  std::string frame = line;
  frame.push_back('\n');
  // SendAll owns the EINTR retry and the short-write loop: a signal landing
  // mid-send, or a response larger than the socket buffer, must never tear
  // a frame in half.
  if (!SendAll(fd_, frame.data(), frame.size())) {
    write_failed_ = true;
    return false;
  }
  return true;
}

void Connection::Shutdown() { ::shutdown(fd_, SHUT_RDWR); }

}  // namespace cqp::server
