#include "server/connection.h"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "server/event_loop.h"

namespace cqp::server {

namespace {
/// Frames batched into one sendmsg. Enough to empty the queue in a call
/// or two under pipelining without an unbounded stack iovec array.
constexpr size_t kMaxIov = 64;
}  // namespace

Connection::Connection(int fd, uint64_t id, EventLoop* loop,
                       size_t max_frame_bytes)
    : fd_(fd), id_(id), loop_(loop), decoder_(max_frame_bytes) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

bool Connection::WriteLine(const std::string& line) {
  if (closed_.load(std::memory_order_acquire)) return false;
  if (loop_->OnLoopThread()) {
    QueueFrame(line + "\n");
    if (!closed_.load(std::memory_order_relaxed) && !in_read_batch_) {
      FlushWrites();
    }
    return !closed_.load(std::memory_order_relaxed);
  }
  // Worker thread: hand the frame to the owning loop. The eventfd wakeup
  // inside Post is the only cross-thread signal; the loop does the actual
  // queueing and I/O, so no connection state needs a lock.
  loop_->Post([self = shared_from_this(), frame = line + "\n"]() mutable {
    if (self->closed_.load(std::memory_order_relaxed)) return;
    self->QueueFrame(std::move(frame));
    if (!self->closed_.load(std::memory_order_relaxed)) self->FlushWrites();
  });
  return true;
}

void Connection::OnReadable() {
  char chunk[16384];
  in_read_batch_ = true;
  while (!closed_.load(std::memory_order_relaxed) && !read_paused_ &&
         !close_after_flush_) {
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      in_read_batch_ = false;
      loop_->Teardown(shared_from_this());
      return;
    }
    if (n == 0) {  // peer closed its end: nothing further to answer
      in_read_batch_ = false;
      loop_->Teardown(shared_from_this());
      return;
    }
    LoopStats& ls = loop_->loop_stats();
    ls.reads.fetch_add(1, std::memory_order_relaxed);
    ls.read_bytes.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
    auto self = shared_from_this();
    FrameDecoder::Result r = decoder_.Feed(
        chunk, static_cast<size_t>(n), [&](std::string&& line) {
          ls.frames.fetch_add(1, std::memory_order_relaxed);
          return loop_->on_line_(self, std::move(line));
        });
    if (closed_.load(std::memory_order_relaxed)) {
      // A handler tore us down mid-batch (e.g. write-queue overflow).
      in_read_batch_ = false;
      return;
    }
    if (r == FrameDecoder::Result::kFrameTooLong) {
      // Same contract as the blocking reader: typed error, then close —
      // but only after the error (and any pipelined answers) flush.
      ls.frame_cap_closes.fetch_add(1, std::memory_order_relaxed);
      QueueFrame(loop_->on_oversize_(loop_->options().max_frame_bytes) + "\n");
      close_after_flush_ = true;
    } else if (r == FrameDecoder::Result::kStop) {
      close_after_flush_ = true;
    }
    // Backpressure: inline answers (admin ops, shed/typed errors) may have
    // grown the write queue past the watermark — stop reading until the
    // peer drains it. Short read ⇒ the socket is empty; stop asking.
    if (queued_bytes_ > loop_->options().write_queue_watermark_bytes &&
        !read_paused_) {
      read_paused_ = true;
      loop_->loop_stats().read_pauses.fetch_add(1, std::memory_order_relaxed);
    }
    if (static_cast<size_t>(n) < sizeof(chunk)) break;
  }
  in_read_batch_ = false;
  if (closed_.load(std::memory_order_relaxed)) return;
  FlushWrites();
}

void Connection::OnWritable() { FlushWrites(); }

void Connection::QueueFrame(std::string frame) {
  if (closed_.load(std::memory_order_relaxed)) return;
  if (queued_bytes_ + frame.size() >
      loop_->options().write_queue_limit_bytes) {
    // The peer stopped draining long ago (backpressure already stopped
    // reads); buffering more only defers the inevitable at the cost of
    // server memory. Disconnect the slow reader.
    loop_->loop_stats().backpressure_closes.fetch_add(
        1, std::memory_order_relaxed);
    loop_->Teardown(shared_from_this());
    return;
  }
  queued_bytes_ += frame.size();
  write_queue_.push_back(std::move(frame));
}

void Connection::FlushWrites() {
  if (closed_.load(std::memory_order_relaxed)) return;
  while (!write_queue_.empty()) {
    iovec iov[kMaxIov];
    size_t cnt = 0;
    for (auto it = write_queue_.begin();
         it != write_queue_.end() && cnt < kMaxIov; ++it, ++cnt) {
      size_t off = (cnt == 0) ? write_offset_ : 0;
      iov[cnt].iov_base = const_cast<char*>(it->data() + off);
      iov[cnt].iov_len = it->size() - off;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = cnt;
    // sendmsg == writev + MSG_NOSIGNAL: a vanished peer reports EPIPE
    // instead of raising SIGPIPE.
    ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      loop_->Teardown(shared_from_this());
      return;
    }
    LoopStats& ls = loop_->loop_stats();
    ls.writevs.fetch_add(1, std::memory_order_relaxed);
    ls.write_bytes.fetch_add(static_cast<uint64_t>(n),
                             std::memory_order_relaxed);
    size_t sent = static_cast<size_t>(n);
    queued_bytes_ -= sent;
    while (sent > 0) {
      size_t remaining = write_queue_.front().size() - write_offset_;
      if (sent >= remaining) {
        sent -= remaining;
        write_offset_ = 0;
        write_queue_.pop_front();
      } else {
        write_offset_ += sent;
        sent = 0;
      }
    }
  }
  if (write_queue_.empty() && close_after_flush_) {
    loop_->Teardown(shared_from_this());
    return;
  }
  if (!read_paused_ &&
      queued_bytes_ > loop_->options().write_queue_watermark_bytes) {
    // Async worker responses can pile up while the peer idles: pause reads
    // here too, not just in OnReadable, or a never-draining client keeps
    // feeding new requests into an already-choked pipe.
    read_paused_ = true;
    loop_->loop_stats().read_pauses.fetch_add(1, std::memory_order_relaxed);
  } else if (read_paused_ &&
             queued_bytes_ <=
                 loop_->options().write_queue_watermark_bytes) {
    read_paused_ = false;  // the peer drained; resume reading
  }
  SyncInterest();
}

void Connection::SyncInterest() {
  if (closed_.load(std::memory_order_relaxed)) return;
  bool want_read = !read_paused_ && !close_after_flush_;
  bool want_write = !write_queue_.empty();
  if (want_read == reg_read_ && want_write == reg_write_) return;
  loop_->UpdateInterest(this, want_read, want_write);
  reg_read_ = want_read;
  reg_write_ = want_write;
}

}  // namespace cqp::server
