#ifndef CQP_SERVER_CLIENT_H_
#define CQP_SERVER_CLIENT_H_

#include <string>

#include "common/status.h"
#include "server/protocol.h"

namespace cqp::server {

/// Connect() retry policy. Transient failures (ECONNREFUSED while the
/// server finishes binding, ECONNRESET from a full backlog, routing
/// hiccups) are retried with capped exponential backoff plus deterministic
/// jitter; permanent errors (bad address) fail immediately.
struct ConnectOptions {
  /// Total connect() attempts (1 = no retry).
  int max_attempts = 4;
  double initial_backoff_ms = 25.0;
  double max_backoff_ms = 400.0;
  /// Seeds the jitter so tests replay the exact same sleep schedule.
  uint64_t jitter_seed = 0;
};

/// Minimal blocking client for the line-delimited JSON protocol. One
/// request in flight at a time (Call = write one line, read one line);
/// used by the shell's `.connect`, the load bench and the e2e tests.
/// Not thread-safe — share nothing, or lock around Call().
class Client {
 public:
  Client() = default;
  ~Client();  ///< closes the socket

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port, retrying transient failures per `options`.
  /// kInternal when every attempt failed, kInvalidArgument for a bad host.
  Status Connect(const std::string& host, int port,
                 const ConnectOptions& options = ConnectOptions());

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends `request` and blocks for its response. The response's `id` is
  /// NOT matched against the request's — this client never pipelines, so
  /// the next line is by construction the answer.
  StatusOr<WireResponse> Call(const WireRequest& request);

  /// Raw round trip: sends `line` verbatim (plus '\n') and returns the
  /// next response line (without the '\n'). Lets tests exercise malformed
  /// frames.
  StatusOr<std::string> CallRaw(const std::string& line);

 private:
  StatusOr<std::string> ReadLine();

  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace cqp::server

#endif  // CQP_SERVER_CLIENT_H_
