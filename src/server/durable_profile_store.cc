#include "server/durable_profile_store.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "common/stopwatch.h"
#include "server/profile_journal_codec.h"
#include "storage/journal/coding.h"

namespace cqp::server {

namespace {

using storage::journal::SnapshotData;
using storage::journal::SnapshotEntry;

// Record payloads are the shared profile-journal codec
// (profile_journal_codec.h), byte-identical with the sharded tier.
constexpr char kOpPut = kJournalOpPut;
constexpr char kOpRemove = kJournalOpRemove;

/// Commit tokens pack (epoch, journal end offset) so a waiter can tell a
/// compaction (which resets offsets but IS a durability point) from its
/// own fsync. 0 is the "nothing to wait for" sentinel.
constexpr int kEpochShift = 40;
constexpr uint64_t kOffsetMask = (1ull << kEpochShift) - 1;

}  // namespace

DurableProfileStore::DurableProfileStore(const storage::Database* db,
                                         DurabilityOptions options)
    : ProfileStore(db),
      options_(std::move(options)),
      fs_(options_.fs != nullptr ? options_.fs : &storage::PosixFileSystem()) {}

StatusOr<std::unique_ptr<DurableProfileStore>> DurableProfileStore::Open(
    const storage::Database* db, DurabilityOptions options) {
  if (options.dir.empty()) {
    return InvalidArgument("DurabilityOptions.dir must be set");
  }
  std::unique_ptr<DurableProfileStore> store(
      new DurableProfileStore(db, std::move(options)));
  CQP_RETURN_IF_ERROR(store->Recover());
  return store;
}

DurableProfileStore::~DurableProfileStore() {
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    stop_flusher_ = true;
    flusher_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
  if (journal_ != nullptr) {
    Flush();  // best effort; a wedged journal already reported its error
    journal_->Close();
  }
}

Status DurableProfileStore::Recover() {
  Stopwatch timer;
  CQP_RETURN_IF_ERROR(fs_->CreateDirs(options_.dir));

  // 1. The snapshot (absent on first open). A crash mid-compaction leaves
  // at most a stale snapshot.tmp, which the atomic-write protocol never
  // exposes as the snapshot itself; drop it.
  uint64_t snap_next = 1;
  if (fs_->Exists(SnapshotPath())) {
    CQP_ASSIGN_OR_RETURN(SnapshotData snap, storage::journal::ReadSnapshot(
                                                *fs_, SnapshotPath()));
    snap_next = snap.next_version;
    for (SnapshotEntry& entry : snap.entries) {
      StatusOr<prefs::Profile> profile = prefs::Profile::Parse(entry.value);
      StatusOr<std::shared_ptr<const prefs::PersonalizationGraph>> graph =
          profile.ok() ? BuildGraph(*std::move(profile))
                       : StatusOr<std::shared_ptr<
                             const prefs::PersonalizationGraph>>(
                             profile.status());
      if (!graph.ok()) {
        // The checksum proved the bytes intact, so this is schema drift
        // (the database no longer accepts the profile), not corruption:
        // skip it but keep serving everything else.
        std::fprintf(stderr,
                     "durable profile store: snapshot profile '%s' no longer "
                     "loads (%s); skipping\n",
                     entry.key.c_str(), graph.status().ToString().c_str());
        ++recovery_.unloadable_profiles;
        continue;
      }
      RestorePut(entry.key, *std::move(graph), entry.version);
      texts_[entry.key] = std::move(entry.value);
      ++recovery_.snapshot_profiles;
    }
  }
  fs_->Remove(SnapshotPath() + ".tmp");

  // 2. Journal replay. Records already covered by the snapshot (version <
  // snapshot next_version — possible when a crash hit between the snapshot
  // rename and the journal truncation) are skipped; the torn/corrupt tail,
  // if any, ends the log.
  uint64_t max_next = snap_next;
  CQP_ASSIGN_OR_RETURN(
      storage::journal::ReplayResult replay,
      storage::journal::Replay(
          *fs_, JournalPath(), [&](std::string_view payload) -> Status {
            DecodedProfileMutation record;
            if (!DecodeProfileMutation(payload, &record)) {
              return Internal(
                  "journal record passed its checksum but does not decode — "
                  "refusing to guess (journal format bug or external "
                  "corruption)");
            }
            if (record.version < snap_next) {
              ++recovery_.skipped_records;
              return Status::OK();
            }
            if (record.op == kOpPut) {
              std::string text(record.text);
              StatusOr<prefs::Profile> profile = prefs::Profile::Parse(text);
              StatusOr<std::shared_ptr<const prefs::PersonalizationGraph>>
                  graph = profile.ok()
                              ? BuildGraph(*std::move(profile))
                              : StatusOr<std::shared_ptr<
                                    const prefs::PersonalizationGraph>>(
                                    profile.status());
              if (!graph.ok()) {
                std::fprintf(stderr,
                             "durable profile store: journaled profile '%s' "
                             "no longer loads (%s); skipping\n",
                             std::string(record.id).c_str(),
                             graph.status().ToString().c_str());
                ++recovery_.unloadable_profiles;
                return Status::OK();
              }
              std::string id(record.id);
              RestorePut(id, *std::move(graph), record.version);
              texts_[id] = std::move(text);
            } else {
              std::string id(record.id);
              RestoreRemove(id);
              texts_.erase(id);
            }
            if (record.version + 1 > max_next) max_next = record.version + 1;
            ++recovery_.replayed_records;
            return Status::OK();
          }));
  recovery_.torn_tail = replay.torn_tail;
  recovery_.dropped_bytes = replay.dropped_bytes;
  CQP_RETURN_IF_ERROR(
      storage::journal::DropTornTail(*fs_, JournalPath(), replay));
  SetNextVersion(max_next);

  // 3. Reopen the append side at the clean tail.
  CQP_ASSIGN_OR_RETURN(journal_,
                       storage::journal::Writer::Open(*fs_, JournalPath()));
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    appended_end_ = journal_->end_offset();
    durable_end_ = appended_end_;  // it survived; it is on disk
  }

  if (options_.group_commit_interval_ms > 0.0) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
  recovery_.recovery_ms = timer.ElapsedMillis();
  return Status::OK();
}

void DurableProfileStore::WedgeLocked(const Status& status) {
  if (!wedged_) {
    wedged_ = true;
    wedge_status_ = Internal("profile journal wedged: " + status.ToString() +
                             " (store is read-only; reopen to recover)");
    std::fprintf(stderr, "%s\n", wedge_status_.message().c_str());
  }
}

Status DurableProfileStore::WriteAheadLocked(const Mutation& mutation,
                                             uint64_t* commit_token) {
  *commit_token = 0;
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    if (wedged_) return wedge_status_;
  }
  std::string text;
  if (mutation.kind == Mutation::Kind::kPut) {
    text = mutation.profile->ToText();
  }
  const std::string payload = EncodeProfileMutation(
      mutation.kind == Mutation::Kind::kPut ? kOpPut : kOpRemove,
      mutation.version, mutation.id, text);

  // Append. mu_ (held by the caller) serializes appends and protects the
  // journal_ pointer; a failed append leaves an unknowable tail, so wedge.
  Status appended = journal_->Append(payload);
  appends_.fetch_add(1, std::memory_order_relaxed);
  append_bytes_.fetch_add(payload.size() + storage::journal::kRecordHeaderBytes,
                          std::memory_order_relaxed);
  if (!appended.ok()) {
    std::lock_guard<std::mutex> lock(commit_mu_);
    WedgeLocked(appended);
    commit_cv_.notify_all();
    return appended;
  }

  if (options_.group_commit_interval_ms <= 0.0) {
    // Inline commit: fsync before the map mutates, so an error here aborts
    // the whole Put/Remove — error ⇒ not applied, OK ⇒ durable.
    Status synced;
    {
      std::lock_guard<std::mutex> io(journal_io_mu_);
      synced = journal_->Sync();
    }
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    if (!synced.ok()) {
      std::lock_guard<std::mutex> lock(commit_mu_);
      WedgeLocked(synced);
      commit_cv_.notify_all();
      return synced;
    }
  }

  // Mirror the text for compaction snapshots (same key set as graphs_,
  // which the caller is about to update under the same lock).
  if (mutation.kind == Mutation::Kind::kPut) {
    texts_[mutation.id] = std::move(text);
  } else {
    texts_.erase(mutation.id);
  }
  journal_bytes_.store(journal_->end_offset(), std::memory_order_relaxed);

  if (options_.group_commit_interval_ms > 0.0) {
    std::lock_guard<std::mutex> lock(commit_mu_);
    appended_end_ = journal_->end_offset();
    CQP_CHECK(appended_end_ <= kOffsetMask) << "journal grew past 1 TiB";
    ++commits_pending_;
    flush_requested_ = true;
    *commit_token = (epoch_ << kEpochShift) | appended_end_;
    flusher_cv_.notify_all();
  }
  return Status::OK();
}

Status DurableProfileStore::WaitDurable(uint64_t commit_token) {
  Status result = Status::OK();
  if (commit_token != 0) {
    const uint64_t epoch_at_append = commit_token >> kEpochShift;
    const uint64_t offset = commit_token & kOffsetMask;
    std::unique_lock<std::mutex> lock(commit_mu_);
    commit_cv_.wait(lock, [&] {
      return wedged_ || epoch_ > epoch_at_append || durable_end_ >= offset;
    });
    // A bumped epoch means a compaction made the whole map durable (the
    // snapshot rename is itself a commit point), which covers this record.
    if (wedged_ && epoch_ == epoch_at_append && durable_end_ < offset) {
      result = wedge_status_;
    }
  }
  // Amortized compaction: triggered by whoever pushes the journal past the
  // threshold, after their own commit completed. A compaction failure must
  // not fail the (already durable) mutation.
  if (result.ok() &&
      journal_bytes_.load(std::memory_order_relaxed) >
          options_.compact_threshold_bytes) {
    Status compacted = Compact();
    if (!compacted.ok()) {
      std::fprintf(stderr, "durable profile store: compaction failed: %s\n",
                   compacted.ToString().c_str());
    }
  }
  return result;
}

void DurableProfileStore::FlusherLoop() {
  std::unique_lock<std::mutex> lock(commit_mu_);
  while (!stop_flusher_) {
    flusher_cv_.wait(lock,
                     [&] { return stop_flusher_ || flush_requested_; });
    if (stop_flusher_) break;
    lock.unlock();
    // The batching window: commits arriving while we sleep share the
    // upcoming fsync.
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.group_commit_interval_ms));

    std::unique_lock<std::mutex> io(journal_io_mu_);
    lock.lock();
    if (wedged_) {
      flush_requested_ = false;
      io.unlock();
      continue;
    }
    const uint64_t target = appended_end_;
    const uint64_t epoch = epoch_;
    const uint64_t batch = commits_pending_;
    commits_pending_ = 0;
    flush_requested_ = false;
    lock.unlock();

    Status synced = journal_->Sync();
    fsyncs_.fetch_add(1, std::memory_order_relaxed);

    lock.lock();
    if (!synced.ok()) {
      WedgeLocked(synced);
    } else if (epoch_ == epoch) {
      // Epoch changed ⇒ a compaction reset the offsets while we synced the
      // old file; its own commit protocol released the waiters.
      if (batch > 1) group_commits_.fetch_add(1, std::memory_order_relaxed);
      if (target > durable_end_) durable_end_ = target;
    }
    commit_cv_.notify_all();
    io.unlock();
  }
}

Status DurableProfileStore::Flush() {
  std::unique_lock<std::mutex> io(journal_io_mu_);
  uint64_t target = 0;
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    if (wedged_) return wedge_status_;
    target = appended_end_;
    epoch = epoch_;
  }
  Status synced = journal_->Sync();
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (!synced.ok()) {
    WedgeLocked(synced);
    commit_cv_.notify_all();
    return synced;
  }
  if (epoch_ == epoch && target > durable_end_) durable_end_ = target;
  commit_cv_.notify_all();
  return Status::OK();
}

Status DurableProfileStore::Compact() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return CompactLocked();
}

Status DurableProfileStore::CompactLocked() {
  {
    std::lock_guard<std::mutex> commit(commit_mu_);
    if (wedged_) return wedge_status_;
  }
  if (journal_bytes_.load(std::memory_order_relaxed) == 0) {
    return Status::OK();  // raced with another compaction
  }
  SnapshotData data;
  data.next_version = next_version_;
  data.entries.reserve(texts_.size());
  for (const auto& [id, text] : texts_) {
    auto it = graphs_.find(id);
    CQP_CHECK(it != graphs_.end()) << "texts_/graphs_ diverged for " << id;
    data.entries.push_back(SnapshotEntry{id, it->second.version, text});
  }

  std::unique_lock<std::mutex> io(journal_io_mu_);
  // The commit point: after this rename the snapshot holds every applied
  // mutation (mu_ excludes concurrent appends). On error the old snapshot
  // and the journal are both intact — compaction simply did not happen.
  CQP_RETURN_IF_ERROR(
      storage::journal::WriteSnapshot(*fs_, SnapshotPath(), data));
  snapshot_bytes_.store(storage::journal::EncodeSnapshot(data).size(),
                        std::memory_order_relaxed);

  // Truncate the journal. If this fails, the stale records are harmless
  // for recovery (their versions precede the snapshot's next_version and
  // replay skips them) but the append offset would be unknowable — wedge.
  journal_->Close();
  Status truncated = fs_->Truncate(JournalPath(), 0);
  StatusOr<std::unique_ptr<storage::journal::Writer>> reopened =
      truncated.ok()
          ? storage::journal::Writer::Open(*fs_, JournalPath())
          : StatusOr<std::unique_ptr<storage::journal::Writer>>(truncated);
  std::lock_guard<std::mutex> commit(commit_mu_);
  if (!reopened.ok()) {
    WedgeLocked(reopened.status());
    commit_cv_.notify_all();
    return wedge_status_;
  }
  journal_ = *std::move(reopened);
  journal_bytes_.store(0, std::memory_order_relaxed);
  appended_end_ = 0;
  durable_end_ = 0;
  commits_pending_ = 0;
  ++epoch_;  // releases every waiter on a pre-compaction record
  compactions_.fetch_add(1, std::memory_order_relaxed);
  commit_cv_.notify_all();
  return Status::OK();
}

std::optional<DurabilityStats> DurableProfileStore::durability_stats() const {
  DurabilityStats stats;
  stats.appends = appends_.load(std::memory_order_relaxed);
  stats.append_bytes = append_bytes_.load(std::memory_order_relaxed);
  stats.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  stats.group_commits = group_commits_.load(std::memory_order_relaxed);
  stats.compactions = compactions_.load(std::memory_order_relaxed);
  stats.journal_bytes = journal_bytes_.load(std::memory_order_relaxed);
  stats.snapshot_bytes = snapshot_bytes_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    stats.wedged = wedged_;
  }
  stats.recovered_profiles =
      recovery_.snapshot_profiles + recovery_.replayed_records;
  stats.replayed_records = recovery_.replayed_records;
  stats.dropped_bytes = recovery_.dropped_bytes;
  stats.torn_tail_recovered = recovery_.torn_tail;
  stats.recovery_ms = recovery_.recovery_ms;
  return stats;
}

std::vector<SnapshotEntry> DurableProfileStore::Contents() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<SnapshotEntry> out;
  out.reserve(texts_.size());
  for (const auto& [id, text] : texts_) {
    auto it = graphs_.find(id);
    out.push_back(
        SnapshotEntry{id, it == graphs_.end() ? 0 : it->second.version, text});
  }
  return out;
}

bool DurableProfileStore::wedged() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return wedged_;
}

}  // namespace cqp::server
