#ifndef CQP_SERVER_ADMISSION_H_
#define CQP_SERVER_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cqp::server {

/// Admission-control knobs. The pending gauge counts requests admitted but
/// not yet answered (queued on the worker pool or in flight).
struct AdmissionOptions {
  /// Hard high-watermark: a request arriving with `max_pending` already
  /// pending is shed immediately with kResourceExhausted. Load-shedding
  /// beats unbounded queueing: a queued request that cannot start before
  /// its deadline wastes a worker slot proving it.
  size_t max_pending = 256;
  /// Soft watermark (0 = disabled): above it requests are still admitted
  /// but enter degraded mode — their deadline is clamped to
  /// `degraded_deadline_ms`, which drives the PR 1 fallback ladder and
  /// drains the backlog with cheap (possibly degraded) answers instead of
  /// letting latency collapse for everyone.
  size_t soft_pending = 0;
  /// Deadline imposed on requests admitted above the soft watermark.
  double degraded_deadline_ms = 25.0;
};

/// Bounded-queue admission controller. Lock-free: one atomic gauge plus
/// monotonic counters; TryAdmit/Release are called from connection reader
/// threads and worker threads respectively.
class AdmissionController {
 public:
  struct Ticket {
    bool admitted = false;
    /// Soft watermark exceeded: the caller must clamp the request's
    /// deadline to options().degraded_deadline_ms.
    bool degrade = false;
  };

  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admits or sheds one request. On admission the pending gauge is
  /// incremented; the caller MUST pair it with exactly one Release() once
  /// the response has been written (or the request abandoned).
  Ticket TryAdmit();

  /// Marks one admitted request finished.
  void Release();

  size_t pending() const { return pending_.load(std::memory_order_acquire); }
  uint64_t admitted_total() const {
    return admitted_total_.load(std::memory_order_relaxed);
  }
  uint64_t shed_total() const {
    return shed_total_.load(std::memory_order_relaxed);
  }
  uint64_t degraded_total() const {
    return degraded_total_.load(std::memory_order_relaxed);
  }

  const AdmissionOptions& options() const { return options_; }

 private:
  const AdmissionOptions options_;
  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> admitted_total_{0};
  std::atomic<uint64_t> shed_total_{0};
  std::atomic<uint64_t> degraded_total_{0};
};

}  // namespace cqp::server

#endif  // CQP_SERVER_ADMISSION_H_
