#ifndef CQP_SERVER_ADMISSION_H_
#define CQP_SERVER_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cqp::server {

/// Admission-control knobs. The pending gauge counts requests admitted but
/// not yet answered (queued on the worker pool or in flight).
struct AdmissionOptions {
  /// Hard high-watermark: a request arriving with `max_pending` already
  /// pending is shed immediately with kResourceExhausted. Load-shedding
  /// beats unbounded queueing: a queued request that cannot start before
  /// its deadline wastes a worker slot proving it.
  size_t max_pending = 256;
  /// Soft watermark (0 = disabled): above it requests are still admitted
  /// but enter degraded mode — their deadline is clamped to
  /// `degraded_deadline_ms`, which drives the PR 1 fallback ladder and
  /// drains the backlog with cheap (possibly degraded) answers instead of
  /// letting latency collapse for everyone.
  size_t soft_pending = 0;
  /// Deadline imposed on requests admitted above the soft watermark.
  double degraded_deadline_ms = 25.0;
};

/// Bounded-queue admission controller. Lock-free: one atomic gauge plus
/// monotonic counters; TryAdmit/Release are called from connection reader
/// threads and worker threads respectively.
class AdmissionController {
 public:
  struct Ticket {
    bool admitted = false;
    /// Soft watermark exceeded: the caller must clamp the request's
    /// deadline to options().degraded_deadline_ms.
    bool degrade = false;
  };

  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admits or sheds one request. On admission the pending gauge is
  /// incremented; the caller MUST pair it with exactly one Release() once
  /// the response has been written (or the request abandoned).
  Ticket TryAdmit();

  /// Marks one admitted request finished.
  void Release();

  size_t pending() const { return pending_.load(std::memory_order_acquire); }
  uint64_t admitted_total() const {
    return admitted_total_.load(std::memory_order_relaxed);
  }
  uint64_t shed_total() const {
    return shed_total_.load(std::memory_order_relaxed);
  }
  uint64_t degraded_total() const {
    return degraded_total_.load(std::memory_order_relaxed);
  }

  const AdmissionOptions& options() const { return options_; }

 private:
  const AdmissionOptions options_;
  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> admitted_total_{0};
  std::atomic<uint64_t> shed_total_{0};
  std::atomic<uint64_t> degraded_total_{0};
};

/// The per-loop slice of a whole-server admission budget. Watermarks divide
/// (ceiling) across `num_slices` event loops so each loop admits against
/// its own lock-free controller with zero cross-loop traffic; the ceiling
/// means the summed hard watermark can exceed the configured one by up to
/// num_slices - 1 — watermarks are load-shedding heuristics, not exact
/// quotas, and an uncontended atomic per loop beats one contended gauge.
/// A zero watermark stays zero (0 = shed everything / soft disabled).
AdmissionOptions SliceAdmissionOptions(const AdmissionOptions& options,
                                       size_t num_slices);

/// Read-only aggregate over every loop's admission slice: the view the
/// stats op, Stop()'s drain loop and the tests watch. options() returns
/// the configured (unsliced) options.
class AdmissionTotals {
 public:
  AdmissionTotals(std::vector<const AdmissionController*> slices,
                  const AdmissionOptions* configured)
      : slices_(std::move(slices)), configured_(configured) {}

  size_t pending() const;
  uint64_t admitted_total() const;
  uint64_t shed_total() const;
  uint64_t degraded_total() const;
  const AdmissionOptions& options() const { return *configured_; }

 private:
  std::vector<const AdmissionController*> slices_;
  const AdmissionOptions* configured_;
};

}  // namespace cqp::server

#endif  // CQP_SERVER_ADMISSION_H_
