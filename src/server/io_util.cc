#include "server/io_util.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace cqp::server {

bool SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

ssize_t ReadSome(int fd, char* buf, size_t len) {
  for (;;) {
    ssize_t n = ::read(fd, buf, len);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

bool SetNonBlocking(int fd, bool enable) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want == flags) return true;
  return ::fcntl(fd, F_SETFL, want) == 0;
}

}  // namespace cqp::server
