#include "server/admission.h"

namespace cqp::server {

AdmissionController::Ticket AdmissionController::TryAdmit() {
  size_t pending = pending_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (pending > options_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    shed_total_.fetch_add(1, std::memory_order_relaxed);
    return Ticket{false, false};
  }
  admitted_total_.fetch_add(1, std::memory_order_relaxed);
  bool degrade = options_.soft_pending != 0 && pending > options_.soft_pending;
  if (degrade) degraded_total_.fetch_add(1, std::memory_order_relaxed);
  return Ticket{true, degrade};
}

void AdmissionController::Release() {
  pending_.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace cqp::server
