#include "server/admission.h"

namespace cqp::server {

AdmissionController::Ticket AdmissionController::TryAdmit() {
  size_t pending = pending_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (pending > options_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    shed_total_.fetch_add(1, std::memory_order_relaxed);
    return Ticket{false, false};
  }
  admitted_total_.fetch_add(1, std::memory_order_relaxed);
  bool degrade = options_.soft_pending != 0 && pending > options_.soft_pending;
  if (degrade) degraded_total_.fetch_add(1, std::memory_order_relaxed);
  return Ticket{true, degrade};
}

void AdmissionController::Release() {
  pending_.fetch_sub(1, std::memory_order_acq_rel);
}

AdmissionOptions SliceAdmissionOptions(const AdmissionOptions& options,
                                       size_t num_slices) {
  if (num_slices <= 1) return options;
  auto ceil_div = [num_slices](size_t v) {
    return v == 0 ? size_t{0} : (v + num_slices - 1) / num_slices;
  };
  AdmissionOptions slice = options;
  slice.max_pending = ceil_div(options.max_pending);
  slice.soft_pending = ceil_div(options.soft_pending);
  return slice;
}

size_t AdmissionTotals::pending() const {
  size_t sum = 0;
  for (const AdmissionController* slice : slices_) sum += slice->pending();
  return sum;
}

uint64_t AdmissionTotals::admitted_total() const {
  uint64_t sum = 0;
  for (const AdmissionController* s : slices_) sum += s->admitted_total();
  return sum;
}

uint64_t AdmissionTotals::shed_total() const {
  uint64_t sum = 0;
  for (const AdmissionController* s : slices_) sum += s->shed_total();
  return sum;
}

uint64_t AdmissionTotals::degraded_total() const {
  uint64_t sum = 0;
  for (const AdmissionController* s : slices_) sum += s->degraded_total();
  return sum;
}

}  // namespace cqp::server
