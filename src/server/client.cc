#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cqp::server {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Status Client::Connect(const std::string& host, int port) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Internal(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad host '" + host + "' (use a dotted IPv4)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Internal("connect(" + host + ":" + std::to_string(port) +
                             "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  buffer_.clear();
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

StatusOr<WireResponse> Client::Call(const WireRequest& request) {
  CQP_ASSIGN_OR_RETURN(std::string line, CallRaw(SerializeRequest(request)));
  return ParseResponse(line);
}

StatusOr<std::string> Client::CallRaw(const std::string& line) {
  if (fd_ < 0) return FailedPrecondition("not connected");
  std::string frame = line;
  frame.push_back('\n');
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Internal(std::string("send(): ") + std::strerror(errno));
      Close();
      return status;
    }
    sent += static_cast<size_t>(n);
  }
  return ReadLine();
}

StatusOr<std::string> Client::ReadLine() {
  char chunk[4096];
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    if (buffer_.size() > kMaxFrameBytes) {
      Close();
      return Internal("response frame exceeds the 1 MiB protocol cap");
    }
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return Internal("connection closed by server while awaiting response");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace cqp::server
