#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "server/io_util.h"

namespace cqp::server {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

namespace {

/// connect() errors worth retrying: the server may still be binding, its
/// backlog may be momentarily full, or the route may be flapping. EINTR is
/// handled separately (retried without consuming an attempt).
bool TransientConnectError(int err) {
  switch (err) {
    case ECONNREFUSED:
    case ECONNRESET:
    case ETIMEDOUT:
    case EHOSTUNREACH:
    case ENETUNREACH:
    case EAGAIN:
      return true;
    default:
      return false;
  }
}

}  // namespace

Status Client::Connect(const std::string& host, int port,
                       const ConnectOptions& options) {
  Close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgument("bad host '" + host + "' (use a dotted IPv4)");
  }

  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  // splitmix64 over the seed: deterministic jitter without sharing any
  // global RNG state (tests replay the exact schedule by fixing the seed).
  uint64_t jitter_state = options.jitter_seed + 0x9e3779b97f4a7c15ull;
  double backoff_ms = options.initial_backoff_ms;
  Status last_error;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      uint64_t z = jitter_state += 0x9e3779b97f4a7c15ull;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      z ^= z >> 31;
      // Full jitter in [backoff/2, backoff]: desynchronizes a thundering
      // herd of clients without making the worst-case wait unbounded.
      double jitter = 0.5 + 0.5 * (static_cast<double>(z >> 11) /
                                   static_cast<double>(1ull << 53));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms * jitter));
      backoff_ms = std::min(backoff_ms * 2.0, options.max_backoff_ms);
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Internal(std::string("socket(): ") + std::strerror(errno));
    }
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      fd_ = fd;
      buffer_.clear();
      return Status::OK();
    }
    int err = errno;
    ::close(fd);
    last_error = Internal("connect(" + host + ":" + std::to_string(port) +
                          "): " + std::strerror(err) + " (attempt " +
                          std::to_string(attempt + 1) + "/" +
                          std::to_string(attempts) + ")");
    if (!TransientConnectError(err)) return last_error;
  }
  return last_error;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

StatusOr<WireResponse> Client::Call(const WireRequest& request) {
  CQP_ASSIGN_OR_RETURN(std::string line, CallRaw(SerializeRequest(request)));
  return ParseResponse(line);
}

StatusOr<std::string> Client::CallRaw(const std::string& line) {
  if (fd_ < 0) return FailedPrecondition("not connected");
  std::string frame = line;
  frame.push_back('\n');
  if (!SendAll(fd_, frame.data(), frame.size())) {
    Status status = Internal(std::string("send(): ") + std::strerror(errno));
    Close();
    return status;
  }
  return ReadLine();
}

StatusOr<std::string> Client::ReadLine() {
  char chunk[4096];
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    if (buffer_.size() > kMaxFrameBytes) {
      Close();
      return Internal("response frame exceeds the 1 MiB protocol cap");
    }
    ssize_t n = ReadSome(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      Close();
      return Internal("connection closed by server while awaiting response");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace cqp::server
