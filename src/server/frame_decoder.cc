#include "server/frame_decoder.h"

namespace cqp::server {

FrameDecoder::Result FrameDecoder::Feed(
    const char* data, size_t len,
    const std::function<bool(std::string&&)>& on_line) {
  buffer_.append(data, len);
  size_t start = 0;
  Result result = Result::kOk;
  for (size_t nl = buffer_.find('\n', scan_pos_);
       nl != std::string::npos; nl = buffer_.find('\n', scan_pos_)) {
    size_t end = nl;
    if (end > start && buffer_[end - 1] == '\r') --end;
    std::string line = buffer_.substr(start, end - start);
    start = nl + 1;
    scan_pos_ = start;
    if (!line.empty() && !on_line(std::move(line))) {
      result = Result::kStop;
      break;
    }
  }
  if (result == Result::kOk) scan_pos_ = buffer_.size();
  buffer_.erase(0, start);
  scan_pos_ -= start;
  if (result == Result::kOk && buffer_.size() > max_frame_bytes_) {
    return Result::kFrameTooLong;
  }
  return result;
}

}  // namespace cqp::server
