#ifndef CQP_SERVER_FRAME_DECODER_H_
#define CQP_SERVER_FRAME_DECODER_H_

#include <cstddef>
#include <functional>
#include <string>

namespace cqp::server {

/// Incremental decoder for the '\n'-delimited wire protocol, built for
/// non-blocking sockets where a frame may arrive one byte at a time, split
/// at any boundary, or coalesced with the next frame in a single read.
///
/// Semantics match the blocking reader it replaces exactly:
///  * a complete line is everything up to (not including) '\n', with one
///    trailing '\r' stripped (CRLF tolerance);
///  * empty lines are silently skipped (a bare "\n" keepalive is free);
///  * a line of exactly `max_frame_bytes` is legal; the decoder reports
///    kFrameTooLong only once the *partial* frame exceeds the cap, so two
///    coalesced half-cap frames never trip it.
///
/// Cost is linear in bytes fed: the scan position survives across Feed()
/// calls, so a 1 MiB frame dribbled in 1-byte reads is still O(n) total,
/// not O(n^2).
class FrameDecoder {
 public:
  enum class Result {
    kOk,            ///< all complete lines delivered, remainder buffered
    kStop,          ///< on_line returned false; remaining bytes kept
    kFrameTooLong,  ///< the buffered partial frame exceeds the cap
  };

  explicit FrameDecoder(size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends `len` bytes and invokes `on_line` once per completed line, in
  /// order. on_line returning false aborts the walk (kStop) — the caller
  /// is closing the connection and any buffered tail is moot.
  Result Feed(const char* data, size_t len,
              const std::function<bool(std::string&&)>& on_line);

  /// Bytes of the current partial frame (buffered, no '\n' seen yet).
  size_t buffered() const { return buffer_.size(); }

 private:
  const size_t max_frame_bytes_;
  std::string buffer_;
  size_t scan_pos_ = 0;  ///< first index of buffer_ not yet scanned for '\n'
};

}  // namespace cqp::server

#endif  // CQP_SERVER_FRAME_DECODER_H_
