#ifndef CQP_SERVER_IO_UTIL_H_
#define CQP_SERVER_IO_UTIL_H_

#include <sys/types.h>

#include <cstddef>

namespace cqp::server {

/// Writes all `len` bytes of `data` to `fd`, retrying on EINTR and looping
/// on short writes (send() is free to accept fewer bytes than asked — a
/// signal or a full socket buffer must not tear a protocol frame). Uses
/// MSG_NOSIGNAL so a vanished peer reports EPIPE instead of raising
/// SIGPIPE. Returns true on success; on failure errno holds the cause.
bool SendAll(int fd, const char* data, size_t len);

/// read() with the EINTR retry folded in: returns the byte count (0 = EOF)
/// or a negative value for any error other than EINTR (errno holds the
/// cause). Partial reads are normal for sockets and are returned as-is —
/// callers accumulate into their framing buffer.
ssize_t ReadSome(int fd, char* buf, size_t len);

/// Toggles O_NONBLOCK on `fd`. The event-loop path creates fds
/// non-blocking at the source (SOCK_NONBLOCK / accept4), so this mainly
/// serves tests and benches that flip a blocking client socket into
/// non-blocking mode to probe backpressure. Returns false on fcntl error.
bool SetNonBlocking(int fd, bool enable);

}  // namespace cqp::server

#endif  // CQP_SERVER_IO_UTIL_H_
