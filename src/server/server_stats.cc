#include "server/server_stats.h"

#include <bit>
#include <cmath>

namespace cqp::server {

namespace {

size_t BucketFor(double millis) {
  double us = millis * 1000.0;
  if (us < 1.0) return 0;
  uint64_t v = static_cast<uint64_t>(us);
  size_t bucket = static_cast<size_t>(63 - std::countl_zero(v));
  return bucket < LatencyHistogram::kBuckets
             ? bucket
             : LatencyHistogram::kBuckets - 1;
}

}  // namespace

void LatencyHistogram::Record(double millis) {
  buckets_[BucketFor(millis)].fetch_add(1, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::PercentileMillis(double p) const {
  uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(p * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Upper bound of bucket i: 2^(i+1) µs, reported in ms.
      return std::ldexp(1.0, static_cast<int>(i) + 1) / 1000.0;
    }
  }
  return std::ldexp(1.0, static_cast<int>(kBuckets)) / 1000.0;
}

JsonValue LatencyHistogram::ToJson() const {
  JsonValue obj = JsonValue::Object();
  obj.Set("count", JsonValue::Number(static_cast<double>(TotalCount())));
  obj.Set("p50_ms", JsonValue::Number(PercentileMillis(0.50)));
  obj.Set("p90_ms", JsonValue::Number(PercentileMillis(0.90)));
  obj.Set("p99_ms", JsonValue::Number(PercentileMillis(0.99)));
  JsonValue buckets = JsonValue::Array();
  for (size_t i = 0; i < kBuckets; ++i) {
    uint64_t count = buckets_[i].load(std::memory_order_relaxed);
    if (count == 0) continue;
    JsonValue b = JsonValue::Object();
    b.Set("le_us", JsonValue::Number(std::ldexp(1.0, static_cast<int>(i) + 1)));
    b.Set("count", JsonValue::Number(static_cast<double>(count)));
    buckets.Append(std::move(b));
  }
  obj.Set("buckets", std::move(buckets));
  return obj;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void ServerStats::OnConnectionOpened() {
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::OnConnectionClosed() {
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::OnProtocolError() {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::OnAdmitted() {
  admitted_total_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::OnShed() {
  shed_total_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::OnDegradedAdmission() {
  degraded_admissions_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::OnRequestDone(bool ok, bool degraded_answer,
                                double latency_ms, uint64_t cache_hits,
                                uint64_t cache_misses,
                                uint64_t states_examined) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  if (!ok) errors_total_.fetch_add(1, std::memory_order_relaxed);
  if (degraded_answer) {
    degraded_answers_total_.fetch_add(1, std::memory_order_relaxed);
  }
  cache_hits_total_.fetch_add(cache_hits, std::memory_order_relaxed);
  cache_misses_total_.fetch_add(cache_misses, std::memory_order_relaxed);
  states_total_.fetch_add(states_examined, std::memory_order_relaxed);
  latency_.Record(latency_ms);
}

void ServerStats::OnPlanLookup(bool hit) {
  (hit ? plan_hits_total_ : plan_misses_total_)
      .fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::OnRewrite(uint64_t conjuncts_dropped,
                            uint64_t branches_contradicted,
                            uint64_t branches_subsumed,
                            uint64_t prefs_pruned) {
  conjuncts_dropped_total_.fetch_add(conjuncts_dropped,
                                     std::memory_order_relaxed);
  branches_contradicted_total_.fetch_add(branches_contradicted,
                                         std::memory_order_relaxed);
  branches_subsumed_total_.fetch_add(branches_subsumed,
                                     std::memory_order_relaxed);
  prefs_pruned_total_.fetch_add(prefs_pruned, std::memory_order_relaxed);
}

void ServerStats::ConfigureLoops(size_t n) {
  loops_.clear();
  loops_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<LoopStats>());
  }
}

JsonValue ServerStats::ToJson() const {
  auto n = [](uint64_t v) { return JsonValue::Number(static_cast<double>(v)); };
  JsonValue obj = JsonValue::Object();
  obj.Set("connections_opened",
          n(connections_opened_.load(std::memory_order_relaxed)));
  obj.Set("connections_closed",
          n(connections_closed_.load(std::memory_order_relaxed)));
  obj.Set("protocol_errors",
          n(protocol_errors_.load(std::memory_order_relaxed)));
  obj.Set("admitted", n(admitted_total_.load(std::memory_order_relaxed)));
  obj.Set("shed", n(shed_total_.load(std::memory_order_relaxed)));
  obj.Set("degraded_admissions",
          n(degraded_admissions_.load(std::memory_order_relaxed)));
  obj.Set("requests", n(requests_total_.load(std::memory_order_relaxed)));
  obj.Set("errors", n(errors_total_.load(std::memory_order_relaxed)));
  obj.Set("degraded_answers",
          n(degraded_answers_total_.load(std::memory_order_relaxed)));
  obj.Set("cache_hits", n(cache_hits_total_.load(std::memory_order_relaxed)));
  obj.Set("cache_misses",
          n(cache_misses_total_.load(std::memory_order_relaxed)));
  obj.Set("plan_cache_hits",
          n(plan_hits_total_.load(std::memory_order_relaxed)));
  obj.Set("plan_cache_misses",
          n(plan_misses_total_.load(std::memory_order_relaxed)));
  obj.Set("states_examined",
          n(states_total_.load(std::memory_order_relaxed)));
  JsonValue rewrite = JsonValue::Object();
  rewrite.Set("conjuncts_dropped",
              n(conjuncts_dropped_total_.load(std::memory_order_relaxed)));
  rewrite.Set("branches_contradicted",
              n(branches_contradicted_total_.load(std::memory_order_relaxed)));
  rewrite.Set("branches_subsumed",
              n(branches_subsumed_total_.load(std::memory_order_relaxed)));
  rewrite.Set(
      "branches_eliminated",
      n(branches_contradicted_total_.load(std::memory_order_relaxed) +
        branches_subsumed_total_.load(std::memory_order_relaxed)));
  rewrite.Set("prefs_pruned",
              n(prefs_pruned_total_.load(std::memory_order_relaxed)));
  obj.Set("rewrite", std::move(rewrite));
  obj.Set("latency", latency_.ToJson());
  if (!loops_.empty()) {
    JsonValue loops = JsonValue::Array();
    for (size_t i = 0; i < loops_.size(); ++i) {
      const LoopStats& ls = *loops_[i];
      auto r = [](const std::atomic<uint64_t>& v) {
        return JsonValue::Number(
            static_cast<double>(v.load(std::memory_order_relaxed)));
      };
      JsonValue one = JsonValue::Object();
      one.Set("loop", n(i));
      one.Set("connections",
              JsonValue::Number(static_cast<double>(
                  ls.connections.load(std::memory_order_relaxed))));
      one.Set("accepts", r(ls.accepts));
      one.Set("frames", r(ls.frames));
      one.Set("wakeups", r(ls.wakeups));
      one.Set("tasks", r(ls.tasks));
      one.Set("reads", r(ls.reads));
      one.Set("read_bytes", r(ls.read_bytes));
      one.Set("writevs", r(ls.writevs));
      one.Set("write_bytes", r(ls.write_bytes));
      one.Set("read_pauses", r(ls.read_pauses));
      one.Set("backpressure_closes", r(ls.backpressure_closes));
      one.Set("frame_cap_closes", r(ls.frame_cap_closes));
      loops.Append(std::move(one));
    }
    obj.Set("loops", std::move(loops));
  }
  return obj;
}

std::string ServerStats::ToJsonString() const { return ToJson().Dump(); }

}  // namespace cqp::server
