#ifndef CQP_SERVER_SERVER_H_
#define CQP_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "construct/personalizer.h"
#include "cqp/problem.h"
#include "server/admission.h"
#include "server/connection.h"
#include "server/event_loop.h"
#include "server/profile_store.h"
#include "server/protocol.h"
#include "server/server_stats.h"
#include "storage/database.h"

namespace cqp::server {

/// Server configuration.
struct ServerOptions {
  /// Bind address. The default only answers local clients; widen on
  /// purpose, not by default.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Worker threads running searches; 0 = hardware_concurrency.
  size_t num_threads = 0;
  /// Epoll event-loop (I/O) threads; 0 = hardware_concurrency clamped to
  /// [1, 8]. Each loop owns a SO_REUSEPORT listener, an epoll instance
  /// and a slice of the admission budget.
  size_t io_threads = 0;
  AdmissionOptions admission;
  /// Backpressure high watermark per connection: above this many unsent
  /// response bytes the owning loop stops reading from the connection.
  size_t write_queue_watermark_bytes = 256 * 1024;
  /// Per-connection write-queue hard cap: exceeded means the peer stopped
  /// draining entirely — the connection is dropped (slow-loris defense).
  size_t write_queue_limit_bytes = 4 * 1024 * 1024;
  /// When > 0, shrink accepted sockets' SO_SNDBUF (tests use this to trip
  /// the write-queue watermarks deterministically).
  int so_sndbuf = 0;
  /// Seconds between periodic stats log lines on stderr; 0 disables.
  double stats_interval_s = 0.0;
  /// Graceful-shutdown budget: Stop() stops accepting immediately, then
  /// gives in-flight (admitted) requests up to this long to finish before
  /// cancelling them. 0 cancels immediately (the pre-drain behavior).
  double drain_deadline_ms = 1000.0;
  /// Problem applied when a request carries no constraint bounds.
  cqp::ProblemSpec default_problem = cqp::ProblemSpec::Problem2(400.0);
  /// Algorithm used when a request names none ("auto" = match objective).
  std::string default_algorithm = "auto";
  /// Preference-space cap applied when a request sends no max_k.
  size_t default_max_k = 20;
};

/// The personalization server: accepts line-delimited JSON requests over
/// TCP and answers them with the same engine (and bit-identical results)
/// as a direct construct::Personalizer::Personalize() call.
///
/// Threading model (thread-per-core I/O, PR 9):
///  * a fixed set of epoll event loops, each with its own SO_REUSEPORT
///    listener (the kernel spreads connections across loops), its own
///    admission slice, non-blocking reads through an incremental frame
///    decoder, and writev-batched responses from a bounded per-connection
///    write queue with read-side backpressure;
///  * administrative ops (ping/stats/profiles) are O(µs) and answered
///    inline on the loop; reload and personalize work run on the shared
///    ThreadPool. The request's SearchBudget deadline is anchored at
///    ADMISSION time, so queueing delay counts against the deadline and a
///    request that waited too long degrades (or answers with its original
///    query) instead of blowing its latency target;
///  * workers never touch sockets: a finished request posts its response
///    frame back to the owning loop via an eventfd wakeup;
///  * each request's budget carries the connection's CancelToken: when
///    the peer drops, teardown cancels it and in-flight searches for that
///    connection unwind at the next ShouldStop() poll.
///
/// Stop() is graceful and idempotent: close the listeners, let admitted
/// requests finish within drain_deadline_ms, stop the loops (which
/// cancels and tears down every connection), drain the worker pool, and
/// flush the profile store's journal (a no-op for the in-memory store) so
/// a durable deployment loses nothing on a clean shutdown.
class Server {
 public:
  /// `db` must be Analyze()d and outlive the server; `profiles` supplies
  /// per-request graphs and evaluation caches and must outlive the server.
  Server(const storage::Database* db, ProfileStore* profiles,
         ServerOptions options = ServerOptions());
  ~Server();  ///< calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds one SO_REUSEPORT listener per loop, then spawns the loops.
  /// kInternal when the port is taken, kInvalidArgument for a bad host.
  Status Start();

  /// Graceful shutdown; safe to call twice, and from any thread.
  void Stop();

  /// The bound port (resolves port 0), valid after Start().
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats& stats() { return stats_; }
  const ServerOptions& options() const { return options_; }
  /// Aggregate admission view across every loop's slice (pending,
  /// admitted/shed/degraded totals); options() is the configured,
  /// unsliced budget.
  AdmissionTotals admission() const;
  /// Number of event loops actually running (resolved from io_threads).
  size_t num_io_threads() const { return loops_.size(); }

  /// The full stats document: server counters + per-loop gauges +
  /// admission + plan cache + journal + shard tier (when the profile
  /// store is sharded). One assembly shared by the stats wire op, the
  /// periodic stats log and the shell's .stats display.
  JsonValue StatsJson();

 private:
  /// Parses and dispatches one frame on a loop thread; returns false when
  /// the connection must close once pending responses flush.
  bool HandleLine(const std::shared_ptr<Connection>& conn,
                  const std::string& line);
  void HandlePersonalize(const std::shared_ptr<Connection>& conn,
                         WireRequest request);
  /// Runs on a worker thread: the admitted search itself.
  void RunPersonalize(const std::shared_ptr<Connection>& conn,
                      const WireRequest& request,
                      std::chrono::steady_clock::time_point admitted_at,
                      bool degrade);
  void StatsLoop();

  const storage::Database* db_;
  ProfileStore* profiles_;
  const ServerOptions options_;
  ServerStats stats_;

  std::atomic<bool> running_{false};
  int port_ = 0;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::thread stats_thread_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace cqp::server

#endif  // CQP_SERVER_SERVER_H_
