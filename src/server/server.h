#ifndef CQP_SERVER_SERVER_H_
#define CQP_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "construct/personalizer.h"
#include "cqp/problem.h"
#include "server/admission.h"
#include "server/connection.h"
#include "server/profile_store.h"
#include "server/protocol.h"
#include "server/server_stats.h"
#include "storage/database.h"

namespace cqp::server {

/// Server configuration.
struct ServerOptions {
  /// Bind address. The default only answers local clients; widen on
  /// purpose, not by default.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Worker threads running searches; 0 = hardware_concurrency.
  size_t num_threads = 0;
  AdmissionOptions admission;
  /// Seconds between periodic stats log lines on stderr; 0 disables.
  double stats_interval_s = 0.0;
  /// Graceful-shutdown budget: Stop() stops accepting immediately, then
  /// gives in-flight (admitted) requests up to this long to finish before
  /// cancelling them. 0 cancels immediately (the pre-drain behavior).
  double drain_deadline_ms = 1000.0;
  /// Problem applied when a request carries no constraint bounds.
  cqp::ProblemSpec default_problem = cqp::ProblemSpec::Problem2(400.0);
  /// Algorithm used when a request names none ("auto" = match objective).
  std::string default_algorithm = "auto";
  /// Preference-space cap applied when a request sends no max_k.
  size_t default_max_k = 20;
};

/// The personalization server: accepts line-delimited JSON requests over
/// TCP and answers them with the same engine (and bit-identical results)
/// as a direct construct::Personalizer::Personalize() call.
///
/// Threading model:
///  * one accept thread;
///  * one reader thread per connection (framing + inline administrative
///    ops — ping/stats/profiles/reload are O(µs) and never queue);
///  * personalize work runs on a shared ThreadPool, gated by the
///    AdmissionController. The request's SearchBudget deadline is anchored
///    at ADMISSION time, so queueing delay counts against the deadline and
///    a request that waited too long degrades (or answers with its
///    original query) instead of blowing its latency target.
///  * Each request's budget carries the connection's CancelToken: when the
///    peer drops, the reader cancels it and in-flight searches for that
///    connection unwind at the next ShouldStop() poll.
///
/// Stop() is graceful and idempotent: close the listener, join the accept
/// thread, let admitted requests finish within drain_deadline_ms, cancel
/// + shut down every connection, join the readers, drain the worker pool,
/// and flush the profile store's journal (a no-op for the in-memory
/// store) so a durable deployment loses nothing on a clean shutdown.
class Server {
 public:
  /// `db` must be Analyze()d and outlive the server; `profiles` supplies
  /// per-request graphs and evaluation caches and must outlive the server.
  Server(const storage::Database* db, ProfileStore* profiles,
         ServerOptions options = ServerOptions());
  ~Server();  ///< calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the accept loop. kInternal when the port is
  /// taken, kInvalidArgument for a bad host.
  Status Start();

  /// Graceful shutdown; safe to call twice, and from any thread.
  void Stop();

  /// The bound port (resolves port 0), valid after Start().
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats& stats() { return stats_; }
  const ServerOptions& options() const { return options_; }
  AdmissionController& admission() { return admission_; }

  /// The full stats document: server counters + admission + plan cache +
  /// journal + shard tier (when the profile store is sharded). One
  /// assembly shared by the stats wire op, the periodic stats log and the
  /// shell's .stats display.
  JsonValue StatsJson();

 private:
  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  /// Parses and dispatches one frame; returns false when the connection
  /// must close (oversized frame or unwritable peer).
  bool HandleLine(const std::shared_ptr<Connection>& conn,
                  const std::string& line);
  void HandlePersonalize(const std::shared_ptr<Connection>& conn,
                         WireRequest request);
  /// Runs on a worker thread: the admitted search itself.
  void RunPersonalize(const std::shared_ptr<Connection>& conn,
                      const WireRequest& request,
                      std::chrono::steady_clock::time_point admitted_at,
                      bool degrade);
  void StatsLoop();
  void ReapFinishedReaders();

  const storage::Database* db_;
  ProfileStore* profiles_;
  const ServerOptions options_;
  AdmissionController admission_;
  ServerStats stats_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::thread stats_thread_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex conns_mu_;
  uint64_t next_conn_id_ = 1;                 ///< guarded by conns_mu_
  std::map<uint64_t, std::shared_ptr<Connection>> conns_;  ///< guarded
  std::map<uint64_t, std::thread> readers_;   ///< guarded by conns_mu_
  std::vector<uint64_t> finished_readers_;    ///< guarded by conns_mu_
};

}  // namespace cqp::server

#endif  // CQP_SERVER_SERVER_H_
