#ifndef CQP_SERVER_PROFILE_JOURNAL_CODEC_H_
#define CQP_SERVER_PROFILE_JOURNAL_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "storage/journal/coding.h"

namespace cqp::server {

/// Journal record payload shared by DurableProfileStore and the sharded
/// profile tier (the framing + CRC live in journal::FrameRecord):
///
///   put:    'P' [version u64][id lpstring][profile text lpstring]
///   remove: 'R' [version u64][id lpstring]
///
/// where lpstring = [len u32][bytes]. Both stores write the same records,
/// which is what makes a single-directory store migratable into shard 0
/// of a sharded tier (docs/durability.md).
inline constexpr char kJournalOpPut = 'P';
inline constexpr char kJournalOpRemove = 'R';

struct DecodedProfileMutation {
  char op = 0;
  uint64_t version = 0;
  std::string_view id;
  std::string_view text;
};

inline std::string EncodeProfileMutation(char op, uint64_t version,
                                         const std::string& id,
                                         const std::string& text) {
  std::string payload;
  payload.reserve(1 + 8 + 4 + id.size() +
                  (op == kJournalOpPut ? 4 + text.size() : 0));
  payload.push_back(op);
  storage::PutFixed64(&payload, version);
  storage::PutLengthPrefixed(&payload, id);
  if (op == kJournalOpPut) storage::PutLengthPrefixed(&payload, text);
  return payload;
}

inline bool DecodeProfileMutation(std::string_view payload,
                                  DecodedProfileMutation* out) {
  if (payload.size() < 1 + 8) return false;
  out->op = payload[0];
  if (out->op != kJournalOpPut && out->op != kJournalOpRemove) return false;
  out->version = storage::GetFixed64(payload.data() + 1);
  size_t pos = 1 + 8;
  if (!storage::GetLengthPrefixed(payload, &pos, &out->id)) return false;
  if (out->op == kJournalOpPut) {
    if (!storage::GetLengthPrefixed(payload, &pos, &out->text)) return false;
  }
  return pos == payload.size();
}

/// Byte offset of the profile text within a put record's *payload* (past
/// the op byte, version, id and the text's own length prefix). The
/// demand-paging tier records `record_offset + kRecordHeaderBytes + this`
/// as the text's disk ref at append time.
inline size_t PutPayloadTextOffset(size_t id_size) {
  return 1 + 8 + 4 + id_size + 4;
}

}  // namespace cqp::server

#endif  // CQP_SERVER_PROFILE_JOURNAL_CODEC_H_
