#ifndef CQP_SERVER_SHARD_PROFILE_SHARD_H_
#define CQP_SERVER_SHARD_PROFILE_SHARD_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "construct/plan_cache.h"
#include "estimation/eval_cache.h"
#include "prefs/graph.h"
#include "prefs/profile.h"
#include "server/profile_store.h"
#include "storage/database.h"
#include "storage/journal/journal.h"
#include "storage/journal/snapshot.h"

namespace cqp::server::shard {

/// Per-shard configuration (ShardedProfileStore divides its totals by the
/// shard count before constructing these).
struct ShardOptions {
  /// Directory holding this shard's `journal` and `snapshot`; created if
  /// missing. Same file formats as the single-directory
  /// DurableProfileStore, so one PR 6 directory IS a valid shard.
  std::string dir;
  /// Snapshot-compact the journal once it grows past this many bytes.
  uint64_t compact_threshold_bytes = 4ull << 20;
  /// Resident working-set budget: once the accounted bytes of in-memory
  /// graphs exceed this, the LRU tail is paged out (in-use graphs are
  /// skipped — see Find()).
  uint64_t resident_budget_bytes = 64ull << 20;
  /// File I/O goes through this filesystem; null = PosixFileSystem().
  storage::FileSystem* fs = nullptr;
};

/// One shard of the demand-paged profile tier: a crash-safe WAL + snapshot
/// store (PR 6 semantics: journal-before-apply, OK ⇒ fsynced, wedge on
/// journal failure) that does NOT keep every graph in memory.
///
/// The in-memory index maps every id to its version and a *disk ref* — the
/// byte range of the profile text inside the snapshot or the journal. The
/// graph itself is built lazily: Open() only scans the snapshot header and
/// journal frames (no parsing, no graph builds), so opening a shard with a
/// million profiles costs one sequential read. Find() pages a cold profile
/// in with a single pread + parse + graph build, performed outside the
/// shard lock; concurrent finds of the same cold id share one page-in
/// (single-flight — the thundering-herd guard).
///
/// Residency is bounded: every resident graph is charged its approximate
/// heap bytes (PersonalizationGraph::ApproxMemoryBytes) and an LRU list
/// pages out the coldest graphs once the budget is exceeded. A graph
/// handed out to a request is pinned by its shared_ptr refcount — eviction
/// skips any graph a request still holds, so paging can never yank a
/// profile mid-Personalize.
///
/// Each shard also owns its slice of the cache invalidation domain: an
/// EvalCacheRegistry and a PlanCache that only ever see this shard's ids.
/// Cross-shard cache interference is structurally impossible, and the
/// version keys those caches embed stay monotonic per shard because the
/// version counter persists in the shard's own snapshot/journal.
///
/// Durability: fsync is inline per mutation (strongest PR 6 semantics —
/// an error means NOT applied). A sharded tier gets its write concurrency
/// from having N independent journals rather than from group commit.
///
/// Thread safety: all methods are thread-safe (one mutex per shard).
class ProfileShard {
 public:
  /// Opens (or creates) the shard in options.dir and indexes its state.
  /// A torn journal tail is recovered from; a corrupt snapshot is an error.
  static StatusOr<std::unique_ptr<ProfileShard>> Open(
      const storage::Database* db, size_t index, ShardOptions options);

  ~ProfileShard();  ///< flushes and closes the journal

  ProfileShard(const ProfileShard&) = delete;
  ProfileShard& operator=(const ProfileShard&) = delete;

  /// Validates + journals + fsyncs + applies. The new graph enters the
  /// working set resident (a freshly put profile is presumed hot).
  Status Put(const std::string& id, const prefs::Profile& profile);

  /// Journals + fsyncs + applies the tombstone. NotFound when absent.
  Status Remove(const std::string& id);

  /// The graph + version for `id`; Snapshot::graph is null when the id is
  /// unknown (or its on-disk bytes no longer parse/validate — counted in
  /// stats().page_in_errors). Pages the graph in from disk when cold.
  ProfileStore::Snapshot Find(const std::string& id);

  /// fsyncs the journal (appends are already fsynced inline; this is the
  /// graceful-shutdown belt-and-braces call).
  Status Flush();

  /// Snapshot-compacts the journal now (also runs automatically past
  /// compact_threshold_bytes). Rewrites every live disk ref to point into
  /// the new snapshot; residency is unaffected.
  Status Compact();

  std::vector<std::string> Ids() const;  ///< sorted
  size_t num_profiles() const;

  bool wedged() const;

  /// Paging + journal counters (ShardStats::shard is this shard's index).
  ShardStats stats() const;

  /// The full durable contents as (id, version, profile text), sorted by
  /// id — the oracle view used by tools/cqp_crashfuzz. Reads paged-out
  /// values back from disk, hence fallible.
  StatusOr<std::vector<storage::journal::SnapshotEntry>> Contents() const;

  /// What recovery found at Open() time.
  struct RecoveryInfo {
    size_t snapshot_profiles = 0;  ///< ids indexed from the snapshot
    size_t replayed_records = 0;   ///< journal records applied to the index
    size_t skipped_records = 0;    ///< pre-snapshot records still journaled
    bool torn_tail = false;
    uint64_t dropped_bytes = 0;
    double recovery_ms = 0.0;
  };
  const RecoveryInfo& recovery() const { return recovery_; }

  /// This shard's slice of the cache invalidation domain.
  estimation::EvalCacheRegistry& caches() { return caches_; }
  construct::PlanCache& plans() { return plans_; }

 private:
  ProfileShard(const storage::Database* db, size_t index, ShardOptions options);

  /// Where a profile's text lives on disk.
  struct DiskRef {
    enum class Where : uint8_t { kSnapshot, kJournal };
    Where where = Where::kJournal;
    uint64_t offset = 0;  ///< byte offset of the text within the file
    uint32_t length = 0;  ///< text length
  };

  struct Entry {
    uint64_t version = 0;
    DiskRef ref;
    /// Resident graph; null when paged out. A copy handed to a request
    /// keeps the graph alive (and pins it against eviction) even after
    /// this field is reset.
    std::shared_ptr<const prefs::PersonalizationGraph> graph;
    size_t charge = 0;  ///< accounted resident bytes while resident
    bool loading = false;  ///< a single-flight page-in is running
    std::list<std::string>::iterator lru_it;  ///< valid iff graph != null
  };

  std::string JournalPath() const { return options_.dir + "/journal"; }
  std::string SnapshotPath() const { return options_.dir + "/snapshot"; }

  Status Recover();
  /// pread + parse + build for a disk ref. Called WITHOUT mu_ held.
  StatusOr<std::shared_ptr<const prefs::PersonalizationGraph>> LoadRef(
      const DiskRef& ref) const;
  /// Reads a ref's raw text. Called with or without mu_ (pure I/O).
  StatusOr<std::string> ReadText(const DiskRef& ref) const;
  /// Pages out LRU graphs until resident_bytes_ fits the budget; skips
  /// graphs whose refcount shows a request still using them. Holds mu_.
  void EvictLocked();
  /// Inserts/updates `id`'s resident graph + accounting. Holds mu_.
  void InstallResidentLocked(
      const std::string& id, Entry& entry,
      std::shared_ptr<const prefs::PersonalizationGraph> graph);
  /// Drops `entry`'s residency accounting if resident. Holds mu_.
  void DropResidencyLocked(Entry& entry);
  /// The compaction body; caller holds mu_.
  Status CompactLocked();
  /// Latches the wedge; caller holds mu_.
  void WedgeLocked(const Status& status);

  const storage::Database* db_;
  const size_t index_;
  const ShardOptions options_;
  storage::FileSystem* fs_;  ///< options_.fs or the posix filesystem
  RecoveryInfo recovery_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< page-in completion / entry changes
  std::map<std::string, Entry> entries_;       ///< guarded by mu_
  std::list<std::string> lru_;                 ///< cold → hot; guarded by mu_
  uint64_t next_version_ = 1;                  ///< guarded by mu_
  std::unique_ptr<storage::journal::Writer> journal_;  ///< guarded by mu_
  bool wedged_ = false;
  Status wedge_status_;
  /// Page-in vs compaction interlock: loaders pread the files compaction
  /// renames/truncates, so Compact() quiesces in-flight loads and parks
  /// new ones until the refreshed disk refs are installed.
  size_t loads_in_flight_ = 0;  ///< guarded by mu_
  bool compacting_ = false;     ///< guarded by mu_

  /// Counters, guarded by mu_ (stats() takes the lock).
  uint64_t resident_bytes_ = 0;
  size_t resident_profiles_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t page_ins_ = 0;
  uint64_t page_in_waits_ = 0;
  uint64_t page_in_errors_ = 0;
  uint64_t evictions_ = 0;
  uint64_t pinned_skips_ = 0;
  uint64_t appends_ = 0;
  uint64_t append_bytes_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t compactions_ = 0;
  uint64_t journal_bytes_ = 0;
  uint64_t snapshot_bytes_ = 0;

  estimation::EvalCacheRegistry caches_;
  construct::PlanCache plans_;
};

}  // namespace cqp::server::shard

#endif  // CQP_SERVER_SHARD_PROFILE_SHARD_H_
