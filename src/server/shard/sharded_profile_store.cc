#include "server/shard/sharded_profile_store.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/stopwatch.h"

namespace cqp::server::shard {

namespace {

constexpr char kManifestMagic[] = "cqp-shards v1";

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

std::string EncodeManifest(size_t num_shards) {
  std::ostringstream out;
  out << kManifestMagic << "\n"
      << "shards " << num_shards << "\n";
  return out.str();
}

StatusOr<size_t> ParseManifest(const std::string& text) {
  std::istringstream in(text);
  std::string magic_line;
  if (!std::getline(in, magic_line) || magic_line != kManifestMagic) {
    return Internal("shard MANIFEST has bad magic line '" + magic_line + "'");
  }
  std::string word;
  size_t shards = 0;
  if (!(in >> word >> shards) || word != "shards" || shards == 0) {
    return Internal("shard MANIFEST has no valid 'shards N' line");
  }
  return shards;
}

}  // namespace

ShardedProfileStore::ShardedProfileStore(const storage::Database* db,
                                         ShardedStoreOptions options)
    : ProfileStore(db), options_(std::move(options)) {}

size_t ShardedProfileStore::ShardIndexForId(std::string_view id,
                                            size_t num_shards) {
  // FNV-1a 64: stable across platforms and process restarts — the shard
  // layout on disk depends on it.
  uint64_t hash = 14695981039346656037ull;
  for (char c : id) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return static_cast<size_t>(hash % num_shards);
}

std::string ShardedProfileStore::ShardDirName(size_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%03zu", index);
  return buf;
}

StatusOr<std::unique_ptr<ShardedProfileStore>> ShardedProfileStore::Open(
    const storage::Database* db, ShardedStoreOptions options) {
  if (options.dir.empty()) {
    return InvalidArgument("ShardedStoreOptions.dir must be set");
  }
  storage::FileSystem* fs =
      options.fs != nullptr ? options.fs : &storage::PosixFileSystem();
  CQP_RETURN_IF_ERROR(fs->CreateDirs(options.dir));

  // Resolve the shard count against the MANIFEST: the hash routing bakes
  // N into the directory layout, so a mismatch must be an error, never a
  // silent remap.
  const std::string manifest_path = ManifestPath(options.dir);
  if (fs->Exists(manifest_path)) {
    CQP_ASSIGN_OR_RETURN(std::string text, fs->ReadFile(manifest_path));
    CQP_ASSIGN_OR_RETURN(size_t on_disk, ParseManifest(text));
    if (options.num_shards != 0 && options.num_shards != on_disk) {
      return InvalidArgument(
          "shard directory '" + options.dir + "' was created with " +
          std::to_string(on_disk) + " shards; refusing to open with " +
          std::to_string(options.num_shards) +
          " (profiles would route to the wrong shard)");
    }
    options.num_shards = on_disk;
  } else {
    if (options.num_shards == 0) options.num_shards = kDefaultShards;
    CQP_RETURN_IF_ERROR(storage::AtomicWriteFile(
        *fs, manifest_path, EncodeManifest(options.num_shards)));
  }

  Stopwatch timer;
  std::unique_ptr<ShardedProfileStore> store(
      new ShardedProfileStore(db, std::move(options)));
  const ShardedStoreOptions& opts = store->options_;
  store->shards_.reserve(opts.num_shards);
  for (size_t i = 0; i < opts.num_shards; ++i) {
    ShardOptions shard_options;
    shard_options.dir = opts.dir + "/" + ShardDirName(i);
    shard_options.compact_threshold_bytes = opts.compact_threshold_bytes;
    shard_options.resident_budget_bytes =
        std::max<uint64_t>(1, opts.resident_budget_bytes / opts.num_shards);
    shard_options.fs = opts.fs;
    CQP_ASSIGN_OR_RETURN(std::unique_ptr<ProfileShard> shard,
                         ProfileShard::Open(db, i, std::move(shard_options)));
    store->shards_.push_back(std::move(shard));
  }
  store->open_ms_ = timer.ElapsedMillis();
  return store;
}

ProfileShard& ShardedProfileStore::ShardFor(const std::string& id) const {
  return *shards_[ShardIndexForId(id, shards_.size())];
}

Status ShardedProfileStore::Put(const std::string& id, prefs::Profile profile) {
  if (id.empty()) return InvalidArgument("profile id must be non-empty");
  return ShardFor(id).Put(id, profile);
}

Status ShardedProfileStore::Remove(const std::string& id) {
  return ShardFor(id).Remove(id);
}

Status ShardedProfileStore::Flush() {
  Status first = Status::OK();
  for (const auto& shard : shards_) {
    Status flushed = shard->Flush();
    if (first.ok() && !flushed.ok()) first = flushed;
  }
  return first;
}

ProfileStore::Snapshot ShardedProfileStore::FindSnapshot(
    const std::string& id) const {
  return ShardFor(id).Find(id);
}

std::vector<std::string> ShardedProfileStore::Ids() const {
  std::vector<std::string> all;
  for (const auto& shard : shards_) {
    std::vector<std::string> ids = shard->Ids();
    all.insert(all.end(), std::make_move_iterator(ids.begin()),
               std::make_move_iterator(ids.end()));
  }
  std::sort(all.begin(), all.end());
  return all;
}

size_t ShardedProfileStore::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->num_profiles();
  return total;
}

estimation::EvalCacheRegistry& ShardedProfileStore::caches_for(
    const std::string& id) {
  return ShardFor(id).caches();
}

construct::PlanCache& ShardedProfileStore::plans_for(const std::string& id) {
  return ShardFor(id).plans();
}

construct::PlanCacheStats ShardedProfileStore::plan_stats() const {
  construct::PlanCacheStats total;
  for (const auto& shard : shards_) {
    construct::PlanCacheStats s = shard->plans().stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.invalidations += s.invalidations;
    total.entries += s.entries;
  }
  return total;
}

std::optional<DurabilityStats> ShardedProfileStore::durability_stats() const {
  DurabilityStats total;
  for (const auto& shard : shards_) {
    ShardStats s = shard->stats();
    total.appends += s.journal.appends;
    total.append_bytes += s.journal.append_bytes;
    total.fsyncs += s.journal.fsyncs;
    total.group_commits += s.journal.group_commits;
    total.compactions += s.journal.compactions;
    total.journal_bytes += s.journal.journal_bytes;
    total.snapshot_bytes += s.journal.snapshot_bytes;
    total.wedged = total.wedged || s.journal.wedged;
    total.recovered_profiles += s.journal.recovered_profiles;
    total.replayed_records += s.journal.replayed_records;
    total.dropped_bytes += s.journal.dropped_bytes;
    total.torn_tail_recovered =
        total.torn_tail_recovered || s.journal.torn_tail_recovered;
  }
  total.recovery_ms = open_ms_;
  return total;
}

std::optional<ShardTierStats> ShardedProfileStore::shard_stats() const {
  ShardTierStats tier;
  tier.shards = shards_.size();
  tier.per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s = shard->stats();
    tier.resident_bytes += s.resident_bytes;
    tier.resident_budget_bytes += s.resident_budget_bytes;
    tier.profiles += s.profiles;
    tier.resident_profiles += s.resident_profiles;
    tier.hits += s.hits;
    tier.misses += s.misses;
    tier.page_ins += s.page_ins;
    tier.page_in_waits += s.page_in_waits;
    tier.page_in_errors += s.page_in_errors;
    tier.evictions += s.evictions;
    tier.pinned_skips += s.pinned_skips;
    tier.per_shard.push_back(std::move(s));
  }
  return tier;
}

Status ShardedProfileStore::Compact() {
  Status first = Status::OK();
  for (const auto& shard : shards_) {
    Status compacted = shard->Compact();
    if (first.ok() && !compacted.ok()) first = compacted;
  }
  return first;
}

StatusOr<std::vector<storage::journal::SnapshotEntry>>
ShardedProfileStore::Contents() const {
  std::vector<storage::journal::SnapshotEntry> all;
  for (const auto& shard : shards_) {
    CQP_ASSIGN_OR_RETURN(std::vector<storage::journal::SnapshotEntry> part,
                         shard->Contents());
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(all.begin(), all.end(),
            [](const storage::journal::SnapshotEntry& a,
               const storage::journal::SnapshotEntry& b) {
              return a.key < b.key;
            });
  return all;
}

bool ShardedProfileStore::wedged() const {
  for (const auto& shard : shards_) {
    if (shard->wedged()) return true;
  }
  return false;
}

}  // namespace cqp::server::shard
