#include "server/shard/profile_shard.h"

#include <cstdio>
#include <utility>

#include "common/stopwatch.h"
#include "server/profile_journal_codec.h"

namespace cqp::server::shard {

namespace {

using storage::journal::SnapshotData;
using storage::journal::SnapshotEntry;

/// Residency charge beyond the graph itself: the shared_ptr control
/// block, the LRU node and its id copy (the map node exists whether the
/// profile is resident or not, so it is not charged).
constexpr size_t kResidentOverheadBytes = 128;

}  // namespace

ProfileShard::ProfileShard(const storage::Database* db, size_t index,
                           ShardOptions options)
    : db_(db),
      index_(index),
      options_(std::move(options)),
      fs_(options_.fs != nullptr ? options_.fs : &storage::PosixFileSystem()) {
  CQP_CHECK(db_ != nullptr);
}

StatusOr<std::unique_ptr<ProfileShard>> ProfileShard::Open(
    const storage::Database* db, size_t index, ShardOptions options) {
  if (options.dir.empty()) {
    return InvalidArgument("ShardOptions.dir must be set");
  }
  std::unique_ptr<ProfileShard> shard(
      new ProfileShard(db, index, std::move(options)));
  CQP_RETURN_IF_ERROR(shard->Recover());
  return shard;
}

ProfileShard::~ProfileShard() {
  if (journal_ != nullptr) {
    Flush();  // best effort; a wedged journal already reported its error
    journal_->Close();
  }
}

Status ProfileShard::Recover() {
  Stopwatch timer;
  CQP_RETURN_IF_ERROR(fs_->CreateDirs(options_.dir));

  // 1. Index the snapshot — record (version, disk ref) per id, but build
  // no graphs and keep no texts: this is what makes opening a shard with
  // a million profiles one sequential read instead of a million parses.
  uint64_t snap_next = 1;
  if (fs_->Exists(SnapshotPath())) {
    CQP_ASSIGN_OR_RETURN(
        SnapshotData snap, storage::journal::ReadSnapshot(*fs_, SnapshotPath()));
    snap_next = snap.next_version;
    CQP_ASSIGN_OR_RETURN(snapshot_bytes_, fs_->FileSize(SnapshotPath()));
    for (const SnapshotEntry& e : snap.entries) {
      Entry& entry = entries_[e.key];
      entry.version = e.version;
      entry.ref = DiskRef{DiskRef::Where::kSnapshot, e.value_offset,
                          static_cast<uint32_t>(e.value.size())};
      ++recovery_.snapshot_profiles;
    }
  }
  fs_->Remove(SnapshotPath() + ".tmp");

  // 2. Journal replay over the index. Replay hands out payloads in file
  // order, so a running cursor reconstructs each record's offset — that
  // plus the codec's fixed layout is the journal-resident disk ref.
  uint64_t max_next = snap_next;
  uint64_t cursor = 0;
  CQP_ASSIGN_OR_RETURN(
      storage::journal::ReplayResult replay,
      storage::journal::Replay(
          *fs_, JournalPath(), [&](std::string_view payload) -> Status {
            const uint64_t record_start = cursor;
            cursor += storage::journal::kRecordHeaderBytes + payload.size();
            DecodedProfileMutation record;
            if (!DecodeProfileMutation(payload, &record)) {
              return Internal(
                  "journal record passed its checksum but does not decode — "
                  "refusing to guess (journal format bug or external "
                  "corruption)");
            }
            if (record.version < snap_next) {
              ++recovery_.skipped_records;
              return Status::OK();
            }
            std::string id(record.id);
            if (record.op == kJournalOpPut) {
              Entry& entry = entries_[id];
              entry.version = record.version;
              entry.ref = DiskRef{
                  DiskRef::Where::kJournal,
                  record_start + storage::journal::kRecordHeaderBytes +
                      PutPayloadTextOffset(id.size()),
                  static_cast<uint32_t>(record.text.size())};
            } else {
              entries_.erase(id);
            }
            if (record.version + 1 > max_next) max_next = record.version + 1;
            ++recovery_.replayed_records;
            return Status::OK();
          }));
  recovery_.torn_tail = replay.torn_tail;
  recovery_.dropped_bytes = replay.dropped_bytes;
  CQP_RETURN_IF_ERROR(
      storage::journal::DropTornTail(*fs_, JournalPath(), replay));
  next_version_ = max_next;

  // 3. Reopen the append side at the clean tail.
  CQP_ASSIGN_OR_RETURN(journal_,
                       storage::journal::Writer::Open(*fs_, JournalPath()));
  journal_bytes_ = journal_->end_offset();
  recovery_.recovery_ms = timer.ElapsedMillis();
  return Status::OK();
}

void ProfileShard::WedgeLocked(const Status& status) {
  if (!wedged_) {
    wedged_ = true;
    wedge_status_ =
        Internal("profile shard " + std::to_string(index_) + " wedged: " +
                 status.ToString() + " (shard is read-only; reopen to recover)");
    std::fprintf(stderr, "%s\n", wedge_status_.message().c_str());
  }
}

StatusOr<std::string> ProfileShard::ReadText(const DiskRef& ref) const {
  const std::string& path =
      ref.where == DiskRef::Where::kSnapshot ? SnapshotPath() : JournalPath();
  return fs_->ReadAt(path, ref.offset, ref.length);
}

StatusOr<std::shared_ptr<const prefs::PersonalizationGraph>>
ProfileShard::LoadRef(const DiskRef& ref) const {
  CQP_ASSIGN_OR_RETURN(std::string text, ReadText(ref));
  CQP_ASSIGN_OR_RETURN(prefs::Profile profile, prefs::Profile::Parse(text));
  CQP_ASSIGN_OR_RETURN(
      prefs::PersonalizationGraph graph,
      prefs::PersonalizationGraph::Build(std::move(profile), *db_));
  return std::make_shared<const prefs::PersonalizationGraph>(std::move(graph));
}

void ProfileShard::DropResidencyLocked(Entry& entry) {
  if (entry.graph == nullptr) return;
  resident_bytes_ -= entry.charge;
  --resident_profiles_;
  entry.charge = 0;
  entry.graph.reset();
  lru_.erase(entry.lru_it);
}

void ProfileShard::InstallResidentLocked(
    const std::string& id, Entry& entry,
    std::shared_ptr<const prefs::PersonalizationGraph> graph) {
  DropResidencyLocked(entry);
  entry.graph = std::move(graph);
  entry.charge =
      entry.graph->ApproxMemoryBytes() + id.size() + kResidentOverheadBytes;
  resident_bytes_ += entry.charge;
  ++resident_profiles_;
  entry.lru_it = lru_.insert(lru_.end(), id);
}

void ProfileShard::EvictLocked() {
  auto it = lru_.begin();
  while (resident_bytes_ > options_.resident_budget_bytes &&
         it != lru_.end()) {
    auto eit = entries_.find(*it);
    CQP_CHECK(eit != entries_.end()) << "LRU id without entry: " << *it;
    Entry& entry = eit->second;
    // use_count > 1 means a request still holds a copy of this graph:
    // handing it out happened under mu_, so the count can only be stale
    // in the safe direction (we may skip a graph that was just released,
    // never evict one still in use).
    if (entry.graph.use_count() > 1) {
      ++pinned_skips_;
      ++it;
      continue;
    }
    ++evictions_;
    resident_bytes_ -= entry.charge;
    --resident_profiles_;
    entry.charge = 0;
    entry.graph.reset();
    it = lru_.erase(it);
  }
}

Status ProfileShard::Put(const std::string& id, const prefs::Profile& profile) {
  if (id.empty()) return InvalidArgument("profile id must be non-empty");
  // Validate + build outside the lock (the expensive, fallible half).
  prefs::Profile copy = profile;
  CQP_ASSIGN_OR_RETURN(
      prefs::PersonalizationGraph built,
      prefs::PersonalizationGraph::Build(std::move(copy), *db_));
  auto graph =
      std::make_shared<const prefs::PersonalizationGraph>(std::move(built));
  const std::string text = profile.ToText();

  bool compact_now = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (wedged_) return wedge_status_;
    const uint64_t version = next_version_;
    const std::string payload =
        EncodeProfileMutation(kJournalOpPut, version, id, text);
    const uint64_t record_start = journal_->end_offset();

    // Write-ahead: journal + fsync before the index mutates. An error
    // means the mutation was NOT applied (and the tail is unknowable —
    // wedge, per the PR 6 failure policy).
    Status appended = journal_->Append(payload);
    ++appends_;
    append_bytes_ += payload.size() + storage::journal::kRecordHeaderBytes;
    if (!appended.ok()) {
      WedgeLocked(appended);
      cv_.notify_all();
      return appended;
    }
    Status synced = journal_->Sync();
    ++fsyncs_;
    if (!synced.ok()) {
      WedgeLocked(synced);
      cv_.notify_all();
      return synced;
    }

    next_version_ = version + 1;
    Entry& entry = entries_[id];
    entry.version = version;
    entry.ref = DiskRef{DiskRef::Where::kJournal,
                        record_start + storage::journal::kRecordHeaderBytes +
                            PutPayloadTextOffset(id.size()),
                        static_cast<uint32_t>(text.size())};
    // Any page-in still in flight for the replaced version is now stale;
    // the loader detects that via the version check, not this flag.
    entry.loading = false;
    InstallResidentLocked(id, entry, std::move(graph));
    EvictLocked();
    journal_bytes_ = journal_->end_offset();
    compact_now = journal_bytes_ > options_.compact_threshold_bytes;
  }
  cv_.notify_all();
  caches_.InvalidateProfile(id);
  plans_.InvalidateProfile(id);
  if (compact_now) {
    Status compacted = Compact();
    if (!compacted.ok()) {
      std::fprintf(stderr, "profile shard %zu: compaction failed: %s\n",
                   index_, compacted.ToString().c_str());
    }
  }
  return Status::OK();
}

Status ProfileShard::Remove(const std::string& id) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (wedged_) return wedge_status_;
    auto it = entries_.find(id);
    if (it == entries_.end()) return NotFound("no profile '" + id + "'");
    const uint64_t version = next_version_;
    const std::string payload =
        EncodeProfileMutation(kJournalOpRemove, version, id, std::string());
    Status appended = journal_->Append(payload);
    ++appends_;
    append_bytes_ += payload.size() + storage::journal::kRecordHeaderBytes;
    if (!appended.ok()) {
      WedgeLocked(appended);
      cv_.notify_all();
      return appended;
    }
    Status synced = journal_->Sync();
    ++fsyncs_;
    if (!synced.ok()) {
      WedgeLocked(synced);
      cv_.notify_all();
      return synced;
    }
    // Removes consume a version too, so journal order equals version
    // order and replay can key idempotence off the version alone.
    next_version_ = version + 1;
    DropResidencyLocked(it->second);
    entries_.erase(it);
    journal_bytes_ = journal_->end_offset();
  }
  // Waiters parked on a page-in of this id wake and re-find: miss.
  cv_.notify_all();
  caches_.InvalidateProfile(id);
  plans_.InvalidateProfile(id);
  return Status::OK();
}

ProfileStore::Snapshot ProfileShard::Find(const std::string& id) {
  std::unique_lock<std::mutex> lock(mu_);
  // A Find that parked behind another thread's load is counted as ONE
  // page-in wait, not once per wakeup and not again as a hit when it
  // re-finds the graph resident — so hits + waits adds up to the number
  // of Finds served from residency.
  bool waited = false;
  for (;;) {
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      ++misses_;
      return ProfileStore::Snapshot{};
    }
    Entry& entry = it->second;
    if (entry.graph != nullptr) {
      if (!waited) ++hits_;
      lru_.splice(lru_.end(), lru_, entry.lru_it);  // touch: now hottest
      return ProfileStore::Snapshot{entry.graph, entry.version};
    }
    if (entry.loading) {
      // Single-flight: another thread is paging this id in; share its
      // result instead of issuing a duplicate load (thundering herd).
      if (!waited) {
        waited = true;
        ++page_in_waits_;
      }
      cv_.wait(lock);
      continue;
    }
    if (compacting_) {
      // Compaction is about to swap the files our disk ref points into;
      // wait for the refreshed refs rather than racing the rename.
      cv_.wait(lock);
      continue;
    }

    // Become the loader. The disk ref is copied out and the I/O + parse
    // + graph build run without the lock, so the shard keeps serving.
    entry.loading = true;
    ++loads_in_flight_;
    const uint64_t version = entry.version;
    const DiskRef ref = entry.ref;
    lock.unlock();
    StatusOr<std::shared_ptr<const prefs::PersonalizationGraph>> loaded =
        LoadRef(ref);
    lock.lock();
    --loads_in_flight_;
    it = entries_.find(id);
    if (it == entries_.end() || it->second.version != version ||
        !it->second.loading) {
      // Removed or replaced while we loaded: our bytes describe a dead
      // version. Start over against the current entry state.
      cv_.notify_all();
      continue;
    }
    Entry& current = it->second;
    current.loading = false;
    if (!loaded.ok()) {
      // The checksummed bytes were intact at write time, so this is
      // schema drift or an injected fault, not silent corruption: serve
      // "unknown" rather than wedging the shard.
      ++page_in_errors_;
      std::fprintf(stderr, "profile shard %zu: page-in of '%s' failed: %s\n",
                   index_, id.c_str(), loaded.status().ToString().c_str());
      cv_.notify_all();
      return ProfileStore::Snapshot{};
    }
    ++page_ins_;
    InstallResidentLocked(id, current, *std::move(loaded));
    // Taking our result copy BEFORE evicting pins the fresh graph
    // (use_count > 1), so a tiny budget cannot evict what we return.
    ProfileStore::Snapshot out{current.graph, current.version};
    EvictLocked();
    cv_.notify_all();
    return out;
  }
}

Status ProfileShard::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wedged_) return wedge_status_;
  Status synced = journal_->Sync();
  ++fsyncs_;
  if (!synced.ok()) {
    WedgeLocked(synced);
    cv_.notify_all();
  }
  return synced;
}

Status ProfileShard::Compact() {
  std::unique_lock<std::mutex> lock(mu_);
  if (wedged_) return wedge_status_;
  if (journal_bytes_ == 0) return Status::OK();  // raced another compaction
  // Quiesce page-ins: loaders pread from the files this is about to
  // replace, and their disk refs are refreshed below. New page-ins park
  // on compacting_ until the swap is done.
  compacting_ = true;
  cv_.wait(lock, [&] { return loads_in_flight_ == 0; });
  Status status = CompactLocked();
  compacting_ = false;
  cv_.notify_all();
  return status;
}

Status ProfileShard::CompactLocked() {
  // Rebuild every live profile text with two sequential reads (old
  // snapshot + journal) instead of one pread per entry.
  std::map<std::string, std::string> values;
  if (fs_->Exists(SnapshotPath())) {
    CQP_ASSIGN_OR_RETURN(
        SnapshotData snap, storage::journal::ReadSnapshot(*fs_, SnapshotPath()));
    for (SnapshotEntry& e : snap.entries) {
      auto it = entries_.find(e.key);
      if (it != entries_.end() && it->second.version == e.version) {
        values[e.key] = std::move(e.value);
      }
    }
  }
  CQP_RETURN_IF_ERROR(
      storage::journal::Replay(
          *fs_, JournalPath(),
          [&](std::string_view payload) -> Status {
            DecodedProfileMutation record;
            if (!DecodeProfileMutation(payload, &record)) {
              return Internal("undecodable journal record during compaction");
            }
            if (record.op != kJournalOpPut) return Status::OK();
            std::string id(record.id);
            auto it = entries_.find(id);
            if (it != entries_.end() && it->second.version == record.version) {
              values[id] = std::string(record.text);
            }
            return Status::OK();
          })
          .status());

  SnapshotData data;
  data.next_version = next_version_;
  data.entries.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    auto vit = values.find(id);
    if (vit == values.end()) {
      // Old snapshot + clean journal must cover every live version; a gap
      // means the index and the files diverged. Leave both files intact.
      return Internal("compaction found no text for '" + id + "' v" +
                      std::to_string(entry.version));
    }
    data.entries.push_back(
        SnapshotEntry{id, entry.version, std::move(vit->second)});
  }

  // The commit point: after this rename the snapshot holds every applied
  // mutation. On error the old snapshot and journal are both intact —
  // compaction simply did not happen.
  std::vector<uint64_t> offsets;
  CQP_RETURN_IF_ERROR(
      storage::journal::WriteSnapshot(*fs_, SnapshotPath(), data, &offsets));
  CQP_CHECK(offsets.size() == data.entries.size());
  CQP_ASSIGN_OR_RETURN(snapshot_bytes_, fs_->FileSize(SnapshotPath()));

  // Refresh the disk refs — entries_ iterates in the same sorted order
  // the snapshot was built in.
  size_t i = 0;
  for (auto& [id, entry] : entries_) {
    entry.ref =
        DiskRef{DiskRef::Where::kSnapshot, offsets[i],
                static_cast<uint32_t>(data.entries[i].value.size())};
    ++i;
  }

  // Truncate the journal. If this fails, the stale records are harmless
  // for recovery (replay skips versions below the snapshot's next_version)
  // but the append offset would be unknowable — wedge.
  journal_->Close();
  Status truncated = fs_->Truncate(JournalPath(), 0);
  StatusOr<std::unique_ptr<storage::journal::Writer>> reopened =
      truncated.ok()
          ? storage::journal::Writer::Open(*fs_, JournalPath())
          : StatusOr<std::unique_ptr<storage::journal::Writer>>(truncated);
  if (!reopened.ok()) {
    WedgeLocked(reopened.status());
    return wedge_status_;
  }
  journal_ = *std::move(reopened);
  journal_bytes_ = 0;
  ++compactions_;
  return Status::OK();
}

std::vector<std::string> ProfileShard::Ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  return ids;
}

size_t ProfileShard::num_profiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool ProfileShard::wedged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wedged_;
}

ShardStats ProfileShard::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ShardStats s;
  s.shard = index_;
  s.profiles = entries_.size();
  s.resident_profiles = resident_profiles_;
  s.resident_bytes = resident_bytes_;
  s.resident_budget_bytes = options_.resident_budget_bytes;
  s.hits = hits_;
  s.misses = misses_;
  s.page_ins = page_ins_;
  s.page_in_waits = page_in_waits_;
  s.page_in_errors = page_in_errors_;
  s.evictions = evictions_;
  s.pinned_skips = pinned_skips_;
  s.journal.appends = appends_;
  s.journal.append_bytes = append_bytes_;
  s.journal.fsyncs = fsyncs_;
  s.journal.group_commits = 0;  // sharded tier fsyncs inline by design
  s.journal.compactions = compactions_;
  s.journal.journal_bytes = journal_bytes_;
  s.journal.snapshot_bytes = snapshot_bytes_;
  s.journal.wedged = wedged_;
  s.journal.recovered_profiles =
      recovery_.snapshot_profiles + recovery_.replayed_records;
  s.journal.replayed_records = recovery_.replayed_records;
  s.journal.dropped_bytes = recovery_.dropped_bytes;
  s.journal.torn_tail_recovered = recovery_.torn_tail;
  s.journal.recovery_ms = recovery_.recovery_ms;
  return s;
}

StatusOr<std::vector<SnapshotEntry>> ProfileShard::Contents() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotEntry> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    CQP_ASSIGN_OR_RETURN(std::string text, ReadText(entry.ref));
    out.push_back(SnapshotEntry{id, entry.version, std::move(text)});
  }
  return out;
}

}  // namespace cqp::server::shard
