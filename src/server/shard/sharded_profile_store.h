#ifndef CQP_SERVER_SHARD_SHARDED_PROFILE_STORE_H_
#define CQP_SERVER_SHARD_SHARDED_PROFILE_STORE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "server/profile_store.h"
#include "server/shard/profile_shard.h"

namespace cqp::server::shard {

/// Configuration for ShardedProfileStore::Open. The residency budget is
/// the TIER total; each shard gets an equal slice.
struct ShardedStoreOptions {
  /// Root directory; shard `i` lives in `<dir>/shard-NNN/` and a MANIFEST
  /// file records the shard count (routing is hash(id) % N, so opening
  /// with a different N would silently lose profiles — the manifest makes
  /// that a hard error instead).
  std::string dir;
  /// Shard count when creating a fresh directory; 0 adopts the manifest
  /// (or kDefaultShards when the directory is fresh). Opening an existing
  /// tier with a conflicting non-zero value is an error.
  size_t num_shards = 0;
  /// Total resident-graph budget across all shards.
  uint64_t resident_budget_bytes = 256ull << 20;
  /// Per-shard journal compaction threshold.
  uint64_t compact_threshold_bytes = 4ull << 20;
  /// File I/O goes through this filesystem; null = PosixFileSystem().
  storage::FileSystem* fs = nullptr;
};

/// The sharded, demand-paged profile tier: N independent ProfileShards,
/// each with its own lock, WAL journal + snapshot, LRU working set and
/// cache slice. Profiles route by a stable hash of the id, so a shard
/// directory written by one process is read identically by the next.
///
/// This class is a thin router — all durability, paging and invalidation
/// live in ProfileShard. It plugs into everything that takes a
/// ProfileStore (Server, shell, tools) via the virtual read/write surface;
/// request paths MUST use caches_for()/plans_for() so cache traffic stays
/// on the owning shard.
///
/// Migration from a single-directory PR 6 store: open with num_shards=1 —
/// shard-000 uses the same journal/snapshot formats, so
/// `mkdir shard-000 && mv journal snapshot shard-000/` (plus the MANIFEST
/// this class writes) upgrades in place. See docs/durability.md.
class ShardedProfileStore : public ProfileStore {
 public:
  static constexpr size_t kDefaultShards = 16;

  /// Opens (or creates) the tier under options.dir: reads/writes the
  /// MANIFEST, then opens every shard (recovering each independently).
  static StatusOr<std::unique_ptr<ShardedProfileStore>> Open(
      const storage::Database* db, ShardedStoreOptions options);

  /// The routing function: FNV-1a over the id, mod num_shards. Exposed so
  /// tools (bench directory builders, crashfuzz oracles) can predict
  /// placement without opening a store.
  static size_t ShardIndexForId(std::string_view id, size_t num_shards);

  /// "shard-000", "shard-001", ...
  static std::string ShardDirName(size_t index);

  // ProfileStore surface — everything routes to the owning shard.
  Status Put(const std::string& id, prefs::Profile profile) override;
  Status Remove(const std::string& id) override;
  Status Flush() override;  ///< flushes every shard; first error wins
  Snapshot FindSnapshot(const std::string& id) const override;
  std::vector<std::string> Ids() const override;  ///< merged, sorted
  size_t size() const override;

  estimation::EvalCacheRegistry& caches_for(const std::string& id) override;
  construct::PlanCache& plans_for(const std::string& id) override;
  construct::PlanCacheStats plan_stats() const override;  ///< summed

  /// Journal counters summed over all shards (wedged = any shard wedged;
  /// recovery_ms = total sequential open time).
  std::optional<DurabilityStats> durability_stats() const override;

  std::optional<ShardTierStats> shard_stats() const override;

  /// Compacts every shard now (tests / tooling).
  Status Compact();

  /// Aggregate oracle view for tools/cqp_crashfuzz: every shard's
  /// Contents() merged and sorted by id.
  StatusOr<std::vector<storage::journal::SnapshotEntry>> Contents() const;

  bool wedged() const;  ///< true when ANY shard is wedged

  size_t num_shards() const { return shards_.size(); }
  ProfileShard& shard(size_t index) { return *shards_[index]; }
  const ProfileShard& shard(size_t index) const { return *shards_[index]; }

 private:
  ShardedProfileStore(const storage::Database* db, ShardedStoreOptions options);

  ProfileShard& ShardFor(const std::string& id) const;

  const ShardedStoreOptions options_;
  double open_ms_ = 0.0;  ///< wall time of Open (all shards, sequential)
  std::vector<std::unique_ptr<ProfileShard>> shards_;
};

}  // namespace cqp::server::shard

#endif  // CQP_SERVER_SHARD_SHARDED_PROFILE_STORE_H_
