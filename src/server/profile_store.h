#ifndef CQP_SERVER_PROFILE_STORE_H_
#define CQP_SERVER_PROFILE_STORE_H_

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "construct/plan_cache.h"
#include "estimation/eval_cache.h"
#include "prefs/graph.h"
#include "prefs/profile.h"
#include "storage/database.h"

namespace cqp::server {

/// Counters exposed by a durable store (DurableProfileStore); the base
/// in-memory store reports std::nullopt. Served by the stats wire op.
struct DurabilityStats {
  uint64_t appends = 0;        ///< journal records written
  uint64_t append_bytes = 0;   ///< framed bytes appended
  uint64_t fsyncs = 0;         ///< journal fsync calls
  uint64_t group_commits = 0;  ///< fsyncs that committed >1 mutation
  uint64_t compactions = 0;    ///< snapshot compactions completed
  uint64_t journal_bytes = 0;  ///< current journal length
  uint64_t snapshot_bytes = 0; ///< last written snapshot size
  bool wedged = false;         ///< journal failed; store is read-only
  /// Recovery at Open() time:
  uint64_t recovered_profiles = 0;  ///< profiles restored (snapshot+journal)
  uint64_t replayed_records = 0;    ///< journal records applied
  uint64_t dropped_bytes = 0;       ///< torn/corrupt tail truncated
  bool torn_tail_recovered = false;
  double recovery_ms = 0.0;
};

/// Per-shard counters of a sharded, demand-paged store
/// (shard::ShardedProfileStore); served by the stats wire op and the
/// shell's .stats display. All counters are cumulative since Open.
struct ShardStats {
  size_t shard = 0;                  ///< shard index
  size_t profiles = 0;               ///< ids the shard knows (resident or not)
  size_t resident_profiles = 0;      ///< graphs currently in memory
  uint64_t resident_bytes = 0;       ///< accounted bytes of resident graphs
  uint64_t resident_budget_bytes = 0;
  uint64_t hits = 0;           ///< lookups served from a resident graph
  uint64_t misses = 0;         ///< lookups for an unknown id
  uint64_t page_ins = 0;       ///< cold graphs loaded from disk
  uint64_t page_in_waits = 0;  ///< lookups that waited on another page-in
  uint64_t page_in_errors = 0; ///< disk refs that failed to load
  uint64_t evictions = 0;      ///< resident graphs dropped for budget
  uint64_t pinned_skips = 0;   ///< eviction passes over an in-use graph
  DurabilityStats journal;     ///< this shard's journal counters
};

/// The whole shard tier: per-shard counters plus precomputed sums (the
/// stats op reports both; the sums are what dashboards watch).
struct ShardTierStats {
  size_t shards = 0;
  uint64_t resident_bytes = 0;
  uint64_t resident_budget_bytes = 0;
  size_t profiles = 0;
  size_t resident_profiles = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t page_ins = 0;
  uint64_t page_in_waits = 0;
  uint64_t page_in_errors = 0;
  uint64_t evictions = 0;
  uint64_t pinned_skips = 0;
  std::vector<ShardStats> per_shard;
};

/// In-memory id → user-profile registry for the personalization server.
///
/// Each stored profile is kept as a fully built PersonalizationGraph
/// (validated against the database at Put time, so serving never pays the
/// validation and a bad profile is rejected before it can break requests).
/// Graphs are handed out as shared_ptr<const …>: a hot-reload replacing a
/// profile never invalidates the graph an in-flight request is using.
///
/// The store owns an EvalCacheRegistry and a PlanCache and invalidates a
/// profile's entries in both on every Put/Remove — the invalidation hook
/// that keeps the server's cross-request memoization coherent with profile
/// updates. Both cache families additionally embed the snapshot version in
/// their keys, so invalidation is a memory-reclaim, never a correctness
/// dependency.
///
/// Durability: this base class is process-lifetime only. The write-ahead
/// hooks (WriteAheadLocked / WaitDurable, no-ops here) let
/// DurableProfileStore journal every mutation BEFORE it touches the map
/// and block the caller until the record is fsynced — without the server
/// or shell knowing which mode they run against.
///
/// Thread safety: all methods are thread-safe (shared_mutex; Find takes
/// the shared lock).
class ProfileStore {
 public:
  /// `db` must be Analyze()d and outlive the store.
  explicit ProfileStore(const storage::Database* db);
  virtual ~ProfileStore() = default;

  ProfileStore(const ProfileStore&) = delete;
  ProfileStore& operator=(const ProfileStore&) = delete;

  /// Validates `profile` against the database, builds its graph and stores
  /// it under `id` (replacing any previous version). Invalidates the id's
  /// evaluation caches. In a durable store, OK additionally means the
  /// mutation is journaled and fsynced (it survives a crash).
  virtual Status Put(const std::string& id, prefs::Profile profile);

  /// Removes `id` (and its caches). NotFound when absent.
  virtual Status Remove(const std::string& id);

  /// Forces any buffered journal writes to disk. No-op for the in-memory
  /// store. Called by Server::Stop() as part of graceful shutdown.
  virtual Status Flush() { return Status::OK(); }

  /// Journal/fsync counters when durable; nullopt for the in-memory store.
  virtual std::optional<DurabilityStats> durability_stats() const {
    return std::nullopt;
  }

  /// One consistent view of a stored profile: the graph plus the version
  /// stamped at Put time. The version participates in evaluation-cache
  /// keys, so a request racing a hot-reload can only ever populate (and
  /// read) a cache matching the graph it actually holds — stale cache
  /// entries under a newer graph are impossible by construction, not just
  /// by invalidation timing.
  struct Snapshot {
    std::shared_ptr<const prefs::PersonalizationGraph> graph;  ///< null if unknown
    uint64_t version = 0;
  };

  /// The stored graph + version; Snapshot::graph is nullptr when `id` is
  /// unknown. A demand-paged store may do disk I/O here (cold profile).
  virtual Snapshot FindSnapshot(const std::string& id) const;

  /// The stored graph, or nullptr when `id` is unknown.
  std::shared_ptr<const prefs::PersonalizationGraph> Find(
      const std::string& id) const;

  /// Loads every `*.profile` file in `dir` (id = file name without the
  /// extension) and remembers the directory for Reload(). Files that fail
  /// to parse or validate are reported in the returned status message but
  /// do not abort the load (the other profiles still land); the returned
  /// value is the number of profiles loaded.
  StatusOr<size_t> LoadDirectory(const std::string& dir);

  /// Re-runs LoadDirectory on the remembered directory — the hot-reload
  /// command. Profiles whose file disappeared stay in the store (serving
  /// keeps working); updated files replace their profile and invalidate
  /// its caches. FailedPrecondition when no directory was ever loaded.
  StatusOr<size_t> Reload();

  /// Stored ids, sorted.
  virtual std::vector<std::string> Ids() const;

  virtual size_t size() const;

  /// The per-(profile, query) evaluation-cache registry the server shares
  /// across requests. Put/Remove invalidate per profile id automatically.
  estimation::EvalCacheRegistry& caches() { return caches_; }

  /// The shared plan cache (PreparedSpace artifacts keyed by query
  /// fingerprint + profile snapshot version). Same invalidation contract
  /// as caches().
  construct::PlanCache& plans() { return plans_; }

  /// The cache registry / plan cache responsible for `id`. The base store
  /// has one of each; a sharded store returns the owning shard's slice so
  /// cache traffic and invalidation never cross a shard lock. Request
  /// paths must use these, not caches()/plans(), to stay shard-correct.
  virtual estimation::EvalCacheRegistry& caches_for(const std::string& id) {
    (void)id;
    return caches_;
  }
  virtual construct::PlanCache& plans_for(const std::string& id) {
    (void)id;
    return plans_;
  }

  /// Plan-cache counters summed over every shard slice (== plans().stats()
  /// for the single-cache base store).
  virtual construct::PlanCacheStats plan_stats() const { return plans_.stats(); }

  /// Paging/residency counters when this store is a sharded tier; nullopt
  /// otherwise.
  virtual std::optional<ShardTierStats> shard_stats() const {
    return std::nullopt;
  }

 protected:
  /// One mutation, as seen by the write-ahead hook. `profile` is null for
  /// removes; `version` is the version the mutation will be stamped with.
  struct Mutation {
    enum class Kind { kPut, kRemove };
    Kind kind;
    const std::string& id;
    const prefs::Profile* profile;
    uint64_t version;
  };

  /// Called under the exclusive lock BEFORE the in-memory map mutates.
  /// A durable store appends the journal record here; an error aborts the
  /// mutation (write-ahead: nothing is applied that was not journaled).
  /// `commit_token` is passed back to WaitDurable.
  virtual Status WriteAheadLocked(const Mutation& mutation,
                                  uint64_t* commit_token) {
    (void)mutation;
    *commit_token = 0;
    return Status::OK();
  }

  /// Called after the map mutation, with the lock released. A durable
  /// store blocks here until the journal record is fsynced (group commit);
  /// an error means the mutation is applied in memory but its durability
  /// is unknown — the store wedges and refuses further writes.
  virtual Status WaitDurable(uint64_t commit_token) {
    (void)commit_token;
    return Status::OK();
  }

  /// Builds + validates a graph for `profile` (the Put-time half shared
  /// with recovery).
  StatusOr<std::shared_ptr<const prefs::PersonalizationGraph>> BuildGraph(
      prefs::Profile profile) const;

  /// Recovery-path mutations: apply without journaling, invalidation or
  /// version assignment (the journal record carries its version).
  void RestorePut(const std::string& id,
                  std::shared_ptr<const prefs::PersonalizationGraph> graph,
                  uint64_t version);
  void RestoreRemove(const std::string& id);
  /// Raises next_version_ to at least `version`.
  void SetNextVersion(uint64_t version);

  mutable std::shared_mutex mu_;
  std::map<std::string, Snapshot> graphs_;  ///< guarded by mu_
  uint64_t next_version_ = 1;               ///< guarded by mu_

 private:
  const storage::Database* db_;
  estimation::EvalCacheRegistry caches_;
  construct::PlanCache plans_;
  std::string directory_;  ///< guarded by mu_
};

}  // namespace cqp::server

#endif  // CQP_SERVER_PROFILE_STORE_H_
