#ifndef CQP_SERVER_PROFILE_STORE_H_
#define CQP_SERVER_PROFILE_STORE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "construct/plan_cache.h"
#include "estimation/eval_cache.h"
#include "prefs/graph.h"
#include "prefs/profile.h"
#include "storage/database.h"

namespace cqp::server {

/// In-memory id → user-profile registry for the personalization server.
///
/// Each stored profile is kept as a fully built PersonalizationGraph
/// (validated against the database at Put time, so serving never pays the
/// validation and a bad profile is rejected before it can break requests).
/// Graphs are handed out as shared_ptr<const …>: a hot-reload replacing a
/// profile never invalidates the graph an in-flight request is using.
///
/// The store owns an EvalCacheRegistry and a PlanCache and invalidates a
/// profile's entries in both on every Put/Remove — the invalidation hook
/// that keeps the server's cross-request memoization coherent with profile
/// updates. Both cache families additionally embed the snapshot version in
/// their keys, so invalidation is a memory-reclaim, never a correctness
/// dependency.
///
/// Thread safety: all methods are thread-safe (shared_mutex; Find takes
/// the shared lock).
class ProfileStore {
 public:
  /// `db` must be Analyze()d and outlive the store.
  explicit ProfileStore(const storage::Database* db);

  ProfileStore(const ProfileStore&) = delete;
  ProfileStore& operator=(const ProfileStore&) = delete;

  /// Validates `profile` against the database, builds its graph and stores
  /// it under `id` (replacing any previous version). Invalidates the id's
  /// evaluation caches.
  Status Put(const std::string& id, prefs::Profile profile);

  /// Removes `id` (and its caches). NotFound when absent.
  Status Remove(const std::string& id);

  /// One consistent view of a stored profile: the graph plus the version
  /// stamped at Put time. The version participates in evaluation-cache
  /// keys, so a request racing a hot-reload can only ever populate (and
  /// read) a cache matching the graph it actually holds — stale cache
  /// entries under a newer graph are impossible by construction, not just
  /// by invalidation timing.
  struct Snapshot {
    std::shared_ptr<const prefs::PersonalizationGraph> graph;  ///< null if unknown
    uint64_t version = 0;
  };

  /// The stored graph + version; Snapshot::graph is nullptr when `id` is
  /// unknown.
  Snapshot FindSnapshot(const std::string& id) const;

  /// The stored graph, or nullptr when `id` is unknown.
  std::shared_ptr<const prefs::PersonalizationGraph> Find(
      const std::string& id) const;

  /// Loads every `*.profile` file in `dir` (id = file name without the
  /// extension) and remembers the directory for Reload(). Files that fail
  /// to parse or validate are reported in the returned status message but
  /// do not abort the load (the other profiles still land); the returned
  /// value is the number of profiles loaded.
  StatusOr<size_t> LoadDirectory(const std::string& dir);

  /// Re-runs LoadDirectory on the remembered directory — the hot-reload
  /// command. Profiles whose file disappeared stay in the store (serving
  /// keeps working); updated files replace their profile and invalidate
  /// its caches. FailedPrecondition when no directory was ever loaded.
  StatusOr<size_t> Reload();

  /// Stored ids, sorted.
  std::vector<std::string> Ids() const;

  size_t size() const;

  /// The per-(profile, query) evaluation-cache registry the server shares
  /// across requests. Put/Remove invalidate per profile id automatically.
  estimation::EvalCacheRegistry& caches() { return caches_; }

  /// The shared plan cache (PreparedSpace artifacts keyed by query
  /// fingerprint + profile snapshot version). Same invalidation contract
  /// as caches().
  construct::PlanCache& plans() { return plans_; }

 private:
  const storage::Database* db_;
  estimation::EvalCacheRegistry caches_;
  construct::PlanCache plans_;
  mutable std::shared_mutex mu_;
  std::map<std::string, Snapshot> graphs_;
  uint64_t next_version_ = 1;  ///< guarded by mu_
  std::string directory_;      ///< guarded by mu_
};

}  // namespace cqp::server

#endif  // CQP_SERVER_PROFILE_STORE_H_
