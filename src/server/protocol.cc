#include "server/protocol.h"

#include <cmath>
#include <utility>

#include "common/str_util.h"

namespace cqp::server {

namespace {

struct OpNameEntry {
  RequestOp op;
  const char* name;
};

constexpr OpNameEntry kOpNames[] = {
    {RequestOp::kPersonalize, "personalize"}, {RequestOp::kPing, "ping"},
    {RequestOp::kStats, "stats"},             {RequestOp::kProfiles, "profiles"},
    {RequestOp::kReload, "reload"},
};

StatusOr<RequestOp> OpFromName(const std::string& name) {
  for (const OpNameEntry& e : kOpNames) {
    if (name == e.name) return e.op;
  }
  return InvalidArgument("unknown op '" + name + "'");
}

constexpr StatusCode kAllCodes[] = {
    StatusCode::kOk,           StatusCode::kInvalidArgument,
    StatusCode::kNotFound,     StatusCode::kAlreadyExists,
    StatusCode::kOutOfRange,   StatusCode::kFailedPrecondition,
    StatusCode::kUnimplemented, StatusCode::kInternal,
    StatusCode::kInfeasible,   StatusCode::kDeadlineExceeded,
    StatusCode::kResourceExhausted,
};

StatusCode CodeFromName(const std::string& name) {
  for (StatusCode code : kAllCodes) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

/// Field extraction helpers: absent fields return the fallback; present
/// fields of the wrong type are an error (strictness keeps client bugs
/// loud).
StatusOr<std::string> GetString(const JsonValue& obj, const std::string& key,
                                const std::string& fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) return InvalidArgument("field '" + key + "' must be a string");
  return v->string_value();
}

StatusOr<double> GetNumber(const JsonValue& obj, const std::string& key,
                           double fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) return InvalidArgument("field '" + key + "' must be a number");
  return v->number_value();
}

StatusOr<bool> GetBool(const JsonValue& obj, const std::string& key,
                       bool fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) return InvalidArgument("field '" + key + "' must be a bool");
  return v->bool_value();
}

JsonValue StringsToJson(const std::vector<std::string>& items) {
  JsonValue arr = JsonValue::Array();
  for (const std::string& s : items) arr.Append(JsonValue::Str(s));
  return arr;
}

}  // namespace

const char* RequestOpName(RequestOp op) {
  for (const OpNameEntry& e : kOpNames) {
    if (e.op == op) return e.name;
  }
  return "unknown";
}

JsonValue StatusToJson(const Status& status) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::Str(StatusCodeName(status.code())));
  error.Set("message", JsonValue::Str(status.message()));
  return error;
}

Status StatusFromJson(const JsonValue& error) {
  if (!error.is_object()) return Internal("malformed error payload");
  const JsonValue* code = error.Find("code");
  const JsonValue* message = error.Find("message");
  std::string code_name = code != nullptr && code->is_string()
                              ? code->string_value()
                              : "Internal";
  std::string text = message != nullptr && message->is_string()
                         ? message->string_value()
                         : "";
  return Status(CodeFromName(code_name), std::move(text));
}

JsonValue ProblemToJson(const cqp::ProblemSpec& spec) {
  JsonValue obj = JsonValue::Object();
  obj.Set("objective",
          JsonValue::Str(spec.objective == cqp::Objective::kMaximizeDoi
                             ? "max_doi"
                             : "min_cost"));
  if (spec.cmax_ms.has_value()) obj.Set("cmax_ms", JsonValue::Number(*spec.cmax_ms));
  if (spec.dmin.has_value()) obj.Set("dmin", JsonValue::Number(*spec.dmin));
  if (spec.smin.has_value()) obj.Set("smin", JsonValue::Number(*spec.smin));
  if (spec.smax.has_value()) obj.Set("smax", JsonValue::Number(*spec.smax));
  return obj;
}

StatusOr<cqp::ProblemSpec> ProblemFromJson(const JsonValue& value) {
  if (!value.is_object()) return InvalidArgument("'problem' must be an object");
  cqp::ProblemSpec spec;
  CQP_ASSIGN_OR_RETURN(std::string objective,
                       GetString(value, "objective", "max_doi"));
  if (objective == "max_doi") {
    spec.objective = cqp::Objective::kMaximizeDoi;
  } else if (objective == "min_cost") {
    spec.objective = cqp::Objective::kMinimizeCost;
  } else {
    return InvalidArgument("objective must be 'max_doi' or 'min_cost', got '" +
                           objective + "'");
  }
  for (const char* key : {"cmax_ms", "dmin", "smin", "smax"}) {
    const JsonValue* v = value.Find(key);
    if (v == nullptr) continue;
    if (!v->is_number()) {
      return InvalidArgument(std::string("field '") + key +
                             "' must be a number");
    }
    double d = v->number_value();
    if (std::string(key) == "cmax_ms") spec.cmax_ms = d;
    if (std::string(key) == "dmin") spec.dmin = d;
    if (std::string(key) == "smin") spec.smin = d;
    if (std::string(key) == "smax") spec.smax = d;
  }
  CQP_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

std::string SerializeRequest(const WireRequest& request) {
  JsonValue obj = JsonValue::Object();
  obj.Set("v", JsonValue::Number(request.version));
  obj.Set("op", JsonValue::Str(RequestOpName(request.op)));
  if (!request.id.empty()) obj.Set("id", JsonValue::Str(request.id));
  if (request.op == RequestOp::kPersonalize) {
    const PersonalizePayload& p = request.personalize;
    obj.Set("sql", JsonValue::Str(p.sql));
    obj.Set("profile", JsonValue::Str(p.profile_id));
    if (!p.algorithm.empty()) obj.Set("algorithm", JsonValue::Str(p.algorithm));
    if (p.deadline_ms > 0) obj.Set("deadline_ms", JsonValue::Number(p.deadline_ms));
    if (p.max_expansions > 0) {
      obj.Set("max_expansions",
              JsonValue::Number(static_cast<double>(p.max_expansions)));
    }
    if (p.max_memory_mb > 0) {
      obj.Set("max_memory_mb", JsonValue::Number(p.max_memory_mb));
    }
    if (p.max_k > 0) {
      obj.Set("max_k", JsonValue::Number(static_cast<double>(p.max_k)));
    }
    if (p.problem.has_value()) obj.Set("problem", ProblemToJson(*p.problem));
  }
  return obj.Dump();
}

StatusOr<WireRequest> ParseRequest(std::string_view line) {
  if (line.size() > kMaxFrameBytes) {
    return InvalidArgument("frame exceeds " + std::to_string(kMaxFrameBytes) +
                           " bytes");
  }
  CQP_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(line));
  if (!doc.is_object()) return InvalidArgument("request must be a JSON object");

  WireRequest request;
  CQP_ASSIGN_OR_RETURN(double version,
                       GetNumber(doc, "v", kProtocolVersion));
  request.version = static_cast<int>(version);
  if (request.version != kProtocolVersion) {
    return InvalidArgument("unsupported protocol version " +
                           std::to_string(request.version));
  }
  const JsonValue* op = doc.Find("op");
  if (op == nullptr || !op->is_string()) {
    return InvalidArgument("request needs a string 'op'");
  }
  CQP_ASSIGN_OR_RETURN(request.op, OpFromName(op->string_value()));
  CQP_ASSIGN_OR_RETURN(request.id, GetString(doc, "id", ""));

  if (request.op == RequestOp::kPersonalize) {
    PersonalizePayload& p = request.personalize;
    const JsonValue* sql = doc.Find("sql");
    if (sql == nullptr || !sql->is_string() || sql->string_value().empty()) {
      return InvalidArgument("personalize needs a non-empty string 'sql'");
    }
    p.sql = sql->string_value();
    CQP_ASSIGN_OR_RETURN(p.profile_id, GetString(doc, "profile", "default"));
    if (p.profile_id.empty()) {
      return InvalidArgument("'profile' must be non-empty");
    }
    CQP_ASSIGN_OR_RETURN(p.algorithm, GetString(doc, "algorithm", ""));
    CQP_ASSIGN_OR_RETURN(p.deadline_ms, GetNumber(doc, "deadline_ms", 0.0));
    if (p.deadline_ms < 0) {
      return InvalidArgument("'deadline_ms' must be >= 0");
    }
    CQP_ASSIGN_OR_RETURN(double expansions,
                         GetNumber(doc, "max_expansions", 0.0));
    if (expansions < 0) return InvalidArgument("'max_expansions' must be >= 0");
    p.max_expansions = static_cast<uint64_t>(expansions);
    CQP_ASSIGN_OR_RETURN(p.max_memory_mb, GetNumber(doc, "max_memory_mb", 0.0));
    if (p.max_memory_mb < 0) {
      return InvalidArgument("'max_memory_mb' must be >= 0");
    }
    CQP_ASSIGN_OR_RETURN(double max_k, GetNumber(doc, "max_k", 0.0));
    if (max_k < 0 || max_k >= 64) {
      return InvalidArgument("'max_k' must be in [0, 63]");
    }
    p.max_k = static_cast<size_t>(max_k);
    const JsonValue* problem = doc.Find("problem");
    if (problem != nullptr) {
      CQP_ASSIGN_OR_RETURN(cqp::ProblemSpec spec, ProblemFromJson(*problem));
      p.problem = spec;
    }
  }
  return request;
}

std::string SerializeResponse(const WireResponse& response) {
  JsonValue obj = JsonValue::Object();
  obj.Set("v", JsonValue::Number(response.version));
  if (!response.id.empty()) obj.Set("id", JsonValue::Str(response.id));
  obj.Set("ok", JsonValue::Bool(response.status.ok()));
  if (!response.status.ok()) {
    obj.Set("error", StatusToJson(response.status));
  }
  if (response.personalize.has_value()) {
    const PersonalizeResultPayload& r = *response.personalize;
    JsonValue result = JsonValue::Object();
    result.Set("final_sql", JsonValue::Str(r.final_sql));
    result.Set("rung", JsonValue::Str(r.rung));
    result.Set("degraded", JsonValue::Bool(r.degraded));
    result.Set("feasible", JsonValue::Bool(r.feasible));
    JsonValue chosen = JsonValue::Array();
    for (int32_t i : r.chosen) chosen.Append(JsonValue::Number(i));
    result.Set("chosen", std::move(chosen));
    result.Set("doi", JsonValue::Number(r.doi));
    result.Set("cost_ms", JsonValue::Number(r.cost_ms));
    result.Set("size", JsonValue::Number(r.size));
    result.Set("states",
               JsonValue::Number(static_cast<double>(r.states_examined)));
    result.Set("search_wall_ms", JsonValue::Number(r.search_wall_ms));
    result.Set("cache_hits",
               JsonValue::Number(static_cast<double>(r.eval_cache_hits)));
    result.Set("cache_misses",
               JsonValue::Number(static_cast<double>(r.eval_cache_misses)));
    result.Set("plan_cache_hit", JsonValue::Bool(r.plan_cache_hit));
    result.Set("server_ms", JsonValue::Number(r.server_ms));
    result.Set("attempts", StringsToJson(r.attempts));
    obj.Set("result", std::move(result));
  } else if (!response.extra.is_null()) {
    obj.Set("result", response.extra);
  }
  return obj.Dump();
}

StatusOr<WireResponse> ParseResponse(std::string_view line) {
  if (line.size() > kMaxFrameBytes) {
    return InvalidArgument("frame exceeds " + std::to_string(kMaxFrameBytes) +
                           " bytes");
  }
  CQP_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(line));
  if (!doc.is_object()) {
    return InvalidArgument("response must be a JSON object");
  }
  WireResponse response;
  CQP_ASSIGN_OR_RETURN(double version, GetNumber(doc, "v", kProtocolVersion));
  response.version = static_cast<int>(version);
  if (response.version != kProtocolVersion) {
    return InvalidArgument("unsupported protocol version " +
                           std::to_string(response.version));
  }
  CQP_ASSIGN_OR_RETURN(response.id, GetString(doc, "id", ""));
  CQP_ASSIGN_OR_RETURN(bool ok, GetBool(doc, "ok", false));
  if (!ok) {
    const JsonValue* error = doc.Find("error");
    if (error == nullptr) {
      return InvalidArgument("error response needs an 'error' payload");
    }
    response.status = StatusFromJson(*error);
    if (response.status.ok()) {
      return InvalidArgument("error payload decoded to OK");
    }
    return response;
  }
  const JsonValue* result = doc.Find("result");
  if (result == nullptr) return response;  // bare OK (e.g. future ops)
  if (!result->is_object()) {
    return InvalidArgument("'result' must be an object");
  }
  // A personalize result is recognized by its mandatory fields; anything
  // else is an administrative payload surfaced verbatim through `extra`.
  if (result->Find("final_sql") != nullptr && result->Find("rung") != nullptr) {
    PersonalizeResultPayload r;
    CQP_ASSIGN_OR_RETURN(r.final_sql, GetString(*result, "final_sql", ""));
    CQP_ASSIGN_OR_RETURN(r.rung, GetString(*result, "rung", ""));
    CQP_ASSIGN_OR_RETURN(r.degraded, GetBool(*result, "degraded", false));
    CQP_ASSIGN_OR_RETURN(r.feasible, GetBool(*result, "feasible", false));
    const JsonValue* chosen = result->Find("chosen");
    if (chosen != nullptr) {
      if (!chosen->is_array()) {
        return InvalidArgument("'chosen' must be an array");
      }
      for (const JsonValue& item : chosen->array_items()) {
        if (!item.is_number()) {
          return InvalidArgument("'chosen' must hold numbers");
        }
        r.chosen.push_back(static_cast<int32_t>(item.number_value()));
      }
    }
    CQP_ASSIGN_OR_RETURN(r.doi, GetNumber(*result, "doi", 0.0));
    CQP_ASSIGN_OR_RETURN(r.cost_ms, GetNumber(*result, "cost_ms", 0.0));
    CQP_ASSIGN_OR_RETURN(r.size, GetNumber(*result, "size", 0.0));
    CQP_ASSIGN_OR_RETURN(double states, GetNumber(*result, "states", 0.0));
    r.states_examined = static_cast<uint64_t>(states);
    CQP_ASSIGN_OR_RETURN(r.search_wall_ms,
                         GetNumber(*result, "search_wall_ms", 0.0));
    CQP_ASSIGN_OR_RETURN(double hits, GetNumber(*result, "cache_hits", 0.0));
    r.eval_cache_hits = static_cast<uint64_t>(hits);
    CQP_ASSIGN_OR_RETURN(double misses,
                         GetNumber(*result, "cache_misses", 0.0));
    r.eval_cache_misses = static_cast<uint64_t>(misses);
    CQP_ASSIGN_OR_RETURN(r.plan_cache_hit,
                         GetBool(*result, "plan_cache_hit", false));
    CQP_ASSIGN_OR_RETURN(r.server_ms, GetNumber(*result, "server_ms", 0.0));
    const JsonValue* attempts = result->Find("attempts");
    if (attempts != nullptr) {
      if (!attempts->is_array()) {
        return InvalidArgument("'attempts' must be an array");
      }
      for (const JsonValue& item : attempts->array_items()) {
        if (!item.is_string()) {
          return InvalidArgument("'attempts' must hold strings");
        }
        r.attempts.push_back(item.string_value());
      }
    }
    response.personalize = std::move(r);
  } else {
    response.extra = *result;
  }
  return response;
}

}  // namespace cqp::server
