#include "server/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cqp::server {

namespace {
constexpr int kMaxEvents = 128;
}  // namespace

EventLoop::EventLoop(size_t index, EventLoopOptions options, LoopStats* stats)
    : index_(index),
      options_(std::move(options)),
      stats_(stats),
      admission_(options_.admission) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  CQP_CHECK(epoll_fd_ >= 0);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  CQP_CHECK(wake_fd_ >= 0);
}

EventLoop::~EventLoop() {
  Join();
  CloseListener();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Listen(const std::string& host, int port) {
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // Every loop binds its own listener on the same port; the kernel
  // load-balances incoming connections across them, so there is no shared
  // accept fd (and no close race at shutdown).
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseListener();
    return InvalidArgument("bad bind address '" + host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Internal("bind(" + host + ":" + std::to_string(port) +
                             "): " + std::strerror(errno));
    CloseListener();
    return status;
  }
  if (::listen(listen_fd_, SOMAXCONN) < 0) {
    Status status = Internal(std::string("listen(): ") + std::strerror(errno));
    CloseListener();
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  return Status::OK();
}

void EventLoop::Start(LineHandler on_line, ConnHandler on_open,
                      ConnHandler on_close, OversizeHandler on_oversize,
                      uint64_t id_base, uint64_t id_step) {
  on_line_ = std::move(on_line);
  on_open_ = std::move(on_open);
  on_close_ = std::move(on_close);
  on_oversize_ = std::move(on_oversize);
  next_id_ = id_base;
  id_step_ = id_step;

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  if (listen_fd_ >= 0) {
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
  thread_ = std::thread([this] {
    thread_id_.store(std::this_thread::get_id());
    Run();
  });
}

void EventLoop::StopAccepting() {
  Post([this] { CloseListener(); });
}

void EventLoop::RequestStop() {
  stopping_.store(true, std::memory_order_release);
  Post([] {});  // the wakeup is the point
}

void EventLoop::Join() {
  if (thread_.joinable()) thread_.join();
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  uint64_t one = 1;
  // The write can only fail with EAGAIN once the counter saturates, at
  // which point the loop is already guaranteed a wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainTasks() {
  uint64_t drained = 0;
  [[maybe_unused]] ssize_t n = ::read(wake_fd_, &drained, sizeof(drained));
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks.swap(tasks_);
  }
  stats_->tasks.fetch_add(tasks.size(), std::memory_order_relaxed);
  for (auto& task : tasks) task();
}

void EventLoop::Run() {
  epoll_event events[kMaxEvents];
  for (;;) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: only possible at destruction
    }
    stats_->wakeups.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t mask = events[i].events;
      if (fd == wake_fd_) {
        DrainTasks();
        continue;
      }
      if (fd == listen_fd_ && listen_fd_ >= 0) {
        HandleAccept();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // torn down earlier in this batch
      std::shared_ptr<Connection> conn = it->second;
      if (mask & (EPOLLHUP | EPOLLERR)) {
        // Half-closed peers still carry readable data; let the read path
        // consume it and observe EOF/error itself.
        conn->OnReadable();
        if (conn->closed()) continue;
      }
      if (mask & EPOLLOUT) {
        conn->OnWritable();
        if (conn->closed()) continue;
      }
      if (mask & EPOLLIN) conn->OnReadable();
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Late tasks (worker responses posted during the drain window) run
      // before teardown so their frames get a final flush attempt.
      DrainTasks();
      while (!conns_.empty()) {
        Teardown(conns_.begin()->second);
      }
      CloseListener();
      return;
    }
  }
}

void EventLoop::HandleAccept() {
  for (;;) {
    int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained; anything else: retry on next event
    }
    int one = 1;
    // Responses are single writev batches; Nagle only adds latency here.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
    }
    auto conn = std::make_shared<Connection>(fd, next_id_, this,
                                             options_.max_frame_bytes);
    next_id_ += id_step_;
    conns_[fd] = conn;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    stats_->accepts.fetch_add(1, std::memory_order_relaxed);
    stats_->connections.fetch_add(1, std::memory_order_relaxed);
    if (on_open_) on_open_(conn);
  }
}

void EventLoop::UpdateInterest(Connection* conn, bool want_read,
                               bool want_write) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev);
}

void EventLoop::Teardown(const std::shared_ptr<Connection>& conn) {
  if (conn->closed_.exchange(true, std::memory_order_acq_rel)) return;
  // Cancel before anything else: in-flight searches for this peer must
  // unwind at their next ShouldStop() poll, and queued ones short-circuit.
  conn->cancel_token().Cancel();
  // One best-effort flush so a graceful shutdown still delivers responses
  // that were posted during the drain window (closed_ is already set, so
  // the normal FlushWrites path cannot recurse back here).
  if (!conn->write_queue_.empty()) {
    std::vector<iovec> iov;
    iov.reserve(conn->write_queue_.size());
    size_t off = conn->write_offset_;
    for (const std::string& frame : conn->write_queue_) {
      if (iov.size() >= 64) break;  // best-effort; stay far under IOV_MAX
      iov.push_back({const_cast<char*>(frame.data() + off),
                     frame.size() - off});
      off = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov.data();
    msg.msg_iovlen = iov.size();
    [[maybe_unused]] ssize_t n = ::sendmsg(conn->fd(), &msg, MSG_NOSIGNAL);
    conn->write_queue_.clear();
    conn->queued_bytes_ = 0;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd(), nullptr);
  ::shutdown(conn->fd(), SHUT_RDWR);
  conns_.erase(conn->fd());
  stats_->connections.fetch_sub(1, std::memory_order_relaxed);
  if (on_close_) on_close_(conn);
}

void EventLoop::CloseListener() {
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace cqp::server
