#ifndef CQP_SERVER_PROTOCOL_H_
#define CQP_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "cqp/problem.h"
#include "server/json.h"

namespace cqp::server {

/// Wire protocol, version 1: one JSON object per line ('\n'-delimited,
/// no raw newlines inside a frame — the JSON escaper guarantees that), one
/// response line per request line. Responses carry the request's `id`
/// verbatim, so a pipelining client can match out-of-order completions.
/// See docs/server.md for the full specification.
inline constexpr int kProtocolVersion = 1;

/// Hard cap on one frame; longer lines are a protocol error and close the
/// connection (an unbounded line would otherwise buffer unboundedly).
inline constexpr size_t kMaxFrameBytes = 1u << 20;  // 1 MiB

/// Request operations.
enum class RequestOp {
  kPersonalize = 0,  ///< personalize one SQL query under a stored profile
  kPing,             ///< liveness probe
  kStats,            ///< dump the server's ServerStats snapshot
  kProfiles,         ///< list stored profile ids
  kReload,           ///< hot-reload the profile store from its directory
};

/// Stable wire name, e.g. "personalize".
const char* RequestOpName(RequestOp op);

/// Body of a personalize request. Unset fields (empty / zero) fall back to
/// the server's configured defaults.
struct PersonalizePayload {
  std::string sql;                 ///< required: the original query text
  std::string profile_id = "default";
  std::string algorithm;           ///< empty = server default
  double deadline_ms = 0.0;        ///< 0 = no deadline
  uint64_t max_expansions = 0;     ///< 0 = server default / unlimited
  double max_memory_mb = 0.0;      ///< 0 = unlimited
  size_t max_k = 0;                ///< preference-space cap; 0 = default
  /// Constraint bounds; nullopt = the server's default problem.
  std::optional<cqp::ProblemSpec> problem;
};

/// One parsed request frame.
struct WireRequest {
  int version = kProtocolVersion;
  RequestOp op = RequestOp::kPing;
  std::string id;  ///< client-chosen correlation id, echoed in the response
  PersonalizePayload personalize;  ///< meaningful iff op == kPersonalize
};

/// Body of a personalize response (present iff the request succeeded).
struct PersonalizeResultPayload {
  std::string final_sql;
  std::string rung;  ///< FallbackRungName of the answering ladder rung
  bool degraded = false;
  bool feasible = false;
  std::vector<int32_t> chosen;  ///< indices into the preference space
  double doi = 0.0;
  double cost_ms = 0.0;
  double size = 0.0;
  uint64_t states_examined = 0;
  double search_wall_ms = 0.0;
  uint64_t eval_cache_hits = 0;
  uint64_t eval_cache_misses = 0;
  bool plan_cache_hit = false;  ///< Prepare() was served from the plan cache
  double server_ms = 0.0;  ///< admission-to-response latency on the server
  std::vector<std::string> attempts;  ///< degradation-ladder trail
};

/// One response frame: either an error (typed status) or an op-specific
/// result — `personalize` for kPersonalize, `extra` (a JSON object) for the
/// administrative ops (stats snapshot, profile list, pong).
struct WireResponse {
  int version = kProtocolVersion;
  std::string id;
  Status status;  ///< OK, or the typed error (code + message) on the wire
  std::optional<PersonalizeResultPayload> personalize;
  JsonValue extra;  ///< kNull when unused

  bool ok() const { return status.ok(); }
};

/// Serialization. The emitted string is a single line WITHOUT the trailing
/// '\n' (the framing layer appends it).
std::string SerializeRequest(const WireRequest& request);
std::string SerializeResponse(const WireResponse& response);

/// Strict parses; any malformed frame (bad JSON, missing/mistyped required
/// field, unsupported version or op) is an InvalidArgument.
StatusOr<WireRequest> ParseRequest(std::string_view line);
StatusOr<WireResponse> ParseResponse(std::string_view line);

/// Status <-> wire error payload. Every StatusCode has a stable wire name
/// (StatusCodeName); unknown names parse to kInternal rather than failing,
/// so a newer server's codes degrade gracefully on an older client.
JsonValue StatusToJson(const Status& status);
Status StatusFromJson(const JsonValue& error);

/// ProblemSpec <-> wire object ({"objective": "max_doi"|"min_cost",
/// "cmax_ms"/"dmin"/"smin"/"smax": number, each optional}).
JsonValue ProblemToJson(const cqp::ProblemSpec& spec);
StatusOr<cqp::ProblemSpec> ProblemFromJson(const JsonValue& value);

}  // namespace cqp::server

#endif  // CQP_SERVER_PROTOCOL_H_
