#ifndef CQP_SERVER_EVENT_LOOP_H_
#define CQP_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "server/admission.h"
#include "server/connection.h"
#include "server/server_stats.h"

namespace cqp::server {

/// Per-loop configuration, fixed at construction.
struct EventLoopOptions {
  /// Protocol frame cap fed to each connection's FrameDecoder.
  size_t max_frame_bytes = 1u << 20;
  /// Backpressure high watermark: once a connection's unsent response
  /// bytes exceed this, the loop stops reading from it (drops EPOLLIN)
  /// until the queue drains back under — a pipelining client that never
  /// drains cannot turn the server into its unbounded buffer.
  size_t write_queue_watermark_bytes = 256 * 1024;
  /// Hard cap: a connection whose write queue would exceed this is a
  /// slow-reader hazard (backpressure already stopped feeding it new
  /// requests, so growth past the limit means already-admitted responses
  /// alone overflowed it) and is disconnected.
  size_t write_queue_limit_bytes = 4 * 1024 * 1024;
  /// When > 0, shrink each accepted socket's SO_SNDBUF to this many bytes.
  /// Tests use it to make the kernel buffer small enough that the write
  /// queue watermarks trip deterministically.
  int so_sndbuf = 0;
  /// This loop's slice of the server-wide admission budget.
  AdmissionOptions admission;
};

/// One epoll event-loop shard: owns its SO_REUSEPORT listener (the kernel
/// load-balances incoming connections across loops), its epoll instance,
/// an eventfd for cross-thread wakeups, and every connection it accepted.
/// All connection I/O state is touched only from the loop thread; other
/// threads communicate exclusively through Post().
///
/// Lifecycle: Listen() binds, Start() spawns the thread, StopAccepting()
/// closes the listener (existing connections keep being served),
/// RequestStop() drains the task queue, tears every connection down
/// (cancelling its in-flight searches) and exits, Join() reaps the thread.
/// Post() stays safe after the loop exits — tasks just accumulate and are
/// destroyed with the loop, which is exactly what a worker finishing after
/// shutdown needs.
class EventLoop {
 public:
  /// Dispatches one decoded frame; returns false when the connection must
  /// close once its pending responses flush.
  using LineHandler =
      std::function<bool(const std::shared_ptr<Connection>&, std::string&&)>;
  using ConnHandler = std::function<void(const std::shared_ptr<Connection>&)>;
  /// Builds the serialized typed-error frame sent before closing a
  /// connection whose partial frame exceeded max_frame_bytes (keeps wire
  /// protocol knowledge out of the I/O layer).
  using OversizeHandler = std::function<std::string(size_t max_frame_bytes)>;

  EventLoop(size_t index, EventLoopOptions options, LoopStats* stats);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates this loop's SO_REUSEPORT listener. All loops of one server
  /// bind the same (host, port); pass the resolved port once loop 0 has
  /// bound an ephemeral one.
  Status Listen(const std::string& host, int port);
  int bound_port() const { return bound_port_; }

  /// Spawns the loop thread. Connection ids are id_base, id_base+id_step,
  /// … so ids stay unique across loops without shared state.
  void Start(LineHandler on_line, ConnHandler on_open, ConnHandler on_close,
             OversizeHandler on_oversize, uint64_t id_base, uint64_t id_step);

  /// Closes the listener (from any thread, via Post). Existing
  /// connections continue to be served.
  void StopAccepting();

  /// Asks the loop to drain pending tasks, tear down every connection
  /// (cancelling their CancelTokens) and exit.
  void RequestStop();
  void Join();

  /// Enqueues `task` to run on the loop thread and wakes it via eventfd.
  /// Thread-safe; callable before Start and after the loop exited.
  void Post(std::function<void()> task);
  bool OnLoopThread() const {
    return std::this_thread::get_id() == thread_id_.load();
  }

  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }
  const EventLoopOptions& options() const { return options_; }
  LoopStats& loop_stats() { return *stats_; }
  size_t index() const { return index_; }
  size_t num_connections() const {
    return stats_->connections.load(std::memory_order_relaxed) < 0
               ? 0
               : static_cast<size_t>(
                     stats_->connections.load(std::memory_order_relaxed));
  }

 private:
  friend class Connection;

  void Run();
  void HandleAccept();
  void DrainTasks();
  /// EPOLL_CTL_MOD `conn` to the given interest set (loop thread only).
  void UpdateInterest(Connection* conn, bool want_read, bool want_write);
  /// Cancels, deregisters and forgets `conn` (loop thread only).
  /// Idempotent. Attempts one final non-blocking flush of queued
  /// responses first so a clean shutdown still delivers drained answers.
  void Teardown(const std::shared_ptr<Connection>& conn);
  void CloseListener();

  const size_t index_;
  const EventLoopOptions options_;
  LoopStats* const stats_;
  AdmissionController admission_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
  std::atomic<std::thread::id> thread_id_{};

  LineHandler on_line_;
  ConnHandler on_open_;
  ConnHandler on_close_;
  OversizeHandler on_oversize_;
  uint64_t next_id_ = 1;
  uint64_t id_step_ = 1;

  /// Loop-thread-only: live connections keyed by fd (epoll events carry
  /// the fd; a stale event after a same-batch teardown just misses here).
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;  ///< guarded by tasks_mu_
};

}  // namespace cqp::server

#endif  // CQP_SERVER_EVENT_LOOP_H_
