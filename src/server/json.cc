#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace cqp::server {

bool JsonValue::bool_value() const {
  CQP_CHECK(is_bool());
  return bool_;
}

double JsonValue::number_value() const {
  CQP_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::string_value() const {
  CQP_CHECK(is_string());
  return string_;
}

const std::vector<JsonValue>& JsonValue::array_items() const {
  CQP_CHECK(is_array());
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::object_members() const {
  CQP_CHECK(is_object());
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  CQP_CHECK(is_object());
  object_[key] = std::move(value);
  return *this;
}

JsonValue& JsonValue::Append(JsonValue value) {
  CQP_CHECK(is_array());
  array_.push_back(std::move(value));
  return *this;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void AppendNumber(std::string& out, double d) {
  // Integers (the common case: counts, ports, ids) print without a
  // fractional part; everything else uses %.17g, which round-trips doubles.
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no Inf/NaN; null is the least-wrong encoding
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void DumpTo(const JsonValue& v, std::string& out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      return;
    case JsonValue::Type::kBool:
      out += v.bool_value() ? "true" : "false";
      return;
    case JsonValue::Type::kNumber:
      AppendNumber(out, v.number_value());
      return;
    case JsonValue::Type::kString:
      AppendEscaped(out, v.string_value());
      return;
    case JsonValue::Type::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.array_items()) {
        if (!first) out += ',';
        first = false;
        DumpTo(item, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.object_members()) {
        if (!first) out += ',';
        first = false;
        AppendEscaped(out, key);
        out += ':';
        DumpTo(value, out);
      }
      out += '}';
      return;
    }
  }
}

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    CQP_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return InvalidArgument("json: trailing characters at offset " +
                             std::to_string(pos_));
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& what) {
    return InvalidArgument("json: " + what + " at offset " +
                           std::to_string(pos_));
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        CQP_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::Str(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return JsonValue::Bool(true);
        }
        return Err("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return JsonValue::Bool(false);
        }
        return Err("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return JsonValue::Null();
        }
        return Err("bad literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Err(std::string("unexpected character '") + c + "'");
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE ||
        !std::isfinite(d)) {
      pos_ = start;
      return Err("bad number '" + token + "'");
    }
    return JsonValue::Number(d);
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Err("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Err("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Err("bad hex digit in \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences; the protocol never emits them).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return Err(std::string("bad escape '\\") + e + "'");
      }
    }
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    CQP_CHECK(Consume('{'));
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      CQP_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Err("expected ':'");
      CQP_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Err("expected ',' or '}'");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    CQP_CHECK(Consume('['));
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      CQP_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Err("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, out);
  return out;
}

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace cqp::server
