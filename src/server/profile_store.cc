#include "server/profile_store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

namespace cqp::server {

ProfileStore::ProfileStore(const storage::Database* db) : db_(db) {
  CQP_CHECK(db_ != nullptr);
}

StatusOr<std::shared_ptr<const prefs::PersonalizationGraph>>
ProfileStore::BuildGraph(prefs::Profile profile) const {
  CQP_ASSIGN_OR_RETURN(
      prefs::PersonalizationGraph graph,
      prefs::PersonalizationGraph::Build(std::move(profile), *db_));
  return std::make_shared<const prefs::PersonalizationGraph>(std::move(graph));
}

Status ProfileStore::Put(const std::string& id, prefs::Profile profile) {
  if (id.empty()) return InvalidArgument("profile id must be non-empty");
  // Build from a copy: the original profile outlives the graph build so
  // the write-ahead hook can serialize it.
  CQP_ASSIGN_OR_RETURN(
      std::shared_ptr<const prefs::PersonalizationGraph> shared,
      BuildGraph(profile));
  uint64_t commit_token = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    Mutation mutation{Mutation::Kind::kPut, id, &profile, next_version_};
    // Write-ahead: journal first; an error aborts before the map changes.
    CQP_RETURN_IF_ERROR(WriteAheadLocked(mutation, &commit_token));
    Snapshot& slot = graphs_[id];
    slot.graph = std::move(shared);
    slot.version = next_version_++;
  }
  // Drop the replaced version's caches and plans. Correctness does not
  // depend on this ordering: cache keys embed the snapshot version, so a
  // request still holding the old graph can only touch old-version
  // entries. The invalidation reclaims their memory.
  caches_.InvalidateProfile(id);
  plans_.InvalidateProfile(id);
  return WaitDurable(commit_token);
}

Status ProfileStore::Remove(const std::string& id) {
  uint64_t commit_token = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = graphs_.find(id);
    if (it == graphs_.end()) {
      return NotFound("no profile '" + id + "'");
    }
    Mutation mutation{Mutation::Kind::kRemove, id, nullptr, next_version_};
    CQP_RETURN_IF_ERROR(WriteAheadLocked(mutation, &commit_token));
    // Removes consume a version too, so journal order equals version
    // order and replay can key idempotence off the version alone.
    ++next_version_;
    graphs_.erase(it);
  }
  caches_.InvalidateProfile(id);
  plans_.InvalidateProfile(id);
  return WaitDurable(commit_token);
}

void ProfileStore::RestorePut(
    const std::string& id,
    std::shared_ptr<const prefs::PersonalizationGraph> graph,
    uint64_t version) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Snapshot& slot = graphs_[id];
  slot.graph = std::move(graph);
  slot.version = version;
  if (version >= next_version_) next_version_ = version + 1;
}

void ProfileStore::RestoreRemove(const std::string& id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  graphs_.erase(id);
}

void ProfileStore::SetNextVersion(uint64_t version) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (version > next_version_) next_version_ = version;
}

ProfileStore::Snapshot ProfileStore::FindSnapshot(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = graphs_.find(id);
  return it == graphs_.end() ? Snapshot{} : it->second;
}

std::shared_ptr<const prefs::PersonalizationGraph> ProfileStore::Find(
    const std::string& id) const {
  return FindSnapshot(id).graph;
}

StatusOr<size_t> ProfileStore::LoadDirectory(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return NotFound("cannot read profile directory '" + dir +
                    "': " + ec.message());
  }
  size_t loaded = 0;
  std::string problems;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".profile") continue;
    std::ifstream in(path);
    if (!in) {
      problems += " " + path.filename().string() + ": unreadable;";
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    StatusOr<prefs::Profile> profile = prefs::Profile::Parse(buffer.str());
    if (!profile.ok()) {
      problems +=
          " " + path.filename().string() + ": " + profile.status().ToString() + ";";
      continue;
    }
    Status put = Put(path.stem().string(), *std::move(profile));
    if (!put.ok()) {
      problems += " " + path.filename().string() + ": " + put.ToString() + ";";
      continue;
    }
    ++loaded;
  }
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    directory_ = dir;
  }
  if (loaded == 0 && !problems.empty()) {
    return InvalidArgument("no profile loaded from '" + dir + "':" + problems);
  }
  if (!problems.empty()) {
    std::fprintf(stderr, "profile store: skipped files in %s:%s\n",
                 dir.c_str(), problems.c_str());
  }
  return loaded;
}

StatusOr<size_t> ProfileStore::Reload() {
  std::string dir;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    dir = directory_;
  }
  if (dir.empty()) {
    return FailedPrecondition(
        "profile store was not loaded from a directory; nothing to reload");
  }
  return LoadDirectory(dir);
}

std::vector<std::string> ProfileStore::Ids() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(graphs_.size());
  for (const auto& [id, graph] : graphs_) ids.push_back(id);
  return ids;
}

size_t ProfileStore::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return graphs_.size();
}

}  // namespace cqp::server
