#include "server/profile_store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

namespace cqp::server {

ProfileStore::ProfileStore(const storage::Database* db) : db_(db) {
  CQP_CHECK(db_ != nullptr);
}

Status ProfileStore::Put(const std::string& id, prefs::Profile profile) {
  if (id.empty()) return InvalidArgument("profile id must be non-empty");
  CQP_ASSIGN_OR_RETURN(
      prefs::PersonalizationGraph graph,
      prefs::PersonalizationGraph::Build(std::move(profile), *db_));
  auto shared =
      std::make_shared<const prefs::PersonalizationGraph>(std::move(graph));
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    Snapshot& slot = graphs_[id];
    slot.graph = std::move(shared);
    slot.version = next_version_++;
  }
  // Drop the replaced version's caches and plans. Correctness does not
  // depend on this ordering: cache keys embed the snapshot version, so a
  // request still holding the old graph can only touch old-version
  // entries. The invalidation reclaims their memory.
  caches_.InvalidateProfile(id);
  plans_.InvalidateProfile(id);
  return Status::OK();
}

Status ProfileStore::Remove(const std::string& id) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (graphs_.erase(id) == 0) {
      return NotFound("no profile '" + id + "'");
    }
  }
  caches_.InvalidateProfile(id);
  plans_.InvalidateProfile(id);
  return Status::OK();
}

ProfileStore::Snapshot ProfileStore::FindSnapshot(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = graphs_.find(id);
  return it == graphs_.end() ? Snapshot{} : it->second;
}

std::shared_ptr<const prefs::PersonalizationGraph> ProfileStore::Find(
    const std::string& id) const {
  return FindSnapshot(id).graph;
}

StatusOr<size_t> ProfileStore::LoadDirectory(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return NotFound("cannot read profile directory '" + dir +
                    "': " + ec.message());
  }
  size_t loaded = 0;
  std::string problems;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".profile") continue;
    std::ifstream in(path);
    if (!in) {
      problems += " " + path.filename().string() + ": unreadable;";
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    StatusOr<prefs::Profile> profile = prefs::Profile::Parse(buffer.str());
    if (!profile.ok()) {
      problems +=
          " " + path.filename().string() + ": " + profile.status().ToString() + ";";
      continue;
    }
    Status put = Put(path.stem().string(), *std::move(profile));
    if (!put.ok()) {
      problems += " " + path.filename().string() + ": " + put.ToString() + ";";
      continue;
    }
    ++loaded;
  }
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    directory_ = dir;
  }
  if (loaded == 0 && !problems.empty()) {
    return InvalidArgument("no profile loaded from '" + dir + "':" + problems);
  }
  if (!problems.empty()) {
    std::fprintf(stderr, "profile store: skipped files in %s:%s\n",
                 dir.c_str(), problems.c_str());
  }
  return loaded;
}

StatusOr<size_t> ProfileStore::Reload() {
  std::string dir;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    dir = directory_;
  }
  if (dir.empty()) {
    return FailedPrecondition(
        "profile store was not loaded from a directory; nothing to reload");
  }
  return LoadDirectory(dir);
}

std::vector<std::string> ProfileStore::Ids() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(graphs_.size());
  for (const auto& [id, graph] : graphs_) ids.push_back(id);
  return ids;
}

size_t ProfileStore::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return graphs_.size();
}

}  // namespace cqp::server
