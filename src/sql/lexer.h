#ifndef CQP_SQL_LEXER_H_
#define CQP_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cqp::sql {

/// Token categories of the SQL subset.
enum class TokenKind {
  kIdentifier,  ///< bare word that is not a keyword
  kKeyword,     ///< SELECT, DISTINCT, FROM, WHERE, AND, AS, ORDER, BY,
                ///< ASC, DESC, LIMIT
  kString,      ///< 'text' (quote doubling supported)
  kInt,         ///< 42
  kDouble,      ///< 4.5
  kSymbol,      ///< , . * ( ) ; = <> < <= > >=
  kEnd,         ///< end of input sentinel
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        ///< raw text; keywords upper-cased
  int64_t int_value = 0;   ///< for kInt
  double double_value = 0; ///< for kDouble
  size_t offset = 0;       ///< byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const;
  bool IsSymbol(const char* sym) const;
};

/// Tokenizes `input`. On success the final token is kEnd.
StatusOr<std::vector<Token>> Lex(const std::string& input);

}  // namespace cqp::sql

#endif  // CQP_SQL_LEXER_H_
