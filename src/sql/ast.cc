#include "sql/ast.h"

#include "common/str_util.h"

namespace cqp::sql {

std::string ColumnRef::ToSql() const {
  if (qualifier.empty()) return attribute;
  return qualifier + "." + attribute;
}

bool ColumnRef::operator==(const ColumnRef& other) const {
  return EqualsIgnoreCase(qualifier, other.qualifier) &&
         EqualsIgnoreCase(attribute, other.attribute);
}

std::string TableRef::ToSql() const {
  if (alias.empty() || EqualsIgnoreCase(alias, relation)) return relation;
  return relation + " " + alias;
}

Predicate Predicate::Selection(ColumnRef col, catalog::CompareOp op,
                               catalog::Value literal) {
  Predicate p;
  p.kind = Kind::kSelection;
  p.lhs = std::move(col);
  p.op = op;
  p.literal = std::move(literal);
  return p;
}

Predicate Predicate::Join(ColumnRef lhs, catalog::CompareOp op,
                          ColumnRef rhs) {
  Predicate p;
  p.kind = Kind::kJoin;
  p.lhs = std::move(lhs);
  p.op = op;
  p.rhs = std::move(rhs);
  return p;
}

std::string Predicate::ToSql() const {
  std::string out = lhs.ToSql();
  out += " ";
  out += catalog::CompareOpSql(op);
  out += " ";
  if (kind == Kind::kSelection) {
    out += literal.ToSqlLiteral();
  } else {
    out += rhs.ToSql();
  }
  return out;
}

bool Predicate::operator==(const Predicate& other) const {
  if (kind != other.kind || op != other.op || !(lhs == other.lhs)) {
    return false;
  }
  if (kind == Kind::kSelection) return literal == other.literal;
  return rhs == other.rhs;
}

std::string OrderItem::ToSql() const {
  std::string out = column.ToSql();
  if (descending) out += " DESC";
  return out;
}

std::string SelectQuery::ToSql() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (select_list.empty()) {
    out += "*";
  } else {
    std::vector<std::string> cols;
    cols.reserve(select_list.size());
    for (const ColumnRef& c : select_list) cols.push_back(c.ToSql());
    out += Join(cols, ", ");
  }
  out += " FROM ";
  std::vector<std::string> tables;
  tables.reserve(from.size());
  for (const TableRef& t : from) tables.push_back(t.ToSql());
  out += Join(tables, ", ");
  if (!where.empty()) {
    out += " WHERE ";
    std::vector<std::string> preds;
    preds.reserve(where.size());
    for (const Predicate& p : where) preds.push_back(p.ToSql());
    out += Join(preds, " AND ");
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    std::vector<std::string> keys;
    keys.reserve(order_by.size());
    for (const OrderItem& o : order_by) keys.push_back(o.ToSql());
    out += Join(keys, ", ");
  }
  if (limit.has_value()) {
    out += " LIMIT " + std::to_string(*limit);
  }
  return out;
}

std::string UnionGroupQuery::ToSql() const {
  std::vector<std::string> cols;
  cols.reserve(select_list.size());
  for (const ColumnRef& c : select_list) cols.push_back(c.ToSql());
  std::string col_text = Join(cols, ", ");

  std::string out = "SELECT " + col_text + " FROM (\n";
  for (size_t i = 0; i < branches.size(); ++i) {
    if (i > 0) out += "\n  UNION ALL\n";
    out += "  " + branches[i].ToSql();
  }
  out += "\n) GROUP BY " + col_text +
         " HAVING COUNT(*) = " + std::to_string(having_count);
  return out;
}

}  // namespace cqp::sql
