#ifndef CQP_SQL_FINGERPRINT_H_
#define CQP_SQL_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace cqp::sql {

/// Canonical serialization of a parsed query, built so that semantically
/// identical spellings collapse to one string:
///   * identifiers are upper-cased (the engine resolves names
///     case-insensitively) and whitespace differences disappear with the
///     original text;
///   * a qualifier that is an alias is replaced by its relation name when
///     that relation occurs exactly once in FROM (self-joins keep aliases);
///   * WHERE conjuncts are sorted (conjunction is commutative), and the two
///     sides of =/<> joins are ordered lexicographically (a.x = b.y and
///     b.y = a.x are the same condition; <, <= joins are mirrored to the
///     canonical side order);
///   * numeric literals are value-canonical: 1990, 1990.0 and 1.99e3 render
///     identically (integral doubles inside the exact-int53 range print as
///     integers, everything else as shortest-round-trip %.17g).
/// ORDER BY and FROM keep their written order — output order and, for
/// SELECT *, column order are semantic there.
std::string CanonicalQueryText(const SelectQuery& q);

/// 64-bit FNV-1a hash of CanonicalQueryText(q): the plan-cache key
/// component identifying "the same query modulo spelling".
uint64_t QueryFingerprint(const SelectQuery& q);

/// Canonical serialization of a §4.2 union rewriting. Branches are
/// rendered with CanonicalQueryText and SORTED, so two rewritings that
/// differ only in branch order (UNION ALL inputs under the HAVING COUNT
/// grouping are order-insensitive) collapse to one string — the PlanCache
/// dedupes them.
std::string CanonicalQueryText(const UnionGroupQuery& q);
uint64_t QueryFingerprint(const UnionGroupQuery& q);

/// Canonical texts of q's WHERE conjuncts — qualifiers resolved the same
/// way CanonicalQueryText resolves them (an alias of a uniquely-occurring
/// relation becomes the relation name) and =/<> join sides mirror-ordered —
/// returned sorted. Two branches' conjunct sets compare with std::includes:
/// the subset branch is the semantically weaker one (superset of rows),
/// which is what the rewrite layer's subsumption pass consumes.
std::vector<std::string> CanonicalWhereConjuncts(const SelectQuery& q);

/// Canonical qualifiers of q's FROM entries, sorted.
std::vector<std::string> CanonicalFromRelations(const SelectQuery& q);

/// Canonical text of q's select list (alias-resolved, written order).
std::string CanonicalSelectText(const SelectQuery& q);

}  // namespace cqp::sql

#endif  // CQP_SQL_FINGERPRINT_H_
