#ifndef CQP_SQL_FINGERPRINT_H_
#define CQP_SQL_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "sql/ast.h"

namespace cqp::sql {

/// Canonical serialization of a parsed query, built so that semantically
/// identical spellings collapse to one string:
///   * identifiers are upper-cased (the engine resolves names
///     case-insensitively) and whitespace differences disappear with the
///     original text;
///   * a qualifier that is an alias is replaced by its relation name when
///     that relation occurs exactly once in FROM (self-joins keep aliases);
///   * WHERE conjuncts are sorted (conjunction is commutative), and the two
///     sides of =/<> joins are ordered lexicographically (a.x = b.y and
///     b.y = a.x are the same condition; <, <= joins are mirrored to the
///     canonical side order);
///   * numeric literals are value-canonical: 1990, 1990.0 and 1.99e3 render
///     identically (integral doubles inside the exact-int53 range print as
///     integers, everything else as shortest-round-trip %.17g).
/// ORDER BY and FROM keep their written order — output order and, for
/// SELECT *, column order are semantic there.
std::string CanonicalQueryText(const SelectQuery& q);

/// 64-bit FNV-1a hash of CanonicalQueryText(q): the plan-cache key
/// component identifying "the same query modulo spelling".
uint64_t QueryFingerprint(const SelectQuery& q);

}  // namespace cqp::sql

#endif  // CQP_SQL_FINGERPRINT_H_
