#include "sql/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "common/str_util.h"

namespace cqp::sql {

namespace {

/// Largest double whose integer neighborhood is exactly representable;
/// integral doubles beyond it must keep the %.17g rendering to stay
/// collision-free against distinct int64 literals.
constexpr double kExactInt = 9007199254740992.0;  // 2^53

std::string CanonicalLiteral(const catalog::Value& v) {
  switch (v.type()) {
    case catalog::ValueType::kInt:
      return StrFormat("%lld", static_cast<long long>(v.AsInt()));
    case catalog::ValueType::kDouble: {
      double d = v.AsDouble();
      if (std::nearbyint(d) == d && std::fabs(d) < kExactInt) {
        return StrFormat("%lld", static_cast<long long>(d));
      }
      return StrFormat("%.17g", d);
    }
    case catalog::ValueType::kString: {
      std::string out = "'";
      for (char ch : v.AsString()) {
        if (ch == '\'') out += "''";
        else out += ch;
      }
      out += "'";
      return out;
    }
  }
  return v.ToSqlLiteral();
}

/// Maps every written qualifier (alias or bare relation, upper-cased) to
/// the canonical qualifier used in the fingerprint.
class QualifierMap {
 public:
  explicit QualifierMap(const std::vector<TableRef>& from) {
    std::map<std::string, int> relation_count;
    for (const TableRef& t : from) ++relation_count[ToUpper(t.relation)];
    for (const TableRef& t : from) {
      std::string relation = ToUpper(t.relation);
      // An alias for a uniquely-occurring relation is pure spelling; a
      // self-join's aliases are semantic and must stay distinct.
      const bool unique = relation_count[relation] == 1;
      map_[ToUpper(t.EffectiveAlias())] =
          unique ? relation : ToUpper(t.EffectiveAlias());
      if (unique) map_[relation] = relation;
    }
  }

  std::string Resolve(const std::string& qualifier) const {
    if (qualifier.empty()) return "";
    std::string upper = ToUpper(qualifier);
    auto it = map_.find(upper);
    return it == map_.end() ? upper : it->second;
  }

 private:
  std::map<std::string, std::string> map_;
};

std::string CanonicalRef(const ColumnRef& ref, const QualifierMap& quals) {
  std::string q = quals.Resolve(ref.qualifier);
  std::string attr = ToUpper(ref.attribute);
  return q.empty() ? attr : q + "." + attr;
}

catalog::CompareOp MirrorOp(catalog::CompareOp op) {
  switch (op) {
    case catalog::CompareOp::kLt: return catalog::CompareOp::kGt;
    case catalog::CompareOp::kLe: return catalog::CompareOp::kGe;
    case catalog::CompareOp::kGt: return catalog::CompareOp::kLt;
    case catalog::CompareOp::kGe: return catalog::CompareOp::kLe;
    case catalog::CompareOp::kEq:
    case catalog::CompareOp::kNe: return op;
  }
  return op;
}

std::string CanonicalPredicate(const Predicate& p, const QualifierMap& quals) {
  std::string lhs = CanonicalRef(p.lhs, quals);
  if (p.kind == Predicate::Kind::kSelection) {
    return lhs + catalog::CompareOpSql(p.op) + CanonicalLiteral(p.literal);
  }
  // Join: `a.x op b.y` and its mirrored spelling are one condition; order
  // the sides lexicographically and mirror the operator along with them.
  std::string rhs = CanonicalRef(p.rhs, quals);
  catalog::CompareOp op = p.op;
  if (rhs < lhs) {
    std::swap(lhs, rhs);
    op = MirrorOp(op);
  }
  return lhs + catalog::CompareOpSql(op) + rhs;
}

uint64_t Fnv1a(const std::string& text) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (unsigned char ch : text) {
    h ^= ch;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace

std::string CanonicalQueryText(const SelectQuery& q) {
  QualifierMap quals(q.from);
  std::string out = "SELECT";
  if (q.distinct) out += " DISTINCT";
  if (q.select_list.empty()) {
    out += " *";
  } else {
    for (size_t i = 0; i < q.select_list.size(); ++i) {
      out += i == 0 ? " " : ",";
      out += CanonicalRef(q.select_list[i], quals);
    }
  }
  out += "|FROM";
  for (size_t i = 0; i < q.from.size(); ++i) {
    out += i == 0 ? " " : ",";
    out += quals.Resolve(q.from[i].EffectiveAlias());
  }
  if (!q.where.empty()) {
    std::vector<std::string> conjuncts;
    conjuncts.reserve(q.where.size());
    for (const Predicate& p : q.where) {
      conjuncts.push_back(CanonicalPredicate(p, quals));
    }
    std::sort(conjuncts.begin(), conjuncts.end());
    out += "|WHERE " + Join(conjuncts, " AND ");
  }
  if (!q.order_by.empty()) {
    out += "|ORDER";
    for (size_t i = 0; i < q.order_by.size(); ++i) {
      out += i == 0 ? " " : ",";
      out += CanonicalRef(q.order_by[i].column, quals);
      out += q.order_by[i].descending ? " DESC" : " ASC";
    }
  }
  if (q.limit.has_value()) {
    out += StrFormat("|LIMIT %lld", static_cast<long long>(*q.limit));
  }
  return out;
}

uint64_t QueryFingerprint(const SelectQuery& q) {
  return Fnv1a(CanonicalQueryText(q));
}

std::string CanonicalQueryText(const UnionGroupQuery& q) {
  // The outer select list is unqualified output columns; no qualifier map
  // applies. Branch texts are sorted: the UNION ALL inputs feed a grouped
  // intersection, so their order carries no semantics.
  std::string out = "UNION";
  for (size_t i = 0; i < q.select_list.size(); ++i) {
    out += i == 0 ? " " : ",";
    out += ToUpper(q.select_list[i].attribute);
  }
  out += StrFormat("|HAVING %lld", static_cast<long long>(q.having_count));
  std::vector<std::string> branches;
  branches.reserve(q.branches.size());
  for (const SelectQuery& b : q.branches) {
    branches.push_back(CanonicalQueryText(b));
  }
  std::sort(branches.begin(), branches.end());
  for (const std::string& b : branches) out += "|BRANCH " + b;
  return out;
}

uint64_t QueryFingerprint(const UnionGroupQuery& q) {
  return Fnv1a(CanonicalQueryText(q));
}

std::vector<std::string> CanonicalWhereConjuncts(const SelectQuery& q) {
  QualifierMap quals(q.from);
  std::vector<std::string> out;
  out.reserve(q.where.size());
  for (const Predicate& p : q.where) {
    out.push_back(CanonicalPredicate(p, quals));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> CanonicalFromRelations(const SelectQuery& q) {
  QualifierMap quals(q.from);
  std::vector<std::string> out;
  out.reserve(q.from.size());
  for (const TableRef& t : q.from) {
    out.push_back(quals.Resolve(t.EffectiveAlias()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string CanonicalSelectText(const SelectQuery& q) {
  QualifierMap quals(q.from);
  std::string out;
  for (size_t i = 0; i < q.select_list.size(); ++i) {
    if (i != 0) out += ",";
    out += CanonicalRef(q.select_list[i], quals);
  }
  return out;
}

}  // namespace cqp::sql
