#include "sql/parser.h"

#include <vector>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace cqp::sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SelectQuery> ParseQuery() {
    CQP_ASSIGN_OR_RETURN(SelectQuery q, ParseQueryBody());
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return q;
  }

  /// One SELECT without the trailing-input check; stops at tokens owned by
  /// an enclosing construct (UNION, ')', ';', end).
  StatusOr<SelectQuery> ParseQueryBody() {
    SelectQuery q;
    CQP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (Peek().IsKeyword("DISTINCT")) {
      Advance();
      q.distinct = true;
    }
    if (Peek().IsSymbol("*")) {
      Advance();
    } else {
      CQP_ASSIGN_OR_RETURN(ColumnRef first, ParseColumnRef());
      q.select_list.push_back(std::move(first));
      while (Peek().IsSymbol(",")) {
        Advance();
        CQP_ASSIGN_OR_RETURN(ColumnRef col, ParseColumnRef());
        q.select_list.push_back(std::move(col));
      }
    }
    CQP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    CQP_ASSIGN_OR_RETURN(TableRef first_table, ParseTableRef());
    q.from.push_back(std::move(first_table));
    while (Peek().IsSymbol(",")) {
      Advance();
      CQP_ASSIGN_OR_RETURN(TableRef table, ParseTableRef());
      q.from.push_back(std::move(table));
    }
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      CQP_ASSIGN_OR_RETURN(Predicate first_pred, ParsePredicate());
      q.where.push_back(std::move(first_pred));
      while (Peek().IsKeyword("AND")) {
        Advance();
        CQP_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate());
        q.where.push_back(std::move(pred));
      }
    }
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      CQP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        CQP_ASSIGN_OR_RETURN(OrderItem item, ParseOrderItem());
        q.order_by.push_back(std::move(item));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }
    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      if (Peek().kind != TokenKind::kInt || Peek().int_value < 0) {
        return Error("LIMIT expects a non-negative integer");
      }
      q.limit = Advance().int_value;
    }
    return q;
  }

  StatusOr<UnionGroupQuery> ParseUnionGroupQuery() {
    UnionGroupQuery q;
    CQP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    CQP_ASSIGN_OR_RETURN(ColumnRef first_col, ParseColumnRef());
    q.select_list.push_back(std::move(first_col));
    while (Peek().IsSymbol(",")) {
      Advance();
      CQP_ASSIGN_OR_RETURN(ColumnRef col, ParseColumnRef());
      q.select_list.push_back(std::move(col));
    }
    CQP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (!Peek().IsSymbol("(")) return Error("expected ( starting the union");
    Advance();
    CQP_ASSIGN_OR_RETURN(SelectQuery first_branch, ParseQueryBody());
    q.branches.push_back(std::move(first_branch));
    while (Peek().IsKeyword("UNION")) {
      Advance();
      CQP_RETURN_IF_ERROR(ExpectKeyword("ALL"));
      CQP_ASSIGN_OR_RETURN(SelectQuery branch, ParseQueryBody());
      q.branches.push_back(std::move(branch));
    }
    if (!Peek().IsSymbol(")")) return Error("expected ) closing the union");
    Advance();
    CQP_RETURN_IF_ERROR(ExpectKeyword("GROUP"));
    CQP_RETURN_IF_ERROR(ExpectKeyword("BY"));
    std::vector<ColumnRef> group_by;
    CQP_ASSIGN_OR_RETURN(ColumnRef first_key, ParseColumnRef());
    group_by.push_back(std::move(first_key));
    while (Peek().IsSymbol(",")) {
      Advance();
      CQP_ASSIGN_OR_RETURN(ColumnRef key, ParseColumnRef());
      group_by.push_back(std::move(key));
    }
    CQP_RETURN_IF_ERROR(ExpectKeyword("HAVING"));
    CQP_RETURN_IF_ERROR(ExpectKeyword("COUNT"));
    if (!Peek().IsSymbol("(")) return Error("expected COUNT(*)");
    Advance();
    if (!Peek().IsSymbol("*")) return Error("expected COUNT(*)");
    Advance();
    if (!Peek().IsSymbol(")")) return Error("expected COUNT(*)");
    Advance();
    if (!Peek().IsSymbol("=")) return Error("expected = after COUNT(*)");
    Advance();
    if (Peek().kind != TokenKind::kInt || Peek().int_value < 1) {
      return Error("HAVING COUNT(*) expects a positive integer");
    }
    q.having_count = Advance().int_value;
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }

    // Shape checks (§4.2): GROUP BY == outer select list; branch arities
    // match the outer arity.
    if (group_by.size() != q.select_list.size()) {
      return InvalidArgument("GROUP BY must repeat the outer select list");
    }
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (!(group_by[i] == q.select_list[i])) {
        return InvalidArgument("GROUP BY must repeat the outer select list");
      }
    }
    for (const SelectQuery& branch : q.branches) {
      if (branch.select_list.size() != q.select_list.size()) {
        return InvalidArgument(
            "union branches must project the same number of columns as the "
            "outer query");
      }
    }
    return q;
  }

 private:
  const Token& Peek(size_t lookahead = 0) const {
    size_t i = pos_ + lookahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return InvalidArgument(StrFormat("%s at offset %zu (near \"%s\")",
                                     msg.c_str(), Peek().offset,
                                     Peek().text.c_str()));
  }

  Status ExpectKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) return Error(std::string("expected ") + kw);
    Advance();
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected identifier");
    }
    return Advance().text;
  }

  StatusOr<ColumnRef> ParseColumnRef() {
    CQP_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
    ColumnRef col;
    if (Peek().IsSymbol(".")) {
      Advance();
      CQP_ASSIGN_OR_RETURN(std::string attr, ExpectIdentifier());
      col.qualifier = std::move(first);
      col.attribute = std::move(attr);
    } else {
      col.attribute = std::move(first);
    }
    return col;
  }

  StatusOr<TableRef> ParseTableRef() {
    CQP_ASSIGN_OR_RETURN(std::string rel, ExpectIdentifier());
    TableRef t;
    t.relation = std::move(rel);
    if (Peek().IsKeyword("AS")) {
      Advance();
      CQP_ASSIGN_OR_RETURN(std::string alias, ExpectIdentifier());
      t.alias = std::move(alias);
    } else if (Peek().kind == TokenKind::kIdentifier) {
      t.alias = Advance().text;
    }
    return t;
  }

  StatusOr<OrderItem> ParseOrderItem() {
    OrderItem item;
    CQP_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
    if (Peek().IsKeyword("DESC")) {
      Advance();
      item.descending = true;
    } else if (Peek().IsKeyword("ASC")) {
      Advance();
    }
    return item;
  }

  StatusOr<catalog::CompareOp> ParseCompareOp() {
    const Token& tok = Peek();
    if (tok.kind != TokenKind::kSymbol) return Error("expected comparison");
    catalog::CompareOp op;
    if (tok.text == "=") {
      op = catalog::CompareOp::kEq;
    } else if (tok.text == "<>") {
      op = catalog::CompareOp::kNe;
    } else if (tok.text == "<") {
      op = catalog::CompareOp::kLt;
    } else if (tok.text == "<=") {
      op = catalog::CompareOp::kLe;
    } else if (tok.text == ">") {
      op = catalog::CompareOp::kGt;
    } else if (tok.text == ">=") {
      op = catalog::CompareOp::kGe;
    } else {
      return Error("expected comparison operator");
    }
    Advance();
    return op;
  }

  StatusOr<Predicate> ParsePredicate() {
    CQP_ASSIGN_OR_RETURN(ColumnRef lhs, ParseColumnRef());
    CQP_ASSIGN_OR_RETURN(catalog::CompareOp op, ParseCompareOp());
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInt: {
        Advance();
        return Predicate::Selection(std::move(lhs), op,
                                    catalog::Value(tok.int_value));
      }
      case TokenKind::kDouble: {
        Advance();
        return Predicate::Selection(std::move(lhs), op,
                                    catalog::Value(tok.double_value));
      }
      case TokenKind::kString: {
        Advance();
        return Predicate::Selection(std::move(lhs), op,
                                    catalog::Value(tok.text));
      }
      case TokenKind::kIdentifier: {
        CQP_ASSIGN_OR_RETURN(ColumnRef rhs, ParseColumnRef());
        return Predicate::Join(std::move(lhs), op, std::move(rhs));
      }
      default:
        return Error("expected literal or column reference");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<SelectQuery> ParseSelect(const std::string& text) {
  CQP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

StatusOr<UnionGroupQuery> ParseUnionGroup(const std::string& text) {
  CQP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseUnionGroupQuery();
}

}  // namespace cqp::sql
