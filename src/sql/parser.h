#ifndef CQP_SQL_PARSER_H_
#define CQP_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace cqp::sql {

/// Parses one SPJ query of the supported SQL subset:
///
///   SELECT [DISTINCT] (* | col[, col...])
///   FROM rel [[AS] alias][, rel [[AS] alias]...]
///   [WHERE pred AND pred ...]
///   [ORDER BY col [ASC|DESC][, ...]]  [LIMIT n]  [;]
///
/// where `col` is `[qualifier.]attribute` and `pred` is
/// `col op (literal | col)` with op in {=, <>, !=, <, <=, >, >=}.
/// ORDER BY keys must be part of the projected columns.
StatusOr<SelectQuery> ParseSelect(const std::string& text);

/// Parses the §4.2 personalized-query shape (see sql::UnionGroupQuery):
///
///   SELECT cols FROM ( q1 UNION ALL q2 ... )
///   GROUP BY cols HAVING COUNT(*) = n
///
/// Validates that GROUP BY repeats the outer select list and that every
/// branch projects the same arity.
StatusOr<UnionGroupQuery> ParseUnionGroup(const std::string& text);

}  // namespace cqp::sql

#endif  // CQP_SQL_PARSER_H_
