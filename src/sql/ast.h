#ifndef CQP_SQL_AST_H_
#define CQP_SQL_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/compare.h"
#include "catalog/value.h"

namespace cqp::sql {

/// A possibly-qualified column reference ("m.title" or "title").
struct ColumnRef {
  std::string qualifier;  ///< table name or alias; empty if unqualified
  std::string attribute;

  std::string ToSql() const;
  bool operator==(const ColumnRef& other) const;
};

/// A FROM-clause entry with optional alias.
struct TableRef {
  std::string relation;
  std::string alias;  ///< empty means "no alias"

  /// Alias if present, otherwise the relation name.
  const std::string& EffectiveAlias() const {
    return alias.empty() ? relation : alias;
  }
  std::string ToSql() const;
};

/// A conjunct of the WHERE clause: either a selection (`col op literal`) or
/// an equi/theta join (`col op col`).
struct Predicate {
  enum class Kind { kSelection, kJoin };

  Kind kind = Kind::kSelection;
  ColumnRef lhs;
  catalog::CompareOp op = catalog::CompareOp::kEq;
  catalog::Value literal;  ///< meaningful when kind == kSelection
  ColumnRef rhs;           ///< meaningful when kind == kJoin

  static Predicate Selection(ColumnRef col, catalog::CompareOp op,
                             catalog::Value literal);
  static Predicate Join(ColumnRef lhs, catalog::CompareOp op, ColumnRef rhs);

  std::string ToSql() const;
  bool operator==(const Predicate& other) const;
};

/// One ORDER BY key.
struct OrderItem {
  ColumnRef column;
  bool descending = false;

  std::string ToSql() const;
};

/// A conjunctive select-project-join query, optionally ordered and limited.
///
/// This is the query class the paper personalizes: SELECT (no aggregates)
/// over a list of relations with a conjunctive WHERE clause. The
/// UNION ALL + GROUP BY/HAVING rewriting of §4.2 is represented separately
/// by construct::PersonalizedQuery. ORDER BY / LIMIT are engine extensions
/// (the paper's §2 contrasts CQP's size *bounds* with top-k's fixed k; the
/// executor supports both styles).
struct SelectQuery {
  bool distinct = false;
  std::vector<ColumnRef> select_list;  ///< empty means SELECT *
  std::vector<TableRef> from;
  std::vector<Predicate> where;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  std::string ToSql() const;
};

/// The §4.2 rewriting as a first-class SQL statement:
///
///   SELECT col[, col...] FROM (
///     branch1 UNION ALL branch2 ...
///   ) GROUP BY col[, col...] HAVING COUNT(*) = n
///
/// The outer select list and the GROUP BY list must coincide (the paper
/// groups by the entire projected row). Branch select lists must have the
/// same arity. This makes the text printed by
/// construct::PersonalizedQuery::ToSql() parseable and executable by the
/// engine itself (exec::ExecuteUnionGroup).
struct UnionGroupQuery {
  std::vector<ColumnRef> select_list;  ///< unqualified output columns
  std::vector<SelectQuery> branches;   ///< the UNION ALL inputs
  int64_t having_count = 0;            ///< COUNT(*) = having_count

  std::string ToSql() const;
};

}  // namespace cqp::sql

#endif  // CQP_SQL_AST_H_
