#include "sql/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace cqp::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsKeywordWord(const std::string& upper) {
  return upper == "SELECT" || upper == "DISTINCT" || upper == "FROM" ||
         upper == "WHERE" || upper == "AND" || upper == "AS" ||
         upper == "ORDER" || upper == "BY" || upper == "ASC" ||
         upper == "DESC" || upper == "LIMIT" || upper == "UNION" ||
         upper == "ALL" || upper == "GROUP" || upper == "HAVING" ||
         upper == "COUNT";
}

}  // namespace

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kKeyword && text == kw;
}

bool Token::IsSymbol(const char* sym) const {
  return kind == TokenKind::kSymbol && text == sym;
}

StatusOr<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      std::string word = input.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (IsKeywordWord(upper)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = upper;
      } else {
        tok.kind = TokenKind::kIdentifier;
        tok.text = word;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i + 1;
      bool is_double = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        if (input[j] == '.') {
          if (is_double) break;  // second dot terminates the number
          is_double = true;
        }
        ++j;
      }
      std::string num = input.substr(i, j - i);
      if (is_double) {
        tok.kind = TokenKind::kDouble;
        tok.double_value = std::stod(num);
      } else {
        tok.kind = TokenKind::kInt;
        tok.int_value = std::stoll(num);
      }
      tok.text = num;
      i = j;
    } else if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += input[j];
        ++j;
      }
      if (!closed) {
        return InvalidArgument(
            StrFormat("unterminated string literal at offset %zu", i));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(text);
      i = j;
    } else if (c == '<') {
      if (i + 1 < n && (input[i + 1] == '=' || input[i + 1] == '>')) {
        tok.kind = TokenKind::kSymbol;
        tok.text = input.substr(i, 2);
        i += 2;
      } else {
        tok.kind = TokenKind::kSymbol;
        tok.text = "<";
        ++i;
      }
    } else if (c == '>') {
      if (i + 1 < n && input[i + 1] == '=') {
        tok.kind = TokenKind::kSymbol;
        tok.text = ">=";
        i += 2;
      } else {
        tok.kind = TokenKind::kSymbol;
        tok.text = ">";
        ++i;
      }
    } else if (c == '!' && i + 1 < n && input[i + 1] == '=') {
      // Accept != as a spelling of <>.
      tok.kind = TokenKind::kSymbol;
      tok.text = "<>";
      i += 2;
    } else if (c == ',' || c == '.' || c == '*' || c == '(' || c == ')' ||
               c == ';' || c == '=') {
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(1, c);
      ++i;
    } else {
      return InvalidArgument(
          StrFormat("unexpected character '%c' at offset %zu", c, i));
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace cqp::sql
