#ifndef CQP_CONSTRUCT_QUERY_BUILDER_H_
#define CQP_CONSTRUCT_QUERY_BUILDER_H_

#include <string>
#include <vector>

#include "common/index_set.h"
#include "common/status.h"
#include "estimation/evaluator.h"
#include "prefs/preference.h"
#include "rewrite/ir.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace cqp::construct {

/// The personalized query of §4.2: the original query's projection computed
/// as the UNION ALL of one sub-query per integrated preference, grouped by
/// the projected row with HAVING COUNT(*) = L.
struct PersonalizedQuery {
  sql::SelectQuery base;  ///< Q with its select list canonicalized
  std::vector<sql::SelectQuery> subqueries;
  /// Preference P-indices integrated by each sub-query (singletons unless
  /// compatible preferences were merged).
  std::vector<std::vector<int32_t>> subquery_prefs;
  /// Combined doi of each sub-query's preferences (used for ranking).
  std::vector<double> dois;

  /// What the semantic optimizer did to this rewriting (all zero when
  /// BuildOptions.optimize is off or no pass fired).
  rewrite::RewriteStats rewrite;
  /// SQL text of the rewriting before optimization; set only when the
  /// optimizer ran (for .explain / debugging). Empty otherwise.
  std::string pre_rewrite_sql;

  size_t L() const { return subqueries.size(); }

  /// The rewriting as a first-class SQL statement: DISTINCT branches (so
  /// the standard UNION ALL / HAVING COUNT(*) semantics equal the exact
  /// intersection semantics of exec::ExecutePersonalized), grouped by the
  /// projected row. Requires L() >= 1. The result round-trips: it can be
  /// parsed back with sql::ParseUnionGroup and run with
  /// exec::Executor::ExecuteUnionGroup, yielding the same rows.
  sql::UnionGroupQuery UnionGroupForm() const;

  /// Renders the full rewriting as SQL text (the base query when no
  /// preference is integrated, UnionGroupForm().ToSql() otherwise).
  std::string ToSql() const;
};

/// Options controlling query construction.
struct BuildOptions {
  /// Footnote 1 of the paper: merge preferences into one sub-query when
  /// provably safe. We merge only join-free preferences (selections
  /// directly on the query's own relations), which constrain the same base
  /// row; merging path preferences can change semantics (two genre
  /// preferences require two GENRE rows, not one).
  bool merge_compatible = false;
  /// Run the semantic optimizer (docs/rewriting.md) over the assembled
  /// rewriting: constraint-redundant conjuncts are dropped, contradicted
  /// branches eliminated, and subsumed branches merged. Sound on databases
  /// that satisfy db.constraints(); an empty constraint set still enables
  /// the pure-logic passes (duplicate conjuncts, subsumption).
  bool optimize = true;
};

/// Builds one sub-query integrating `pref` into `base`: base's FROM plus a
/// fresh alias per path relation, the path's join predicates, and the final
/// selection. `ordinal` namespaces the fresh aliases (p<ordinal>_<rel>).
StatusOr<sql::SelectQuery> BuildSubQuery(const storage::Database& db,
                                         const sql::SelectQuery& base,
                                         const prefs::ImplicitPreference& pref,
                                         int ordinal);

/// Builds the full personalized query for the chosen preference subset
/// (P-indices into `prefs`). An empty subset yields a PersonalizedQuery
/// with no sub-queries (the original query).
StatusOr<PersonalizedQuery> BuildPersonalizedQuery(
    const storage::Database& db, const sql::SelectQuery& base,
    const std::vector<estimation::ScoredPreference>& prefs,
    const IndexSet& chosen, const BuildOptions& options = BuildOptions());

/// Rewrites `base` so its select list is explicit (expanding SELECT *) and
/// every column is qualified with its table alias. Sub-queries add tables,
/// so unqualified names could otherwise become ambiguous.
StatusOr<sql::SelectQuery> CanonicalizeSelectList(const storage::Database& db,
                                                  const sql::SelectQuery& base);

}  // namespace cqp::construct

#endif  // CQP_CONSTRUCT_QUERY_BUILDER_H_
