#ifndef CQP_CONSTRUCT_PLAN_CACHE_H_
#define CQP_CONSTRUCT_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "space/prepared_space.h"

namespace cqp::construct {

/// Point-in-time counters of a PlanCache.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;       ///< LRU evictions (capacity pressure only)
  uint64_t invalidations = 0;   ///< entries dropped by InvalidateProfile/Clear
  size_t entries = 0;

  double hit_rate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// A bounded, thread-safe LRU cache of PreparedSpace artifacts: the
/// "prepare once, solve many" half of the personalization pipeline.
///
/// Keys identify everything extraction depends on:
///   * the canonical query fingerprint (sql::QueryFingerprint — spelling
///     differences collapse, semantic differences don't),
///   * the profile id AND its snapshot version — a reloaded profile bumps
///     the version, so stale prepared spaces are unreachable by
///     construction even before InvalidateProfile sweeps them out,
///   * a config string covering the estimator's cost-model parameters and
///     the extraction options (max_k, path bounds, conjunction model, ...).
/// The concrete ProblemSpec is deliberately NOT part of the key: one cached
/// PreparedSpace serves every problem class via ForProblem().
class PlanCache {
 public:
  struct Key {
    uint64_t query_fingerprint = 0;
    std::string profile_id;
    uint64_t profile_version = 0;
    std::string config;

    bool operator==(const Key& other) const = default;
  };

  /// One cached entry, as reported to diagnostics (.plans).
  struct EntryInfo {
    Key key;
    size_t k = 0;  ///< preferences in the prepared space
  };

  explicit PlanCache(size_t max_entries = 128);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached artifact (bumping it to most-recently-used) or
  /// nullptr; counts a hit or a miss.
  std::shared_ptr<const space::PreparedSpace> Find(const Key& key);

  /// Inserts (or replaces) the artifact for `key`, evicting the
  /// least-recently-used entry when the cache is full.
  void Insert(const Key& key,
              std::shared_ptr<const space::PreparedSpace> space);

  /// Drops every entry of `profile_id` regardless of version; returns the
  /// number removed. Call alongside EvalCacheRegistry::InvalidateProfile on
  /// profile reload — version keying already makes stale hits impossible,
  /// invalidation just frees the memory promptly.
  size_t InvalidateProfile(const std::string& profile_id);

  /// Drops everything (counts as invalidations, not evictions).
  void Clear();

  PlanCacheStats stats() const;
  size_t size() const;
  size_t max_entries() const { return max_entries_; }

  /// Snapshot of the current entries, most-recently-used first.
  std::vector<EntryInfo> Entries() const;

 private:
  using Entry = std::pair<Key, std::shared_ptr<const space::PreparedSpace>>;

  static std::string MapKey(const Key& key);

  const size_t max_entries_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace cqp::construct

#endif  // CQP_CONSTRUCT_PLAN_CACHE_H_
