#include "construct/personalizer.h"

#include "common/str_util.h"
#include "exec/executor.h"
#include "sql/parser.h"

namespace cqp::construct {

Personalizer::Personalizer(const storage::Database* db,
                           const prefs::PersonalizationGraph* graph,
                           exec::CostModelParams cost_params)
    : db_(db), graph_(graph), cost_params_(cost_params) {
  CQP_CHECK(db_ != nullptr);
  CQP_CHECK(graph_ != nullptr);
}

StatusOr<PersonalizeResult> Personalizer::Personalize(
    const PersonalizeRequest& request) const {
  sql::SelectQuery query = request.query;
  if (query.from.empty()) {
    CQP_ASSIGN_OR_RETURN(query, sql::ParseSelect(request.sql));
  }
  CQP_RETURN_IF_ERROR(request.problem.Validate());
  // "auto": the exact boundary algorithm for doi maximization, the exact
  // branch-and-bound for cost minimization.
  std::string algorithm_name = request.algorithm;
  if (EqualsIgnoreCase(algorithm_name, "auto")) {
    algorithm_name =
        request.problem.objective == cqp::Objective::kMaximizeDoi
            ? "C-Boundaries"
            : "MinCost-BB";
  }
  CQP_ASSIGN_OR_RETURN(const cqp::Algorithm* algorithm,
                       cqp::GetAlgorithm(algorithm_name));
  if (!algorithm->Supports(request.problem)) {
    return FailedPrecondition(std::string(algorithm->name()) +
                              " does not support problem: " +
                              request.problem.ToString());
  }

  estimation::ParameterEstimator estimator(db_, cost_params_);

  PersonalizeResult result;
  CQP_ASSIGN_OR_RETURN(
      result.space,
      space::ExtractPreferenceSpace(query, *graph_, estimator,
                                    request.problem, request.space_options));
  CQP_ASSIGN_OR_RETURN(
      result.solution,
      algorithm->Solve(result.space, request.problem, &result.metrics));

  CQP_ASSIGN_OR_RETURN(
      result.personalized,
      BuildPersonalizedQuery(*db_, query, result.space.prefs,
                             result.solution.feasible ? result.solution.chosen
                                                      : IndexSet(),
                             request.build_options));
  result.final_sql = result.personalized.ToSql();
  return result;
}

StatusOr<exec::PersonalizedResultSet> Personalizer::Execute(
    const PersonalizeResult& result, exec::ExecStats* stats) const {
  exec::Executor executor(db_, cost_params_);
  if (result.personalized.subqueries.empty()) {
    // No preference integrated: run the (canonicalized) original query.
    CQP_ASSIGN_OR_RETURN(exec::RowSet rows,
                         executor.Execute(result.personalized.base, stats));
    exec::PersonalizedResultSet out;
    out.column_names = rows.column_names();
    out.rows.reserve(rows.row_count());
    for (const storage::Tuple& row : rows.rows()) {
      out.rows.push_back(exec::PersonalizedRow{row, IndexSet(), 0.0});
    }
    return out;
  }
  CQP_ASSIGN_OR_RETURN(
      exec::PersonalizedResultSet rows,
      exec::ExecutePersonalized(executor, result.personalized.subqueries,
                                result.personalized.dois,
                                exec::CombineMode::kIntersection, stats));
  // A LIMIT on the original query caps the doi-ranked delivery.
  if (result.personalized.base.limit.has_value()) {
    size_t cap = static_cast<size_t>(*result.personalized.base.limit);
    if (rows.rows.size() > cap) rows.rows.resize(cap);
  }
  return rows;
}

}  // namespace cqp::construct
