#include "construct/personalizer.h"

#include <bit>
#include <optional>
#include <utility>

#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "estimation/batch_evaluator.h"
#include "estimation/eval_cache.h"
#include "exec/executor.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"

namespace cqp::construct {

const char* FallbackRungName(FallbackRung rung) {
  switch (rung) {
    case FallbackRung::kPrimary:
      return "Primary";
    case FallbackRung::kHeuristic:
      return "Heuristic";
    case FallbackRung::kTopK:
      return "TopK";
    case FallbackRung::kOriginal:
      return "Original";
  }
  return "Unknown";
}

Personalizer::Personalizer(const storage::Database* db,
                           const prefs::PersonalizationGraph* graph,
                           exec::CostModelParams cost_params)
    : db_(db), graph_(graph), cost_params_(cost_params) {
  CQP_CHECK(db_ != nullptr);
  CQP_CHECK(graph_ != nullptr);
}

namespace {

/// A solver rung's outcome is *accepted* when the search finished with a
/// usable answer: a feasible solution (possibly degraded), or a clean
/// completion proving infeasibility. An exhausted search that found nothing
/// feasible proves nothing — the ladder descends.
bool AcceptRung(const cqp::Solution& solution, const cqp::SearchContext& ctx) {
  return solution.feasible || !ctx.exhausted();
}

std::string DescribeAttempt(const std::string& name, const Status& status,
                            const cqp::Solution& solution,
                            const cqp::SearchContext& ctx) {
  if (!status.ok()) return name + ": " + status.ToString();
  std::string out = name + ": ";
  out += solution.feasible ? "feasible" : "infeasible";
  if (ctx.exhausted()) {
    out += std::string(" (budget: ") + BudgetExhaustionName(ctx.exhaustion()) +
           ")";
  }
  return out;
}

/// The TopK rung: evaluate the doi-descending prefixes {p1}, {p1,p2}, ... of
/// P (P is doi-sorted) and keep the best feasible one. O(K) evaluations —
/// cheap enough to run under an almost-spent budget, and the natural
/// "integrate the top preferences that still fit" degradation.
cqp::Solution GreedyTopK(const space::PreferenceSpaceResult& space,
                         const cqp::ProblemSpec& problem,
                         cqp::SearchContext& ctx) {
  estimation::StateEvaluator evaluator = space.MakeEvaluator();
  cqp::Solution best;
  best.feasible = false;
  best.params = evaluator.EmptyState();
  estimation::StateParams params = evaluator.EmptyState();
  std::vector<int32_t> prefix;
  prefix.reserve(evaluator.K());
  for (size_t i = 0; i < evaluator.K(); ++i) {
    if (ctx.ShouldStop()) break;
    params = evaluator.ExtendWith(params, static_cast<int32_t>(i));
    ++ctx.metrics.states_examined;
    prefix.push_back(static_cast<int32_t>(i));
    if (problem.IsFeasible(params) &&
        (!best.feasible || problem.Better(params, best.params))) {
      best.feasible = true;
      best.chosen = IndexSet::FromUnsorted(prefix);
      best.params = params;
    }
  }
  best.degraded = true;  // a fallback answer is degraded by definition
  return best;
}

/// The terminal rung: the unpersonalized original query (empty preference
/// subset), delivered with an OK status no matter what failed above.
cqp::Solution OriginalQuerySolution() {
  cqp::Solution s;
  s.feasible = false;
  s.degraded = true;
  return s;
}

/// The K=0 space a result falls back to when extraction itself failed, so
/// PersonalizeResult::space is never null. Shared process-wide (immutable).
std::shared_ptr<const space::PreferenceSpaceResult> EmptySpace() {
  static const auto* empty =
      new std::shared_ptr<const space::PreferenceSpaceResult>(
          std::make_shared<const space::PreferenceSpaceResult>());
  return *empty;
}

std::string DoubleBits(double v) {
  return StrFormat(
      "%llx", static_cast<unsigned long long>(std::bit_cast<uint64_t>(v)));
}

/// Plan-cache config key: every knob extraction (and hence the cached
/// artifact) depends on besides query and profile. Exact bit patterns, so
/// "almost equal" configs never share an entry. The constraint-set revision
/// joins the key because the pre-search pruning pass consults the
/// constraints: SetConstraints() bumps the revision and all prior entries
/// (extracted under the old constraints) become unreachable.
std::string PlanConfigKey(const exec::CostModelParams& cost,
                          const space::PreferenceSpaceOptions& options,
                          uint64_t constraint_revision) {
  return StrFormat("b%s:t%s:k%zu:j%zu:p%d:c%d:d%s:v%d:x%d:r%llu",
                   DoubleBits(cost.millis_per_block).c_str(),
                   DoubleBits(cost.micros_per_tuple).c_str(), options.max_k,
                   options.max_path_joins,
                   static_cast<int>(options.path_composition),
                   static_cast<int>(options.conjunction_model),
                   DoubleBits(options.min_doi).c_str(),
                   options.build_cost_size_vectors ? 1 : 0,
                   options.constraint_prune ? 1 : 0,
                   static_cast<unsigned long long>(constraint_revision));
}

}  // namespace

StatusOr<Personalizer::ResolvedAlgorithm> Personalizer::ResolveAlgorithm(
    const PersonalizeRequest& request) const {
  CQP_RETURN_IF_ERROR(request.problem.Validate());
  ResolvedAlgorithm resolved;
  resolved.doi_objective =
      request.problem.objective == cqp::Objective::kMaximizeDoi;
  // "auto": the exact boundary algorithm for doi maximization, the exact
  // branch-and-bound for cost minimization.
  resolved.name = request.algorithm;
  if (EqualsIgnoreCase(resolved.name, "auto")) {
    resolved.name = resolved.doi_objective ? "C-Boundaries" : "MinCost-BB";
  }
  CQP_ASSIGN_OR_RETURN(resolved.algorithm, cqp::GetAlgorithm(resolved.name));
  if (!resolved.algorithm->Supports(request.problem)) {
    return FailedPrecondition(std::string(resolved.algorithm->name()) +
                              " does not support problem: " +
                              request.problem.ToString());
  }
  return resolved;
}

StatusOr<PreparedQuery> Personalizer::PrepareParsed(
    sql::SelectQuery query, const PersonalizeRequest& request) const {
  PreparedQuery prepared;
  prepared.query = std::move(query);
  prepared.fingerprint = sql::QueryFingerprint(prepared.query);

  // Effective extraction options: the pruning pass reads the database's
  // constraint set, and disable_rewrite turns the pass off wholesale.
  space::PreferenceSpaceOptions space_options = request.space_options;
  space_options.constraints = &db_->constraints();
  space_options.constraint_prune =
      space_options.constraint_prune && !request.disable_rewrite;

  PlanCache::Key key;
  if (request.plan_cache != nullptr) {
    key.query_fingerprint = prepared.fingerprint;
    key.profile_id = request.profile_id;
    key.profile_version = request.profile_version;
    key.config = PlanConfigKey(cost_params_, space_options,
                               db_->constraint_revision());
    if (auto cached = request.plan_cache->Find(key)) {
      prepared.space = std::move(cached);
      prepared.cache_hit = true;
      return prepared;
    }
  }

  const prefs::PersonalizationGraph& graph =
      request.graph != nullptr ? *request.graph : *graph_;
  estimation::ParameterEstimator estimator(db_, cost_params_);
  CQP_ASSIGN_OR_RETURN(space::PreferenceSpaceResult extracted,
                       space::ExtractPreferenceSpace(
                           prepared.query, graph, estimator, space_options));
  prepared.space = space::PreparedSpace::Create(std::move(extracted));
  if (request.plan_cache != nullptr) {
    request.plan_cache->Insert(key, prepared.space);
  }
  return prepared;
}

StatusOr<PreparedQuery> Personalizer::Prepare(
    const PersonalizeRequest& request) const {
  sql::SelectQuery query = request.query;
  if (query.from.empty()) {
    CQP_ASSIGN_OR_RETURN(query, sql::ParseSelect(request.sql));
  }
  return PrepareParsed(std::move(query), request);
}

StatusOr<PersonalizeResult> Personalizer::Solve(
    const PreparedQuery& prepared, const PersonalizeRequest& request) const {
  CQP_CHECK(prepared.space != nullptr);
  CQP_ASSIGN_OR_RETURN(ResolvedAlgorithm resolved, ResolveAlgorithm(request));
  return SolveResolved(prepared, request, resolved);
}

StatusOr<PersonalizeResult> Personalizer::SolveResolved(
    const PreparedQuery& prepared, const PersonalizeRequest& request,
    const ResolvedAlgorithm& resolved) const {
  const bool fallback = request.fallback.enabled;
  const cqp::Algorithm* algorithm = resolved.algorithm;

  PersonalizeResult result;
  result.plan_cache_hit = prepared.cache_hit;
  // The problem-dependent view of the shared artifact: preferences pruned by
  // the monotone cmax/smin bounds are gone and survivors are reindexed, so
  // every algorithm — and Solution::chosen — sees exactly the space the
  // single-problem extraction used to produce.
  result.space = prepared.space->ForProblem(request.problem);
  const space::PreferenceSpaceResult& view = *result.space;

  cqp::SearchContext ctx(request.budget);
  // Every rung of the ladder serves the same (query, profile) pair, so one
  // memo is valid for the whole request; callers knowing the pair is stable
  // across requests can pass a longer-lived cache instead.
  estimation::EvalCache local_cache;
  ctx.eval_cache =
      request.eval_cache != nullptr ? request.eval_cache : &local_cache;
  ctx.allow_batch_eval = !request.disable_batch_eval;
  // The shared SoA artifact rides on the PreparedSpace next to the view it
  // was built over (same ProblemPruneKey memo), so its prefs_identity()
  // matches `view` and every rung below can trust it.
  std::shared_ptr<const estimation::BatchEvaluator> shared_batch;
  if (ctx.allow_batch_eval) {
    shared_batch = prepared.space->BatchForProblem(request.problem);
    ctx.batch_eval = shared_batch.get();
  }
  bool answered = false;

  // ---- Rung 1: the requested algorithm ----
  {
    auto primary = [&]() -> StatusOr<cqp::Solution> {
      CQP_FAILPOINT("cqp.solve");
      return algorithm->Solve(view, request.problem, ctx);
    };
    StatusOr<cqp::Solution> solved = primary();
    if (!fallback) {
      CQP_RETURN_IF_ERROR(solved.status());
      result.solution = *std::move(solved);
      result.metrics = ctx.metrics;
      answered = true;
    } else {
      cqp::Solution solution = solved.ok() ? *solved : cqp::Solution{};
      result.attempts.push_back(DescribeAttempt(
          algorithm->name(), solved.status(), solution, ctx));
      if (solved.ok() && AcceptRung(solution, ctx)) {
        result.solution = std::move(solution);
        result.metrics = ctx.metrics;
        result.rung = FallbackRung::kPrimary;
        answered = true;
      }
    }
  }

  // ---- Rung 2: a cheap heuristic for the same objective ----
  if (!answered) {
    std::string heuristic_name = request.fallback.heuristic;
    if (heuristic_name.empty()) {
      heuristic_name =
          resolved.doi_objective ? "D-HeurDoi" : "MinCost-Greedy";
    }
    StatusOr<const cqp::Algorithm*> heuristic =
        cqp::GetAlgorithm(heuristic_name);
    if (heuristic.ok() && !EqualsIgnoreCase(heuristic_name, resolved.name) &&
        (*heuristic)->Supports(request.problem)) {
      ctx.ResetForRetry();
      StatusOr<cqp::Solution> solved =
          (*heuristic)->Solve(view, request.problem, ctx);
      cqp::Solution solution = solved.ok() ? *solved : cqp::Solution{};
      result.attempts.push_back(DescribeAttempt(
          (*heuristic)->name(), solved.status(), solution, ctx));
      if (solved.ok() && AcceptRung(solution, ctx)) {
        solution.degraded = true;  // not the requested algorithm's answer
        result.solution = std::move(solution);
        result.metrics = ctx.metrics;
        result.rung = FallbackRung::kHeuristic;
        answered = true;
      }
    } else {
      result.attempts.push_back(heuristic_name + ": skipped (unavailable)");
    }
  }

  // ---- Rung 3: greedy top-k prefix of P by doi ----
  if (!answered) {
    ctx.ResetForRetry();
    cqp::Solution solution = GreedyTopK(view, request.problem, ctx);
    result.attempts.push_back(
        DescribeAttempt("top-k", Status::OK(), solution, ctx));
    if (solution.feasible) {
      result.solution = std::move(solution);
      result.metrics = ctx.metrics;
      result.rung = FallbackRung::kTopK;
      answered = true;
    }
  }

  // ---- Rung 4: the original query, always ----
  if (!answered) {
    result.attempts.push_back("original: returned unpersonalized query");
    result.solution = OriginalQuerySolution();
    result.metrics = ctx.metrics;
    result.rung = FallbackRung::kOriginal;
  }

  BuildOptions build_options = request.build_options;
  build_options.optimize = build_options.optimize && !request.disable_rewrite;
  CQP_ASSIGN_OR_RETURN(
      result.personalized,
      BuildPersonalizedQuery(*db_, prepared.query, view.prefs,
                             result.solution.feasible ? result.solution.chosen
                                                      : IndexSet(),
                             build_options));
  result.final_sql = result.personalized.ToSql();
  return result;
}

StatusOr<PersonalizeResult> Personalizer::Personalize(
    const PersonalizeRequest& request) const {
  sql::SelectQuery query = request.query;
  if (query.from.empty()) {
    CQP_ASSIGN_OR_RETURN(query, sql::ParseSelect(request.sql));
  }
  CQP_ASSIGN_OR_RETURN(ResolvedAlgorithm resolved, ResolveAlgorithm(request));

  StatusOr<PreparedQuery> prepared = PrepareParsed(query, request);
  if (prepared.ok()) {
    return SolveResolved(*prepared, request, resolved);
  }
  if (!request.fallback.enabled) return prepared.status();

  // No preference space — nothing any solver rung could search. Straight
  // to the terminal rung.
  PersonalizeResult result;
  result.space = EmptySpace();
  result.attempts.push_back("extract: " + prepared.status().ToString());
  result.solution = OriginalQuerySolution();
  result.rung = FallbackRung::kOriginal;
  BuildOptions build_options = request.build_options;
  build_options.optimize = build_options.optimize && !request.disable_rewrite;
  CQP_ASSIGN_OR_RETURN(
      result.personalized,
      BuildPersonalizedQuery(*db_, query, result.space->prefs, IndexSet(),
                             build_options));
  result.final_sql = result.personalized.ToSql();
  return result;
}

BatchResult Personalizer::PersonalizeBatch(
    const std::vector<PersonalizeRequest>& requests,
    const BatchOptions& options) const {
  Stopwatch batch_timer;
  const size_t n = requests.size();
  BatchResult batch;
  batch.latencies_ms.assign(n, 0.0);
  // StatusOr has no default constructor; optional slots let workers move
  // their answer into a pre-sized vector. Each worker writes only slot i
  // and latencies_ms[i], so no synchronization beyond WaitAll is needed.
  std::vector<std::optional<StatusOr<PersonalizeResult>>> slots(n);
  {
    ThreadPool pool(options.num_threads);
    for (size_t i = 0; i < n; ++i) {
      pool.Submit([this, &requests, &slots, &batch, i] {
        Stopwatch timer;
        slots[i].emplace(Personalize(requests[i]));
        batch.latencies_ms[i] = timer.ElapsedMillis();
      });
    }
    pool.WaitAll();
  }
  batch.results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    CQP_CHECK(slots[i].has_value());
    if (slots[i]->ok()) {
      const PersonalizeResult& r = **slots[i];
      batch.states_examined += r.metrics.states_examined;
      batch.eval_cache_hits += r.metrics.eval_cache_hits;
      batch.eval_cache_misses += r.metrics.eval_cache_misses;
      batch.frontiers_evaluated += r.metrics.frontiers_evaluated;
      batch.frontier_states += r.metrics.frontier_states;
      batch.frontier_lanes_wasted += r.metrics.frontier_lanes_wasted;
      if (r.plan_cache_hit) ++batch.plan_cache_hits;
      if (r.degraded()) ++batch.degraded;
    }
    batch.results.push_back(*std::move(slots[i]));
  }
  batch.wall_ms = batch_timer.ElapsedMillis();
  return batch;
}

StatusOr<exec::PersonalizedResultSet> Personalizer::Execute(
    const PersonalizeResult& result, exec::ExecStats* stats) const {
  exec::Executor executor(db_, cost_params_);
  if (result.personalized.subqueries.empty()) {
    // No preference integrated: run the (canonicalized) original query.
    CQP_ASSIGN_OR_RETURN(exec::RowSet rows,
                         executor.Execute(result.personalized.base, stats));
    exec::PersonalizedResultSet out;
    out.column_names = rows.column_names();
    out.rows.reserve(rows.row_count());
    for (const storage::Tuple& row : rows.rows()) {
      out.rows.push_back(exec::PersonalizedRow{row, IndexSet(), 0.0});
    }
    return out;
  }
  CQP_ASSIGN_OR_RETURN(
      exec::PersonalizedResultSet rows,
      exec::ExecutePersonalized(executor, result.personalized.subqueries,
                                result.personalized.dois,
                                exec::CombineMode::kIntersection, stats));
  // A LIMIT on the original query caps the doi-ranked delivery.
  if (result.personalized.base.limit.has_value()) {
    size_t cap = static_cast<size_t>(*result.personalized.base.limit);
    if (rows.rows.size() > cap) rows.rows.resize(cap);
  }
  return rows;
}

}  // namespace cqp::construct
