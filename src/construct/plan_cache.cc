#include "construct/plan_cache.h"

#include "common/logging.h"
#include "common/str_util.h"

namespace cqp::construct {

PlanCache::PlanCache(size_t max_entries) : max_entries_(max_entries) {
  CQP_CHECK_GT(max_entries_, 0u);
}

std::string PlanCache::MapKey(const Key& key) {
  // '\n' cannot occur in profile ids or config strings built by the engine;
  // the numeric fields make the concatenation unambiguous regardless.
  return StrFormat("%llx\n%s\n%llu\n",
                   static_cast<unsigned long long>(key.query_fingerprint),
                   key.profile_id.c_str(),
                   static_cast<unsigned long long>(key.profile_version)) +
         key.config;
}

std::shared_ptr<const space::PreparedSpace> PlanCache::Find(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(MapKey(key));
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->second;
}

void PlanCache::Insert(const Key& key,
                       std::shared_ptr<const space::PreparedSpace> space) {
  CQP_CHECK(space != nullptr);
  std::string map_key = MapKey(key);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(map_key);
  if (it != index_.end()) {
    it->second->second = std::move(space);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= max_entries_) {
    index_.erase(MapKey(lru_.back().first));
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(key, std::move(space));
  index_.emplace(std::move(map_key), lru_.begin());
}

size_t PlanCache::InvalidateProfile(const std::string& profile_id) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t removed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.profile_id == profile_id) {
      index_.erase(MapKey(it->first));
      it = lru_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  invalidations_ += removed;
  return removed;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  invalidations_ += lru_.size();
  lru_.clear();
  index_.clear();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.entries = lru_.size();
  return s;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::vector<PlanCache::EntryInfo> PlanCache::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntryInfo> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) {
    out.push_back(EntryInfo{e.first, e.second->K()});
  }
  return out;
}

}  // namespace cqp::construct
