#ifndef CQP_CONSTRUCT_PERSONALIZER_H_
#define CQP_CONSTRUCT_PERSONALIZER_H_

#include <string>

#include "common/status.h"
#include "construct/query_builder.h"
#include "cqp/algorithm.h"
#include "cqp/problem.h"
#include "exec/personalized_exec.h"
#include "prefs/graph.h"
#include "space/preference_space.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace cqp::construct {

/// One end-to-end personalization request.
struct PersonalizeRequest {
  /// The original query, as SQL text. Ignored if `query` is set.
  std::string sql;
  /// Alternatively, the parsed query (used when from is non-empty).
  sql::SelectQuery query;
  /// The CQP problem derived from the search context.
  cqp::ProblemSpec problem;
  /// Search algorithm name (see cqp::AlgorithmNames()), or "auto" to pick
  /// the exact solver matching the problem's objective.
  std::string algorithm = "C-MaxBounds";
  space::PreferenceSpaceOptions space_options;
  BuildOptions build_options;
};

/// Everything a caller needs from a personalization run.
struct PersonalizeResult {
  space::PreferenceSpaceResult space;  ///< extracted preference space
  cqp::Solution solution;              ///< chosen subset of P
  cqp::SearchMetrics metrics;          ///< search instrumentation
  PersonalizedQuery personalized;      ///< constructed rewriting
  std::string final_sql;               ///< rendered SQL text
};

/// Facade wiring the full §4.2 architecture: Preference Space → CQP State
/// Space Search → Personalized Query Construction (execution is exposed
/// separately so callers can inspect the query first).
class Personalizer {
 public:
  /// `db` must be Analyze()d and outlive the personalizer; `graph` is the
  /// user's personalization graph.
  Personalizer(const storage::Database* db,
               const prefs::PersonalizationGraph* graph,
               exec::CostModelParams cost_params = exec::CostModelParams());

  /// Runs preference extraction, search and query construction.
  /// When no feasible personalized query exists (not even the original
  /// query satisfies the constraints), the result's solution.feasible is
  /// false and the original query is returned unmodified.
  StatusOr<PersonalizeResult> Personalize(
      const PersonalizeRequest& request) const;

  /// Executes a personalization result against the database, returning
  /// doi-ranked rows. Runs the plain query when no preference was chosen.
  StatusOr<exec::PersonalizedResultSet> Execute(
      const PersonalizeResult& result, exec::ExecStats* stats) const;

  const storage::Database& db() const { return *db_; }

 private:
  const storage::Database* db_;
  const prefs::PersonalizationGraph* graph_;
  exec::CostModelParams cost_params_;
};

}  // namespace cqp::construct

#endif  // CQP_CONSTRUCT_PERSONALIZER_H_
