#ifndef CQP_CONSTRUCT_PERSONALIZER_H_
#define CQP_CONSTRUCT_PERSONALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "common/budget.h"
#include "common/status.h"
#include "construct/plan_cache.h"
#include "construct/query_builder.h"
#include "cqp/algorithm.h"
#include "cqp/problem.h"
#include "exec/personalized_exec.h"
#include "prefs/graph.h"
#include "space/preference_space.h"
#include "space/prepared_space.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace cqp::construct {

/// The degradation ladder a personalization request descends when its
/// budget runs out or a component fails. Each rung is strictly cheaper
/// than the one above; the last always answers.
enum class FallbackRung {
  kPrimary = 0,  ///< the requested (or auto-selected) algorithm
  kHeuristic,    ///< a cheap heuristic solver for the same objective
  kTopK,         ///< greedy doi-descending prefix scan of P
  kOriginal,     ///< the unpersonalized original query
};

/// Stable human-readable name, e.g. "Primary".
const char* FallbackRungName(FallbackRung rung);

/// How Personalize() reacts to budget exhaustion or component failure.
struct FallbackPolicy {
  /// When false, errors and exhausted-infeasible searches propagate to the
  /// caller instead of descending the ladder.
  bool enabled = true;
  /// Heuristic-rung algorithm name; empty picks one matching the problem's
  /// objective (D-HeurDoi for doi maximization, MinCost-Greedy for cost
  /// minimization).
  std::string heuristic;
};

/// One end-to-end personalization request.
struct PersonalizeRequest {
  /// The original query, as SQL text. Ignored if `query` is set.
  std::string sql;
  /// Alternatively, the parsed query (used when from is non-empty).
  sql::SelectQuery query;
  /// The CQP problem derived from the search context.
  cqp::ProblemSpec problem;
  /// Search algorithm name (see cqp::AlgorithmNames()), or "auto" to pick
  /// the exact solver matching the problem's objective.
  std::string algorithm = "C-MaxBounds";
  /// Resource limits for the whole request. The deadline is absolute, so
  /// fallback rungs only get the time earlier rungs left over.
  SearchBudget budget;
  /// Degradation behavior when the budget is exhausted or a stage fails.
  FallbackPolicy fallback;
  space::PreferenceSpaceOptions space_options;
  BuildOptions build_options;
  /// Per-request profile override; nullptr uses the personalizer's graph.
  /// Lets one batch serve several users' profiles side by side.
  const prefs::PersonalizationGraph* graph = nullptr;
  /// Caller-owned evaluation memo for this request's (query, profile)
  /// pair; nullptr gives the request a private cache for the duration of
  /// its fallback ladder. Share one cache across requests ONLY when they
  /// personalize the same query under the same profile AND the same
  /// monotone prune bounds (space::ProblemPruneKey) — the cache key is the
  /// preference subset alone, and different bounds index different
  /// per-problem views (see estimation/eval_cache.h).
  estimation::EvalCache* eval_cache = nullptr;
  /// Forces every rung onto the scalar evaluation path (no SoA/SIMD batch
  /// kernels; docs/simd.md). The batch path is bit-for-bit identical, so
  /// this exists for differential testing and benchmarking, not accuracy.
  bool disable_batch_eval = false;
  /// Disables the whole semantic rewrite layer (docs/rewriting.md) for this
  /// request: no pre-search constraint pruning of the preference space and
  /// no IR optimization of the constructed query, regardless of
  /// space_options.constraint_prune / build_options.optimize. The two
  /// halves are toggled together because their soundness argument is joint
  /// (the contradiction pass relies on pruning having equal detection
  /// power). Exists for differential testing — the optimized and
  /// unoptimized queries must return identical rows.
  bool disable_rewrite = false;
  /// Caller-owned cache of PreparedSpace artifacts; nullptr prepares from
  /// scratch. When set, `profile_id` + `profile_version` MUST identify the
  /// personalization graph this request runs against (the effective graph —
  /// the override above or the personalizer's own) or stale artifacts
  /// become reachable. The server keys by profile snapshot version; the
  /// shell bumps a session version whenever its profile changes.
  PlanCache* plan_cache = nullptr;
  std::string profile_id;
  uint64_t profile_version = 0;
};

/// The reusable, query-dependent half of a personalization request: parsed
/// query, canonical fingerprint and the shared PreparedSpace artifact. One
/// PreparedQuery may be Solve()d any number of times under any ProblemSpec.
struct PreparedQuery {
  sql::SelectQuery query;
  uint64_t fingerprint = 0;  ///< sql::QueryFingerprint(query)
  std::shared_ptr<const space::PreparedSpace> space;  ///< never null when OK
  bool cache_hit = false;  ///< true when `space` came from the plan cache
};

/// Everything a caller needs from a personalization run.
struct PersonalizeResult {
  /// The per-problem view of the preference space the search ran on
  /// (solution.chosen indexes into space->prefs). Shared with the
  /// PreparedSpace artifact — never null after a successful run, and valid
  /// independent of any cache's lifetime.
  std::shared_ptr<const space::PreferenceSpaceResult> space;
  cqp::Solution solution;              ///< chosen subset of P
  cqp::SearchMetrics metrics;          ///< search instrumentation
  PersonalizedQuery personalized;      ///< constructed rewriting
  std::string final_sql;               ///< rendered SQL text
  /// Which rung of the degradation ladder produced the answer.
  FallbackRung rung = FallbackRung::kPrimary;
  /// True when preparation was served from the request's plan cache.
  bool plan_cache_hit = false;
  /// Diagnostic trail: one line per rung tried before (and including) the
  /// answering one, e.g. "C-Boundaries: deadline exceeded".
  std::vector<std::string> attempts;

  /// True when the answer is not the requested algorithm's full result —
  /// either the search itself was truncated or a lower rung answered.
  bool degraded() const {
    return solution.degraded || rung != FallbackRung::kPrimary;
  }
};

/// Options for Personalizer::PersonalizeBatch().
struct BatchOptions {
  /// Worker-pool size; 0 means std::thread::hardware_concurrency.
  size_t num_threads = 0;
};

/// Aggregate outcome of one PersonalizeBatch() run. `results[i]` answers
/// `requests[i]`; every per-request record (metrics, attempts trail, rung)
/// stays inside its PersonalizeResult. The totals below are sums over the
/// OK results, computed single-threaded after the pool drains — workers
/// never mutate shared counters (see the rule in cqp/metrics.h).
struct BatchResult {
  std::vector<StatusOr<PersonalizeResult>> results;
  std::vector<double> latencies_ms;  ///< per-request wall time
  double wall_ms = 0.0;              ///< whole-batch wall time
  uint64_t states_examined = 0;
  uint64_t eval_cache_hits = 0;
  uint64_t eval_cache_misses = 0;
  uint64_t frontiers_evaluated = 0;     ///< batch evaluation calls
  uint64_t frontier_states = 0;         ///< states inside those frontiers
  uint64_t frontier_lanes_wasted = 0;   ///< SIMD padding lanes burned
  uint64_t plan_cache_hits = 0;  ///< requests whose Prepare() hit the cache
  size_t degraded = 0;  ///< OK results answered below Primary or truncated

  size_t ok_count() const {
    size_t n = 0;
    for (const auto& r : results) {
      if (r.ok()) ++n;
    }
    return n;
  }
};

/// Facade wiring the full §4.2 architecture: Preference Space → CQP State
/// Space Search → Personalized Query Construction (execution is exposed
/// separately so callers can inspect the query first).
class Personalizer {
 public:
  /// `db` must be Analyze()d and outlive the personalizer; `graph` is the
  /// user's personalization graph.
  Personalizer(const storage::Database* db,
               const prefs::PersonalizationGraph* graph,
               exec::CostModelParams cost_params = exec::CostModelParams());

  /// Runs preference extraction, search and query construction.
  /// Equivalent to Prepare() + Solve(); repeated queries should pass a
  /// request.plan_cache so the Prepare() half is paid once.
  /// When no feasible personalized query exists (not even the original
  /// query satisfies the constraints), the result's solution.feasible is
  /// false and the original query is returned unmodified.
  ///
  /// With request.fallback.enabled (the default), a budget-exhausted or
  /// failing stage never surfaces as an error: the request descends the
  /// FallbackRung ladder and the last rung — the unpersonalized original
  /// query — always produces an OK result.
  StatusOr<PersonalizeResult> Personalize(
      const PersonalizeRequest& request) const;

  /// The query-dependent, problem-independent half: parse, fingerprint,
  /// plan-cache lookup, and (on a miss) the unpruned preference-space
  /// extraction. Problem/algorithm fields of `request` are ignored here.
  /// Errors (parse, estimation) always surface — the fallback ladder is
  /// Solve-side policy; Personalize() is where the two are stitched
  /// together with the original-query terminal rung.
  StatusOr<PreparedQuery> Prepare(const PersonalizeRequest& request) const;

  /// The problem-dependent half: derives the per-problem view of
  /// `prepared.space`, runs the algorithm + degradation ladder, constructs
  /// the personalized query. `request` supplies problem, algorithm, budget,
  /// fallback policy and eval cache; its sql/query fields are ignored in
  /// favor of `prepared.query`. Bit-for-bit identical to Personalize() on
  /// the same inputs, however `prepared` was obtained (cold or cached).
  StatusOr<PersonalizeResult> Solve(const PreparedQuery& prepared,
                                    const PersonalizeRequest& request) const;

  /// Fans `requests` across a fixed worker pool and blocks until every one
  /// has answered. Requests are fully independent: each gets its own
  /// SearchContext (budget, metrics, degradation ladder) and — unless the
  /// request carries a shared eval_cache — its own evaluation memo, so
  /// results are element-for-element identical to sequential Personalize()
  /// calls. Cooperative cancellation works unchanged: a CancelToken in a
  /// request's budget makes that request degrade to its original query,
  /// never tearing the batch.
  BatchResult PersonalizeBatch(
      const std::vector<PersonalizeRequest>& requests,
      const BatchOptions& options = BatchOptions()) const;

  /// Executes a personalization result against the database, returning
  /// doi-ranked rows. Runs the plain query when no preference was chosen.
  StatusOr<exec::PersonalizedResultSet> Execute(
      const PersonalizeResult& result, exec::ExecStats* stats) const;

  const storage::Database& db() const { return *db_; }

 private:
  struct ResolvedAlgorithm {
    const cqp::Algorithm* algorithm = nullptr;
    std::string name;
    bool doi_objective = false;
  };

  /// Validates the problem and resolves "auto"/named algorithms; the error
  /// ordering (problem first, then algorithm) is part of the API.
  StatusOr<ResolvedAlgorithm> ResolveAlgorithm(
      const PersonalizeRequest& request) const;

  /// Prepare() after parsing: fingerprint, cache lookup, extraction.
  StatusOr<PreparedQuery> PrepareParsed(
      sql::SelectQuery query, const PersonalizeRequest& request) const;

  /// Solve() after algorithm resolution: ladder + construction.
  StatusOr<PersonalizeResult> SolveResolved(
      const PreparedQuery& prepared, const PersonalizeRequest& request,
      const ResolvedAlgorithm& resolved) const;

  const storage::Database* db_;
  const prefs::PersonalizationGraph* graph_;
  exec::CostModelParams cost_params_;
};

}  // namespace cqp::construct

#endif  // CQP_CONSTRUCT_PERSONALIZER_H_
