#ifndef CQP_CONSTRUCT_PERSONALIZER_H_
#define CQP_CONSTRUCT_PERSONALIZER_H_

#include <string>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "construct/query_builder.h"
#include "cqp/algorithm.h"
#include "cqp/problem.h"
#include "exec/personalized_exec.h"
#include "prefs/graph.h"
#include "space/preference_space.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace cqp::construct {

/// The degradation ladder a personalization request descends when its
/// budget runs out or a component fails. Each rung is strictly cheaper
/// than the one above; the last always answers.
enum class FallbackRung {
  kPrimary = 0,  ///< the requested (or auto-selected) algorithm
  kHeuristic,    ///< a cheap heuristic solver for the same objective
  kTopK,         ///< greedy doi-descending prefix scan of P
  kOriginal,     ///< the unpersonalized original query
};

/// Stable human-readable name, e.g. "Primary".
const char* FallbackRungName(FallbackRung rung);

/// How Personalize() reacts to budget exhaustion or component failure.
struct FallbackPolicy {
  /// When false, errors and exhausted-infeasible searches propagate to the
  /// caller instead of descending the ladder.
  bool enabled = true;
  /// Heuristic-rung algorithm name; empty picks one matching the problem's
  /// objective (D-HeurDoi for doi maximization, MinCost-Greedy for cost
  /// minimization).
  std::string heuristic;
};

/// One end-to-end personalization request.
struct PersonalizeRequest {
  /// The original query, as SQL text. Ignored if `query` is set.
  std::string sql;
  /// Alternatively, the parsed query (used when from is non-empty).
  sql::SelectQuery query;
  /// The CQP problem derived from the search context.
  cqp::ProblemSpec problem;
  /// Search algorithm name (see cqp::AlgorithmNames()), or "auto" to pick
  /// the exact solver matching the problem's objective.
  std::string algorithm = "C-MaxBounds";
  /// Resource limits for the whole request. The deadline is absolute, so
  /// fallback rungs only get the time earlier rungs left over.
  SearchBudget budget;
  /// Degradation behavior when the budget is exhausted or a stage fails.
  FallbackPolicy fallback;
  space::PreferenceSpaceOptions space_options;
  BuildOptions build_options;
};

/// Everything a caller needs from a personalization run.
struct PersonalizeResult {
  space::PreferenceSpaceResult space;  ///< extracted preference space
  cqp::Solution solution;              ///< chosen subset of P
  cqp::SearchMetrics metrics;          ///< search instrumentation
  PersonalizedQuery personalized;      ///< constructed rewriting
  std::string final_sql;               ///< rendered SQL text
  /// Which rung of the degradation ladder produced the answer.
  FallbackRung rung = FallbackRung::kPrimary;
  /// Diagnostic trail: one line per rung tried before (and including) the
  /// answering one, e.g. "C-Boundaries: deadline exceeded".
  std::vector<std::string> attempts;

  /// True when the answer is not the requested algorithm's full result —
  /// either the search itself was truncated or a lower rung answered.
  bool degraded() const {
    return solution.degraded || rung != FallbackRung::kPrimary;
  }
};

/// Facade wiring the full §4.2 architecture: Preference Space → CQP State
/// Space Search → Personalized Query Construction (execution is exposed
/// separately so callers can inspect the query first).
class Personalizer {
 public:
  /// `db` must be Analyze()d and outlive the personalizer; `graph` is the
  /// user's personalization graph.
  Personalizer(const storage::Database* db,
               const prefs::PersonalizationGraph* graph,
               exec::CostModelParams cost_params = exec::CostModelParams());

  /// Runs preference extraction, search and query construction.
  /// When no feasible personalized query exists (not even the original
  /// query satisfies the constraints), the result's solution.feasible is
  /// false and the original query is returned unmodified.
  ///
  /// With request.fallback.enabled (the default), a budget-exhausted or
  /// failing stage never surfaces as an error: the request descends the
  /// FallbackRung ladder and the last rung — the unpersonalized original
  /// query — always produces an OK result.
  StatusOr<PersonalizeResult> Personalize(
      const PersonalizeRequest& request) const;

  /// Executes a personalization result against the database, returning
  /// doi-ranked rows. Runs the plain query when no preference was chosen.
  StatusOr<exec::PersonalizedResultSet> Execute(
      const PersonalizeResult& result, exec::ExecStats* stats) const;

  const storage::Database& db() const { return *db_; }

 private:
  const storage::Database* db_;
  const prefs::PersonalizationGraph* graph_;
  exec::CostModelParams cost_params_;
};

}  // namespace cqp::construct

#endif  // CQP_CONSTRUCT_PERSONALIZER_H_
