#include "construct/query_builder.h"

#include <map>

#include "common/str_util.h"
#include "prefs/doi.h"
#include "rewrite/passes.h"

namespace cqp::construct {

namespace {

using prefs::AtomicJoin;
using prefs::ImplicitPreference;
using sql::ColumnRef;
using sql::Predicate;
using sql::SelectQuery;
using sql::TableRef;

/// Finds the base FROM entry the preference path anchors to.
StatusOr<const TableRef*> FindAnchor(const SelectQuery& base,
                                     const std::string& relation) {
  for (const TableRef& t : base.from) {
    if (EqualsIgnoreCase(t.relation, relation)) return &t;
  }
  return InvalidArgument("preference anchor relation " + relation +
                         " does not appear in the query");
}

}  // namespace

StatusOr<SelectQuery> CanonicalizeSelectList(const storage::Database& db,
                                             const SelectQuery& base) {
  SelectQuery out = base;
  out.select_list.clear();
  if (base.select_list.empty()) {
    // Expand SELECT * over the base relations, in FROM order.
    for (const TableRef& t : base.from) {
      CQP_ASSIGN_OR_RETURN(const storage::Table* table,
                           db.GetTable(t.relation));
      for (size_t c = 0; c < table->schema().arity(); ++c) {
        out.select_list.push_back(
            ColumnRef{t.EffectiveAlias(), table->schema().attribute(c).name});
      }
    }
    return out;
  }
  for (const ColumnRef& col : base.select_list) {
    if (!col.qualifier.empty()) {
      out.select_list.push_back(col);
      continue;
    }
    // Resolve the unqualified attribute against the base relations.
    const TableRef* owner = nullptr;
    for (const TableRef& t : base.from) {
      CQP_ASSIGN_OR_RETURN(const storage::Table* table,
                           db.GetTable(t.relation));
      if (!table->schema().HasAttribute(col.attribute)) continue;
      if (owner != nullptr) {
        return InvalidArgument("ambiguous column " + col.attribute);
      }
      owner = &t;
    }
    if (owner == nullptr) return NotFound("column " + col.attribute);
    out.select_list.push_back(ColumnRef{owner->EffectiveAlias(), col.attribute});
  }
  return out;
}

StatusOr<SelectQuery> BuildSubQuery(const storage::Database& db,
                                    const SelectQuery& base,
                                    const ImplicitPreference& pref,
                                    int ordinal) {
  CQP_ASSIGN_OR_RETURN(SelectQuery sub, CanonicalizeSelectList(db, base));
  // ORDER BY / LIMIT belong to result delivery, not to the union's inputs
  // (a LIMIT inside a sub-query would change which rows can intersect).
  // The personalized result is doi-ranked; the base LIMIT is re-applied by
  // Personalizer::Execute after ranking.
  sub.order_by.clear();
  sub.limit.reset();
  CQP_ASSIGN_OR_RETURN(const TableRef* anchor,
                       FindAnchor(base, pref.AnchorRelation()));

  std::string prev_alias = anchor->EffectiveAlias();
  for (size_t j = 0; j < pref.joins.size(); ++j) {
    const AtomicJoin& join = pref.joins[j];
    std::string alias =
        StrFormat("p%d_%s", ordinal, ToLower(join.to_relation).c_str());
    sub.from.push_back(TableRef{join.to_relation, alias});
    sub.where.push_back(Predicate::Join(
        ColumnRef{prev_alias, join.from_attribute}, catalog::CompareOp::kEq,
        ColumnRef{alias, join.to_attribute}));
    prev_alias = alias;
  }
  // Final selection edge: on the path tail (or the anchor for join-free
  // preferences).
  sub.where.push_back(Predicate::Selection(
      ColumnRef{prev_alias, pref.selection.attribute}, pref.selection.op,
      pref.selection.value));
  return sub;
}

StatusOr<PersonalizedQuery> BuildPersonalizedQuery(
    const storage::Database& db, const SelectQuery& base,
    const std::vector<estimation::ScoredPreference>& prefs,
    const IndexSet& chosen, const BuildOptions& options) {
  PersonalizedQuery out;
  CQP_ASSIGN_OR_RETURN(out.base, CanonicalizeSelectList(db, base));

  // Group choice: each group becomes one sub-query. Default is one group
  // per preference; with merge_compatible, join-free preferences share one.
  std::vector<std::vector<int32_t>> groups;
  std::vector<int32_t> mergeable;
  for (int32_t i : chosen) {
    const estimation::ScoredPreference& p = prefs[static_cast<size_t>(i)];
    if (options.merge_compatible && p.pref.joins.empty()) {
      mergeable.push_back(i);
    } else {
      groups.push_back({i});
    }
  }
  if (!mergeable.empty()) groups.push_back(std::move(mergeable));

  int ordinal = 0;
  for (const std::vector<int32_t>& group : groups) {
    ++ordinal;
    // Build the sub-query for the first member, then AND in the remaining
    // members' conditions (they are join-free by construction of groups
    // with more than one member).
    const ImplicitPreference& first =
        prefs[static_cast<size_t>(group[0])].pref;
    CQP_ASSIGN_OR_RETURN(SelectQuery sub,
                         BuildSubQuery(db, base, first, ordinal));
    std::vector<double> dois{prefs[static_cast<size_t>(group[0])].doi};
    for (size_t m = 1; m < group.size(); ++m) {
      const ImplicitPreference& extra =
          prefs[static_cast<size_t>(group[m])].pref;
      CQP_ASSIGN_OR_RETURN(const TableRef* anchor,
                           FindAnchor(base, extra.AnchorRelation()));
      sub.where.push_back(Predicate::Selection(
          ColumnRef{anchor->EffectiveAlias(), extra.selection.attribute},
          extra.selection.op, extra.selection.value));
      dois.push_back(prefs[static_cast<size_t>(group[m])].doi);
    }
    out.subqueries.push_back(std::move(sub));
    out.subquery_prefs.push_back(group);
    out.dois.push_back(
        prefs::CombineConjunctionDoi(dois, prefs::ConjunctionModel::kNoisyOr));
  }

  if (options.optimize && !out.subqueries.empty()) {
    rewrite::QueryIR ir;
    ir.base = out.base;
    ir.branches.reserve(out.subqueries.size());
    for (size_t b = 0; b < out.subqueries.size(); ++b) {
      rewrite::BranchIR branch;
      branch.query = out.subqueries[b];
      branch.prefs = out.subquery_prefs[b];
      branch.doi = out.dois[b];
      ir.branches.push_back(std::move(branch));
    }
    rewrite::RewriteStats stats;
    ir = rewrite::OptimizeQueryIR(std::move(ir), db.constraints(), &stats);
    if (stats.changed()) {
      out.pre_rewrite_sql = out.ToSql();
      out.subqueries.clear();
      out.subquery_prefs.clear();
      out.dois.clear();
      for (rewrite::BranchIR& branch : ir.branches) {
        out.subqueries.push_back(std::move(branch.query));
        out.subquery_prefs.push_back(std::move(branch.prefs));
        out.dois.push_back(branch.doi);
      }
    }
    out.rewrite = stats;
  }
  return out;
}

sql::UnionGroupQuery PersonalizedQuery::UnionGroupForm() const {
  CQP_CHECK(!subqueries.empty())
      << "no rewriting for an empty preference set";
  sql::UnionGroupQuery q;
  // The grouped columns are the projected attributes (unqualified: every
  // branch projects them in the same order).
  q.select_list.reserve(base.select_list.size());
  for (const sql::ColumnRef& c : base.select_list) {
    q.select_list.push_back(sql::ColumnRef{"", c.attribute});
  }
  q.branches = subqueries;
  for (sql::SelectQuery& branch : q.branches) branch.distinct = true;
  q.having_count = static_cast<int64_t>(subqueries.size());
  return q;
}

std::string PersonalizedQuery::ToSql() const {
  if (subqueries.empty()) return base.ToSql();
  return UnionGroupForm().ToSql();
}

}  // namespace cqp::construct
