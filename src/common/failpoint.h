#ifndef CQP_COMMON_FAILPOINT_H_
#define CQP_COMMON_FAILPOINT_H_

#include <string>
#include <vector>

#include "common/status.h"

/// Deterministic fault injection for robustness testing.
///
/// A failpoint is a named site in the code that can be armed to fail with a
/// given probability. Arming is configured from the environment:
///
///   CQP_FAILPOINTS=space.extract=1.0:42,estimation.base=0.25:7
///
/// i.e. a comma-separated list of name=probability[:seed] entries. Triggering
/// is a deterministic function of (seed, hit counter), so a seeded run
/// reproduces the exact same fault sequence. Tests may also call
/// failpoint::Configure() directly.
///
/// Failpoints compile to a no-op when CQP_ENABLE_FAILPOINTS is off (cmake
/// -DCQP_ENABLE_FAILPOINTS=OFF for production builds); the CQP_FAILPOINT
/// macro then expands to nothing and the registry is never consulted.
namespace cqp::failpoint {

/// One armed failpoint's configuration and counters.
struct FailpointInfo {
  std::string name;
  double probability = 0.0;
  uint64_t seed = 0;
  uint64_t hits = 0;      ///< times the site was reached
  uint64_t triggers = 0;  ///< times it actually fired
};

/// True when the failpoint `name` should fire now. Unarmed names always
/// return false. Thread-safe; counts every hit.
bool Maybe(const char* name);

/// Replaces the armed set from a spec string ("name=prob[:seed],...").
/// An empty spec disarms everything. Returns InvalidArgument on bad syntax.
Status Configure(const std::string& spec);

/// Disarms all failpoints and clears counters.
void Reset();

/// Re-reads CQP_FAILPOINTS from the environment (also done lazily on the
/// first Maybe() call). Returns the parse status.
Status ReloadFromEnv();

/// Snapshot of all armed failpoints (for the shell's .failpoints command).
std::vector<FailpointInfo> List();

}  // namespace cqp::failpoint

#ifndef CQP_ENABLE_FAILPOINTS
#define CQP_ENABLE_FAILPOINTS 1
#endif

#if CQP_ENABLE_FAILPOINTS
/// Returns an Internal error from the enclosing function when the named
/// failpoint fires. Place at fallible seams (extraction, estimation,
/// execution) so degradation paths can be exercised under injected faults.
#define CQP_FAILPOINT(name)                                            \
  do {                                                                 \
    if (::cqp::failpoint::Maybe(name)) {                               \
      return ::cqp::Internal(std::string("injected fault at ") + name); \
    }                                                                  \
  } while (false)
#else
#define CQP_FAILPOINT(name) \
  do {                      \
  } while (false)
#endif

#endif  // CQP_COMMON_FAILPOINT_H_
