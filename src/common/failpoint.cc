#include "common/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/str_util.h"

namespace cqp::failpoint {

namespace {

struct Armed {
  double probability = 0.0;
  uint64_t seed = 0;
  uint64_t hits = 0;
  uint64_t triggers = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Armed> armed;
  bool env_loaded = false;
};

Registry& TheRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// splitmix64: a deterministic hash of (seed, counter) whose top 53 bits
/// become a uniform double in [0, 1). Independent of any global RNG state,
/// so two processes with the same spec see the same fault sequence.
double HashToUnit(uint64_t seed, uint64_t counter) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (counter + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

/// Parses "name=prob[:seed]" into the registry map. Locked by the caller.
Status ParseEntry(const std::string& entry, std::map<std::string, Armed>* out) {
  size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return InvalidArgument("failpoint entry must be name=prob[:seed]: " +
                           entry);
  }
  std::string name = entry.substr(0, eq);
  std::string rest = entry.substr(eq + 1);
  std::string prob_text = rest;
  Armed armed;
  size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    prob_text = rest.substr(0, colon);
    std::string seed_text = rest.substr(colon + 1);
    char* end = nullptr;
    unsigned long long seed = std::strtoull(seed_text.c_str(), &end, 10);
    if (seed_text.empty() || end != seed_text.c_str() + seed_text.size()) {
      return InvalidArgument("bad failpoint seed in " + entry);
    }
    armed.seed = static_cast<uint64_t>(seed);
  }
  char* end = nullptr;
  double prob = std::strtod(prob_text.c_str(), &end);
  if (prob_text.empty() || end != prob_text.c_str() + prob_text.size() ||
      prob < 0.0 || prob > 1.0) {
    return InvalidArgument("failpoint probability must be in [0,1]: " + entry);
  }
  armed.probability = prob;
  (*out)[name] = armed;
  return Status::OK();
}

Status ParseSpec(const std::string& spec, std::map<std::string, Armed>* out) {
  out->clear();
  for (const std::string& part : Split(spec, ',')) {
    std::string entry(StripWhitespace(part));
    if (entry.empty()) continue;
    CQP_RETURN_IF_ERROR(ParseEntry(entry, out));
  }
  return Status::OK();
}

/// Loads CQP_FAILPOINTS once. Locked by the caller.
void EnsureEnvLoadedLocked(Registry& registry) {
  if (registry.env_loaded) return;
  registry.env_loaded = true;
  const char* env = std::getenv("CQP_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  // A malformed env spec must not silently disable injection in a test
  // run; arm nothing but leave a trace on stderr.
  Status status = ParseSpec(env, &registry.armed);
  if (!status.ok()) {
    std::fprintf(stderr, "CQP_FAILPOINTS ignored: %s\n",
                 status.ToString().c_str());
    registry.armed.clear();
  }
}

}  // namespace

bool Maybe(const char* name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  EnsureEnvLoadedLocked(registry);
  auto it = registry.armed.find(name);
  if (it == registry.armed.end()) return false;
  Armed& armed = it->second;
  uint64_t counter = armed.hits++;
  bool fire = armed.probability > 0.0 &&
              HashToUnit(armed.seed, counter) < armed.probability;
  if (fire) ++armed.triggers;
  return fire;
}

Status Configure(const std::string& spec) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.env_loaded = true;  // explicit config overrides the environment
  return ParseSpec(spec, &registry.armed);
}

void Reset() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.env_loaded = true;
  registry.armed.clear();
}

Status ReloadFromEnv() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.armed.clear();
  registry.env_loaded = false;
  EnsureEnvLoadedLocked(registry);
  return Status::OK();
}

std::vector<FailpointInfo> List() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  EnsureEnvLoadedLocked(registry);
  std::vector<FailpointInfo> out;
  out.reserve(registry.armed.size());
  for (const auto& [name, armed] : registry.armed) {
    FailpointInfo info;
    info.name = name;
    info.probability = armed.probability;
    info.seed = armed.seed;
    info.hits = armed.hits;
    info.triggers = armed.triggers;
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace cqp::failpoint
