#ifndef CQP_COMMON_RNG_H_
#define CQP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cqp {

/// Deterministic pseudo-random generator (splitmix64 core).
///
/// Every experiment in the repository is seeded, so figures and tests are
/// reproducible bit-for-bit across runs and platforms; std::mt19937 with
/// std::*_distribution is avoided because distribution output is not
/// specified portably.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ull) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n-1]; skew `s` >= 0 (0 = uniform).
  /// Uses rejection-inversion-free CDF table-less approximation suitable for
  /// the modest n used by the generators.
  int64_t Zipf(int64_t n, double s);

  /// Gaussian via Box-Muller, mean 0 stddev 1.
  double Gaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel-safe substreams).
  Rng Fork();

 private:
  uint64_t state_;
};

}  // namespace cqp

#endif  // CQP_COMMON_RNG_H_
