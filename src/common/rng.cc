#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace cqp {

uint64_t Rng::Next() {
  // splitmix64 (Steele, Lea, Flood 2014). Full-period, passes BigCrush when
  // used as a stream, and trivially portable.
  state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  CQP_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<int64_t>(v % range);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Rng::Zipf(int64_t n, double s) {
  CQP_CHECK_GT(n, 0);
  if (s <= 0.0) return Uniform(0, n - 1);
  // Inverse-CDF on the harmonic partial sums, computed by bisection over the
  // analytic approximation H(k) ~ (k^(1-s) - 1) / (1-s) (s != 1) or ln k.
  auto h = [s](double k) {
    if (std::abs(s - 1.0) < 1e-9) return std::log(k);
    return (std::pow(k, 1.0 - s) - 1.0) / (1.0 - s);
  };
  double total = h(static_cast<double>(n) + 0.5);
  double u = NextDouble() * total;
  double lo = 0.5, hi = static_cast<double>(n) + 0.5;
  for (int iter = 0; iter < 64 && hi - lo > 1e-9; ++iter) {
    double mid = (lo + hi) / 2.0;
    if (h(mid) < u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  int64_t rank = static_cast<int64_t>(std::llround(lo));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return rank - 1;
}

double Rng::Gaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-12) u1 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace cqp
