#include "common/budget.h"

#include <limits>

#include "common/str_util.h"

namespace cqp {

const char* BudgetExhaustionName(BudgetExhaustion e) {
  switch (e) {
    case BudgetExhaustion::kNone:
      return "None";
    case BudgetExhaustion::kDeadline:
      return "Deadline";
    case BudgetExhaustion::kExpansions:
      return "Expansions";
    case BudgetExhaustion::kMemory:
      return "Memory";
    case BudgetExhaustion::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

SearchBudget SearchBudget::AfterMillis(double ms) {
  SearchBudget b;
  b.deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(ms));
  return b;
}

double SearchBudget::RemainingMillis() const {
  if (!deadline.has_value()) {
    return std::numeric_limits<double>::infinity();
  }
  return std::chrono::duration<double, std::milli>(
             *deadline - std::chrono::steady_clock::now())
      .count();
}

std::string SearchBudget::ToString() const {
  if (IsUnlimited()) return "unlimited";
  std::string out;
  auto append = [&out](const std::string& part) {
    if (!out.empty()) out += " ";
    out += part;
  };
  if (deadline.has_value()) {
    append(StrFormat("deadline=%.1fms", RemainingMillis()));
  }
  if (max_expansions != 0) {
    append(StrFormat("expansions=%llu",
                     static_cast<unsigned long long>(max_expansions)));
  }
  if (max_memory_bytes != 0) {
    append(StrFormat("memory=%zuB", max_memory_bytes));
  }
  if (cancel != nullptr) append("cancellable");
  return out;
}

}  // namespace cqp
