#ifndef CQP_COMMON_CRC32C_H_
#define CQP_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cqp::crc32c {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum used by the
/// profile journal and snapshot files. Software slicing-by-4 table
/// implementation: ~1 GB/s, far faster than any journal fsync, so there is
/// no point gating a hardware path behind feature detection here.

/// Extends `crc` with `data`. Start a fresh checksum with crc = 0.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// Checksum of a buffer.
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }
inline uint32_t Value(std::string_view data) {
  return Extend(0, data.data(), data.size());
}

/// Masked form (rotate + constant, after the scheme popularized by
/// LevelDB): stored checksums are masked so that a file containing
/// embedded CRCs of its own contents cannot accidentally verify.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace cqp::crc32c

#endif  // CQP_COMMON_CRC32C_H_
