#ifndef CQP_COMMON_STATUS_H_
#define CQP_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace cqp {

/// Error categories used across the library. The library does not throw
/// exceptions; fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kInfeasible,  ///< A CQP problem instance has no feasible personalized query.
  kDeadlineExceeded,   ///< A search's wall-clock deadline passed.
  kResourceExhausted,  ///< A search hit its expansion or memory budget.
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Value-semantics error carrier, modeled after absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgument(std::string msg);
Status NotFound(std::string msg);
Status AlreadyExists(std::string msg);
Status OutOfRange(std::string msg);
Status FailedPrecondition(std::string msg);
Status Unimplemented(std::string msg);
Status Internal(std::string msg);
Status Infeasible(std::string msg);
Status DeadlineExceeded(std::string msg);
Status ResourceExhausted(std::string msg);

/// Either a value of T or an error Status. Accessing the value of an
/// error-holding StatusOr is a fatal error (CQP_CHECK).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value and from a non-OK Status keeps call
  /// sites readable: `return value;` / `return InvalidArgument(...)`.
  StatusOr(T value) : value_(std::move(value)) {}        // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CQP_CHECK(!status_.ok()) << "StatusOr(Status) requires an error status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CQP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    CQP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CQP_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && {
    CQP_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define CQP_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::cqp::Status cqp_status_ = (expr);      \
    if (!cqp_status_.ok()) return cqp_status_; \
  } while (false)

/// Evaluates a StatusOr expression; on error returns its status, otherwise
/// assigns the value to `lhs` (which must be a declaration or lvalue).
#define CQP_ASSIGN_OR_RETURN(lhs, expr)               \
  CQP_ASSIGN_OR_RETURN_IMPL_(                         \
      CQP_STATUS_CONCAT_(statusor_, __LINE__), lhs, expr)

#define CQP_STATUS_CONCAT_INNER_(a, b) a##b
#define CQP_STATUS_CONCAT_(a, b) CQP_STATUS_CONCAT_INNER_(a, b)
#define CQP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace cqp

#endif  // CQP_COMMON_STATUS_H_
