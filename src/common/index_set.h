#ifndef CQP_COMMON_INDEX_SET_H_
#define CQP_COMMON_INDEX_SET_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace cqp {

/// A sorted set of small non-negative indices.
///
/// CQP states are subsets of a pointer vector (C, D or S in the paper); we
/// represent the state `R` as the strictly increasing sequence of 0-based
/// member indices, exactly mirroring the index sets used by the paper's
/// pseudocode (which is 1-based). The ordering invariant makes the
/// Vertical-reachability test a componentwise comparison (Dominates).
class IndexSet {
 public:
  using value_type = int32_t;
  using const_iterator = std::vector<int32_t>::const_iterator;

  IndexSet() = default;
  /// Builds a set from `indices`; they must be strictly increasing.
  IndexSet(std::initializer_list<int32_t> indices);
  /// Builds a set from an arbitrary vector, which is sorted and deduped.
  static IndexSet FromUnsorted(std::vector<int32_t> indices);
  /// Builds a set from a Bits()-style member bitmask (inverse of Bits()).
  static IndexSet FromBits(uint64_t bits);

  bool empty() const { return indices_.empty(); }
  size_t size() const { return indices_.size(); }
  const_iterator begin() const { return indices_.begin(); }
  const_iterator end() const { return indices_.end(); }

  /// The i-th smallest member (0-based position).
  int32_t operator[](size_t pos) const { return indices_[pos]; }

  /// Largest member; set must be non-empty.
  int32_t Max() const;
  /// Smallest member; set must be non-empty.
  int32_t Min() const;

  bool Contains(int32_t index) const;

  /// Returns a copy with `index` inserted. `index` must not be a member.
  IndexSet WithAdded(int32_t index) const;
  /// Returns a copy with `index` removed. `index` must be a member.
  IndexSet WithRemoved(int32_t index) const;
  /// Returns a copy where member `from` is replaced by non-member `to`.
  IndexSet WithReplaced(int32_t from, int32_t to) const;
  /// Returns the prefix with the first `n` (smallest) members.
  IndexSet Prefix(size_t n) const;

  /// True if every member of this set is also a member of `other`.
  bool IsSubsetOf(const IndexSet& other) const;

  /// Componentwise domination over equal-size sets: true iff
  /// (*this)[j] <= other[j] for all j. In a CQP state space this is
  /// equivalent to "other is reachable from *this via Vertical transitions",
  /// i.e. `other` lies below `*this` (Propositions 2-4 in the paper).
  bool Dominates(const IndexSet& other) const;

  bool operator==(const IndexSet& other) const {
    if (small_ && other.small_) return bits_ == other.bits_;
    return indices_ == other.indices_;
  }
  bool operator!=(const IndexSet& other) const { return !(*this == other); }
  /// Lexicographic order, for use in ordered containers.
  bool operator<(const IndexSet& other) const {
    return indices_ < other.indices_;
  }

  /// Bitmask of the members; every member must be < 64 (checked). CQP
  /// preference spaces satisfy this (K is bounded by PreferenceSpaceOptions
  /// and stays far below 64), and the mask makes subset tests one AND.
  /// The mask is maintained incrementally, so this is O(1).
  uint64_t Bits() const;

  /// Stable hash of the member sequence.
  size_t Hash() const;

  /// Approximate heap footprint in bytes, used by MemoryMeter accounting.
  size_t MemoryBytes() const {
    return sizeof(IndexSet) + indices_.capacity() * sizeof(int32_t);
  }

  /// "{0,2,5}" rendering for logs and tests.
  std::string ToString() const;

 private:
  /// Recomputes bits_/small_ from indices_. Every mutation path ends here.
  void SyncBits();

  std::vector<int32_t> indices_;
  /// Cached Bits() value, valid only when small_ (all members < 64). Sets
  /// built by FromUnsorted may exceed that range; they keep the vector
  /// representation and every fast path falls back to the element loops.
  uint64_t bits_ = 0;
  bool small_ = true;
};

struct IndexSetHash {
  size_t operator()(const IndexSet& s) const { return s.Hash(); }
};

}  // namespace cqp

#endif  // CQP_COMMON_INDEX_SET_H_
