#include "common/index_set.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace cqp {

namespace {

/// All bits at positions <= t, for t in [0, 63].
inline uint64_t LowMaskInclusive(int t) {
  return (t >= 63) ? ~uint64_t{0} : ((uint64_t{1} << (t + 1)) - 1);
}

inline bool IsStrictlyIncreasing(const std::vector<int32_t>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1] >= v[i]) return false;
  }
  return true;
}

}  // namespace

void IndexSet::SyncBits() {
  small_ = indices_.empty() || indices_.back() < 64;
  bits_ = 0;
  if (!small_) return;
  for (int32_t v : indices_) bits_ |= uint64_t{1} << v;
}

IndexSet::IndexSet(std::initializer_list<int32_t> indices)
    : indices_(indices) {
  for (size_t i = 0; i < indices_.size(); ++i) {
    CQP_CHECK_GE(indices_[i], 0);
    if (i > 0) {
      CQP_CHECK_LT(indices_[i - 1], indices_[i])
          << "IndexSet initializer must be strictly increasing";
    }
  }
  SyncBits();
}

IndexSet IndexSet::FromUnsorted(std::vector<int32_t> indices) {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  IndexSet set;
  set.indices_ = std::move(indices);
  if (!set.indices_.empty()) CQP_CHECK_GE(set.indices_.front(), 0);
  set.SyncBits();
  return set;
}

IndexSet IndexSet::FromBits(uint64_t bits) {
  IndexSet set;
  set.indices_.reserve(static_cast<size_t>(std::popcount(bits)));
  for (uint64_t rest = bits; rest != 0; rest &= rest - 1) {
    set.indices_.push_back(std::countr_zero(rest));
  }
  set.SyncBits();
  return set;
}

int32_t IndexSet::Max() const {
  CQP_CHECK(!empty());
  return indices_.back();
}

int32_t IndexSet::Min() const {
  CQP_CHECK(!empty());
  return indices_.front();
}

bool IndexSet::Contains(int32_t index) const {
  if (small_) {
    if (index < 0 || index >= 64) return false;
    return (bits_ >> index) & 1;
  }
  return std::binary_search(indices_.begin(), indices_.end(), index);
}

IndexSet IndexSet::WithAdded(int32_t index) const {
  CQP_CHECK(!Contains(index)) << "duplicate index " << index;
  IndexSet out;
  out.indices_.reserve(indices_.size() + 1);
  auto pos = std::lower_bound(indices_.begin(), indices_.end(), index);
  out.indices_.assign(indices_.begin(), pos);
  out.indices_.push_back(index);
  out.indices_.insert(out.indices_.end(), pos, indices_.end());
  CQP_DCHECK(IsStrictlyIncreasing(out.indices_));
  out.SyncBits();
  return out;
}

IndexSet IndexSet::WithRemoved(int32_t index) const {
  CQP_CHECK(Contains(index)) << "missing index " << index;
  IndexSet out;
  out.indices_.reserve(indices_.size() - 1);
  for (int32_t v : indices_) {
    if (v != index) out.indices_.push_back(v);
  }
  out.SyncBits();
  return out;
}

IndexSet IndexSet::WithReplaced(int32_t from, int32_t to) const {
  IndexSet out = WithRemoved(from).WithAdded(to);
  CQP_DCHECK(IsStrictlyIncreasing(out.indices_));
  return out;
}

IndexSet IndexSet::Prefix(size_t n) const {
  CQP_CHECK_LE(n, indices_.size());
  IndexSet out;
  out.indices_.assign(indices_.begin(), indices_.begin() + n);
  out.SyncBits();
  return out;
}

bool IndexSet::IsSubsetOf(const IndexSet& other) const {
  if (size() > other.size()) return false;
  if (small_ && other.small_) return (bits_ & ~other.bits_) == 0;
  return std::includes(other.indices_.begin(), other.indices_.end(),
                       indices_.begin(), indices_.end());
}

bool IndexSet::Dominates(const IndexSet& other) const {
  if (size() != other.size()) return false;
  if (small_ && other.small_) {
    // Sorted equal-size sets: (*this)[j] <= other[j] for all j iff at every
    // member t of `other` this set has at least as many members <= t. Each
    // threshold test is one AND + popcount on the cached masks.
    uint64_t rem = other.bits_;
    while (rem != 0) {
      int t = std::countr_zero(rem);
      uint64_t mask = LowMaskInclusive(t);
      if (std::popcount(bits_ & mask) < std::popcount(other.bits_ & mask)) {
        return false;
      }
      rem &= rem - 1;
    }
    return true;
  }
  for (size_t i = 0; i < indices_.size(); ++i) {
    if (indices_[i] > other.indices_[i]) return false;
  }
  return true;
}

uint64_t IndexSet::Bits() const {
  CQP_CHECK(small_) << "IndexSet::Bits requires members < 64";
  return bits_;
}

size_t IndexSet::Hash() const {
  // FNV-1a over the index sequence.
  uint64_t h = 1469598103934665603ull;
  for (int32_t v : indices_) {
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

std::string IndexSet::ToString() const {
  std::string s = "{";
  for (size_t i = 0; i < indices_.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(indices_[i]);
  }
  s += "}";
  return s;
}

}  // namespace cqp
