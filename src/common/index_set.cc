#include "common/index_set.h"

#include <algorithm>

#include "common/logging.h"

namespace cqp {

IndexSet::IndexSet(std::initializer_list<int32_t> indices)
    : indices_(indices) {
  for (size_t i = 0; i < indices_.size(); ++i) {
    CQP_CHECK_GE(indices_[i], 0);
    if (i > 0) {
      CQP_CHECK_LT(indices_[i - 1], indices_[i])
          << "IndexSet initializer must be strictly increasing";
    }
  }
}

IndexSet IndexSet::FromUnsorted(std::vector<int32_t> indices) {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  IndexSet set;
  set.indices_ = std::move(indices);
  if (!set.indices_.empty()) CQP_CHECK_GE(set.indices_.front(), 0);
  return set;
}

int32_t IndexSet::Max() const {
  CQP_CHECK(!empty());
  return indices_.back();
}

int32_t IndexSet::Min() const {
  CQP_CHECK(!empty());
  return indices_.front();
}

bool IndexSet::Contains(int32_t index) const {
  return std::binary_search(indices_.begin(), indices_.end(), index);
}

IndexSet IndexSet::WithAdded(int32_t index) const {
  CQP_CHECK(!Contains(index)) << "duplicate index " << index;
  IndexSet out;
  out.indices_.reserve(indices_.size() + 1);
  auto pos = std::lower_bound(indices_.begin(), indices_.end(), index);
  out.indices_.assign(indices_.begin(), pos);
  out.indices_.push_back(index);
  out.indices_.insert(out.indices_.end(), pos, indices_.end());
  return out;
}

IndexSet IndexSet::WithRemoved(int32_t index) const {
  CQP_CHECK(Contains(index)) << "missing index " << index;
  IndexSet out;
  out.indices_.reserve(indices_.size() - 1);
  for (int32_t v : indices_) {
    if (v != index) out.indices_.push_back(v);
  }
  return out;
}

IndexSet IndexSet::WithReplaced(int32_t from, int32_t to) const {
  return WithRemoved(from).WithAdded(to);
}

IndexSet IndexSet::Prefix(size_t n) const {
  CQP_CHECK_LE(n, indices_.size());
  IndexSet out;
  out.indices_.assign(indices_.begin(), indices_.begin() + n);
  return out;
}

bool IndexSet::IsSubsetOf(const IndexSet& other) const {
  return std::includes(other.indices_.begin(), other.indices_.end(),
                       indices_.begin(), indices_.end());
}

bool IndexSet::Dominates(const IndexSet& other) const {
  if (size() != other.size()) return false;
  for (size_t i = 0; i < indices_.size(); ++i) {
    if (indices_[i] > other.indices_[i]) return false;
  }
  return true;
}

uint64_t IndexSet::Bits() const {
  uint64_t bits = 0;
  for (int32_t v : indices_) {
    CQP_CHECK_LT(v, 64) << "IndexSet::Bits requires members < 64";
    bits |= uint64_t{1} << v;
  }
  return bits;
}

size_t IndexSet::Hash() const {
  // FNV-1a over the index sequence.
  uint64_t h = 1469598103934665603ull;
  for (int32_t v : indices_) {
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

std::string IndexSet::ToString() const {
  std::string s = "{";
  for (size_t i = 0; i < indices_.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(indices_[i]);
  }
  s += "}";
  return s;
}

}  // namespace cqp
