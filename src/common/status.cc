#include "common/status.h"

namespace cqp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Infeasible(std::string msg) {
  return Status(StatusCode::kInfeasible, std::move(msg));
}
Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}

}  // namespace cqp
