#ifndef CQP_COMMON_BUDGET_H_
#define CQP_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace cqp {

/// Cooperative cancellation flag. A caller hands a token to a long-running
/// search and flips it from another thread (or a signal handler) to request
/// an orderly stop; the search keeps its best solution so far. Plain atomic
/// load/store — no locking, safe to share between threads.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Which resource stopped a budgeted search (BudgetExhaustion::kNone when
/// the search ran to completion).
enum class BudgetExhaustion {
  kNone = 0,
  kDeadline,    ///< wall-clock deadline passed
  kExpansions,  ///< node-expansion (state-evaluation) cap reached
  kMemory,      ///< tracked working-set byte cap reached
  kCancelled,   ///< CancelToken fired
};

/// Stable human-readable name, e.g. "Deadline".
const char* BudgetExhaustionName(BudgetExhaustion e);

/// Resource limits for one search (or one whole personalization request).
/// All limits are optional; a default-constructed budget is unlimited.
///
/// The deadline is an absolute steady_clock point, so a budget threaded
/// through several fallback attempts naturally shrinks: later attempts see
/// only the time the earlier ones left over.
struct SearchBudget {
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Stop after this many state evaluations (0 = unlimited).
  uint64_t max_expansions = 0;
  /// Stop when the tracked working set reaches this (0 = unlimited).
  size_t max_memory_bytes = 0;
  /// Optional external cancellation; not owned, may be null.
  const CancelToken* cancel = nullptr;

  /// A budget whose deadline is `ms` milliseconds from now.
  static SearchBudget AfterMillis(double ms);

  /// True when no limit is set (the default).
  bool IsUnlimited() const {
    return !deadline.has_value() && max_expansions == 0 &&
           max_memory_bytes == 0 && cancel == nullptr;
  }

  /// Milliseconds until the deadline (negative once passed); infinity when
  /// no deadline is set.
  double RemainingMillis() const;

  /// e.g. "deadline=1.0ms expansions=1000" or "unlimited".
  std::string ToString() const;
};

}  // namespace cqp

#endif  // CQP_COMMON_BUDGET_H_
