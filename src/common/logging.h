#ifndef CQP_COMMON_LOGGING_H_
#define CQP_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace cqp {

namespace internal_logging {

/// Aborts the process after printing `msg` with source location context.
[[noreturn]] inline void DieCheckFailed(const char* file, int line,
                                        const char* expr,
                                        const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

/// Stream collector so CQP_CHECK(x) << "detail" works.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessage(const CheckMessage&) = delete;
  CheckMessage& operator=(const CheckMessage&) = delete;

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessage() {
    DieCheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

}  // namespace cqp

/// Fatal assertion used for internal invariants. Unlike assert(), it is
/// active in all build types: a violated invariant in a search algorithm
/// would otherwise silently produce a wrong "optimal" query.
#define CQP_CHECK(cond)                                       \
  while (!(cond))                                             \
  ::cqp::internal_logging::CheckMessage(__FILE__, __LINE__, #cond)

/// Debug-only assertion for invariants that are too hot for CQP_CHECK
/// (e.g. per-transition containment scans in IndexSet). Compiled out in
/// optimized builds unless CQP_DEBUG_CHECKS is defined; the condition is
/// still parsed, so it cannot bit-rot.
#if defined(NDEBUG) && !defined(CQP_DEBUG_CHECKS)
#define CQP_DCHECK(cond)     \
  while (false && !(cond))   \
  ::cqp::internal_logging::CheckMessage(__FILE__, __LINE__, #cond)
#else
#define CQP_DCHECK(cond) CQP_CHECK(cond)
#endif

#define CQP_CHECK_EQ(a, b) CQP_CHECK((a) == (b))
#define CQP_CHECK_NE(a, b) CQP_CHECK((a) != (b))
#define CQP_CHECK_LT(a, b) CQP_CHECK((a) < (b))
#define CQP_CHECK_LE(a, b) CQP_CHECK((a) <= (b))
#define CQP_CHECK_GT(a, b) CQP_CHECK((a) > (b))
#define CQP_CHECK_GE(a, b) CQP_CHECK((a) >= (b))

#endif  // CQP_COMMON_LOGGING_H_
