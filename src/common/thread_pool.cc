#include "common/thread_pool.h"

#include <utility>

#include "common/logging.h"

namespace cqp {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  CQP_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    CQP_CHECK(!shutting_down_) << "Submit after ~ThreadPool";
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return !queue_.empty() || shutting_down_; });
      if (queue_.empty()) {
        // shutting_down_ with a drained queue: exit. Pending tasks always
        // run — shutdown only stops the loop once the queue is empty.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace cqp
