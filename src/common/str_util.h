#ifndef CQP_COMMON_STR_UTIL_H_
#define CQP_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cqp {

/// Joins `parts` with `sep` ("a", "b" -> "a<sep>b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);

/// ASCII upper-casing (locale independent).
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with `prefix` / ends with `suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace cqp

#endif  // CQP_COMMON_STR_UTIL_H_
