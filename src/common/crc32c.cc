#include "common/crc32c.h"

#include <array>

namespace cqp::crc32c {

namespace {

/// Four 256-entry tables for slicing-by-4, generated once at startup from
/// the reflected Castagnoli polynomial.
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Tables() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Tables& TheTables() {
  static const Tables* tables = new Tables();
  return *tables;
}

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const auto& t = TheTables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xff] ^ t[2][(crc >> 8) & 0xff] ^
          t[1][(crc >> 16) & 0xff] ^ t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

}  // namespace cqp::crc32c
