#ifndef CQP_COMMON_MEMORY_METER_H_
#define CQP_COMMON_MEMORY_METER_H_

#include <cstddef>
#include <cstdint>

#include "common/logging.h"

namespace cqp {

/// Tracks the working-set size of a CQP search algorithm.
///
/// The paper (Fig. 13) reports the maximum memory used by an algorithm during
/// its execution. The search algorithms account every queue entry, boundary
/// and visited-set entry against a MemoryMeter; peak_bytes() is the reported
/// figure. Accounting is logical (container payload sizes), which makes the
/// measurement deterministic and allocator-independent.
class MemoryMeter {
 public:
  MemoryMeter() = default;

  /// Registers `bytes` newly held by the algorithm.
  void Allocate(size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  /// Releases `bytes` previously registered with Allocate().
  void Release(size_t bytes) {
    CQP_CHECK_GE(current_, bytes);
    current_ -= bytes;
  }

  size_t current_bytes() const { return current_; }
  size_t peak_bytes() const { return peak_; }
  double peak_kbytes() const { return static_cast<double>(peak_) / 1024.0; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
};

}  // namespace cqp

#endif  // CQP_COMMON_MEMORY_METER_H_
