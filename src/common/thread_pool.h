#ifndef CQP_COMMON_THREAD_POOL_H_
#define CQP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cqp {

/// A fixed-size worker pool for fanning independent personalization
/// requests (or other CPU-bound tasks) across threads.
///
/// Design notes:
///  * Submit() never blocks and never drops tasks; WaitAll() blocks until
///    the queue is empty AND every in-flight task has returned.
///  * Cancellation is cooperative and lives at the task level: a task that
///    should stop early checks its own CancelToken / SearchBudget (see
///    common/budget.h) exactly as single-threaded searches do. The pool
///    itself never kills a thread — cancelled tasks simply return fast.
///  * The destructor drains remaining tasks, then joins all workers, so a
///    pool can be stack-allocated around a batch.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  /// Enqueues `task` for execution on some worker. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed. Safe to call
  /// repeatedly; new tasks may be submitted afterwards.
  void WaitAll();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled on new work / shutdown
  std::condition_variable idle_cv_;   // signalled when the pool drains
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // tasks popped but not yet finished
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cqp

#endif  // CQP_COMMON_THREAD_POOL_H_
