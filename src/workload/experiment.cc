#include "workload/experiment.h"

#include <limits>

#include "common/stopwatch.h"
#include "estimation/estimate.h"

namespace cqp::workload {

StatusOr<ExperimentContext> ExperimentContext::Create(
    const ExperimentConfig& config) {
  ExperimentContext ctx;
  CQP_ASSIGN_OR_RETURN(ctx.db_, BuildMovieDatabase(config.db));
  ctx.graphs_.reserve(config.n_profiles);
  for (size_t u = 0; u < config.n_profiles; ++u) {
    ProfileGenConfig pc = config.profile;
    pc.seed = config.profile_seed_base + u;
    CQP_ASSIGN_OR_RETURN(prefs::Profile profile,
                         GenerateProfile(pc, config.db));
    CQP_ASSIGN_OR_RETURN(prefs::PersonalizationGraph graph,
                         prefs::PersonalizationGraph::Build(
                             std::move(profile), ctx.db_));
    ctx.graphs_.push_back(std::move(graph));
  }
  CQP_ASSIGN_OR_RETURN(ctx.queries_, GenerateQueries(config.query, config.db));
  return ctx;
}

StatusOr<std::vector<Instance>> BuildInstances(const ExperimentContext& ctx,
                                               size_t k) {
  estimation::ParameterEstimator estimator(&ctx.db());
  // Extraction must not be constrained: the paper fixes P = the top-K
  // preferences by doi and then sweeps cmax as a fraction of Supreme Cost.
  cqp::ProblemSpec unconstrained =
      cqp::ProblemSpec::Problem2(std::numeric_limits<double>::max());

  std::vector<Instance> instances;
  for (const prefs::PersonalizationGraph& graph : ctx.graphs()) {
    for (const sql::SelectQuery& query : ctx.queries()) {
      Instance inst;
      space::PreferenceSpaceOptions options;
      options.max_k = k;

      // Fig. 12(b) timings: D-only extraction vs full (C and S ranked).
      {
        space::PreferenceSpaceOptions d_only = options;
        d_only.build_cost_size_vectors = false;
        Stopwatch timer;
        CQP_ASSIGN_OR_RETURN(
            space::PreferenceSpaceResult ignored,
            space::ExtractPreferenceSpace(query, graph, estimator,
                                          unconstrained, d_only));
        inst.d_prefsel_ms = timer.ElapsedMillis();
        (void)ignored;
      }
      Stopwatch timer;
      CQP_ASSIGN_OR_RETURN(
          inst.space, space::ExtractPreferenceSpace(query, graph, estimator,
                                                    unconstrained, options));
      inst.c_prefsel_ms = timer.ElapsedMillis();

      if (inst.space.K() < k) continue;  // profile too small for this query
      inst.supreme_cost_ms = inst.space.MakeEvaluator().SupremeState().cost_ms;
      instances.push_back(std::move(inst));
    }
  }
  if (instances.empty()) {
    return FailedPrecondition(
        "no (profile, query) instance yields a preference space of size " +
        std::to_string(k));
  }
  return instances;
}

namespace {

StatusOr<std::map<std::string, AlgoAggregate>> RunImpl(
    const std::vector<Instance>& instances,
    const std::vector<cqp::ProblemSpec>& problems,
    const std::vector<std::string>& algorithm_names,
    const std::string& reference_algorithm) {
  CQP_CHECK_EQ(instances.size(), problems.size());
  std::map<std::string, AlgoAggregate> out;

  for (size_t i = 0; i < instances.size(); ++i) {
    const Instance& inst = instances[i];
    const cqp::ProblemSpec& problem = problems[i];

    double reference_doi = 0.0;
    bool have_reference = false;
    if (!reference_algorithm.empty()) {
      CQP_ASSIGN_OR_RETURN(const cqp::Algorithm* ref,
                           cqp::GetAlgorithm(reference_algorithm));
      cqp::SearchContext ctx;
      CQP_ASSIGN_OR_RETURN(cqp::Solution sol,
                           ref->Solve(inst.space, problem, ctx));
      if (sol.feasible) {
        reference_doi = sol.params.doi;
        have_reference = true;
      }
    }

    for (const std::string& name : algorithm_names) {
      CQP_ASSIGN_OR_RETURN(const cqp::Algorithm* algorithm,
                           cqp::GetAlgorithm(name));
      cqp::SearchContext ctx;
      CQP_ASSIGN_OR_RETURN(cqp::Solution sol,
                           algorithm->Solve(inst.space, problem, ctx));
      const cqp::SearchMetrics& metrics = ctx.metrics;
      AlgoAggregate& agg = out[name];
      agg.mean_wall_ms += metrics.wall_ms;
      agg.mean_peak_kbytes += metrics.memory.peak_kbytes();
      agg.mean_states += static_cast<double>(metrics.states_examined);
      if (sol.feasible && have_reference) {
        agg.mean_quality_diff += reference_doi - sol.params.doi;
      }
      if (!sol.feasible) ++agg.infeasible;
      ++agg.runs;
    }
  }

  for (auto& [name, agg] : out) {
    if (agg.runs == 0) continue;
    double n = static_cast<double>(agg.runs);
    agg.mean_wall_ms /= n;
    agg.mean_peak_kbytes /= n;
    agg.mean_states /= n;
    agg.mean_quality_diff /= n;
  }
  return out;
}

}  // namespace

StatusOr<std::map<std::string, AlgoAggregate>> RunAlgorithms(
    const std::vector<Instance>& instances, const cqp::ProblemSpec& problem,
    const std::vector<std::string>& algorithm_names,
    const std::string& reference_algorithm) {
  std::vector<cqp::ProblemSpec> problems(instances.size(), problem);
  return RunImpl(instances, problems, algorithm_names, reference_algorithm);
}

StatusOr<std::map<std::string, AlgoAggregate>> RunAlgorithmsAtFraction(
    const std::vector<Instance>& instances, double supreme_fraction,
    const std::vector<std::string>& algorithm_names,
    const std::string& reference_algorithm) {
  std::vector<cqp::ProblemSpec> problems;
  problems.reserve(instances.size());
  for (const Instance& inst : instances) {
    problems.push_back(cqp::ProblemSpec::Problem2(supreme_fraction *
                                                  inst.supreme_cost_ms));
  }
  return RunImpl(instances, problems, algorithm_names, reference_algorithm);
}

}  // namespace cqp::workload
