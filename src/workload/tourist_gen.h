#ifndef CQP_WORKLOAD_TOURIST_GEN_H_
#define CQP_WORKLOAD_TOURIST_GEN_H_

#include <cstdint>

#include "common/status.h"
#include "prefs/profile.h"
#include "storage/database.h"

namespace cqp::workload {

/// Configuration of the tourist-information database used by the paper's
/// motivating example (Al planning his trip to Pisa, §1).
///
/// Schema:
///   CITY(cid, name, country)
///   RESTAURANT(rid, name, cid, cuisine, price)
///   ATTRACTION(aid, name, cid, kind, fee)
struct TouristDbConfig {
  uint64_t seed = 21;
  int64_t n_cities = 200;
  int64_t n_restaurants = 20000;
  int64_t n_attractions = 8000;
};

/// Builds and Analyze()s the tourist database. The city roster includes a
/// few real names ("Pisa", "Athens", ...) so examples read naturally.
StatusOr<storage::Database> BuildTouristDatabase(const TouristDbConfig& config);

/// Builds "Al"'s profile: cuisine/price/city preferences with high-doi join
/// edges, mirroring the example of §1.
StatusOr<prefs::Profile> BuildAlProfile();

}  // namespace cqp::workload

#endif  // CQP_WORKLOAD_TOURIST_GEN_H_
