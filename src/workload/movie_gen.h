#ifndef CQP_WORKLOAD_MOVIE_GEN_H_
#define CQP_WORKLOAD_MOVIE_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/database.h"

namespace cqp::workload {

/// Configuration of the synthetic IMDb-like database (the paper evaluated
/// on data from the Internet Movies Database [7]; see DESIGN.md for the
/// substitution rationale).
///
/// Schema:
///   MOVIE(mid, title, year, duration, did)
///   DIRECTOR(did, name)
///   GENRE(mid, genre)
///   ACTOR(aid, name)
///   CASTS(mid, aid, role)
struct MovieDbConfig {
  uint64_t seed = 42;
  int64_t n_movies = 20000;
  int64_t n_directors = 1000;
  int64_t n_actors = 4000;
  /// Average genre rows per movie (each movie gets 1..2*avg-1 genres).
  int64_t genres_per_movie = 2;
  /// Cast rows per movie.
  int64_t cast_per_movie = 4;
  int64_t min_year = 1930;
  int64_t max_year = 2005;
  /// Zipf skew of director/actor/genre popularity (0 = uniform).
  double popularity_skew = 0.8;
};

/// Genre vocabulary used by the generator (24 entries, mirroring IMDb's
/// genre list size).
const std::vector<std::string>& GenreVocabulary();

/// Builds and Analyze()s the synthetic movie database. Deterministic in
/// `config.seed`.
StatusOr<storage::Database> BuildMovieDatabase(const MovieDbConfig& config);

}  // namespace cqp::workload

#endif  // CQP_WORKLOAD_MOVIE_GEN_H_
