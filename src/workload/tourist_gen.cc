#include "workload/tourist_gen.h"

#include "common/rng.h"
#include "common/str_util.h"

namespace cqp::workload {

namespace {

using catalog::AttributeDef;
using catalog::CompareOp;
using catalog::RelationDef;
using catalog::Value;
using catalog::ValueType;
using prefs::AtomicJoin;
using prefs::AtomicSelection;
using storage::Table;
using storage::Tuple;

const char* const kNamedCities[] = {"Pisa",   "Athens", "Baltimore",
                                    "Rome",   "Paris",  "Florence",
                                    "Madrid", "Lisbon"};
const char* const kCuisines[] = {"italian", "greek",  "french", "spanish",
                                 "indian",  "thai",   "mexican", "japanese",
                                 "local",   "fusion"};
const char* const kKinds[] = {"museum", "monument", "park",
                              "gallery", "church",  "tower"};

}  // namespace

StatusOr<storage::Database> BuildTouristDatabase(
    const TouristDbConfig& config) {
  if (config.n_cities < 8) {
    return InvalidArgument("tourist db needs at least 8 cities");
  }
  Rng rng(config.seed);
  storage::Database db;

  CQP_ASSIGN_OR_RETURN(
      Table * city,
      db.CreateTable(RelationDef(
          "CITY", {AttributeDef{"cid", ValueType::kInt},
                   AttributeDef{"name", ValueType::kString},
                   AttributeDef{"country", ValueType::kString}})));
  for (int64_t c = 0; c < config.n_cities; ++c) {
    std::string name = c < 8 ? kNamedCities[c]
                             : StrFormat("City %04ld", c);
    CQP_RETURN_IF_ERROR(city->Insert(
        Tuple({Value(c), Value(name),
               Value(StrFormat("Country %02ld", c % 20))})));
  }

  CQP_ASSIGN_OR_RETURN(
      Table * restaurant,
      db.CreateTable(RelationDef(
          "RESTAURANT", {AttributeDef{"rid", ValueType::kInt},
                         AttributeDef{"name", ValueType::kString},
                         AttributeDef{"cid", ValueType::kInt},
                         AttributeDef{"cuisine", ValueType::kString},
                         AttributeDef{"price", ValueType::kInt}})));
  for (int64_t r = 0; r < config.n_restaurants; ++r) {
    // Cities are assigned uniformly so that a city preference is sharply
    // selective (~1/n_cities), as in the paper's "three restaurants in
    // Pisa" scenario.
    CQP_RETURN_IF_ERROR(restaurant->Insert(
        Tuple({Value(r), Value(StrFormat("Restaurant %05ld", r)),
               Value(rng.Uniform(0, config.n_cities - 1)),
               Value(std::string(kCuisines[rng.Uniform(0, 9)])),
               Value(rng.Uniform(1, 4))})));
  }

  CQP_ASSIGN_OR_RETURN(
      Table * attraction,
      db.CreateTable(RelationDef(
          "ATTRACTION", {AttributeDef{"aid", ValueType::kInt},
                         AttributeDef{"name", ValueType::kString},
                         AttributeDef{"cid", ValueType::kInt},
                         AttributeDef{"kind", ValueType::kString},
                         AttributeDef{"fee", ValueType::kInt}})));
  for (int64_t a = 0; a < config.n_attractions; ++a) {
    CQP_RETURN_IF_ERROR(attraction->Insert(
        Tuple({Value(a), Value(StrFormat("Attraction %05ld", a)),
               Value(rng.Uniform(0, config.n_cities - 1)),
               Value(std::string(kKinds[rng.Uniform(0, 5)])),
               Value(rng.Uniform(0, 30))})));
  }

  db.Analyze();
  return db;
}

StatusOr<prefs::Profile> BuildAlProfile() {
  prefs::Profile profile;
  // Join edges: city preferences influence restaurants and attractions.
  CQP_RETURN_IF_ERROR(profile.AddJoin(
      AtomicJoin{"RESTAURANT", "cid", "CITY", "cid", 0.95}));
  CQP_RETURN_IF_ERROR(profile.AddJoin(
      AtomicJoin{"ATTRACTION", "cid", "CITY", "cid", 0.90}));

  // Al's tastes. (Note: no second cuisine preference — the §4.2 rewriting
  // intersects all integrated preferences, and a row cannot satisfy two
  // different equality conditions on the same attribute.)
  CQP_RETURN_IF_ERROR(profile.AddSelection(AtomicSelection{
      "RESTAURANT", "cuisine", CompareOp::kEq, Value("italian"), 0.85}));
  CQP_RETURN_IF_ERROR(profile.AddSelection(AtomicSelection{
      "RESTAURANT", "price", CompareOp::kLe, Value(int64_t{2}), 0.75}));
  CQP_RETURN_IF_ERROR(profile.AddSelection(AtomicSelection{
      "CITY", "name", CompareOp::kEq, Value("Pisa"), 0.80}));
  CQP_RETURN_IF_ERROR(profile.AddSelection(AtomicSelection{
      "ATTRACTION", "kind", CompareOp::kEq, Value("museum"), 0.65}));
  CQP_RETURN_IF_ERROR(profile.AddSelection(AtomicSelection{
      "ATTRACTION", "fee", CompareOp::kLe, Value(int64_t{10}), 0.55}));
  return profile;
}

}  // namespace cqp::workload
