#include "workload/query_gen.h"

#include "common/rng.h"
#include "common/str_util.h"
#include "sql/parser.h"

namespace cqp::workload {

StatusOr<std::vector<sql::SelectQuery>> GenerateQueries(
    const QueryGenConfig& config, const MovieDbConfig& movie_config) {
  Rng rng(config.seed);
  std::vector<sql::SelectQuery> queries;
  queries.reserve(config.n_queries);

  const auto& genres = GenreVocabulary();
  for (size_t i = 0; i < config.n_queries; ++i) {
    std::string text;
    switch (i % 5) {
      case 0:
        text = "SELECT title FROM MOVIE";
        break;
      case 1: {
        int64_t year = rng.Uniform(movie_config.min_year + 10,
                                   movie_config.max_year - 5);
        text = StrFormat("SELECT title, year FROM MOVIE WHERE year >= %ld",
                         year);
        break;
      }
      case 2: {
        int64_t g = rng.Uniform(0, static_cast<int64_t>(genres.size()) - 1);
        text = StrFormat(
            "SELECT M.title FROM MOVIE M, GENRE G "
            "WHERE M.mid = G.mid AND G.genre = '%s'",
            genres[static_cast<size_t>(g)].c_str());
        break;
      }
      case 3:
        text =
            "SELECT M.title, D.name FROM MOVIE M, DIRECTOR D "
            "WHERE M.did = D.did";
        break;
      default: {
        int64_t cap = rng.Uniform(90, 180);
        text = StrFormat(
            "SELECT title, duration FROM MOVIE WHERE duration <= %ld", cap);
        break;
      }
    }
    CQP_ASSIGN_OR_RETURN(sql::SelectQuery q, sql::ParseSelect(text));
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace cqp::workload
