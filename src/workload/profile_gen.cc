#include "workload/profile_gen.h"

#include <set>

#include "common/rng.h"
#include "common/str_util.h"

namespace cqp::workload {

namespace {

using catalog::CompareOp;
using catalog::Value;
using prefs::AtomicJoin;
using prefs::AtomicSelection;

}  // namespace

StatusOr<prefs::Profile> GenerateProfile(const ProfileGenConfig& config,
                                         const MovieDbConfig& movie_config) {
  Rng rng(config.seed);
  prefs::Profile profile;

  auto doi = [&]() { return rng.UniformDouble(config.doi_lo, config.doi_hi); };
  auto join_doi = [&]() {
    return rng.UniformDouble(config.join_doi_lo, config.join_doi_hi);
  };

  // Join preferences: the four schema join edges, directed as "preferences
  // on the right-hand relation influence the left-hand one" (§3).
  CQP_RETURN_IF_ERROR(
      profile.AddJoin(AtomicJoin{"MOVIE", "mid", "GENRE", "mid", join_doi()}));
  CQP_RETURN_IF_ERROR(profile.AddJoin(
      AtomicJoin{"MOVIE", "did", "DIRECTOR", "did", join_doi()}));
  CQP_RETURN_IF_ERROR(
      profile.AddJoin(AtomicJoin{"MOVIE", "mid", "CASTS", "mid", join_doi()}));
  CQP_RETURN_IF_ERROR(
      profile.AddJoin(AtomicJoin{"CASTS", "aid", "ACTOR", "aid", join_doi()}));

  // Genre selections (distinct values).
  {
    const auto& genres = GenreVocabulary();
    std::set<int64_t> used;
    int added = 0;
    while (added < config.n_genre_prefs &&
           used.size() < genres.size()) {
      int64_t g = rng.Zipf(static_cast<int64_t>(genres.size()),
                           movie_config.popularity_skew);
      if (!used.insert(g).second) continue;
      CQP_RETURN_IF_ERROR(profile.AddSelection(
          AtomicSelection{"GENRE", "genre", CompareOp::kEq,
                          Value(genres[static_cast<size_t>(g)]), doi()}));
      ++added;
    }
  }

  // Director / actor selections (popular entities, distinct).
  auto add_name_prefs = [&](const char* relation, const char* prefix,
                            int64_t domain, int count) -> Status {
    std::set<int64_t> used;
    int added = 0;
    int guard = 0;
    while (added < count && guard++ < count * 50) {
      int64_t id = rng.Zipf(domain, movie_config.popularity_skew);
      if (!used.insert(id).second) continue;
      CQP_RETURN_IF_ERROR(profile.AddSelection(
          AtomicSelection{relation, "name", CompareOp::kEq,
                          Value(StrFormat("%s %05ld", prefix, id)), doi()}));
      ++added;
    }
    return Status::OK();
  };
  CQP_RETURN_IF_ERROR(add_name_prefs("DIRECTOR", "Director",
                                     movie_config.n_directors,
                                     config.n_director_prefs));
  CQP_RETURN_IF_ERROR(add_name_prefs("ACTOR", "Actor", movie_config.n_actors,
                                     config.n_actor_prefs));

  // Year selections: mix of equality and range conditions.
  {
    std::set<std::string> used;
    int added = 0;
    int guard = 0;
    while (added < config.n_year_prefs && guard++ < config.n_year_prefs * 50) {
      int64_t year =
          rng.Uniform(movie_config.min_year, movie_config.max_year);
      CompareOp op = rng.Bernoulli(0.5) ? CompareOp::kEq
                     : rng.Bernoulli(0.5) ? CompareOp::kGe
                                          : CompareOp::kLt;
      AtomicSelection sel{"MOVIE", "year", op, Value(year), doi()};
      if (!used.insert(sel.ConditionString()).second) continue;
      CQP_RETURN_IF_ERROR(profile.AddSelection(std::move(sel)));
      ++added;
    }
  }

  // Duration selections: range conditions ("short movies", "epics", ...).
  {
    std::set<std::string> used;
    int added = 0;
    int guard = 0;
    while (added < config.n_duration_prefs &&
           guard++ < config.n_duration_prefs * 50) {
      int64_t minutes = rng.Uniform(70, 220);
      CompareOp op = rng.Bernoulli(0.5) ? CompareOp::kLe : CompareOp::kGt;
      AtomicSelection sel{"MOVIE", "duration", op, Value(minutes), doi()};
      if (!used.insert(sel.ConditionString()).second) continue;
      CQP_RETURN_IF_ERROR(profile.AddSelection(std::move(sel)));
      ++added;
    }
  }

  return profile;
}

}  // namespace cqp::workload
