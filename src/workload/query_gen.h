#ifndef CQP_WORKLOAD_QUERY_GEN_H_
#define CQP_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "workload/movie_gen.h"

namespace cqp::workload {

/// Configuration of the synthetic query workload. All queries anchor on
/// MOVIE (the entity users of the motivating service ask about), matching
/// the paper's example queries.
struct QueryGenConfig {
  uint64_t seed = 11;
  size_t n_queries = 10;
};

/// Generates a mix of SPJ queries over the movie schema: plain projections,
/// selections on year/duration, and joins with GENRE or DIRECTOR.
StatusOr<std::vector<sql::SelectQuery>> GenerateQueries(
    const QueryGenConfig& config, const MovieDbConfig& movie_config);

}  // namespace cqp::workload

#endif  // CQP_WORKLOAD_QUERY_GEN_H_
