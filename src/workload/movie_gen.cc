#include "workload/movie_gen.h"

#include "common/rng.h"
#include "common/str_util.h"

namespace cqp::workload {

namespace {

using catalog::AttributeDef;
using catalog::RelationDef;
using catalog::Value;
using catalog::ValueType;
using storage::Table;
using storage::Tuple;

}  // namespace

const std::vector<std::string>& GenreVocabulary() {
  static const std::vector<std::string>& kGenres =
      *new std::vector<std::string>{
          "action",    "adventure", "animation", "biography", "comedy",
          "crime",     "documentary", "drama",   "family",    "fantasy",
          "film-noir", "history",   "horror",    "musical",   "mystery",
          "romance",   "sci-fi",    "short",     "sport",     "thriller",
          "war",       "western",   "news",      "adult"};
  return kGenres;
}

StatusOr<storage::Database> BuildMovieDatabase(const MovieDbConfig& config) {
  if (config.n_movies <= 0 || config.n_directors <= 0 ||
      config.n_actors <= 0) {
    return InvalidArgument("movie db config requires positive cardinalities");
  }
  Rng rng(config.seed);
  storage::Database db;

  CQP_ASSIGN_OR_RETURN(
      Table * director,
      db.CreateTable(RelationDef(
          "DIRECTOR", {AttributeDef{"did", ValueType::kInt},
                       AttributeDef{"name", ValueType::kString}})));
  for (int64_t d = 0; d < config.n_directors; ++d) {
    CQP_RETURN_IF_ERROR(director->Insert(
        Tuple({Value(d), Value(StrFormat("Director %05ld", d))})));
  }

  CQP_ASSIGN_OR_RETURN(
      Table * actor,
      db.CreateTable(RelationDef("ACTOR",
                                 {AttributeDef{"aid", ValueType::kInt},
                                  AttributeDef{"name", ValueType::kString}})));
  for (int64_t a = 0; a < config.n_actors; ++a) {
    CQP_RETURN_IF_ERROR(
        actor->Insert(Tuple({Value(a), Value(StrFormat("Actor %05ld", a))})));
  }

  CQP_ASSIGN_OR_RETURN(
      Table * movie,
      db.CreateTable(RelationDef(
          "MOVIE", {AttributeDef{"mid", ValueType::kInt},
                    AttributeDef{"title", ValueType::kString},
                    AttributeDef{"year", ValueType::kInt},
                    AttributeDef{"duration", ValueType::kInt},
                    AttributeDef{"did", ValueType::kInt}})));
  CQP_ASSIGN_OR_RETURN(
      Table * genre,
      db.CreateTable(RelationDef("GENRE",
                                 {AttributeDef{"mid", ValueType::kInt},
                                  AttributeDef{"genre", ValueType::kString}})));
  CQP_ASSIGN_OR_RETURN(
      Table * casts,
      db.CreateTable(RelationDef("CASTS",
                                 {AttributeDef{"mid", ValueType::kInt},
                                  AttributeDef{"aid", ValueType::kInt},
                                  AttributeDef{"role", ValueType::kString}})));

  const std::vector<std::string>& genres = GenreVocabulary();
  static const char* const kRoles[] = {"lead",  "support", "cameo",
                                       "voice", "extra",   "narrator"};
  for (int64_t m = 0; m < config.n_movies; ++m) {
    int64_t did = rng.Zipf(config.n_directors, config.popularity_skew);
    int64_t year = rng.Uniform(config.min_year, config.max_year);
    int64_t duration = rng.Uniform(60, 240);
    CQP_RETURN_IF_ERROR(movie->Insert(
        Tuple({Value(m), Value(StrFormat("Movie %06ld", m)), Value(year),
               Value(duration), Value(did)})));

    // 1 .. 2*avg-1 genres, distinct per movie.
    int64_t n_genres =
        rng.Uniform(1, std::max<int64_t>(1, 2 * config.genres_per_movie - 1));
    std::vector<int64_t> chosen;
    for (int64_t g = 0; g < n_genres; ++g) {
      int64_t gi = rng.Zipf(static_cast<int64_t>(genres.size()),
                            config.popularity_skew);
      bool dup = false;
      for (int64_t c : chosen) dup = dup || c == gi;
      if (dup) continue;
      chosen.push_back(gi);
      CQP_RETURN_IF_ERROR(genre->Insert(
          Tuple({Value(m), Value(genres[static_cast<size_t>(gi)])})));
    }

    for (int64_t c = 0; c < config.cast_per_movie; ++c) {
      int64_t aid = rng.Zipf(config.n_actors, config.popularity_skew);
      const char* role = kRoles[rng.Uniform(0, 5)];
      CQP_RETURN_IF_ERROR(
          casts->Insert(Tuple({Value(m), Value(aid), Value(role)})));
    }
  }

  db.Analyze();
  return db;
}

}  // namespace cqp::workload
