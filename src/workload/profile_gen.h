#ifndef CQP_WORKLOAD_PROFILE_GEN_H_
#define CQP_WORKLOAD_PROFILE_GEN_H_

#include <cstdint>

#include "common/status.h"
#include "prefs/profile.h"
#include "workload/movie_gen.h"

namespace cqp::workload {

/// Configuration of synthetic user profiles over the movie schema,
/// following the evaluation setting of [12] adopted by the paper (broad
/// range of doi values and deviations).
struct ProfileGenConfig {
  uint64_t seed = 7;
  /// Selection-preference counts per attribute family. The defaults give
  /// ~55 selection edges so that preference spaces up to K = 40 exist.
  int n_genre_prefs = 12;
  int n_director_prefs = 15;
  int n_actor_prefs = 15;
  int n_year_prefs = 8;
  int n_duration_prefs = 6;
  /// Selection dois are drawn uniformly from [doi_lo, doi_hi].
  double doi_lo = 0.05;
  double doi_hi = 0.95;
  /// Join-preference dois (high, as in the paper's Fig. 1 example).
  double join_doi_lo = 0.80;
  double join_doi_hi = 1.00;
};

/// Generates one profile. Deterministic in `config.seed`; pass distinct
/// seeds for distinct users. `movie_config` supplies value domains.
StatusOr<prefs::Profile> GenerateProfile(const ProfileGenConfig& config,
                                         const MovieDbConfig& movie_config);

}  // namespace cqp::workload

#endif  // CQP_WORKLOAD_PROFILE_GEN_H_
