#ifndef CQP_WORKLOAD_EXPERIMENT_H_
#define CQP_WORKLOAD_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "cqp/algorithm.h"
#include "prefs/graph.h"
#include "space/preference_space.h"
#include "sql/ast.h"
#include "storage/database.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"
#include "workload/query_gen.h"

namespace cqp::workload {

/// Configuration of the paper's evaluation setting (§7.2): a movie
/// database, `n_profiles` user profiles × `n_queries` queries. Every
/// reported number is the mean over the n_profiles × n_queries runs.
struct ExperimentConfig {
  MovieDbConfig db;
  ProfileGenConfig profile;
  QueryGenConfig query;
  size_t n_profiles = 20;
  uint64_t profile_seed_base = 1000;
};

/// Prepared evaluation context: the database plus per-user graphs and the
/// query workload.
class ExperimentContext {
 public:
  static StatusOr<ExperimentContext> Create(const ExperimentConfig& config);

  ExperimentContext(ExperimentContext&&) = default;
  ExperimentContext& operator=(ExperimentContext&&) = default;

  const storage::Database& db() const { return db_; }
  const std::vector<prefs::PersonalizationGraph>& graphs() const {
    return graphs_;
  }
  const std::vector<sql::SelectQuery>& queries() const { return queries_; }

 private:
  ExperimentContext() = default;

  storage::Database db_;
  std::vector<prefs::PersonalizationGraph> graphs_;
  std::vector<sql::SelectQuery> queries_;
};

/// One prepared (profile, query) instance: the extracted preference space
/// (top-K by doi, unconstrained) plus its Supreme Cost — the cost of the
/// query incorporating all K preferences (§7.2).
struct Instance {
  space::PreferenceSpaceResult space;
  double supreme_cost_ms = 0.0;
  /// Wall time of preference extraction with D only / with C and S as well
  /// (Fig. 12(b): D_PrefSelTime and C_PrefSelTime).
  double d_prefsel_ms = 0.0;
  double c_prefsel_ms = 0.0;
};

/// Builds all (profile × query) instances at preference-space size `k`.
/// Instances whose preference space ends up smaller than `k` (profile too
/// small for the query) are dropped, so aggregates stay comparable.
StatusOr<std::vector<Instance>> BuildInstances(const ExperimentContext& ctx,
                                               size_t k);

/// Aggregated per-algorithm measurements over a set of runs.
struct AlgoAggregate {
  double mean_wall_ms = 0.0;
  double mean_peak_kbytes = 0.0;
  double mean_states = 0.0;
  /// Mean of (doi_optimal − doi_found); the reference optimum is D-MaxDoi
  /// (provably exact for the bound-only problems), as in the paper §7.2.3.
  double mean_quality_diff = 0.0;
  size_t runs = 0;
  size_t infeasible = 0;
};

/// Runs `algorithm_names` on every instance under `problem` and aggregates.
/// If `reference_algorithm` is non-empty it is solved first per instance
/// and used as the quality reference.
StatusOr<std::map<std::string, AlgoAggregate>> RunAlgorithms(
    const std::vector<Instance>& instances, const cqp::ProblemSpec& problem,
    const std::vector<std::string>& algorithm_names,
    const std::string& reference_algorithm);

/// Like RunAlgorithms, but with a per-instance cost bound of
/// `supreme_fraction` × the instance's Supreme Cost (Fig. 12(c)/(d),
/// 13(b), 14(b)).
StatusOr<std::map<std::string, AlgoAggregate>> RunAlgorithmsAtFraction(
    const std::vector<Instance>& instances, double supreme_fraction,
    const std::vector<std::string>& algorithm_names,
    const std::string& reference_algorithm);

}  // namespace cqp::workload

#endif  // CQP_WORKLOAD_EXPERIMENT_H_
