#ifndef CQP_SHELL_SHELL_H_
#define CQP_SHELL_SHELL_H_

#include <memory>
#include <ostream>
#include <string>

#include "common/budget.h"
#include "construct/plan_cache.h"
#include "cqp/problem.h"
#include "prefs/graph.h"
#include "server/client.h"
#include "server/profile_store.h"
#include "server/server.h"
#include "space/preference_space.h"
#include "storage/database.h"

namespace cqp::shell {

/// The interactive CQP shell's engine: owns a database, a profile and the
/// personalization settings, and interprets one command line at a time.
/// The cqpsh binary wraps it in a stdin loop; tests drive ProcessLine
/// directly.
///
/// Commands (also listed by `.help`):
///   .help                       show command reference
///   .gen movies [n]             generate the synthetic movie database
///   .gen tourist                generate the tourist database
///   .load REL(a INT, ...) FILE  load a CSV file as a new table
///   .tables                     list tables with cardinalities/blocks
///   .schema REL                 show one table's schema
///   .profile add LINE           add "doi(...) = d" preference
///   .profile load FILE          load a profile file
///   .profile show               print the current profile
///   .profile clear              drop all preferences
///   .problem N args...          choose the CQP problem, e.g.
///                               .problem 2 cmax=400
///                               .problem 3 cmax=400 smin=1 smax=50
///   .algorithm NAME             choose the search algorithm
///   .algorithms                 list available algorithms
///   .k N                        cap the preference space size
///   .budget [spec|off]          show or set the per-query search budget
///   .failpoints [spec|off]      show or arm fault-injection points
///   .settings                   show problem/algorithm/K/budget
///   .constraints [sub]          show/derive/load/clear integrity constraints
///   .sql QUERY                  run QUERY directly (no personalization)
///   .explain QUERY              personalize QUERY, show the plan only
///                               (before/after SQL when the rewriter fired)
///   .batch [n=N] [threads=T] QUERY
///                               personalize N copies of QUERY on a worker
///                               pool, print throughput/latency/cache stats
///   .plans [clear]              show (or empty) the session plan cache
///   .serve [port]               serve this database/profile over TCP
///   .serve stop                 stop the embedded server
///   .connect host:port          route queries to a remote server
///   .disconnect                 go back to local personalization
///   .stats                      server stats JSON (remote or embedded)
///   QUERY                       personalize QUERY and execute it
///   .quit                       leave the shell
class CqpShell {
 public:
  CqpShell();

  /// Interprets one line; output goes to `out`. Returns false when the
  /// shell should exit (.quit / .exit), true otherwise. Errors are printed,
  /// never thrown; the shell survives any input.
  bool ProcessLine(const std::string& line, std::ostream& out);

  bool has_database() const { return db_ != nullptr; }

 private:
  Status HandleCommand(const std::string& line, std::ostream& out);
  Status HandleGen(const std::string& args);
  Status HandleLoad(const std::string& args);
  Status HandleProfile(const std::string& args, std::ostream& out);
  Status HandleProblem(const std::string& args);
  /// The `.constraints` family: show / derive-from-data / load-file / clear.
  /// Derive and load both verify the set against the data before installing
  /// it (SetConstraints bumps the revision, detaching stale cached plans).
  Status HandleConstraints(const std::string& args, std::ostream& out);
  Status HandleBudget(const std::string& args, std::ostream& out);
  Status HandleFailpoints(const std::string& args, std::ostream& out);
  Status HandleQuery(const std::string& sql, bool execute, std::ostream& out);
  Status HandleBatch(const std::string& args, std::ostream& out);
  Status HandlePlans(const std::string& args, std::ostream& out);
  Status HandleRawSql(const std::string& sql, std::ostream& out);
  Status HandleServe(const std::string& args, std::ostream& out);
  Status HandleConnect(const std::string& args, std::ostream& out);
  /// Prints the stats JSON: the remote server's when .connect-ed, else the
  /// embedded .serve server's (admission + plan cache + journal + shard
  /// tier when present).
  Status HandleStats(std::ostream& out);
  /// Sends the query to the `.connect`-ed server and prints the response.
  Status HandleRemoteQuery(const std::string& sql, std::ostream& out);
  Status RebuildGraph();
  /// Builds a fresh SearchBudget from the .budget knobs (the deadline is
  /// re-anchored at call time).
  SearchBudget MakeBudget() const;

  std::unique_ptr<storage::Database> db_;
  prefs::Profile profile_;
  std::unique_ptr<prefs::PersonalizationGraph> graph_;
  cqp::ProblemSpec problem_;
  std::string algorithm_ = "C-Boundaries";
  space::PreferenceSpaceOptions space_options_;
  /// Session plan cache: PreparedSpace artifacts keyed by query fingerprint
  /// and `profile_version_`, which RebuildGraph bumps whenever the profile
  /// or database changes so stale plans can never be served.
  construct::PlanCache plan_cache_;
  uint64_t profile_version_ = 0;
  /// Per-query budget knobs (0 = unlimited); the absolute deadline is
  /// derived fresh for every query.
  double budget_deadline_ms_ = 0.0;
  uint64_t budget_states_ = 0;
  double budget_memory_mb_ = 0.0;
  /// Embedded personalization server (.serve); holds pointers into db_, so
  /// .gen/.load are refused while it runs.
  std::unique_ptr<server::ProfileStore> profile_store_;
  std::unique_ptr<server::Server> server_;
  /// Remote connection (.connect); when live, queries go over the wire.
  server::Client client_;
};

}  // namespace cqp::shell

#endif  // CQP_SHELL_SHELL_H_
