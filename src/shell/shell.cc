#include "shell/shell.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "estimation/eval_cache.h"
#include "common/str_util.h"
#include "construct/personalizer.h"
#include "exec/executor.h"
#include "sql/parser.h"
#include "storage/constraints.h"
#include "storage/csv.h"
#include "workload/movie_gen.h"
#include "workload/tourist_gen.h"

namespace cqp::shell {

namespace {

constexpr const char* kHelp = R"(commands:
  .help                       this text
  .gen movies [n]             generate the synthetic movie database
  .gen tourist                generate the tourist database
  .load REL(a INT, ...) FILE  load a CSV file as a new table
  .tables                     list tables
  .schema REL                 show one table's schema
  .profile add LINE           add "doi(...) = d" preference
  .profile load FILE          load a profile file
  .profile show               print the current profile
  .profile clear              drop all preferences
  .problem N key=value...     pick the CQP problem (Table 1), e.g.
                                .problem 2 cmax=400
                                .problem 3 cmax=400 smin=1 smax=50
                                .problem 4 dmin=0.8
  .algorithm NAME             pick the search algorithm
  .algorithms                 list algorithms
  .k N                        preference-space size cap
  .budget key=value...        per-query search budget, e.g.
                                .budget deadline=5 states=10000 memory=64
                                (ms / expansions / MB; 0 or "off" = unlimited)
  .failpoints [SPEC|off]      fault injection, e.g.
                                .failpoints space.extract=1.0:42
  .settings                   show problem/algorithm/K/budget
  .constraints                show the catalog integrity constraints
  .constraints derive         mine keys/domains/implications from the data
  .constraints load FILE      load a constraint file (key/domain/imply lines)
  .constraints clear          drop all constraints
  .sql QUERY                  run QUERY without personalization
  .explain QUERY              personalize, show plan only (with the
                              pre-rewrite SQL when the optimizer fired)
  .batch [n=N] [threads=T] QUERY
                              personalize N copies of QUERY on a worker
                              pool (default n=8, threads=hardware)
  .plans [clear]              show the session plan cache (hits, misses,
                              entries), or drop every cached plan
  .serve [port]               serve this database/profile over TCP
                              (port 0 or omitted = ephemeral; see docs/server.md)
  .serve stop                 stop the embedded server
  .connect host:port          route queries to a remote cqp server
  .disconnect                 drop the remote connection
  .stats                      server stats JSON (remote when connected,
                              else the embedded .serve server; includes the
                              shard tier when the store is sharded)
  QUERY                       personalize QUERY and execute
  .quit                       exit
)";

/// Splits "cmd rest" at the first whitespace.
std::pair<std::string, std::string> SplitCommand(std::string_view line) {
  size_t space = line.find_first_of(" \t");
  if (space == std::string_view::npos) {
    return {std::string(line), ""};
  }
  return {std::string(line.substr(0, space)),
          std::string(StripWhitespace(line.substr(space + 1)))};
}

/// Parses "REL(a INT, b STRING, ...)" into a RelationDef.
StatusOr<catalog::RelationDef> ParseSchemaSpec(const std::string& spec) {
  size_t open = spec.find('(');
  size_t close = spec.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return InvalidArgument("schema must look like REL(a INT, b STRING)");
  }
  std::string name(StripWhitespace(spec.substr(0, open)));
  if (name.empty()) return InvalidArgument("missing relation name");
  std::vector<catalog::AttributeDef> attrs;
  for (const std::string& part :
       Split(spec.substr(open + 1, close - open - 1), ',')) {
    std::string_view trimmed = StripWhitespace(part);
    if (trimmed.empty()) continue;
    size_t space = trimmed.find_first_of(" \t");
    if (space == std::string_view::npos) {
      return InvalidArgument("column needs a type: " + std::string(trimmed));
    }
    std::string col(StripWhitespace(trimmed.substr(0, space)));
    std::string type_name(StripWhitespace(trimmed.substr(space + 1)));
    catalog::ValueType type;
    if (EqualsIgnoreCase(type_name, "INT")) {
      type = catalog::ValueType::kInt;
    } else if (EqualsIgnoreCase(type_name, "DOUBLE")) {
      type = catalog::ValueType::kDouble;
    } else if (EqualsIgnoreCase(type_name, "STRING")) {
      type = catalog::ValueType::kString;
    } else {
      return InvalidArgument("unknown type " + type_name);
    }
    attrs.push_back({col, type});
  }
  if (attrs.empty()) return InvalidArgument("schema has no columns");
  return catalog::RelationDef(name, std::move(attrs));
}

/// Locale-independent strict number parsing (no exceptions).
bool ParseIntStrict(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDoubleStrict(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

/// Parses "key=value" pairs into a map.
StatusOr<std::map<std::string, double>> ParseKeyValues(
    const std::string& args) {
  std::map<std::string, double> out;
  for (const std::string& part : Split(args, ' ')) {
    std::string_view trimmed = StripWhitespace(part);
    if (trimmed.empty()) continue;
    size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgument("expected key=value, got " +
                             std::string(trimmed));
    }
    std::string key = ToLower(trimmed.substr(0, eq));
    double value = 0;
    if (!ParseDoubleStrict(std::string(trimmed.substr(eq + 1)), &value)) {
      return InvalidArgument("bad number in " + std::string(trimmed));
    }
    out[key] = value;
  }
  return out;
}

}  // namespace

CqpShell::CqpShell() {
  problem_ = cqp::ProblemSpec::Problem2(400.0);
  space_options_.max_k = 20;
}

bool CqpShell::ProcessLine(const std::string& raw, std::ostream& out) {
  std::string line(StripWhitespace(raw));
  if (line.empty() || line[0] == '#') return true;
  if (EqualsIgnoreCase(line, ".quit") || EqualsIgnoreCase(line, ".exit")) {
    return false;
  }
  Status status = HandleCommand(line, out);
  if (!status.ok()) out << "error: " << status.ToString() << "\n";
  return true;
}

Status CqpShell::HandleCommand(const std::string& line, std::ostream& out) {
  if (line[0] != '.') {
    if (client_.connected()) return HandleRemoteQuery(line, out);
    return HandleQuery(line, /*execute=*/true, out);
  }
  auto [cmd, args] = SplitCommand(line);
  std::string command = ToLower(cmd);

  if (command == ".help") {
    out << kHelp;
    return Status::OK();
  }
  if (command == ".gen") return HandleGen(args);
  if (command == ".load") return HandleLoad(args);
  if (command == ".tables") {
    if (db_ == nullptr) return FailedPrecondition("no database loaded");
    for (const std::string& name : db_->TableNames()) {
      const storage::Table* table = *db_->GetTable(name);
      out << StrFormat("%-12s %8llu rows %6llu blocks\n", name.c_str(),
                       static_cast<unsigned long long>(table->row_count()),
                       static_cast<unsigned long long>(table->blocks()));
    }
    return Status::OK();
  }
  if (command == ".schema") {
    if (db_ == nullptr) return FailedPrecondition("no database loaded");
    CQP_ASSIGN_OR_RETURN(const storage::Table* table, db_->GetTable(args));
    out << table->schema().ToString() << "\n";
    return Status::OK();
  }
  if (command == ".profile") return HandleProfile(args, out);
  if (command == ".problem") return HandleProblem(args);
  if (command == ".algorithm") {
    CQP_ASSIGN_OR_RETURN(const cqp::Algorithm* algorithm,
                         cqp::GetAlgorithm(args));
    algorithm_ = algorithm->name();
    return Status::OK();
  }
  if (command == ".algorithms") {
    for (const std::string& name : cqp::AlgorithmNames()) {
      out << "  " << name << "\n";
    }
    return Status::OK();
  }
  if (command == ".k") {
    int64_t k = 0;
    if (!ParseIntStrict(args, &k)) {
      return InvalidArgument(".k expects an integer");
    }
    if (k <= 0 || k >= 64) return InvalidArgument("K must be in [1, 63]");
    space_options_.max_k = static_cast<size_t>(k);
    return Status::OK();
  }
  if (command == ".settings") {
    out << "problem   : " << problem_.ToString() << "\n";
    out << "algorithm : " << algorithm_ << "\n";
    out << "K         : " << space_options_.max_k << "\n";
    out << "budget    : " << MakeBudget().ToString() << "\n";
    return Status::OK();
  }
  if (command == ".constraints") return HandleConstraints(args, out);
  if (command == ".budget") return HandleBudget(args, out);
  if (command == ".failpoints") return HandleFailpoints(args, out);
  if (command == ".sql") return HandleRawSql(args, out);
  if (command == ".explain") {
    return HandleQuery(args, /*execute=*/false, out);
  }
  if (command == ".batch") return HandleBatch(args, out);
  if (command == ".plans") return HandlePlans(args, out);
  if (command == ".serve") return HandleServe(args, out);
  if (command == ".connect") return HandleConnect(args, out);
  if (command == ".stats") return HandleStats(out);
  if (command == ".disconnect") {
    if (!client_.connected()) return FailedPrecondition("not connected");
    client_.Close();
    out << "disconnected\n";
    return Status::OK();
  }
  return InvalidArgument("unknown command " + command + " (try .help)");
}

Status CqpShell::HandleGen(const std::string& args) {
  if (server_ != nullptr) {
    return FailedPrecondition(
        "the embedded server holds this database; .serve stop first");
  }
  auto [kind, rest] = SplitCommand(args);
  if (EqualsIgnoreCase(kind, "movies")) {
    workload::MovieDbConfig config;
    config.n_movies = 5000;
    config.n_directors = 500;
    config.n_actors = 1000;
    if (!rest.empty()) {
      if (!ParseIntStrict(rest, &config.n_movies)) {
        return InvalidArgument(".gen movies expects a row count");
      }
      config.n_directors = std::max<int64_t>(10, config.n_movies / 10);
      config.n_actors = std::max<int64_t>(20, config.n_movies / 5);
    }
    CQP_ASSIGN_OR_RETURN(storage::Database db,
                         workload::BuildMovieDatabase(config));
    db_ = std::make_unique<storage::Database>(std::move(db));
    return RebuildGraph();
  }
  if (EqualsIgnoreCase(kind, "tourist")) {
    CQP_ASSIGN_OR_RETURN(storage::Database db,
                         workload::BuildTouristDatabase({}));
    db_ = std::make_unique<storage::Database>(std::move(db));
    return RebuildGraph();
  }
  return InvalidArgument(".gen expects 'movies [n]' or 'tourist'");
}

Status CqpShell::HandleLoad(const std::string& args) {
  if (server_ != nullptr) {
    return FailedPrecondition(
        "the embedded server holds this database; .serve stop first");
  }
  size_t close = args.rfind(')');
  if (close == std::string::npos) {
    return InvalidArgument(".load REL(a INT, ...) file.csv");
  }
  CQP_ASSIGN_OR_RETURN(catalog::RelationDef schema,
                       ParseSchemaSpec(args.substr(0, close + 1)));
  std::string path(StripWhitespace(args.substr(close + 1)));
  if (path.empty()) return InvalidArgument("missing CSV path");
  if (db_ == nullptr) db_ = std::make_unique<storage::Database>();
  CQP_ASSIGN_OR_RETURN(storage::Table * table,
                       storage::LoadCsvFile(db_.get(), schema, path));
  (void)table;
  db_->Analyze();
  return RebuildGraph();
}

Status CqpShell::HandleProfile(const std::string& args, std::ostream& out) {
  auto [sub, rest] = SplitCommand(args);
  if (EqualsIgnoreCase(sub, "show")) {
    out << profile_.ToText();
    return Status::OK();
  }
  if (EqualsIgnoreCase(sub, "clear")) {
    profile_ = prefs::Profile();
    return RebuildGraph();  // drops graph_ and invalidates cached plans
  }
  if (EqualsIgnoreCase(sub, "add")) {
    CQP_ASSIGN_OR_RETURN(prefs::Profile parsed, prefs::Profile::Parse(rest));
    for (const prefs::AtomicSelection& p : parsed.selections()) {
      CQP_RETURN_IF_ERROR(profile_.AddSelection(p));
    }
    for (const prefs::AtomicJoin& p : parsed.joins()) {
      CQP_RETURN_IF_ERROR(profile_.AddJoin(p));
    }
    return RebuildGraph();
  }
  if (EqualsIgnoreCase(sub, "load")) {
    std::ifstream in(rest);
    if (!in) return NotFound("cannot open " + rest);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    CQP_ASSIGN_OR_RETURN(profile_, prefs::Profile::Parse(buffer.str()));
    return RebuildGraph();
  }
  return InvalidArgument(".profile expects show|clear|add|load");
}

Status CqpShell::HandleConstraints(const std::string& args,
                                   std::ostream& out) {
  if (db_ == nullptr) {
    return FailedPrecondition("no database loaded (.gen or .load first)");
  }
  auto [sub, rest] = SplitCommand(args);
  if (sub.empty()) {
    const catalog::ConstraintSet& constraints = db_->constraints();
    if (constraints.empty()) {
      out << "no constraints (try .constraints derive)\n";
    } else {
      out << constraints.ToText();
    }
    return Status::OK();
  }
  if (EqualsIgnoreCase(sub, "derive")) {
    CQP_ASSIGN_OR_RETURN(catalog::ConstraintSet derived,
                         storage::DeriveConstraints(*db_));
    // Derived constraints hold by construction; the check guards against
    // estimator-statistics drift (it would indicate a bug, not bad data).
    CQP_RETURN_IF_ERROR(storage::CheckConstraints(*db_, derived));
    out << StrFormat("derived %zu keys, %zu domains, %zu implications\n",
                     derived.keys().size(), derived.domains().size(),
                     derived.implications().size());
    db_->SetConstraints(std::move(derived));
    return Status::OK();
  }
  if (EqualsIgnoreCase(sub, "load")) {
    std::ifstream in(rest);
    if (!in) return NotFound("cannot open " + rest);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    CQP_ASSIGN_OR_RETURN(catalog::ConstraintSet parsed,
                         catalog::ParseConstraintSet(buffer.str()));
    // A constraint the data violates would make the rewrite passes unsound
    // (they drop conjuncts the constraints prove redundant) — refuse it.
    CQP_RETURN_IF_ERROR(storage::CheckConstraints(*db_, parsed));
    out << StrFormat("loaded %zu constraints\n", parsed.size());
    db_->SetConstraints(std::move(parsed));
    return Status::OK();
  }
  if (EqualsIgnoreCase(sub, "clear")) {
    db_->SetConstraints(catalog::ConstraintSet());
    return Status::OK();
  }
  return InvalidArgument(".constraints expects derive|load|clear or no args");
}

Status CqpShell::HandleProblem(const std::string& args) {
  auto [number_text, rest] = SplitCommand(args);
  int64_t number = 0;
  if (!ParseIntStrict(number_text, &number)) {
    return InvalidArgument(".problem expects a problem number 1-6");
  }
  CQP_ASSIGN_OR_RETURN(auto kv, ParseKeyValues(rest));
  auto get = [&](const char* key, double fallback) {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  };
  cqp::ProblemSpec spec;
  switch (number) {
    case 1:
      spec = cqp::ProblemSpec::Problem1(get("smin", 1), get("smax", 100));
      break;
    case 2:
      spec = cqp::ProblemSpec::Problem2(get("cmax", 400));
      break;
    case 3:
      spec = cqp::ProblemSpec::Problem3(get("cmax", 400), get("smin", 1),
                                        get("smax", 100));
      break;
    case 4:
      spec = cqp::ProblemSpec::Problem4(get("dmin", 0.8));
      break;
    case 5:
      spec = cqp::ProblemSpec::Problem5(get("dmin", 0.8), get("smin", 1),
                                        get("smax", 100));
      break;
    case 6:
      spec = cqp::ProblemSpec::Problem6(get("smin", 1), get("smax", 100));
      break;
    default:
      return InvalidArgument("problem number must be 1-6");
  }
  CQP_RETURN_IF_ERROR(spec.Validate());
  problem_ = spec;
  return Status::OK();
}

SearchBudget CqpShell::MakeBudget() const {
  SearchBudget budget;
  if (budget_deadline_ms_ > 0) {
    budget = SearchBudget::AfterMillis(budget_deadline_ms_);
  }
  budget.max_expansions = budget_states_;
  budget.max_memory_bytes =
      static_cast<size_t>(budget_memory_mb_ * 1024.0 * 1024.0);
  return budget;
}

Status CqpShell::HandleBudget(const std::string& args, std::ostream& out) {
  if (args.empty()) {
    out << "budget: " << MakeBudget().ToString() << "\n";
    return Status::OK();
  }
  if (EqualsIgnoreCase(args, "off")) {
    budget_deadline_ms_ = 0;
    budget_states_ = 0;
    budget_memory_mb_ = 0;
    return Status::OK();
  }
  CQP_ASSIGN_OR_RETURN(auto kv, ParseKeyValues(args));
  for (const auto& [key, value] : kv) {
    if (value < 0) return InvalidArgument("budget values must be >= 0");
    if (key == "deadline") {
      budget_deadline_ms_ = value;
    } else if (key == "states") {
      budget_states_ = static_cast<uint64_t>(value);
    } else if (key == "memory") {
      budget_memory_mb_ = value;
    } else {
      return InvalidArgument(
          ".budget expects deadline=MS states=N memory=MB, got " + key);
    }
  }
  out << "budget: " << MakeBudget().ToString() << "\n";
  return Status::OK();
}

Status CqpShell::HandleFailpoints(const std::string& args, std::ostream& out) {
  if (EqualsIgnoreCase(args, "off")) {
    failpoint::Reset();
    return Status::OK();
  }
  if (!args.empty()) {
    CQP_RETURN_IF_ERROR(failpoint::Configure(args));
  }
  std::vector<failpoint::FailpointInfo> armed = failpoint::List();
  if (armed.empty()) {
    out << "no failpoints armed\n";
    return Status::OK();
  }
  for (const failpoint::FailpointInfo& fp : armed) {
    out << StrFormat("%-24s p=%.2f seed=%llu hits=%llu fired=%llu\n",
                     fp.name.c_str(), fp.probability,
                     static_cast<unsigned long long>(fp.seed),
                     static_cast<unsigned long long>(fp.hits),
                     static_cast<unsigned long long>(fp.triggers));
  }
  return Status::OK();
}

Status CqpShell::RebuildGraph() {
  graph_.reset();
  // Any profile or database change invalidates every prepared plan: bump
  // the session version (stale keys can no longer match) and drop the
  // entries eagerly so their PreparedSpace memory is freed now.
  ++profile_version_;
  plan_cache_.InvalidateProfile("shell");
  if (db_ == nullptr || profile_.empty()) return Status::OK();
  CQP_ASSIGN_OR_RETURN(
      prefs::PersonalizationGraph graph,
      prefs::PersonalizationGraph::Build(profile_, *db_));
  graph_ = std::make_unique<prefs::PersonalizationGraph>(std::move(graph));
  if (profile_store_ != nullptr) {
    // The embedded server serves this profile as "default": keep its store
    // (and through it the eval caches) in step with .profile edits.
    CQP_RETURN_IF_ERROR(profile_store_->Put("default", profile_));
  }
  return Status::OK();
}

Status CqpShell::HandleServe(const std::string& args, std::ostream& out) {
  if (EqualsIgnoreCase(args, "stop")) {
    if (server_ == nullptr) return FailedPrecondition("no server running");
    server_->Stop();
    out << "server stopped; " << server_->stats().requests_total()
        << " requests served\n";
    server_.reset();
    profile_store_.reset();
    return Status::OK();
  }
  if (server_ != nullptr) {
    return AlreadyExists("server already running on port " +
                         std::to_string(server_->port()));
  }
  if (db_ == nullptr) {
    return FailedPrecondition("no database loaded (.gen or .load first)");
  }
  if (profile_.empty()) {
    return FailedPrecondition("empty profile (.profile add first)");
  }
  server::ServerOptions options;
  if (!args.empty()) {
    int64_t port = 0;
    if (!ParseIntStrict(args, &port) || port < 0 || port > 65535) {
      return InvalidArgument(".serve expects a port in [0, 65535] or 'stop'");
    }
    options.port = static_cast<int>(port);
  }
  options.default_problem = problem_;
  options.default_algorithm = algorithm_;
  options.default_max_k = space_options_.max_k;
  auto store = std::make_unique<server::ProfileStore>(db_.get());
  CQP_RETURN_IF_ERROR(store->Put("default", profile_));
  auto server = std::make_unique<server::Server>(db_.get(), store.get(),
                                                 std::move(options));
  CQP_RETURN_IF_ERROR(server->Start());
  out << "serving on 127.0.0.1:" << server->port()
      << " (profile 'default'; .serve stop to halt)\n";
  profile_store_ = std::move(store);
  server_ = std::move(server);
  return Status::OK();
}

Status CqpShell::HandleStats(std::ostream& out) {
  if (client_.connected()) {
    server::WireRequest request;
    request.op = server::RequestOp::kStats;
    CQP_ASSIGN_OR_RETURN(server::WireResponse response, client_.Call(request));
    if (!response.ok()) return response.status;
    out << response.extra.Dump() << "\n";
    return Status::OK();
  }
  if (server_ != nullptr) {
    out << server_->StatsJson().Dump() << "\n";
    return Status::OK();
  }
  return FailedPrecondition("no server (.serve or .connect first)");
}

Status CqpShell::HandleConnect(const std::string& args, std::ostream& out) {
  size_t colon = args.rfind(':');
  if (colon == std::string::npos) {
    return InvalidArgument(".connect expects host:port");
  }
  std::string host = args.substr(0, colon);
  int64_t port = 0;
  if (!ParseIntStrict(args.substr(colon + 1), &port) || port <= 0 ||
      port > 65535) {
    return InvalidArgument("bad port in '" + args + "'");
  }
  CQP_RETURN_IF_ERROR(client_.Connect(host, static_cast<int>(port)));
  server::WireRequest ping;
  ping.op = server::RequestOp::kPing;
  CQP_ASSIGN_OR_RETURN(server::WireResponse pong, client_.Call(ping));
  if (!pong.ok()) return pong.status;
  out << "connected to " << host << ":" << port
      << "; queries now run remotely (.disconnect to go local)\n";
  return Status::OK();
}

Status CqpShell::HandleRemoteQuery(const std::string& sql, std::ostream& out) {
  server::WireRequest request;
  request.op = server::RequestOp::kPersonalize;
  request.personalize.sql = sql;
  request.personalize.algorithm = algorithm_;
  request.personalize.deadline_ms = budget_deadline_ms_;
  request.personalize.max_expansions = budget_states_;
  request.personalize.max_memory_mb = budget_memory_mb_;
  request.personalize.max_k = space_options_.max_k;
  request.personalize.problem = problem_;
  CQP_ASSIGN_OR_RETURN(server::WireResponse response, client_.Call(request));
  if (!response.ok()) return response.status;
  if (!response.personalize.has_value()) {
    return Internal("server sent no personalize result");
  }
  const server::PersonalizeResultPayload& r = *response.personalize;
  if (r.degraded) {
    out << "degraded answer (rung: " << r.rung << ")\n";
    for (const std::string& attempt : r.attempts) {
      out << "  " << attempt << "\n";
    }
  }
  if (!r.feasible) {
    out << "no feasible personalized query; the original query applies\n";
  } else {
    out << StrFormat(
        "estimates: doi=%.3f cost=%.1fms size=%.1f  (%llu states, %.2f ms search, %.2f ms server)\n",
        r.doi, r.cost_ms, r.size,
        static_cast<unsigned long long>(r.states_examined), r.search_wall_ms,
        r.server_ms);
  }
  out << "sql:\n" << r.final_sql << "\n";
  return Status::OK();
}

Status CqpShell::HandleBatch(const std::string& args, std::ostream& out) {
  if (db_ == nullptr) {
    return FailedPrecondition("no database loaded (.gen or .load first)");
  }
  if (graph_ == nullptr) {
    return FailedPrecondition("empty profile (.profile add first)");
  }
  int64_t n = 8;
  int64_t threads = 0;
  std::string rest = args;
  for (;;) {
    auto [token, tail] = SplitCommand(rest);
    size_t eq = token.find('=');
    if (eq == std::string::npos) break;
    std::string key = ToLower(token.substr(0, eq));
    int64_t value = 0;
    if (!ParseIntStrict(token.substr(eq + 1), &value)) {
      return InvalidArgument(".batch expects n=N threads=T, got " + token);
    }
    if (key == "n") {
      n = value;
    } else if (key == "threads") {
      threads = value;
    } else {
      return InvalidArgument(".batch knows n= and threads=, got " + key);
    }
    rest = tail;
  }
  if (rest.empty()) return InvalidArgument(".batch [n=N] [threads=T] QUERY");
  if (n <= 0 || n > 100000) return InvalidArgument("n must be in [1, 1e5]");
  if (threads < 0 || threads > 256) {
    return InvalidArgument("threads must be in [0, 256] (0 = hardware)");
  }

  construct::Personalizer personalizer(db_.get(), graph_.get());
  // Every copy personalizes the same query under the same profile, so one
  // shared memo is valid for the whole batch.
  estimation::EvalCache cache;
  construct::PersonalizeRequest request;
  request.sql = rest;
  request.problem = problem_;
  request.algorithm = algorithm_;
  request.budget = MakeBudget();
  request.space_options = space_options_;
  request.eval_cache = &cache;
  request.plan_cache = &plan_cache_;
  request.profile_id = "shell";
  request.profile_version = profile_version_;
  std::vector<construct::PersonalizeRequest> requests(
      static_cast<size_t>(n), request);
  construct::BatchOptions options;
  options.num_threads = static_cast<size_t>(threads);
  construct::BatchResult batch =
      personalizer.PersonalizeBatch(requests, options);

  size_t resolved_threads =
      threads > 0 ? static_cast<size_t>(threads)
                  : std::max(1u, std::thread::hardware_concurrency());
  std::vector<double> latencies = batch.latencies_ms;
  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double p) {
    if (latencies.empty()) return 0.0;
    size_t idx = static_cast<size_t>(p * static_cast<double>(latencies.size()));
    return latencies[std::min(idx, latencies.size() - 1)];
  };
  double qps = batch.wall_ms > 0.0
                   ? 1000.0 * static_cast<double>(n) / batch.wall_ms
                   : 0.0;
  out << StrFormat("%lld requests on %zu threads: %zu ok, %zu degraded\n",
                   static_cast<long long>(n), resolved_threads,
                   batch.ok_count(), batch.degraded);
  out << StrFormat("wall %.1f ms (%.1f q/s), latency p50=%.2f ms p99=%.2f ms\n",
                   batch.wall_ms, qps, percentile(0.50), percentile(0.99));
  uint64_t lookups = batch.eval_cache_hits + batch.eval_cache_misses;
  out << StrFormat(
      "eval cache: %llu hits / %llu lookups (%.0f%% hit rate), %zu entries\n",
      static_cast<unsigned long long>(batch.eval_cache_hits),
      static_cast<unsigned long long>(lookups),
      lookups == 0 ? 0.0
                   : 100.0 * static_cast<double>(batch.eval_cache_hits) /
                         static_cast<double>(lookups),
      cache.size());
  out << StrFormat("plan cache: %llu of %lld prepares served from cache\n",
                   static_cast<unsigned long long>(batch.plan_cache_hits),
                   static_cast<long long>(n));
  for (const auto& result : batch.results) {
    if (!result.ok()) {
      out << "first error: " << result.status().ToString() << "\n";
      break;
    }
  }
  return Status::OK();
}

Status CqpShell::HandlePlans(const std::string& args, std::ostream& out) {
  if (EqualsIgnoreCase(args, "clear")) {
    plan_cache_.Clear();
    out << "plan cache cleared\n";
    return Status::OK();
  }
  if (!args.empty()) return InvalidArgument(".plans takes no argument or 'clear'");
  construct::PlanCacheStats stats = plan_cache_.stats();
  out << StrFormat(
      "plan cache: %llu hits / %llu lookups (%.0f%% hit rate)\n",
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.hits + stats.misses),
      100.0 * stats.hit_rate());
  out << StrFormat(
      "%zu entries, %llu evictions, %llu invalidations\n", stats.entries,
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.invalidations));
  for (const construct::PlanCache::EntryInfo& entry : plan_cache_.Entries()) {
    out << StrFormat("  fp=%016llx v%llu K=%zu\n",
                     static_cast<unsigned long long>(entry.key.query_fingerprint),
                     static_cast<unsigned long long>(entry.key.profile_version),
                     entry.k);
  }
  return Status::OK();
}

Status CqpShell::HandleRawSql(const std::string& sql, std::ostream& out) {
  if (db_ == nullptr) return FailedPrecondition("no database loaded");
  exec::Executor executor(db_.get());
  exec::ExecStats stats;
  exec::RowSet rows;
  auto select = sql::ParseSelect(sql);
  if (select.ok()) {
    CQP_ASSIGN_OR_RETURN(rows, executor.Execute(*select, &stats));
  } else {
    // Maybe it is a personalized-query statement (the §4.2 shape that
    // .explain prints) — those execute too.
    auto union_group = sql::ParseUnionGroup(sql);
    if (!union_group.ok()) return select.status();  // original diagnostics
    CQP_ASSIGN_OR_RETURN(rows,
                         executor.ExecuteUnionGroup(*union_group, &stats));
  }
  out << rows.ToString(20);
  out << StrFormat("(%zu rows, %llu blocks, simulated %.1f ms)\n",
                   rows.row_count(),
                   static_cast<unsigned long long>(stats.blocks_read),
                   stats.SimulatedMillis(exec::CostModelParams()));
  return Status::OK();
}

Status CqpShell::HandleQuery(const std::string& sql, bool execute,
                             std::ostream& out) {
  if (db_ == nullptr) {
    return FailedPrecondition("no database loaded (.gen or .load first)");
  }
  if (graph_ == nullptr) {
    out << "note: empty profile; running the query unpersonalized\n";
    return HandleRawSql(sql, out);
  }
  construct::Personalizer personalizer(db_.get(), graph_.get());
  construct::PersonalizeRequest request;
  request.sql = sql;
  request.problem = problem_;
  request.algorithm = algorithm_;
  request.budget = MakeBudget();
  request.space_options = space_options_;
  request.plan_cache = &plan_cache_;
  request.profile_id = "shell";
  request.profile_version = profile_version_;
  CQP_ASSIGN_OR_RETURN(construct::PersonalizeResult result,
                       personalizer.Personalize(request));

  out << "preference space: K=" << result.space->K()
      << (result.plan_cache_hit ? " (plan cache hit)" : "") << "\n";
  if (result.degraded()) {
    out << "degraded answer (rung: "
        << construct::FallbackRungName(result.rung) << ")\n";
    for (const std::string& attempt : result.attempts) {
      out << "  " << attempt << "\n";
    }
  }
  if (!result.solution.feasible) {
    out << "no feasible personalized query; the original query applies\n";
  } else {
    out << "chosen preferences:\n";
    for (int32_t i : result.solution.chosen) {
      const auto& p = result.space->prefs[static_cast<size_t>(i)];
      out << StrFormat("  doi=%.3f cost=%.1fms  %s\n", p.doi, p.cost_ms,
                       p.pref.ConditionString().c_str());
    }
    out << StrFormat("estimates: doi=%.3f cost=%.1fms size=%.1f  (%llu states, %.2f ms search)\n",
                     result.solution.params.doi,
                     result.solution.params.cost_ms,
                     result.solution.params.size,
                     static_cast<unsigned long long>(
                         result.metrics.states_examined),
                     result.metrics.wall_ms);
  }
  const rewrite::RewriteStats& rw = result.personalized.rewrite;
  if (rw.changed() || result.space->constraint_pruned > 0) {
    out << StrFormat(
        "rewrite: %llu conjuncts dropped, %llu branches eliminated "
        "(%llu contradicted, %llu subsumed), %llu candidates pruned\n",
        static_cast<unsigned long long>(rw.conjuncts_dropped),
        static_cast<unsigned long long>(rw.branches_eliminated()),
        static_cast<unsigned long long>(rw.branches_contradicted),
        static_cast<unsigned long long>(rw.branches_subsumed),
        static_cast<unsigned long long>(result.space->constraint_pruned));
  }
  if (!execute && !result.personalized.pre_rewrite_sql.empty()) {
    out << "sql (before rewrite):\n"
        << result.personalized.pre_rewrite_sql << "\n";
  }
  out << "sql:\n" << result.final_sql << "\n";
  if (!execute) return Status::OK();

  exec::ExecStats stats;
  CQP_ASSIGN_OR_RETURN(exec::PersonalizedResultSet rows,
                       personalizer.Execute(result, &stats));
  size_t shown = 0;
  for (const exec::PersonalizedRow& row : rows.rows) {
    if (shown++ >= 20) {
      out << StrFormat("  ... (%zu more)\n", rows.rows.size() - 20);
      break;
    }
    out << StrFormat("  doi=%.3f  %s\n", row.doi, row.row.ToString().c_str());
  }
  out << StrFormat("(%zu rows, %llu blocks, simulated %.1f ms)\n",
                   rows.rows.size(),
                   static_cast<unsigned long long>(stats.blocks_read),
                   stats.SimulatedMillis(exec::CostModelParams()));
  return Status::OK();
}

}  // namespace cqp::shell
