#include "catalog/constraints.h"

#include <cctype>
#include <cstdlib>

#include "common/str_util.h"

namespace cqp::catalog {

namespace {

/// Constraint-text rendering of a value. Doubles use %.17g so the text form
/// round-trips exactly (Value::ToSqlLiteral's 6-decimal rendering does not).
std::string ValueText(const Value& v) {
  if (v.type() == ValueType::kDouble) return StrFormat("%.17g", v.AsDouble());
  return v.ToSqlLiteral();
}

/// Parses an int, double or 'string' literal token.
StatusOr<Value> ParseValueToken(std::string_view token) {
  if (token.empty()) return InvalidArgument("empty constraint literal");
  if (token.front() == '\'') {
    if (token.size() < 2 || token.back() != '\'') {
      return InvalidArgument("unterminated string literal: " +
                             std::string(token));
    }
    std::string out;
    for (size_t i = 1; i + 1 < token.size(); ++i) {
      if (token[i] == '\'') {
        if (i + 2 >= token.size() || token[i + 1] != '\'') {
          return InvalidArgument("bad quote escape in: " + std::string(token));
        }
        ++i;
      }
      out += token[i];
    }
    return Value(std::move(out));
  }
  std::string s(token);
  char* end = nullptr;
  if (s.find('.') != std::string::npos || s.find('e') != std::string::npos ||
      s.find('E') != std::string::npos) {
    double d = std::strtod(s.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return InvalidArgument("bad numeric literal: " + s);
    }
    return Value(d);
  }
  long long i = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return InvalidArgument("bad integer literal: " + s);
  }
  return Value(static_cast<int64_t>(i));
}

/// Splits "REL.attr" (both parts non-empty).
StatusOr<std::pair<std::string, std::string>> ParseColumn(
    std::string_view token) {
  size_t dot = token.find('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 == token.size()) {
    return InvalidArgument("expected REL.attr, got: " + std::string(token));
  }
  return std::make_pair(std::string(token.substr(0, dot)),
                        std::string(token.substr(dot + 1)));
}

StatusOr<CompareOp> ParseOp(std::string_view token) {
  if (token == "=") return CompareOp::kEq;
  if (token == "<>") return CompareOp::kNe;
  if (token == "<") return CompareOp::kLt;
  if (token == "<=") return CompareOp::kLe;
  if (token == ">") return CompareOp::kGt;
  if (token == ">=") return CompareOp::kGe;
  return InvalidArgument("bad comparison operator: " + std::string(token));
}

/// Splits a line into whitespace-separated tokens, keeping quoted strings
/// (with '' escapes) as single tokens and splitting off punctuation that the
/// grammar treats as separators is NOT needed — the serializer always emits
/// spaces around operators and after commas.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (line[i] == '\'') {
      ++i;
      while (i < line.size()) {
        if (line[i] == '\'') {
          if (i + 1 < line.size() && line[i + 1] == '\'') {
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        ++i;
      }
    } else {
      while (i < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
    }
    tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

Status ParseKeyLine(const std::string& rest, ConstraintSet* out) {
  // rest: "REL(a, b)"
  size_t open = rest.find('(');
  size_t close = rest.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return InvalidArgument("bad key constraint: key " + rest);
  }
  KeyConstraint key;
  key.relation = std::string(StripWhitespace(rest.substr(0, open)));
  for (const std::string& part :
       Split(rest.substr(open + 1, close - open - 1), ',')) {
    std::string attr(StripWhitespace(part));
    if (attr.empty()) return InvalidArgument("empty key attribute: " + rest);
    key.attributes.push_back(std::move(attr));
  }
  if (key.relation.empty() || key.attributes.empty()) {
    return InvalidArgument("bad key constraint: key " + rest);
  }
  out->AddKey(std::move(key));
  return Status::OK();
}

Status ParseDomainLine(const std::string& rest, ConstraintSet* out) {
  // rest: "REL.attr in [lo, hi]"
  std::vector<std::string> head = Tokenize(rest);
  if (head.size() < 2 || !EqualsIgnoreCase(head[1], "in")) {
    return InvalidArgument("bad domain constraint: domain " + rest);
  }
  size_t open = rest.find('[');
  size_t close = rest.rfind(']');
  size_t comma = rest.find(',', open == std::string::npos ? 0 : open);
  if (open == std::string::npos || close == std::string::npos ||
      comma == std::string::npos || !(open < comma && comma < close)) {
    return InvalidArgument("bad domain range: domain " + rest);
  }
  DomainConstraint domain;
  CQP_ASSIGN_OR_RETURN(auto column, ParseColumn(head[0]));
  domain.relation = column.first;
  domain.attribute = column.second;
  std::string lo(StripWhitespace(rest.substr(open + 1, comma - open - 1)));
  std::string hi(StripWhitespace(rest.substr(comma + 1, close - comma - 1)));
  if (lo != "*") {
    CQP_ASSIGN_OR_RETURN(Value v, ParseValueToken(lo));
    domain.min = std::move(v);
  }
  if (hi != "*") {
    CQP_ASSIGN_OR_RETURN(Value v, ParseValueToken(hi));
    domain.max = std::move(v);
  }
  if (!domain.min.has_value() && !domain.max.has_value()) {
    return InvalidArgument("unbounded domain constraint: domain " + rest);
  }
  out->AddDomain(std::move(domain));
  return Status::OK();
}

Status ParseImplyLine(const std::string& rest, ConstraintSet* out) {
  // rest: "REL.a = v => REL.b op w"
  std::vector<std::string> tokens = Tokenize(rest);
  if (tokens.size() != 7 || tokens[1] != "=" || tokens[3] != "=>") {
    return InvalidArgument("bad implication constraint: imply " + rest);
  }
  ImplicationConstraint imp;
  CQP_ASSIGN_OR_RETURN(auto lhs, ParseColumn(tokens[0]));
  CQP_ASSIGN_OR_RETURN(imp.if_value, ParseValueToken(tokens[2]));
  CQP_ASSIGN_OR_RETURN(auto rhs, ParseColumn(tokens[4]));
  CQP_ASSIGN_OR_RETURN(imp.then_op, ParseOp(tokens[5]));
  CQP_ASSIGN_OR_RETURN(imp.then_value, ParseValueToken(tokens[6]));
  if (!EqualsIgnoreCase(lhs.first, rhs.first)) {
    return InvalidArgument(
        "implication constraints must stay within one relation: imply " +
        rest);
  }
  imp.relation = lhs.first;
  imp.if_attribute = lhs.second;
  imp.then_attribute = rhs.second;
  out->AddImplication(std::move(imp));
  return Status::OK();
}

}  // namespace

std::string KeyConstraint::ToText() const {
  return "key " + relation + "(" + Join(attributes, ", ") + ")";
}

std::string DomainConstraint::ToText() const {
  std::string lo = min.has_value() ? ValueText(*min) : "*";
  std::string hi = max.has_value() ? ValueText(*max) : "*";
  return "domain " + relation + "." + attribute + " in [" + lo + ", " + hi +
         "]";
}

std::string ImplicationConstraint::ToText() const {
  return "imply " + relation + "." + if_attribute + " = " +
         ValueText(if_value) + " => " + relation + "." + then_attribute + " " +
         CompareOpSql(then_op) + " " + ValueText(then_value);
}

std::vector<const DomainConstraint*> ConstraintSet::DomainsFor(
    const std::string& relation, const std::string& attribute) const {
  std::vector<const DomainConstraint*> out;
  for (const DomainConstraint& d : domains_) {
    if (EqualsIgnoreCase(d.relation, relation) &&
        EqualsIgnoreCase(d.attribute, attribute)) {
      out.push_back(&d);
    }
  }
  return out;
}

std::vector<const ImplicationConstraint*> ConstraintSet::ImplicationsFor(
    const std::string& relation) const {
  std::vector<const ImplicationConstraint*> out;
  for (const ImplicationConstraint& i : implications_) {
    if (EqualsIgnoreCase(i.relation, relation)) out.push_back(&i);
  }
  return out;
}

std::string ConstraintSet::ToText() const {
  std::string out;
  for (const KeyConstraint& k : keys_) out += k.ToText() + "\n";
  for (const DomainConstraint& d : domains_) out += d.ToText() + "\n";
  for (const ImplicationConstraint& i : implications_) out += i.ToText() + "\n";
  return out;
}

StatusOr<ConstraintSet> ParseConstraintSet(const std::string& text) {
  ConstraintSet out;
  for (const std::string& raw : Split(text, '\n')) {
    std::string line(StripWhitespace(raw));
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.find(' ');
    if (space == std::string::npos) {
      return InvalidArgument("bad constraint line: " + line);
    }
    std::string kind = ToLower(line.substr(0, space));
    std::string rest(StripWhitespace(line.substr(space + 1)));
    if (kind == "key") {
      CQP_RETURN_IF_ERROR(ParseKeyLine(rest, &out));
    } else if (kind == "domain") {
      CQP_RETURN_IF_ERROR(ParseDomainLine(rest, &out));
    } else if (kind == "imply") {
      CQP_RETURN_IF_ERROR(ParseImplyLine(rest, &out));
    } else {
      return InvalidArgument("unknown constraint kind: " + line);
    }
  }
  return out;
}

}  // namespace cqp::catalog
