#ifndef CQP_CATALOG_COMPARE_H_
#define CQP_CATALOG_COMPARE_H_

#include <string>

#include "catalog/value.h"

namespace cqp::catalog {

/// Comparison operators usable in selection and join conditions.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// SQL spelling of `op` ("=", "<>", "<", "<=", ">", ">=").
const char* CompareOpSql(CompareOp op);

/// Evaluates `lhs op rhs`. Values must have the same type.
bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs);

}  // namespace cqp::catalog

#endif  // CQP_CATALOG_COMPARE_H_
