#ifndef CQP_CATALOG_SCHEMA_H_
#define CQP_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "catalog/value.h"
#include "common/status.h"

namespace cqp::catalog {

/// A column definition.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kInt;
};

/// A relation (table) definition: name plus ordered attribute list.
class RelationDef {
 public:
  RelationDef() = default;
  RelationDef(std::string name, std::vector<AttributeDef> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  /// Position of `attribute` within the relation, or NotFound.
  StatusOr<int> AttributeIndex(const std::string& attribute) const;
  bool HasAttribute(const std::string& attribute) const;
  const AttributeDef& attribute(size_t i) const { return attributes_[i]; }

  /// "MOVIE(mid INT, title STRING, ...)"
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<AttributeDef> attributes_;
};

}  // namespace cqp::catalog

#endif  // CQP_CATALOG_SCHEMA_H_
