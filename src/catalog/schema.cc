#include "catalog/schema.h"

#include "common/str_util.h"

namespace cqp::catalog {

StatusOr<int> RelationDef::AttributeIndex(const std::string& attribute) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (EqualsIgnoreCase(attributes_[i].name, attribute)) {
      return static_cast<int>(i);
    }
  }
  return NotFound("attribute " + attribute + " in relation " + name_);
}

bool RelationDef::HasAttribute(const std::string& attribute) const {
  return AttributeIndex(attribute).ok();
}

std::string RelationDef::ToString() const {
  std::vector<std::string> cols;
  cols.reserve(attributes_.size());
  for (const AttributeDef& a : attributes_) {
    cols.push_back(a.name + " " + ValueTypeName(a.type));
  }
  return name_ + "(" + Join(cols, ", ") + ")";
}

}  // namespace cqp::catalog
