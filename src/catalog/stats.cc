#include "catalog/stats.h"

#include <algorithm>

#include "common/logging.h"

namespace cqp::catalog {

AttributeStats::AttributeStats(uint64_t row_count, uint64_t ndv,
                               std::optional<double> min_numeric,
                               std::optional<double> max_numeric,
                               std::vector<McvEntry> mcvs)
    : row_count_(row_count),
      ndv_(ndv),
      min_numeric_(min_numeric),
      max_numeric_(max_numeric),
      mcvs_(std::move(mcvs)) {
  mcv_total_ = 0;
  for (const McvEntry& e : mcvs_) mcv_total_ += e.count;
  CQP_CHECK_LE(mcv_total_, row_count_);
  CQP_CHECK_LE(mcvs_.size(), ndv_);
}

double AttributeStats::EqualitySelectivity(const Value& v) const {
  if (row_count_ == 0 || ndv_ == 0) return 0.0;
  for (const McvEntry& e : mcvs_) {
    if (e.value == v) {
      return static_cast<double>(e.count) / static_cast<double>(row_count_);
    }
  }
  // Uniform tail: remaining mass spread over the non-MCV distinct values.
  uint64_t tail_ndv = ndv_ - mcvs_.size();
  if (tail_ndv == 0) {
    // All values are in the MCV list, so an unseen literal matches nothing.
    return 0.0;
  }
  double tail_mass = static_cast<double>(row_count_ - mcv_total_) /
                     static_cast<double>(row_count_);
  return tail_mass / static_cast<double>(tail_ndv);
}

double AttributeStats::RangeSelectivity(CompareOp op, const Value& v) const {
  if (row_count_ == 0) return 0.0;
  if (!min_numeric_ || !max_numeric_ || v.type() == ValueType::kString) {
    // Non-numeric attribute: fall back to the classic 1/3 magic fraction.
    return 1.0 / 3.0;
  }
  double lo = *min_numeric_;
  double hi = *max_numeric_;
  double x = v.AsNumeric();
  double width = hi - lo;
  double frac_below;  // estimated fraction of rows with value < x
  if (width <= 0.0) {
    frac_below = x > lo ? 1.0 : 0.0;
  } else {
    frac_below = std::clamp((x - lo) / width, 0.0, 1.0);
  }
  double eq = EqualitySelectivity(v);
  switch (op) {
    case CompareOp::kLt:
      return frac_below;
    case CompareOp::kLe:
      return std::clamp(frac_below + eq, 0.0, 1.0);
    case CompareOp::kGt:
      return std::clamp(1.0 - frac_below - eq, 0.0, 1.0);
    case CompareOp::kGe:
      return std::clamp(1.0 - frac_below, 0.0, 1.0);
    default:
      break;
  }
  return 1.0 / 3.0;
}

double AttributeStats::Selectivity(CompareOp op, const Value& v) const {
  switch (op) {
    case CompareOp::kEq:
      return EqualitySelectivity(v);
    case CompareOp::kNe:
      return std::clamp(1.0 - EqualitySelectivity(v), 0.0, 1.0);
    default:
      return RangeSelectivity(op, v);
  }
}

}  // namespace cqp::catalog
