#ifndef CQP_CATALOG_VALUE_H_
#define CQP_CATALOG_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace cqp::catalog {

/// Column types supported by the engine.
enum class ValueType {
  kInt,     ///< 64-bit signed integer
  kDouble,  ///< IEEE-754 binary64
  kString,  ///< variable-length byte string
};

const char* ValueTypeName(ValueType type);

/// A typed scalar cell. Values are totally ordered within a type; comparing
/// across types is a programming error (checked).
class Value {
 public:
  /// Default-constructs the integer 0 (used for resizable tuple buffers).
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  /// Convenience for string literals.
  explicit Value(const char* v) : rep_(std::string(v)) {}

  ValueType type() const;

  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric view: ints widen to double. Checked for strings.
  double AsNumeric() const;

  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return rep_ != other.rep_; }
  /// Ordering within the same type only (checked).
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const;
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return other <= *this; }

  size_t Hash() const;

  /// Approximate in-memory footprint, used for the block layout model.
  size_t ByteSize() const;

  /// SQL-literal rendering: 42, 4.5, 'text' (single quotes doubled).
  std::string ToSqlLiteral() const;
  /// Plain rendering without quotes, for table output.
  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace cqp::catalog

#endif  // CQP_CATALOG_VALUE_H_
