#ifndef CQP_CATALOG_STATS_H_
#define CQP_CATALOG_STATS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "catalog/compare.h"
#include "catalog/value.h"

namespace cqp::catalog {

/// A most-common-value histogram entry.
struct McvEntry {
  Value value;
  uint64_t count = 0;
};

/// Per-attribute statistics used by the CQP parameter-estimation module.
///
/// CQP deliberately uses a much less detailed cost/cardinality model than a
/// full query optimizer (paper §2, §4.3): equality selectivity comes from an
/// MCV list with a uniform tail, range selectivity from min/max
/// interpolation. Statistics are produced by storage::Database::Analyze().
class AttributeStats {
 public:
  AttributeStats() = default;
  AttributeStats(uint64_t row_count, uint64_t ndv,
                 std::optional<double> min_numeric,
                 std::optional<double> max_numeric,
                 std::vector<McvEntry> mcvs);

  uint64_t row_count() const { return row_count_; }
  uint64_t ndv() const { return ndv_; }
  std::optional<double> min_numeric() const { return min_numeric_; }
  std::optional<double> max_numeric() const { return max_numeric_; }
  const std::vector<McvEntry>& mcvs() const { return mcvs_; }

  /// Estimated fraction of rows with attribute == v.
  double EqualitySelectivity(const Value& v) const;

  /// Estimated fraction of rows satisfying `attribute op v`.
  double Selectivity(CompareOp op, const Value& v) const;

 private:
  double RangeSelectivity(CompareOp op, const Value& v) const;

  uint64_t row_count_ = 0;
  uint64_t ndv_ = 0;
  std::optional<double> min_numeric_;
  std::optional<double> max_numeric_;
  std::vector<McvEntry> mcvs_;  // sorted by count, descending
  uint64_t mcv_total_ = 0;
};

/// Per-relation statistics: cardinality, block count (8 KiB block model) and
/// one AttributeStats per column (parallel to the relation's attributes).
struct RelationStats {
  uint64_t row_count = 0;
  uint64_t blocks = 0;
  std::vector<AttributeStats> attributes;
};

}  // namespace cqp::catalog

#endif  // CQP_CATALOG_STATS_H_
