#include "catalog/value.h"

#include <functional>

#include "common/logging.h"

namespace cqp::catalog {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return ValueType::kInt;
    case 1:
      return ValueType::kDouble;
    default:
      return ValueType::kString;
  }
}

int64_t Value::AsInt() const {
  CQP_CHECK(type() == ValueType::kInt) << "not an int";
  return std::get<int64_t>(rep_);
}

double Value::AsDouble() const {
  CQP_CHECK(type() == ValueType::kDouble) << "not a double";
  return std::get<double>(rep_);
}

const std::string& Value::AsString() const {
  CQP_CHECK(type() == ValueType::kString) << "not a string";
  return std::get<std::string>(rep_);
}

double Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(std::get<int64_t>(rep_));
    case ValueType::kDouble:
      return std::get<double>(rep_);
    case ValueType::kString:
      CQP_CHECK(false) << "string value is not numeric";
  }
  return 0.0;
}

bool Value::operator<(const Value& other) const {
  CQP_CHECK(type() == other.type())
      << "comparing " << ValueTypeName(type()) << " with "
      << ValueTypeName(other.type());
  return rep_ < other.rep_;
}

bool Value::operator<=(const Value& other) const {
  CQP_CHECK(type() == other.type());
  return rep_ <= other.rep_;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kInt:
      return std::hash<int64_t>()(std::get<int64_t>(rep_)) * 3 + 1;
    case ValueType::kDouble:
      return std::hash<double>()(std::get<double>(rep_)) * 3 + 2;
    case ValueType::kString:
      return std::hash<std::string>()(std::get<std::string>(rep_)) * 3;
  }
  return 0;
}

size_t Value::ByteSize() const {
  switch (type()) {
    case ValueType::kInt:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return 4 + std::get<std::string>(rep_).size();
  }
  return 8;
}

std::string Value::ToSqlLiteral() const {
  if (type() == ValueType::kString) {
    std::string out = "'";
    for (char c : std::get<std::string>(rep_)) {
      out += c;
      if (c == '\'') out += '\'';  // SQL escaping: double the quote
    }
    out += "'";
    return out;
  }
  return ToString();
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(rep_));
    case ValueType::kDouble: {
      std::string s = std::to_string(std::get<double>(rep_));
      return s;
    }
    case ValueType::kString:
      return std::get<std::string>(rep_);
  }
  return "";
}

}  // namespace cqp::catalog
