#include "catalog/compare.h"

namespace cqp::catalog {

const char* CompareOpSql(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

}  // namespace cqp::catalog
