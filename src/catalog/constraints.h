#ifndef CQP_CATALOG_CONSTRAINTS_H_
#define CQP_CATALOG_CONSTRAINTS_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/compare.h"
#include "catalog/value.h"
#include "common/status.h"

namespace cqp::catalog {

/// A (possibly composite) key: no two rows of `relation` agree on all of
/// `attributes`. Keys are recorded for the catalog's integrity model and
/// validated by storage::CheckConstraints; the rewrite passes only consume
/// domains and implications today.
struct KeyConstraint {
  std::string relation;
  std::vector<std::string> attributes;

  /// "key MOVIE(mid)"
  std::string ToText() const;
};

/// A domain (range) constraint: every row of `relation` has
/// min <= attribute <= max (each bound optional, inclusive). String domains
/// use lexicographic order, matching Value::operator<.
struct DomainConstraint {
  std::string relation;
  std::string attribute;
  std::optional<Value> min;
  std::optional<Value> max;

  /// "domain MOVIE.year in [1930, 2005]" ("[1930, *]" for a missing bound).
  std::string ToText() const;
};

/// An implication constraint within one relation:
///   relation.if_attribute = if_value  ⇒  relation.then_attribute op value
/// e.g. genre='horror' ⇒ rating>='R'. The antecedent is an equality (the
/// form mined from categorical data); the consequent is any comparison.
struct ImplicationConstraint {
  std::string relation;
  std::string if_attribute;
  Value if_value;
  std::string then_attribute;
  CompareOp then_op = CompareOp::kEq;
  Value then_value;

  /// "imply GENRE.genre = 'horror' => GENRE.rating >= 'R'"
  std::string ToText() const;
};

/// The declarative integrity constraints of a database: keys, domain ranges
/// and value implications. Immutable once attached to a Database (swap the
/// whole set via Database::SetConstraints, which bumps the constraint
/// revision that keys plan-cache entries).
class ConstraintSet {
 public:
  void AddKey(KeyConstraint key) { keys_.push_back(std::move(key)); }
  void AddDomain(DomainConstraint domain) {
    domains_.push_back(std::move(domain));
  }
  void AddImplication(ImplicationConstraint imp) {
    implications_.push_back(std::move(imp));
  }

  const std::vector<KeyConstraint>& keys() const { return keys_; }
  const std::vector<DomainConstraint>& domains() const { return domains_; }
  const std::vector<ImplicationConstraint>& implications() const {
    return implications_;
  }

  bool empty() const {
    return keys_.empty() && domains_.empty() && implications_.empty();
  }
  size_t size() const {
    return keys_.size() + domains_.size() + implications_.size();
  }

  /// Domain constraints on relation.attribute (names case-insensitive).
  std::vector<const DomainConstraint*> DomainsFor(
      const std::string& relation, const std::string& attribute) const;

  /// Implication constraints anchored at `relation`.
  std::vector<const ImplicationConstraint*> ImplicationsFor(
      const std::string& relation) const;

  /// One constraint per line, in the ParseConstraintSet grammar. Round
  /// trips: ParseConstraintSet(set.ToText()) reproduces the set.
  std::string ToText() const;

 private:
  std::vector<KeyConstraint> keys_;
  std::vector<DomainConstraint> domains_;
  std::vector<ImplicationConstraint> implications_;
};

/// Parses the line-oriented constraint language:
///
///   key REL(attr[, attr...])
///   domain REL.attr in [lo, hi]         # either bound may be *
///   imply REL.a = v => REL.b op w       # v/w: int, double or 'string'
///
/// Blank lines and lines starting with '#' are ignored. Both relations of
/// an implication must coincide.
StatusOr<ConstraintSet> ParseConstraintSet(const std::string& text);

}  // namespace cqp::catalog

#endif  // CQP_CATALOG_CONSTRAINTS_H_
