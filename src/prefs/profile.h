#ifndef CQP_PREFS_PROFILE_H_
#define CQP_PREFS_PROFILE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "prefs/preference.h"
#include "storage/database.h"

namespace cqp::prefs {

/// A user profile: the atomic preferences (selection and join edges of the
/// user's personalization graph) with their degrees of interest.
class Profile {
 public:
  Profile() = default;

  /// Adds an atomic selection preference. Rejects invalid dois and
  /// duplicate conditions (use ReplaceDoi to update).
  Status AddSelection(AtomicSelection pref);
  /// Adds an atomic join preference.
  Status AddJoin(AtomicJoin pref);

  const std::vector<AtomicSelection>& selections() const {
    return selections_;
  }
  const std::vector<AtomicJoin>& joins() const { return joins_; }

  size_t size() const { return selections_.size() + joins_.size(); }
  bool empty() const { return selections_.empty() && joins_.empty(); }

  /// Checks every preference against `db`'s schema: relations and
  /// attributes must exist, selection literal types must match the column.
  Status ValidateAgainst(const storage::Database& db) const;

  /// Serializes to the line format accepted by Parse (stable order).
  std::string ToText() const;

  /// Parses the textual profile format:
  ///
  ///   # comment / blank lines ignored
  ///   doi(GENRE.genre = 'musical') = 0.5
  ///   doi(MOVIE.mid = GENRE.mid) = 0.9
  ///
  /// A line is a join preference iff the right-hand side of the inner
  /// condition is a column reference.
  static StatusOr<Profile> Parse(const std::string& text);

 private:
  std::vector<AtomicSelection> selections_;
  std::vector<AtomicJoin> joins_;
};

}  // namespace cqp::prefs

#endif  // CQP_PREFS_PROFILE_H_
