#ifndef CQP_PREFS_PREFERENCE_H_
#define CQP_PREFS_PREFERENCE_H_

#include <string>
#include <vector>

#include "catalog/compare.h"
#include "catalog/value.h"
#include "prefs/doi.h"

namespace cqp::prefs {

/// An atomic selection preference: interest in `relation.attribute op value`
/// (a selection edge of the personalization graph).
struct AtomicSelection {
  std::string relation;
  std::string attribute;
  catalog::CompareOp op = catalog::CompareOp::kEq;
  catalog::Value value;
  double doi = 0.0;

  /// "GENRE.genre = 'musical'".
  std::string ConditionString() const;
  bool SameCondition(const AtomicSelection& other) const;
};

/// An atomic join preference: a *directed* join edge expressing how
/// preferences on `to_relation` influence `from_relation`.
struct AtomicJoin {
  std::string from_relation;
  std::string from_attribute;
  std::string to_relation;
  std::string to_attribute;
  double doi = 0.0;

  /// "MOVIE.did = DIRECTOR.did".
  std::string ConditionString() const;
  bool SameCondition(const AtomicJoin& other) const;
};

/// An implicit (or atomic, when `joins` is empty) selection preference: an
/// acyclic directed path of join edges ending in a selection edge.
///
/// The anchor relation — joins.front().from_relation, or selection.relation
/// when there are no joins — must appear in the query being personalized for
/// the preference to be "related to Q" (§4.4).
struct ImplicitPreference {
  std::vector<AtomicJoin> joins;
  AtomicSelection selection;
  /// Composed doi (f⊗ over the constituent dois, Formula 1).
  double doi = 0.0;

  /// Relation the path is attached to.
  const std::string& AnchorRelation() const;

  /// Number of atomic preferences on the path (joins + 1).
  size_t Length() const { return joins.size() + 1; }

  /// All relations on the path including the anchor, in path order.
  std::vector<std::string> PathRelations() const;

  /// True if extending with `join` keeps the path acyclic and connected
  /// (join must leave the current tail relation and reach a new relation).
  bool CanExtendWith(const AtomicJoin& join) const;

  /// Condition string "j1 and j2 and sel" identifying the preference.
  std::string ConditionString() const;

  /// Recomputes `doi` from the constituent dois under `mode`.
  double ComputeDoi(PathComposition mode) const;
};

}  // namespace cqp::prefs

#endif  // CQP_PREFS_PREFERENCE_H_
