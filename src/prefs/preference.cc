#include "prefs/preference.h"

#include "common/logging.h"
#include "common/str_util.h"

namespace cqp::prefs {

std::string AtomicSelection::ConditionString() const {
  return relation + "." + attribute + " " + catalog::CompareOpSql(op) + " " +
         value.ToSqlLiteral();
}

bool AtomicSelection::SameCondition(const AtomicSelection& other) const {
  return EqualsIgnoreCase(relation, other.relation) &&
         EqualsIgnoreCase(attribute, other.attribute) && op == other.op &&
         value == other.value;
}

std::string AtomicJoin::ConditionString() const {
  return from_relation + "." + from_attribute + " = " + to_relation + "." +
         to_attribute;
}

bool AtomicJoin::SameCondition(const AtomicJoin& other) const {
  return EqualsIgnoreCase(from_relation, other.from_relation) &&
         EqualsIgnoreCase(from_attribute, other.from_attribute) &&
         EqualsIgnoreCase(to_relation, other.to_relation) &&
         EqualsIgnoreCase(to_attribute, other.to_attribute);
}

const std::string& ImplicitPreference::AnchorRelation() const {
  if (!joins.empty()) return joins.front().from_relation;
  return selection.relation;
}

std::vector<std::string> ImplicitPreference::PathRelations() const {
  std::vector<std::string> rels;
  rels.reserve(joins.size() + 1);
  if (joins.empty()) {
    rels.push_back(selection.relation);
    return rels;
  }
  rels.push_back(joins.front().from_relation);
  for (const AtomicJoin& j : joins) rels.push_back(j.to_relation);
  return rels;
}

bool ImplicitPreference::CanExtendWith(const AtomicJoin& join) const {
  // The extension must leave the current tail relation...
  const std::string& tail =
      joins.empty() ? selection.relation : joins.back().to_relation;
  if (!EqualsIgnoreCase(join.from_relation, tail)) return false;
  // ... and must not revisit a relation already on the path (acyclicity).
  for (const std::string& rel : PathRelations()) {
    if (EqualsIgnoreCase(rel, join.to_relation)) return false;
  }
  return true;
}

std::string ImplicitPreference::ConditionString() const {
  std::vector<std::string> parts;
  parts.reserve(joins.size() + 1);
  for (const AtomicJoin& j : joins) parts.push_back(j.ConditionString());
  parts.push_back(selection.ConditionString());
  return Join(parts, " and ");
}

double ImplicitPreference::ComputeDoi(PathComposition mode) const {
  std::vector<double> dois;
  dois.reserve(joins.size() + 1);
  for (const AtomicJoin& j : joins) dois.push_back(j.doi);
  dois.push_back(selection.doi);
  return ComposePathDoi(dois, mode);
}

}  // namespace cqp::prefs
