#include "prefs/profile.h"

#include "common/str_util.h"
#include "sql/lexer.h"

namespace cqp::prefs {

Status Profile::AddSelection(AtomicSelection pref) {
  if (!IsValidDoi(pref.doi)) {
    return InvalidArgument("doi out of [0,1] for " + pref.ConditionString());
  }
  for (const AtomicSelection& existing : selections_) {
    if (existing.SameCondition(pref)) {
      return AlreadyExists("preference " + pref.ConditionString());
    }
  }
  selections_.push_back(std::move(pref));
  return Status::OK();
}

Status Profile::AddJoin(AtomicJoin pref) {
  if (!IsValidDoi(pref.doi)) {
    return InvalidArgument("doi out of [0,1] for " + pref.ConditionString());
  }
  if (EqualsIgnoreCase(pref.from_relation, pref.to_relation)) {
    return InvalidArgument("self-join preference not supported: " +
                           pref.ConditionString());
  }
  for (const AtomicJoin& existing : joins_) {
    if (existing.SameCondition(pref)) {
      return AlreadyExists("preference " + pref.ConditionString());
    }
  }
  joins_.push_back(std::move(pref));
  return Status::OK();
}

Status Profile::ValidateAgainst(const storage::Database& db) const {
  for (const AtomicSelection& p : selections_) {
    CQP_ASSIGN_OR_RETURN(const storage::Table* table,
                         db.GetTable(p.relation));
    CQP_ASSIGN_OR_RETURN(int col,
                         table->schema().AttributeIndex(p.attribute));
    if (table->schema().attribute(static_cast<size_t>(col)).type !=
        p.value.type()) {
      return InvalidArgument("type mismatch in " + p.ConditionString());
    }
  }
  for (const AtomicJoin& p : joins_) {
    CQP_ASSIGN_OR_RETURN(const storage::Table* from,
                         db.GetTable(p.from_relation));
    CQP_ASSIGN_OR_RETURN(int from_col,
                         from->schema().AttributeIndex(p.from_attribute));
    CQP_ASSIGN_OR_RETURN(const storage::Table* to, db.GetTable(p.to_relation));
    CQP_ASSIGN_OR_RETURN(int to_col,
                         to->schema().AttributeIndex(p.to_attribute));
    if (from->schema().attribute(static_cast<size_t>(from_col)).type !=
        to->schema().attribute(static_cast<size_t>(to_col)).type) {
      return InvalidArgument("type mismatch in " + p.ConditionString());
    }
  }
  return Status::OK();
}

std::string Profile::ToText() const {
  std::string out;
  for (const AtomicJoin& p : joins_) {
    out += StrFormat("doi(%s) = %.6f\n", p.ConditionString().c_str(), p.doi);
  }
  for (const AtomicSelection& p : selections_) {
    out += StrFormat("doi(%s) = %.6f\n", p.ConditionString().c_str(), p.doi);
  }
  return out;
}

namespace {

/// Parses one "doi(<condition>) = <value>" line.
Status ParseLine(const std::string& line, Profile* profile) {
  CQP_ASSIGN_OR_RETURN(std::vector<sql::Token> tokens, sql::Lex(line));
  size_t i = 0;
  auto expect_symbol = [&](const char* sym) -> Status {
    if (!tokens[i].IsSymbol(sym)) {
      return InvalidArgument(StrFormat("expected '%s' in: %s", sym,
                                       line.c_str()));
    }
    ++i;
    return Status::OK();
  };
  if (tokens[i].kind != sql::TokenKind::kIdentifier ||
      !EqualsIgnoreCase(tokens[i].text, "doi")) {
    return InvalidArgument("expected doi(...) in: " + line);
  }
  ++i;
  CQP_RETURN_IF_ERROR(expect_symbol("("));

  // lhs column: rel.attr
  auto parse_column = [&](std::string* rel, std::string* attr) -> Status {
    if (tokens[i].kind != sql::TokenKind::kIdentifier) {
      return InvalidArgument("expected relation name in: " + line);
    }
    *rel = tokens[i++].text;
    CQP_RETURN_IF_ERROR(expect_symbol("."));
    if (tokens[i].kind != sql::TokenKind::kIdentifier) {
      return InvalidArgument("expected attribute name in: " + line);
    }
    *attr = tokens[i++].text;
    return Status::OK();
  };

  std::string rel, attr;
  CQP_RETURN_IF_ERROR(parse_column(&rel, &attr));

  catalog::CompareOp op;
  {
    const sql::Token& t = tokens[i];
    if (t.IsSymbol("=")) {
      op = catalog::CompareOp::kEq;
    } else if (t.IsSymbol("<>")) {
      op = catalog::CompareOp::kNe;
    } else if (t.IsSymbol("<")) {
      op = catalog::CompareOp::kLt;
    } else if (t.IsSymbol("<=")) {
      op = catalog::CompareOp::kLe;
    } else if (t.IsSymbol(">")) {
      op = catalog::CompareOp::kGt;
    } else if (t.IsSymbol(">=")) {
      op = catalog::CompareOp::kGe;
    } else {
      return InvalidArgument("expected comparison operator in: " + line);
    }
    ++i;
  }

  // rhs: literal (selection) or column (join).
  bool is_join = tokens[i].kind == sql::TokenKind::kIdentifier;
  AtomicSelection sel;
  AtomicJoin join;
  if (is_join) {
    if (op != catalog::CompareOp::kEq) {
      return InvalidArgument("join preferences must use '=' in: " + line);
    }
    join.from_relation = rel;
    join.from_attribute = attr;
    CQP_RETURN_IF_ERROR(parse_column(&join.to_relation, &join.to_attribute));
  } else {
    sel.relation = rel;
    sel.attribute = attr;
    sel.op = op;
    switch (tokens[i].kind) {
      case sql::TokenKind::kInt:
        sel.value = catalog::Value(tokens[i].int_value);
        break;
      case sql::TokenKind::kDouble:
        sel.value = catalog::Value(tokens[i].double_value);
        break;
      case sql::TokenKind::kString:
        sel.value = catalog::Value(tokens[i].text);
        break;
      default:
        return InvalidArgument("expected literal in: " + line);
    }
    ++i;
  }

  CQP_RETURN_IF_ERROR(expect_symbol(")"));
  CQP_RETURN_IF_ERROR(expect_symbol("="));

  double doi;
  if (tokens[i].kind == sql::TokenKind::kDouble) {
    doi = tokens[i].double_value;
  } else if (tokens[i].kind == sql::TokenKind::kInt) {
    doi = static_cast<double>(tokens[i].int_value);
  } else {
    return InvalidArgument("expected doi value in: " + line);
  }
  ++i;
  if (tokens[i].kind != sql::TokenKind::kEnd) {
    return InvalidArgument("trailing input in: " + line);
  }

  if (is_join) {
    join.doi = doi;
    return profile->AddJoin(std::move(join));
  }
  sel.doi = doi;
  return profile->AddSelection(std::move(sel));
}

}  // namespace

StatusOr<Profile> Profile::Parse(const std::string& text) {
  Profile profile;
  for (const std::string& raw : Split(text, '\n')) {
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line.front() == '#') continue;
    CQP_RETURN_IF_ERROR(ParseLine(std::string(line), &profile));
  }
  return profile;
}

}  // namespace cqp::prefs
