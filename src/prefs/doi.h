#ifndef CQP_PREFS_DOI_H_
#define CQP_PREFS_DOI_H_

#include <vector>

namespace cqp::prefs {

/// Degree-of-interest composition along a personalization-graph path
/// (Formula 1/9). Both options satisfy the model requirement (Formula 2)
/// that the composed doi never exceeds the minimum constituent doi.
enum class PathComposition {
  kProduct,  ///< doi(p) = Π doi(p_i) — the paper's choice (Formula 9)
  kMin,      ///< doi(p) = min doi(p_i) — extension/ablation
};

/// Degree-of-interest combination for a conjunction of (non-adjacent)
/// preferences (Formula 3/10). Both options are monotone non-decreasing
/// under set inclusion (Formula 4), which the CQP partial orders rely on.
enum class ConjunctionModel {
  kNoisyOr,    ///< doi(Px) = 1 - Π(1 - doi(p_i)) — the paper's choice
  kSumCapped,  ///< doi(Px) = min(1, Σ doi(p_i)) — extension/ablation
};

/// True iff `d` is a valid degree of interest (in [0, 1]).
bool IsValidDoi(double d);

/// Composes the dois of adjacent atomic preferences along a path.
double ComposePathDoi(const std::vector<double>& dois, PathComposition mode);

/// Combines the dois of a set of preferences satisfied together.
double CombineConjunctionDoi(const std::vector<double>& dois,
                             ConjunctionModel model);

}  // namespace cqp::prefs

#endif  // CQP_PREFS_DOI_H_
