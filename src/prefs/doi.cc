#include "prefs/doi.h"

#include <algorithm>

#include "common/logging.h"

namespace cqp::prefs {

bool IsValidDoi(double d) { return d >= 0.0 && d <= 1.0; }

double ComposePathDoi(const std::vector<double>& dois, PathComposition mode) {
  CQP_CHECK(!dois.empty());
  double out = 1.0;
  switch (mode) {
    case PathComposition::kProduct:
      for (double d : dois) {
        CQP_CHECK(IsValidDoi(d));
        out *= d;
      }
      return out;
    case PathComposition::kMin:
      out = dois.front();
      for (double d : dois) {
        CQP_CHECK(IsValidDoi(d));
        out = std::min(out, d);
      }
      return out;
  }
  return out;
}

double CombineConjunctionDoi(const std::vector<double>& dois,
                             ConjunctionModel model) {
  switch (model) {
    case ConjunctionModel::kNoisyOr: {
      double miss = 1.0;
      for (double d : dois) {
        CQP_CHECK(IsValidDoi(d));
        miss *= 1.0 - d;
      }
      return 1.0 - miss;
    }
    case ConjunctionModel::kSumCapped: {
      double sum = 0.0;
      for (double d : dois) {
        CQP_CHECK(IsValidDoi(d));
        sum += d;
      }
      return std::min(1.0, sum);
    }
  }
  return 0.0;
}

}  // namespace cqp::prefs
