#include "prefs/graph.h"

#include <set>

#include "common/str_util.h"

namespace cqp::prefs {

namespace {
const std::vector<const AtomicSelection*> kNoSelections;
const std::vector<const AtomicJoin*> kNoJoins;
}  // namespace

StatusOr<PersonalizationGraph> PersonalizationGraph::Build(
    Profile profile, const storage::Database& db) {
  CQP_RETURN_IF_ERROR(profile.ValidateAgainst(db));
  PersonalizationGraph g;
  g.profile_ = std::move(profile);
  for (const AtomicSelection& p : g.profile_.selections()) {
    g.selections_by_rel_[ToUpper(p.relation)].push_back(&p);
  }
  for (const AtomicJoin& p : g.profile_.joins()) {
    g.joins_by_rel_[ToUpper(p.from_relation)].push_back(&p);
  }
  return g;
}

const std::vector<const AtomicSelection*>& PersonalizationGraph::SelectionsFrom(
    const std::string& relation) const {
  auto it = selections_by_rel_.find(ToUpper(relation));
  if (it == selections_by_rel_.end()) return kNoSelections;
  return it->second;
}

const std::vector<const AtomicJoin*>& PersonalizationGraph::JoinsFrom(
    const std::string& relation) const {
  auto it = joins_by_rel_.find(ToUpper(relation));
  if (it == joins_by_rel_.end()) return kNoJoins;
  return it->second;
}

std::vector<std::string> PersonalizationGraph::Relations() const {
  std::set<std::string> rels;
  for (const AtomicSelection& p : profile_.selections()) {
    rels.insert(ToUpper(p.relation));
  }
  for (const AtomicJoin& p : profile_.joins()) {
    rels.insert(ToUpper(p.from_relation));
    rels.insert(ToUpper(p.to_relation));
  }
  return std::vector<std::string>(rels.begin(), rels.end());
}

GraphCounts PersonalizationGraph::Counts() const {
  GraphCounts c;
  std::set<std::string> rels;
  std::set<std::string> attrs;
  std::set<std::string> values;
  for (const AtomicSelection& p : profile_.selections()) {
    rels.insert(ToUpper(p.relation));
    attrs.insert(ToUpper(p.relation + "." + p.attribute));
    values.insert(ToUpper(p.relation + "." + p.attribute) + "=" +
                  p.value.ToSqlLiteral());
    ++c.selection_edges;
  }
  for (const AtomicJoin& p : profile_.joins()) {
    rels.insert(ToUpper(p.from_relation));
    rels.insert(ToUpper(p.to_relation));
    attrs.insert(ToUpper(p.from_relation + "." + p.from_attribute));
    attrs.insert(ToUpper(p.to_relation + "." + p.to_attribute));
    ++c.join_edges;
  }
  c.relation_nodes = rels.size();
  c.attribute_nodes = attrs.size();
  c.value_nodes = values.size();
  return c;
}

size_t PersonalizationGraph::ApproxMemoryBytes() const {
  // Strings below SSO size still live inline in their owner; counting
  // size() for them over-charges slightly, which errs on the safe side
  // for a residency budget.
  auto str = [](const std::string& s) { return s.size(); };
  size_t bytes = sizeof(*this);
  for (const AtomicSelection& p : profile_.selections()) {
    bytes += sizeof(AtomicSelection) + str(p.relation) + str(p.attribute) +
             p.value.ByteSize();
  }
  for (const AtomicJoin& p : profile_.joins()) {
    bytes += sizeof(AtomicJoin) + str(p.from_relation) +
             str(p.from_attribute) + str(p.to_relation) + str(p.to_attribute);
  }
  // Adjacency maps: node + key string + pointer vector per relation bucket.
  constexpr size_t kMapNodeOverhead = 48;  // typical red-black tree node
  for (const auto& [rel, edges] : selections_by_rel_) {
    bytes += kMapNodeOverhead + str(rel) + edges.capacity() * sizeof(void*);
  }
  for (const auto& [rel, edges] : joins_by_rel_) {
    bytes += kMapNodeOverhead + str(rel) + edges.capacity() * sizeof(void*);
  }
  return bytes;
}

}  // namespace cqp::prefs
