#include "prefs/graph.h"

#include <set>

#include "common/str_util.h"

namespace cqp::prefs {

namespace {
const std::vector<const AtomicSelection*> kNoSelections;
const std::vector<const AtomicJoin*> kNoJoins;
}  // namespace

StatusOr<PersonalizationGraph> PersonalizationGraph::Build(
    Profile profile, const storage::Database& db) {
  CQP_RETURN_IF_ERROR(profile.ValidateAgainst(db));
  PersonalizationGraph g;
  g.profile_ = std::move(profile);
  for (const AtomicSelection& p : g.profile_.selections()) {
    g.selections_by_rel_[ToUpper(p.relation)].push_back(&p);
  }
  for (const AtomicJoin& p : g.profile_.joins()) {
    g.joins_by_rel_[ToUpper(p.from_relation)].push_back(&p);
  }
  return g;
}

const std::vector<const AtomicSelection*>& PersonalizationGraph::SelectionsFrom(
    const std::string& relation) const {
  auto it = selections_by_rel_.find(ToUpper(relation));
  if (it == selections_by_rel_.end()) return kNoSelections;
  return it->second;
}

const std::vector<const AtomicJoin*>& PersonalizationGraph::JoinsFrom(
    const std::string& relation) const {
  auto it = joins_by_rel_.find(ToUpper(relation));
  if (it == joins_by_rel_.end()) return kNoJoins;
  return it->second;
}

std::vector<std::string> PersonalizationGraph::Relations() const {
  std::set<std::string> rels;
  for (const AtomicSelection& p : profile_.selections()) {
    rels.insert(ToUpper(p.relation));
  }
  for (const AtomicJoin& p : profile_.joins()) {
    rels.insert(ToUpper(p.from_relation));
    rels.insert(ToUpper(p.to_relation));
  }
  return std::vector<std::string>(rels.begin(), rels.end());
}

GraphCounts PersonalizationGraph::Counts() const {
  GraphCounts c;
  std::set<std::string> rels;
  std::set<std::string> attrs;
  std::set<std::string> values;
  for (const AtomicSelection& p : profile_.selections()) {
    rels.insert(ToUpper(p.relation));
    attrs.insert(ToUpper(p.relation + "." + p.attribute));
    values.insert(ToUpper(p.relation + "." + p.attribute) + "=" +
                  p.value.ToSqlLiteral());
    ++c.selection_edges;
  }
  for (const AtomicJoin& p : profile_.joins()) {
    rels.insert(ToUpper(p.from_relation));
    rels.insert(ToUpper(p.to_relation));
    attrs.insert(ToUpper(p.from_relation + "." + p.from_attribute));
    attrs.insert(ToUpper(p.to_relation + "." + p.to_attribute));
    ++c.join_edges;
  }
  c.relation_nodes = rels.size();
  c.attribute_nodes = attrs.size();
  c.value_nodes = values.size();
  return c;
}

}  // namespace cqp::prefs
