#ifndef CQP_PREFS_GRAPH_H_
#define CQP_PREFS_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "prefs/profile.h"

namespace cqp::prefs {

/// Node/edge counts of the personalization graph (paper §3).
struct GraphCounts {
  size_t relation_nodes = 0;
  size_t attribute_nodes = 0;
  size_t value_nodes = 0;
  size_t selection_edges = 0;
  size_t join_edges = 0;
};

/// A user's personalization graph: the database schema graph extended with
/// the user's value nodes, selection edges and (directed) join edges.
///
/// Built from a Profile validated against a Database; owns a copy of the
/// profile so the adjacency pointers remain stable.
class PersonalizationGraph {
 public:
  /// Validates `profile` against `db` and builds adjacency indexes.
  static StatusOr<PersonalizationGraph> Build(Profile profile,
                                              const storage::Database& db);

  /// Move-only: the adjacency indexes point into the owned profile's
  /// vectors (stable under move, not under copy).
  PersonalizationGraph(PersonalizationGraph&&) = default;
  PersonalizationGraph& operator=(PersonalizationGraph&&) = default;
  PersonalizationGraph(const PersonalizationGraph&) = delete;
  PersonalizationGraph& operator=(const PersonalizationGraph&) = delete;

  const Profile& profile() const { return profile_; }

  /// Selection edges anchored at `relation` (empty vector if none).
  const std::vector<const AtomicSelection*>& SelectionsFrom(
      const std::string& relation) const;

  /// Join edges leaving `relation` (empty vector if none).
  const std::vector<const AtomicJoin*>& JoinsFrom(
      const std::string& relation) const;

  /// Relations that appear in the profile (sorted, upper-cased).
  std::vector<std::string> Relations() const;

  GraphCounts Counts() const;

  /// Approximate resident heap footprint of this graph (owned profile
  /// strings + adjacency indexes). Drives the demand-paging tier's
  /// resident-bytes accounting, so it should track — not bound — reality.
  size_t ApproxMemoryBytes() const;

 private:
  PersonalizationGraph() = default;

  Profile profile_;
  std::map<std::string, std::vector<const AtomicSelection*>> selections_by_rel_;
  std::map<std::string, std::vector<const AtomicJoin*>> joins_by_rel_;
};

}  // namespace cqp::prefs

#endif  // CQP_PREFS_GRAPH_H_
