#include "rewrite/range.h"

namespace cqp::rewrite {

namespace {

using catalog::CompareOp;
using catalog::Value;
using catalog::ValueType;

bool IsNumeric(const Value& v) { return v.type() != ValueType::kString; }

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

}  // namespace

std::optional<int> ValueRange::Compare(const Value& a, const Value& b) {
  if (IsNumeric(a) != IsNumeric(b)) return std::nullopt;
  if (!IsNumeric(a)) {
    const std::string& sa = a.AsString();
    const std::string& sb = b.AsString();
    return sa < sb ? -1 : (sb < sa ? 1 : 0);
  }
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    // Exact: int64s beyond 2^53 would lose ulps through the double path.
    int64_t ia = a.AsInt();
    int64_t ib = b.AsInt();
    return ia < ib ? -1 : (ib < ia ? 1 : 0);
  }
  return Sign(a.AsNumeric() - b.AsNumeric());
}

std::optional<int> ValueRange::CompareOrPoison(const Value& a,
                                               const Value& b) {
  std::optional<int> c = Compare(a, b);
  if (!c.has_value()) unusable_ = true;
  return c;
}

void ValueRange::Intersect(CompareOp op, const Value& v) {
  if (unusable_) return;
  switch (op) {
    case CompareOp::kEq:
      Intersect(CompareOp::kGe, v);
      Intersect(CompareOp::kLe, v);
      return;
    case CompareOp::kNe:
      for (const Value& e : excluded_) {
        std::optional<int> c = CompareOrPoison(e, v);
        if (!c.has_value()) return;
        if (*c == 0) return;  // already excluded
      }
      excluded_.push_back(v);
      return;
    case CompareOp::kLt:
    case CompareOp::kLe: {
      const bool strict = op == CompareOp::kLt;
      if (!hi_.has_value()) {
        hi_ = v;
        hi_strict_ = strict;
        // Poison on conflict with the other bound, checked below.
      } else {
        std::optional<int> c = CompareOrPoison(v, *hi_);
        if (!c.has_value()) return;
        if (*c < 0 || (*c == 0 && strict)) {
          hi_ = v;
          hi_strict_ = strict;
        }
      }
      break;
    }
    case CompareOp::kGt:
    case CompareOp::kGe: {
      const bool strict = op == CompareOp::kGt;
      if (!lo_.has_value()) {
        lo_ = v;
        lo_strict_ = strict;
      } else {
        std::optional<int> c = CompareOrPoison(v, *lo_);
        if (!c.has_value()) return;
        if (*c > 0 || (*c == 0 && strict)) {
          lo_ = v;
          lo_strict_ = strict;
        }
      }
      break;
    }
  }
  // Cross-bound type check: a numeric lower bound with a string upper bound
  // (or vice versa) proves nothing about anything.
  if (lo_.has_value() && hi_.has_value()) CompareOrPoison(*lo_, *hi_);
}

bool ValueRange::Empty() const {
  if (unusable_) return false;
  if (lo_.has_value() && hi_.has_value()) {
    std::optional<int> c = Compare(*lo_, *hi_);
    if (c.has_value()) {
      if (*c > 0) return true;
      if (*c == 0 && (lo_strict_ || hi_strict_)) return true;
      if (*c == 0) {
        // Point range: empty exactly when the point is excluded.
        for (const Value& e : excluded_) {
          std::optional<int> ce = Compare(e, *lo_);
          if (ce.has_value() && *ce == 0) return true;
        }
      }
    }
  }
  return false;
}

bool ValueRange::MayContain(const Value& v) const {
  if (unusable_) return true;
  if (lo_.has_value()) {
    std::optional<int> c = Compare(v, *lo_);
    if (c.has_value() && (*c < 0 || (*c == 0 && lo_strict_))) return false;
  }
  if (hi_.has_value()) {
    std::optional<int> c = Compare(v, *hi_);
    if (c.has_value() && (*c > 0 || (*c == 0 && hi_strict_))) return false;
  }
  for (const Value& e : excluded_) {
    std::optional<int> c = Compare(v, e);
    if (c.has_value() && *c == 0) return false;
  }
  return true;
}

bool ValueRange::Implies(CompareOp op, const Value& v) const {
  if (unusable_) return false;
  if (Empty()) return true;
  switch (op) {
    case CompareOp::kEq: {
      if (!lo_.has_value() || !hi_.has_value()) return false;
      std::optional<int> cl = Compare(*lo_, v);
      std::optional<int> ch = Compare(*hi_, v);
      return cl.has_value() && ch.has_value() && *cl == 0 && *ch == 0 &&
             !lo_strict_ && !hi_strict_;
    }
    case CompareOp::kNe:
      return !MayContain(v);
    case CompareOp::kLt: {
      if (!hi_.has_value()) return false;
      std::optional<int> c = Compare(*hi_, v);
      return c.has_value() && (*c < 0 || (*c == 0 && hi_strict_));
    }
    case CompareOp::kLe: {
      if (!hi_.has_value()) return false;
      std::optional<int> c = Compare(*hi_, v);
      return c.has_value() && *c <= 0;
    }
    case CompareOp::kGt: {
      if (!lo_.has_value()) return false;
      std::optional<int> c = Compare(*lo_, v);
      return c.has_value() && (*c > 0 || (*c == 0 && lo_strict_));
    }
    case CompareOp::kGe: {
      if (!lo_.has_value()) return false;
      std::optional<int> c = Compare(*lo_, v);
      return c.has_value() && *c >= 0;
    }
  }
  return false;
}

}  // namespace cqp::rewrite
