#include "rewrite/passes.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/str_util.h"
#include "rewrite/range.h"
#include "sql/fingerprint.h"

namespace cqp::rewrite {

namespace {

using catalog::CompareOp;
using catalog::ConstraintSet;
using catalog::DomainConstraint;
using catalog::ImplicationConstraint;
using catalog::Value;
using catalog::ValueType;
using sql::Predicate;
using sql::SelectQuery;

/// (alias, attribute), both upper-cased: one tracked value range.
using FactKey = std::pair<std::string, std::string>;
using Facts = std::map<FactKey, ValueRange>;

bool IsNumeric(const Value& v) { return v.type() != ValueType::kString; }

/// Type-tolerant equality (1 == 1.0; never crashes on a type mix).
bool ValuesEqual(const Value& a, const Value& b) {
  if (IsNumeric(a) != IsNumeric(b)) return false;
  if (!IsNumeric(a)) return a.AsString() == b.AsString();
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    return a.AsInt() == b.AsInt();
  }
  return a.AsNumeric() == b.AsNumeric();
}

/// Upper-cased qualifier of a column reference; an unqualified reference in
/// a single-table scope resolves to that table's alias, otherwise to "" (a
/// separate fact bucket that no constraint seeds — conservative).
std::string ResolveQualifier(const sql::ColumnRef& ref,
                             const AliasMap& aliases) {
  if (!ref.qualifier.empty()) return ToUpper(ref.qualifier);
  if (aliases.size() == 1) return aliases.begin()->first;
  return "";
}

void SeedDomainFacts(const AliasMap& aliases, const ConstraintSet& constraints,
                     Facts* facts) {
  for (const auto& [alias, relation] : aliases) {
    for (const DomainConstraint& d : constraints.domains()) {
      if (!EqualsIgnoreCase(d.relation, relation)) continue;
      ValueRange& range = (*facts)[{alias, ToUpper(d.attribute)}];
      if (d.min.has_value()) range.Intersect(CompareOp::kGe, *d.min);
      if (d.max.has_value()) range.Intersect(CompareOp::kLe, *d.max);
    }
  }
}

/// Accumulates the selection conjuncts into per-attribute ranges and fires
/// the implication constraints to fixpoint (an equality conjunct — or a
/// derived equality consequent — on alias.a triggers every `a = v ⇒ ...`
/// implication of the alias's relation). Join conjuncts contribute nothing
/// (conservative: no cross-alias propagation).
Facts BuildFacts(const std::vector<const Predicate*>& conjuncts,
                 const AliasMap& aliases, const ConstraintSet& constraints,
                 RewriteStats* /*stats*/ = nullptr) {
  Facts facts;
  SeedDomainFacts(aliases, constraints, &facts);

  struct Equality {
    std::string alias;     // upper
    std::string relation;  // upper
    std::string attribute;
    Value value;
  };
  std::deque<Equality> work;

  auto push_equality = [&](const std::string& alias,
                           const std::string& attribute, const Value& value) {
    auto it = aliases.find(alias);
    if (it == aliases.end()) return;
    work.push_back(Equality{alias, it->second, attribute, value});
  };

  for (const Predicate* p : conjuncts) {
    if (p->kind != Predicate::Kind::kSelection) continue;
    std::string alias = ResolveQualifier(p->lhs, aliases);
    std::string attr = ToUpper(p->lhs.attribute);
    facts[{alias, attr}].Intersect(p->op, p->literal);
    if (p->op == CompareOp::kEq) push_equality(alias, attr, p->literal);
  }

  std::set<std::pair<const ImplicationConstraint*, std::string>> fired;
  while (!work.empty()) {
    Equality eq = std::move(work.front());
    work.pop_front();
    for (const ImplicationConstraint* imp :
         constraints.ImplicationsFor(eq.relation)) {
      if (!EqualsIgnoreCase(imp->if_attribute, eq.attribute)) continue;
      if (!ValuesEqual(imp->if_value, eq.value)) continue;
      if (!fired.insert({imp, eq.alias}).second) continue;
      std::string then_attr = ToUpper(imp->then_attribute);
      facts[{eq.alias, then_attr}].Intersect(imp->then_op, imp->then_value);
      if (imp->then_op == CompareOp::kEq) {
        push_equality(eq.alias, then_attr, imp->then_value);
      }
    }
  }
  return facts;
}

bool AnyRangeEmpty(const Facts& facts) {
  for (const auto& [key, range] : facts) {
    if (range.Empty()) return true;
  }
  return false;
}

CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe: return op;
  }
  return op;
}

/// Mirror-normalized spelling of a join conjunct using the branch's own
/// aliases (within one branch the spelling is consistent, so this is enough
/// to catch duplicates; cross-branch comparison goes through the
/// relation-resolved sql::CanonicalWhereConjuncts instead).
std::string LocalJoinKey(const Predicate& p) {
  std::string lhs = ToUpper(p.lhs.qualifier) + "." + ToUpper(p.lhs.attribute);
  std::string rhs = ToUpper(p.rhs.qualifier) + "." + ToUpper(p.rhs.attribute);
  CompareOp op = p.op;
  if (rhs < lhs) {
    std::swap(lhs, rhs);
    op = MirrorOp(op);
  }
  return lhs + catalog::CompareOpSql(op) + rhs;
}

/// Deduplicated sorted canonical conjunct/FROM sets of one branch, the
/// subsumption pass's comparison key.
struct BranchShape {
  std::vector<std::string> from;
  std::vector<std::string> where;
  std::string select;
};

BranchShape ShapeOf(const SelectQuery& q) {
  BranchShape shape;
  shape.from = sql::CanonicalFromRelations(q);
  shape.where = sql::CanonicalWhereConjuncts(q);
  shape.where.erase(std::unique(shape.where.begin(), shape.where.end()),
                    shape.where.end());
  shape.select = sql::CanonicalSelectText(q);
  return shape;
}

bool SubsetOf(const std::vector<std::string>& a,
              const std::vector<std::string>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// Noisy-or doi combination (Formula 10) — the model query construction
/// uses for branch dois; associative, so merging a subsumed branch's doi
/// into its survivor leaves every delivered row's doi unchanged.
double NoisyOr(double a, double b) { return 1.0 - (1.0 - a) * (1.0 - b); }

}  // namespace

bool ConjunctsUnsatisfiable(const std::vector<Predicate>& conjuncts,
                            const AliasMap& aliases,
                            const ConstraintSet& constraints) {
  std::vector<const Predicate*> ptrs;
  ptrs.reserve(conjuncts.size());
  for (const Predicate& p : conjuncts) ptrs.push_back(&p);
  return AnyRangeEmpty(BuildFacts(ptrs, aliases, constraints));
}

QueryIR EliminateRedundantConjuncts(QueryIR ir,
                                    const ConstraintSet& constraints,
                                    RewriteStats* stats) {
  for (BranchIR& branch : ir.branches) {
    std::vector<Predicate>& where = branch.query.where;
    const AliasMap aliases = BuildAliasMap(branch.query);
    std::vector<bool> alive(where.size(), true);

    // Join conjuncts: only exact (mirror-normalized) duplicates are
    // redundant; the range engine does not reason about join edges.
    std::set<std::string> seen_joins;
    for (size_t i = 0; i < where.size(); ++i) {
      if (where[i].kind != Predicate::Kind::kJoin) continue;
      if (!seen_joins.insert(LocalJoinKey(where[i])).second) {
        alive[i] = false;
        if (stats != nullptr) ++stats->conjuncts_dropped;
      }
    }

    // Selection conjuncts: drop each one implied by the constraints plus
    // the REMAINING conjuncts (duplicates fall out of the same test — the
    // surviving copy implies the dropped one).
    for (size_t i = 0; i < where.size(); ++i) {
      if (!alive[i] || where[i].kind != Predicate::Kind::kSelection) continue;
      std::vector<const Predicate*> others;
      others.reserve(where.size());
      for (size_t j = 0; j < where.size(); ++j) {
        if (j != i && alive[j]) others.push_back(&where[j]);
      }
      Facts facts = BuildFacts(others, aliases, constraints);
      FactKey key{ResolveQualifier(where[i].lhs, aliases),
                  ToUpper(where[i].lhs.attribute)};
      auto it = facts.find(key);
      if (it != facts.end() &&
          it->second.Implies(where[i].op, where[i].literal)) {
        alive[i] = false;
        if (stats != nullptr) ++stats->conjuncts_dropped;
      }
    }

    std::vector<Predicate> kept;
    kept.reserve(where.size());
    for (size_t i = 0; i < where.size(); ++i) {
      if (alive[i]) kept.push_back(std::move(where[i]));
    }
    where = std::move(kept);
  }
  return ir;
}

QueryIR DropContradictedBranches(QueryIR ir, const ConstraintSet& constraints,
                                 RewriteStats* stats) {
  std::vector<BranchIR> kept;
  kept.reserve(ir.branches.size());
  for (BranchIR& branch : ir.branches) {
    const AliasMap aliases = BuildAliasMap(branch.query);
    if (ConjunctsUnsatisfiable(branch.query.where, aliases, constraints)) {
      if (stats != nullptr) ++stats->branches_contradicted;
      continue;
    }
    kept.push_back(std::move(branch));
  }
  ir.branches = std::move(kept);
  return ir;
}

QueryIR MergeSubsumedBranches(QueryIR ir, RewriteStats* stats) {
  const size_t n = ir.branches.size();
  std::vector<BranchShape> shapes;
  shapes.reserve(n);
  for (const BranchIR& b : ir.branches) shapes.push_back(ShapeOf(b.query));
  std::vector<bool> alive(n, true);

  for (size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    for (size_t j = 0; j < n; ++j) {
      if (j == i || !alive[j]) continue;
      if (shapes[i].select != shapes[j].select) continue;
      if (!SubsetOf(shapes[i].from, shapes[j].from) ||
          !SubsetOf(shapes[i].where, shapes[j].where)) {
        continue;
      }
      const bool equal = shapes[i].from == shapes[j].from &&
                         shapes[i].where == shapes[j].where;
      // A strict subset means branch i is the weaker one (superset of
      // rows): fold it into j. Exact duplicates keep the earlier branch.
      if (equal && j > i) continue;
      BranchIR& survivor = ir.branches[j];
      BranchIR& weaker = ir.branches[i];
      survivor.prefs.insert(survivor.prefs.end(), weaker.prefs.begin(),
                            weaker.prefs.end());
      std::sort(survivor.prefs.begin(), survivor.prefs.end());
      survivor.prefs.erase(
          std::unique(survivor.prefs.begin(), survivor.prefs.end()),
          survivor.prefs.end());
      survivor.doi = NoisyOr(survivor.doi, weaker.doi);
      alive[i] = false;
      if (stats != nullptr) ++stats->branches_subsumed;
      break;
    }
  }

  std::vector<BranchIR> kept;
  kept.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (alive[i]) kept.push_back(std::move(ir.branches[i]));
  }
  ir.branches = std::move(kept);
  return ir;
}

QueryIR OptimizeQueryIR(QueryIR ir, const ConstraintSet& constraints,
                        RewriteStats* stats) {
  ir = EliminateRedundantConjuncts(std::move(ir), constraints, stats);
  ir = DropContradictedBranches(std::move(ir), constraints, stats);
  ir = MergeSubsumedBranches(std::move(ir), stats);
  return ir;
}

}  // namespace cqp::rewrite
