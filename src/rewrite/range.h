#ifndef CQP_REWRITE_RANGE_H_
#define CQP_REWRITE_RANGE_H_

#include <optional>
#include <vector>

#include "catalog/compare.h"
#include "catalog/value.h"

namespace cqp::rewrite {

/// The set of values one attribute may take, as far as a conjunction of
/// `attr op literal` facts (query conjuncts + integrity constraints) can
/// prove: an interval with optional open/closed bounds plus excluded points
/// from `<>` facts.
///
/// Ints and doubles compare numerically (int64s outside the exact double
/// range compare as integers when both sides are ints), strings
/// lexicographically. A numeric/string type conflict poisons the range —
/// it then proves nothing (neither emptiness nor implication), keeping
/// every rewrite decision conservative.
class ValueRange {
 public:
  /// Intersects with {x : x op v}.
  void Intersect(catalog::CompareOp op, const catalog::Value& v);

  /// True when a type conflict made the range unusable.
  bool unusable() const { return unusable_; }

  /// True when the range is provably empty (an unsatisfiable conjunction).
  /// Never true for an unusable range.
  bool Empty() const;

  /// True when every value of the range satisfies `x op v` — i.e. the
  /// accumulated facts imply the conjunct. Vacuously true for a provably
  /// empty range; never true for an unusable one.
  bool Implies(catalog::CompareOp op, const catalog::Value& v) const;

  /// True when `v` may lie in the range (false only when provably outside).
  bool MayContain(const catalog::Value& v) const;

 private:
  /// Three-way compare, or nullopt on a numeric/string mismatch.
  static std::optional<int> Compare(const catalog::Value& a,
                                    const catalog::Value& b);

  /// Compare `v` against the bound; poisons the range on type mismatch.
  std::optional<int> CompareOrPoison(const catalog::Value& a,
                                     const catalog::Value& b);

  std::optional<catalog::Value> lo_;
  bool lo_strict_ = false;
  std::optional<catalog::Value> hi_;
  bool hi_strict_ = false;
  std::vector<catalog::Value> excluded_;  ///< from `<>` facts
  bool unusable_ = false;
};

}  // namespace cqp::rewrite

#endif  // CQP_REWRITE_RANGE_H_
