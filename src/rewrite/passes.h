#ifndef CQP_REWRITE_PASSES_H_
#define CQP_REWRITE_PASSES_H_

#include <vector>

#include "catalog/constraints.h"
#include "rewrite/ir.h"
#include "sql/ast.h"

namespace cqp::rewrite {

/// True when `conjuncts` ∧ the domain/implication constraints of the
/// aliases' relations is provably unsatisfiable (some attribute's value
/// range is empty). Join conjuncts are ignored (conservative); a provable
/// contradiction means the conjunction returns zero rows on every
/// constraint-valid database. This is the shared satisfiability core behind
/// DropContradictedBranches and the pre-search preference pruning in
/// space::ExtractPreferenceSpace.
bool ConjunctsUnsatisfiable(const std::vector<sql::Predicate>& conjuncts,
                            const AliasMap& aliases,
                            const catalog::ConstraintSet& constraints);

/// Pass 1 — conjunct redundancy elimination. Per branch, drops every
/// conjunct implied by the remaining conjuncts plus the constraints:
/// duplicates (selection or join, modulo the canonical mirror ordering),
/// constraint tautologies (year >= 1900 under domain [1930, 2005]), and
/// implication-constraint redundancies (rating >= 'PG' in a branch that
/// already demands genre = 'horror' under horror ⇒ rating >= 'R').
/// Result-preserving on constraint-valid data: an implied conjunct filters
/// nothing. Pure IR → IR; counts into stats->conjuncts_dropped.
QueryIR EliminateRedundantConjuncts(QueryIR ir,
                                    const catalog::ConstraintSet& constraints,
                                    RewriteStats* stats);

/// Pass 2 — contradiction detection. Drops every branch whose conjunct set
/// is unsatisfiable (on its own or against the constraints): the branch is
/// vacuous — it returns zero rows on any constraint-valid database, so the
/// preference it integrates cannot be delivered. Always drops whole
/// branches, never the whole union: when every branch is contradicted the
/// result has zero branches, which emits as the ORIGINAL query (the
/// graceful degradation the fallback ladder also ends in). The pipeline
/// never reaches that point — the pre-search pass prunes
/// constraint-contradicted preferences before the search can choose them —
/// so this pass is defense in depth for hand-built IRs.
/// Counts into stats->branches_contradicted.
QueryIR DropContradictedBranches(QueryIR ir,
                                 const catalog::ConstraintSet& constraints,
                                 RewriteStats* stats);

/// Pass 3 — branch subsumption merging. When branch A's canonical FROM and
/// conjunct sets are subsets of branch B's, A is the semantically WEAKER
/// branch: rows(A) ⊇ rows(B), so under the intersection semantics of the
/// rewriting A constrains nothing beyond B. A is dropped and folded into B
/// — B inherits A's preference indices and the dois combine by noisy-or
/// (Formula 10 is associative, so per-row delivery dois are unchanged) —
/// and the union's implied HAVING COUNT drops by one. Exact duplicates
/// (mutual subsumption, e.g. join-mirrored spellings of one branch) keep
/// the earlier branch. Counts into stats->branches_subsumed.
QueryIR MergeSubsumedBranches(QueryIR ir, RewriteStats* stats);

/// The standard pass order: redundancy elimination (exposes subsumption),
/// contradiction detection, subsumption merging.
QueryIR OptimizeQueryIR(QueryIR ir, const catalog::ConstraintSet& constraints,
                        RewriteStats* stats);

}  // namespace cqp::rewrite

#endif  // CQP_REWRITE_PASSES_H_
