#include "rewrite/ir.h"

#include "common/str_util.h"

namespace cqp::rewrite {

AliasMap BuildAliasMap(const sql::SelectQuery& q) {
  AliasMap out;
  for (const sql::TableRef& t : q.from) {
    out[ToUpper(t.EffectiveAlias())] = ToUpper(t.relation);
  }
  return out;
}

}  // namespace cqp::rewrite
