#ifndef CQP_REWRITE_IR_H_
#define CQP_REWRITE_IR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace cqp::rewrite {

/// One UNION ALL branch of the §4.2 rewriting: a conjunctive SPJ query
/// (base relations + preference path aliases + conjuncts) together with the
/// preference indices it integrates and their combined doi. The branch's
/// WHERE list is the conjunct set the passes operate on.
struct BranchIR {
  sql::SelectQuery query;
  /// P-indices (into the preference space the solution chose from)
  /// integrated by this branch. Subsumption merging unions these.
  std::vector<int32_t> prefs;
  /// Combined doi of `prefs` (noisy-or, Formula 10) — the delivery weight
  /// exec::ExecutePersonalized assigns the branch.
  double doi = 0.0;
};

/// The logical rewrite IR: the canonicalized original query plus the union
/// branches. Zero branches means "the original query" (the empty rewriting
/// every pass degrades to, never an empty union). The executable form is
/// intersection semantics: a row must appear in every branch
/// (HAVING COUNT(*) = |branches| over DISTINCT branches).
struct QueryIR {
  sql::SelectQuery base;
  std::vector<BranchIR> branches;
};

/// Counters reported by the semantic optimizer. The space-side pre-search
/// pass contributes prefs_pruned; the IR passes fill the rest.
struct RewriteStats {
  uint64_t conjuncts_dropped = 0;      ///< redundancy elimination
  uint64_t branches_contradicted = 0;  ///< unsatisfiable branches dropped
  uint64_t branches_subsumed = 0;      ///< weaker branches merged away
  uint64_t prefs_pruned = 0;  ///< constraint-contradicted prefs never admitted

  uint64_t branches_eliminated() const {
    return branches_contradicted + branches_subsumed;
  }
  bool changed() const {
    return conjuncts_dropped != 0 || branches_eliminated() != 0;
  }
  void Add(const RewriteStats& other) {
    conjuncts_dropped += other.conjuncts_dropped;
    branches_contradicted += other.branches_contradicted;
    branches_subsumed += other.branches_subsumed;
    prefs_pruned += other.prefs_pruned;
  }
};

/// alias (upper-cased effective alias) → relation (upper-cased), the lens
/// through which passes resolve a conjunct's qualifier to the catalog
/// relation whose constraints apply.
using AliasMap = std::map<std::string, std::string>;

/// Builds the alias map of one SPJ query's FROM list.
AliasMap BuildAliasMap(const sql::SelectQuery& q);

}  // namespace cqp::rewrite

#endif  // CQP_REWRITE_IR_H_
