#include "testing/isolation.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cqp::testing {

IsolatedOutcome RunIsolated(
    const std::function<bool(std::string* report_text, int* solves)>& probe) {
  IsolatedOutcome out;

  int fds[2];
  if (pipe(fds) != 0) {
    // No pipe, no isolation: run inline and hope the probe is well-behaved.
    out.failed = probe(&out.report_text, &out.solves);
    return out;
  }

  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    out.failed = probe(&out.report_text, &out.solves);
    return out;
  }

  if (pid == 0) {
    // Child: run the probe, stream "<failed> <solves>\n<report>" back and
    // exit without running atexit handlers (the parent owns all state).
    close(fds[0]);
    std::string text;
    int solves = 0;
    bool failed = probe(&text, &solves);
    char header[64];
    int n = std::snprintf(header, sizeof(header), "%d %d\n", failed ? 1 : 0,
                          solves);
    std::string payload(header, static_cast<size_t>(n));
    payload += text;
    size_t off = 0;
    while (off < payload.size()) {
      ssize_t w = write(fds[1], payload.data() + off, payload.size() - off);
      if (w <= 0) break;
      off += static_cast<size_t>(w);
    }
    close(fds[1]);
    _exit(0);
  }

  // Parent: drain the pipe, then reap.
  close(fds[1]);
  std::string payload;
  char buf[4096];
  ssize_t r;
  while ((r = read(fds[0], buf, sizeof(buf))) > 0) {
    payload.append(buf, static_cast<size_t>(r));
  }
  close(fds[0]);
  int status = 0;
  while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }

  if (WIFSIGNALED(status)) {
    out.crashed = true;
    out.signal = WTERMSIG(status);
    out.failed = true;
    out.report_text =
        "crash: child terminated by signal " + std::to_string(out.signal);
    if (!payload.empty()) out.report_text += "\npartial output:\n" + payload;
    return out;
  }

  int failed = 0;
  int solves = 0;
  size_t newline = payload.find('\n');
  if (newline != std::string::npos &&
      std::sscanf(payload.c_str(), "%d %d", &failed, &solves) == 2) {
    out.failed = failed != 0;
    out.solves = solves;
    out.report_text = payload.substr(newline + 1);
  } else {
    // The child exited before writing its header (e.g. std::exit from a
    // library); treat like a crash so the caller still gets a verdict.
    out.crashed = true;
    out.failed = true;
    out.report_text = "crash: child produced no verdict";
  }
  return out;
}

}  // namespace cqp::testing
