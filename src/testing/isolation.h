#ifndef CQP_TESTING_ISOLATION_H_
#define CQP_TESTING_ISOLATION_H_

#include <functional>
#include <string>

namespace cqp::testing {

/// Outcome of a probe executed in a forked child process.
struct IsolatedOutcome {
  bool crashed = false;    ///< child died on a signal (CHECK abort, segfault)
  int signal = 0;          ///< the terminating signal when crashed
  bool failed = false;     ///< probe reported failure (crashes count as failed)
  int solves = 0;          ///< solve count forwarded from the child
  std::string report_text; ///< CheckReport::ToString() (or crash description)
};

/// Runs `probe` in a forked child so that a CHECK abort or segfault inside
/// the code under test cannot take down the fuzzing driver: a buggy
/// algorithm under delta-debugging routinely crashes on the very smallest
/// candidates. The probe returns whether the candidate fails and fills the
/// human-readable report plus its solve count; both are piped back to the
/// parent. A crashed child is reported as failed with a synthetic report.
IsolatedOutcome RunIsolated(
    const std::function<bool(std::string* report_text, int* solves)>& probe);

}  // namespace cqp::testing

#endif  // CQP_TESTING_ISOLATION_H_
