#include "testing/oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "cqp/transitions.h"
#include "estimation/batch_evaluator.h"
#include "estimation/eval_cache.h"
#include "space/prepared_space.h"

namespace cqp::testing {

namespace {

// Tolerances for comparisons whose two sides are computed with different
// floating-point operation orders. Comparisons along a single ExtendWith
// chain are exact and use none of these.
constexpr double kDoiTol = 1e-12;        // absolute; doi lives in [0,1]
constexpr double kRelTol = 1e-9;         // relative, for cost/size

// Ulp-scale slack for differential verdicts. Search algorithms may
// accumulate StateParams incrementally in their own visitation order
// (cost-ascending for MinCost-BB, pick order for the greedy), which is the
// paper's O(1) incremental evaluation and differs from the canonical
// ascending-order evaluation in the last few ulps. A bound placed EXACTLY
// on a state's canonical parameters (the boundary regime) can therefore be
// classified differently by two correct implementations; disagreements
// within this slack are tolerated, anything larger is a violation.
constexpr double kUlpSlack = 1e-12;

bool RelLe(double a, double b) {
  return a <= b + kRelTol * (1.0 + std::max(std::fabs(a), std::fabs(b)));
}

bool NearEq(double a, double b, double tol) {
  return std::fabs(a - b) <= tol * (1.0 + std::max(std::fabs(a), std::fabs(b)));
}

/// Minimum signed slack of `s` against every active bound of `p`:
/// positive = strictly inside, negative = outside. Cost/size are measured
/// relative to the bound's magnitude, doi absolutely.
double BoundMargin(const cqp::ProblemSpec& p,
                   const estimation::StateParams& s) {
  double m = std::numeric_limits<double>::infinity();
  if (p.cmax_ms) {
    m = std::min(m, (*p.cmax_ms - s.cost_ms) /
                        std::max(1.0, std::fabs(*p.cmax_ms)));
  }
  if (p.dmin) m = std::min(m, s.doi - *p.dmin);
  if (p.smin) {
    m = std::min(m,
                 (s.size - *p.smin) / std::max(1.0, std::fabs(*p.smin)));
  }
  if (p.smax) {
    m = std::min(m,
                 (*p.smax - s.size) / std::max(1.0, std::fabs(*p.smax)));
  }
  return m;
}

std::string P17(const estimation::StateParams& p) {
  return StrFormat("(doi=%.17g cost=%.17g size=%.17g count=%u)", p.doi,
                   p.cost_ms, p.size, p.count);
}

/// Maps a position-set in a pointer vector (C, D or S) to the underlying
/// preference IndexSet the evaluator understands.
IndexSet MapPositions(const std::vector<int32_t>& vec,
                      const IndexSet& positions) {
  std::vector<int32_t> prefs;
  prefs.reserve(positions.size());
  for (int32_t pos : positions) prefs.push_back(vec[static_cast<size_t>(pos)]);
  return IndexSet::FromUnsorted(std::move(prefs));
}

IndexSet RandomSubset(Rng& rng, size_t k, double p = 0.5) {
  std::vector<int32_t> members;
  for (size_t i = 0; i < k; ++i) {
    if (rng.Bernoulli(p)) members.push_back(static_cast<int32_t>(i));
  }
  return IndexSet::FromUnsorted(std::move(members));
}

/// Checks (c): the paper's algebraic invariants, independent of any search
/// algorithm. Every expected value is recomputed from the raw preference
/// parameters (Formulas 6, 8, 10), never via the evaluator being tested.
void CheckEvaluatorInvariants(const CqpInstance& instance,
                              const CheckOptions& options,
                              CheckReport* report) {
  const auto& prefs = instance.space.prefs;
  const size_t k = instance.K();
  estimation::StateEvaluator evaluator = instance.space.MakeEvaluator();
  // Instance-derived stream: replaying a reproducer re-checks the exact same
  // subsets and chains.
  Rng rng(instance.seed * 0x9e3779b9u + 0xfeedULL);

  // The empty state must be the original query verbatim.
  estimation::StateParams empty = evaluator.EmptyState();
  if (empty.doi != 0.0 || empty.cost_ms != instance.space.base.cost_ms ||
      empty.size != instance.space.base.size || empty.count != 0) {
    report->Add("invariant-empty", "",
                "EmptyState() != (0, base_cost, base_size): " + P17(empty));
  }

  for (int trial = 0; trial < options.invariant_trials; ++trial) {
    IndexSet subset = RandomSubset(rng, k);
    estimation::StateParams got = evaluator.Evaluate(subset);

    // Evaluate(IndexSet) and EvaluateBits(Bits()) integrate members in the
    // same ascending order and must agree bit-for-bit.
    if (k < 64) {
      estimation::StateParams bits = evaluator.EvaluateBits(subset.Bits());
      if (got.doi != bits.doi || got.cost_ms != bits.cost_ms ||
          got.size != bits.size || got.count != bits.count) {
        report->Add("invariant-bits-parity", "",
                    subset.ToString() + ": Evaluate=" + P17(got) +
                        " EvaluateBits=" + P17(bits));
      }
    }

    if (got.count != subset.size()) {
      report->Add("invariant-count", "",
                  subset.ToString() + ": count=" + std::to_string(got.count));
    }

    // Formula 6 (cost additivity): Σ cost(Q ∧ p_i) in ascending member
    // order — the identical fp summation sequence, so exactly equal. The
    // empty state keeps the base cost.
    double want_cost = 0.0;
    for (int32_t i : subset) want_cost += prefs[static_cast<size_t>(i)].cost_ms;
    if (subset.empty()) want_cost = instance.space.base.cost_ms;
    if (got.cost_ms != want_cost) {
      report->Add("invariant-cost-additivity", "",
                  StrFormat("%s: cost=%.17g, Formula 6 gives %.17g",
                            subset.ToString().c_str(), got.cost_ms, want_cost));
    }

    // size = size(Q) × Π selectivity, same multiplication order → exact.
    double want_size = instance.space.base.size;
    for (int32_t i : subset) {
      want_size *= prefs[static_cast<size_t>(i)].selectivity;
    }
    if (got.size != want_size) {
      report->Add("invariant-size-product", "",
                  StrFormat("%s: size=%.17g, expected %.17g",
                            subset.ToString().c_str(), got.size, want_size));
    }

    // Formula 10 (noisy-or), stepwise — again the identical sequence.
    if (instance.space.conjunction_model == prefs::ConjunctionModel::kNoisyOr) {
      double want_doi = 0.0;
      for (int32_t i : subset) {
        want_doi = 1.0 - (1.0 - want_doi) * (1.0 - prefs[static_cast<size_t>(i)].doi);
      }
      if (got.doi != want_doi) {
        report->Add("invariant-doi-formula", "",
                    StrFormat("%s: doi=%.17g, Formula 10 gives %.17g",
                              subset.ToString().c_str(), got.doi, want_doi));
      }
      // And the closed form 1 - Π(1-d_i), order-insensitive up to ulps:
      // catches a wrong composition that happens to match some other
      // stepwise recurrence.
      double prod = 1.0;
      for (int32_t i : subset) prod *= 1.0 - prefs[static_cast<size_t>(i)].doi;
      if (std::fabs(got.doi - (1.0 - prod)) > kDoiTol) {
        report->Add("invariant-doi-closed-form", "",
                    StrFormat("%s: doi=%.17g vs closed form %.17g",
                              subset.ToString().c_str(), got.doi, 1.0 - prod));
      }
    }
    if (got.doi < 0.0 || got.doi > 1.0) {
      report->Add("invariant-doi-range", "", subset.ToString() + ": " + P17(got));
    }

    // Formulas 4/7/8 along an ExtendWith chain (exact: each step's fp
    // result is provably monotone — see docs/testing.md).
    estimation::StateParams chain = got;
    int32_t next = subset.empty() ? 0 : subset.Max() + 1;
    while (static_cast<size_t>(next) < k) {
      estimation::StateParams extended = evaluator.ExtendWith(chain, next);
      if (extended.cost_ms < chain.cost_ms) {
        report->Add("invariant-cost-monotone", "",
                    StrFormat("extend %d: cost %.17g -> %.17g", next,
                              chain.cost_ms, extended.cost_ms));
      }
      if (extended.size > chain.size) {
        report->Add("invariant-size-monotone", "",
                    StrFormat("extend %d: size %.17g -> %.17g", next,
                              chain.size, extended.size));
      }
      if (extended.doi < chain.doi - kDoiTol) {
        report->Add("invariant-doi-monotone", "",
                    StrFormat("extend %d: doi %.17g -> %.17g", next, chain.doi,
                              extended.doi));
      }
      chain = extended;
      next += static_cast<int32_t>(rng.Uniform(1, 3));
    }

    // Formula 8 across arbitrary subset ⊂ superset pairs (different
    // evaluation orders → tolerant comparison).
    IndexSet superset = subset;
    for (size_t i = 0; i < k; ++i) {
      int32_t idx = static_cast<int32_t>(i);
      if (!superset.Contains(idx) && rng.Bernoulli(0.3)) {
        superset = superset.WithAdded(idx);
      }
    }
    if (superset.size() > subset.size()) {
      estimation::StateParams sup = evaluator.Evaluate(superset);
      if (!RelLe(got.cost_ms, sup.cost_ms) && !subset.empty()) {
        report->Add("invariant-subset-cost", "",
                    subset.ToString() + " vs " + superset.ToString() + ": " +
                        P17(got) + " vs " + P17(sup));
      }
      if (!RelLe(sup.size, got.size)) {
        report->Add("invariant-subset-size", "",
                    subset.ToString() + " vs " + superset.ToString() + ": " +
                        P17(got) + " vs " + P17(sup));
      }
      if (sup.doi < got.doi - kDoiTol) {
        report->Add("invariant-subset-doi", "",
                    subset.ToString() + " vs " + superset.ToString() + ": " +
                        P17(got) + " vs " + P17(sup));
      }
    }
  }

  // Transition-effect signs (Observation 1): Horizontal adds a preference
  // (cost up, size down, doi up, whatever the space); Vertical moves down
  // the space's key order, so the key parameter moves in the space's
  // documented direction.
  struct SpaceCase {
    const char* label;
    const std::vector<int32_t>* vec;
  };
  const SpaceCase spaces[] = {{"D", &instance.space.D},
                              {"C", &instance.space.C},
                              {"S", &instance.space.S}};
  for (int trial = 0; trial < options.invariant_trials; ++trial) {
    const SpaceCase& sc = spaces[trial % 3];
    IndexSet state = RandomSubset(rng, k);
    estimation::StateParams from =
        evaluator.Evaluate(MapPositions(*sc.vec, state));

    // Horizontal requires a non-empty state (CHECKed in transitions.cc).
    std::optional<IndexSet> h;
    if (!state.empty()) h = cqp::Horizontal(state, k);
    if (h.has_value()) {
      if (*h != state.WithAdded(state.Max() + 1)) {
        report->Add("invariant-horizontal-shape", "",
                    state.ToString() + " -> " + h->ToString());
      }
      estimation::StateParams to =
          evaluator.Evaluate(MapPositions(*sc.vec, *h));
      if (!RelLe(from.cost_ms, to.cost_ms)) {
        report->Add("invariant-horizontal-cost", "",
                    StrFormat("%s %s: %s -> %s", sc.label,
                              state.ToString().c_str(), P17(from).c_str(),
                              P17(to).c_str()));
      }
      if (!RelLe(to.size, from.size)) {
        report->Add("invariant-horizontal-size", "",
                    StrFormat("%s %s: %s -> %s", sc.label,
                              state.ToString().c_str(), P17(from).c_str(),
                              P17(to).c_str()));
      }
      if (to.doi < from.doi - kDoiTol) {
        report->Add("invariant-horizontal-doi", "",
                    StrFormat("%s %s: %s -> %s", sc.label,
                              state.ToString().c_str(), P17(from).c_str(),
                              P17(to).c_str()));
      }
    }

    for (const IndexSet& v : cqp::VerticalNeighbors(state, k)) {
      estimation::StateParams to = evaluator.Evaluate(MapPositions(*sc.vec, v));
      bool ok = true;
      if (sc.vec == &instance.space.C) {
        ok = RelLe(to.cost_ms, from.cost_ms);  // C descends by cost
      } else if (sc.vec == &instance.space.S) {
        ok = RelLe(from.size, to.size);  // S ascends by size
      } else {
        ok = to.doi <= from.doi + kDoiTol;  // D descends by doi
      }
      if (!ok) {
        report->Add("invariant-vertical-sign", "",
                    StrFormat("%s %s -> %s: %s -> %s", sc.label,
                              state.ToString().c_str(), v.ToString().c_str(),
                              P17(from).c_str(), P17(to).c_str()));
      }
    }

    // Horizontal2 candidates: exactly the complement, ascending.
    std::vector<int32_t> h2 = cqp::Horizontal2Candidates(state, k);
    std::vector<int32_t> complement;
    for (size_t i = 0; i < k; ++i) {
      if (!state.Contains(static_cast<int32_t>(i))) {
        complement.push_back(static_cast<int32_t>(i));
      }
    }
    if (h2 != complement) {
      report->Add("invariant-horizontal2", "",
                  state.ToString() + ": candidates are not the ascending "
                  "complement");
    }
  }
}

/// Checks (g), kernel level: the SoA batch kernels against the scalar
/// StateEvaluator, operator== on every field. The batch evaluator promises
/// bit-for-bit parity (each lane runs the identical fp op sequence — see
/// batch_evaluator.h), so no tolerance is involved anywhere here.
void CheckBatchKernelParity(const CqpInstance& instance,
                            const CheckOptions& options,
                            CheckReport* report) {
  const size_t k = instance.K();
  if (k == 0 || k >= 64) return;
  estimation::StateEvaluator evaluator = instance.space.MakeEvaluator();
  estimation::BatchEvaluator batch(instance.space.base, instance.space.prefs,
                                   instance.space.conjunction_model);
  Rng rng(instance.seed * 0x9e3779b9u + 0xbeefULL);
  estimation::BatchEvaluator::Results results;
  const uint64_t full = (uint64_t{1} << k) - 1;

  auto same = [](const estimation::StateParams& a,
                 const estimation::StateParams& b) {
    return a.doi == b.doi && a.cost_ms == b.cost_ms && a.size == b.size &&
           a.count == b.count;
  };

  for (int trial = 0; trial < options.invariant_trials; ++trial) {
    // EvaluateMasks over an odd-width frontier (exercising the kernel's
    // padded tail lanes) that always contains the empty and supreme states.
    std::vector<uint64_t> masks = {0, full};
    const size_t extra = 1 + static_cast<size_t>(rng.Uniform(0, 4));
    for (size_t i = 0; i < extra; ++i) {
      masks.push_back(RandomSubset(rng, k).Bits());
    }
    batch.EvaluateMasks(masks.data(), masks.size(), &results);
    for (size_t l = 0; l < masks.size(); ++l) {
      estimation::StateParams want = evaluator.EvaluateBits(masks[l]);
      if (!same(results.Get(l), want)) {
        report->Add(
            "batch-kernel", "",
            StrFormat("[%s] EvaluateMasks lane %zu (mask %llx): %s != %s",
                      batch.kernel_name(), l,
                      static_cast<unsigned long long>(masks[l]),
                      P17(results.Get(l)).c_str(), P17(want).c_str()));
        return;  // one witness suffices; later lanes would just repeat it
      }
    }

    // EvaluateSequence from a random parent over a shuffled sequence of
    // non-members (shuffled because callers like MinCost-BB hand over
    // cost-ordered, not index-ordered, sequences).
    IndexSet parent_set = RandomSubset(rng, k, 0.3);
    estimation::StateParams parent = evaluator.Evaluate(parent_set);
    std::vector<int32_t> seq;
    for (size_t i = 0; i < k; ++i) {
      if (!parent_set.Contains(static_cast<int32_t>(i))) {
        seq.push_back(static_cast<int32_t>(i));
      }
    }
    rng.Shuffle(seq);
    if (seq.size() > 8) seq.resize(8);
    const uint64_t seq_full =
        seq.empty() ? 0 : (uint64_t{1} << seq.size()) - 1;
    std::vector<uint64_t> lane_masks = {0, seq_full};
    for (int i = 0; i < 3; ++i) lane_masks.push_back(rng.Next() & seq_full);
    batch.EvaluateSequence(parent, seq.data(), seq.size(), lane_masks.data(),
                           lane_masks.size(), &results);
    for (size_t l = 0; l < lane_masks.size(); ++l) {
      estimation::StateParams want = parent;
      for (size_t j = 0; j < seq.size(); ++j) {
        if ((lane_masks[l] >> j) & 1) {
          want = evaluator.ExtendWith(want, seq[j]);
        }
      }
      if (!same(results.Get(l), want)) {
        report->Add(
            "batch-kernel", "",
            StrFormat("[%s] EvaluateSequence lane %zu (mask %llx): %s != %s",
                      batch.kernel_name(), l,
                      static_cast<unsigned long long>(lane_masks[l]),
                      P17(results.Get(l)).c_str(), P17(want).c_str()));
        return;
      }
    }

    // ExtendBatch lane l == ExtendWith(parent, seq[l]).
    if (!seq.empty()) {
      batch.ExtendBatch(parent, seq.data(), seq.size(), &results);
      for (size_t l = 0; l < seq.size(); ++l) {
        estimation::StateParams want = evaluator.ExtendWith(parent, seq[l]);
        if (!same(results.Get(l), want)) {
          report->Add("batch-kernel", "",
                      StrFormat("[%s] ExtendBatch lane %zu (pref %d): %s != %s",
                                batch.kernel_name(), l, seq[l],
                                P17(results.Get(l)).c_str(),
                                P17(want).c_str()));
          return;
        }
      }
    }
  }
}

}  // namespace

std::string Violation::ToString() const {
  std::string out = check;
  if (!algorithm.empty()) out += "[" + algorithm + "]";
  out += ": " + detail;
  return out;
}

void CheckReport::Add(std::string check, std::string algorithm,
                      std::string detail) {
  violations.push_back(
      {std::move(check), std::move(algorithm), std::move(detail)});
}

std::string CheckReport::ToString() const {
  std::string out;
  for (const Violation& v : violations) out += v.ToString() + "\n";
  return out;
}

bool CheckReport::Has(const std::string& check) const {
  for (const Violation& v : violations) {
    if (v.check == check) return true;
  }
  return false;
}

std::string DiffSolutions(const cqp::Solution& a, const cqp::Solution& b) {
  if (a.feasible != b.feasible) {
    return StrFormat("feasible %d vs %d", a.feasible, b.feasible);
  }
  if (a.degraded != b.degraded) {
    return StrFormat("degraded %d vs %d", a.degraded, b.degraded);
  }
  if (a.chosen != b.chosen) {
    return "chosen " + a.chosen.ToString() + " vs " + b.chosen.ToString();
  }
  if (a.params.doi != b.params.doi || a.params.cost_ms != b.params.cost_ms ||
      a.params.size != b.params.size || a.params.count != b.params.count) {
    return "params " + P17(a.params) + " vs " + P17(b.params);
  }
  return "";
}

CheckReport CheckInstance(const CqpInstance& instance,
                          const CheckOptions& options) {
  CheckReport report;

  Status valid = instance.problem.Validate();
  if (!valid.ok()) {
    report.Add("instance-invalid", "", std::string(valid.message()));
    return report;
  }

  estimation::StateEvaluator evaluator = instance.space.MakeEvaluator();
  const bool empty_feasible =
      instance.problem.IsFeasible(evaluator.EmptyState());

  // The Exhaustive oracle's answer, computed once (it is also one of the
  // algorithms under test, but with an unlimited budget it IS ground truth:
  // it enumerates all 2^K states).
  cqp::Solution oracle;
  bool have_oracle = false;
  if (options.check_oracle && instance.K() <= options.max_oracle_k) {
    auto algo = cqp::GetAlgorithm("Exhaustive");
    if (algo.ok()) {
      cqp::SearchContext ctx;
      auto solved = (*algo)->Solve(instance.space, instance.problem, ctx);
      ++report.solves;
      if (!solved.ok()) {
        report.Add("oracle-error", "Exhaustive",
                   std::string(solved.status().message()));
      } else {
        oracle = *solved;
        have_oracle = true;
        if (empty_feasible && !oracle.feasible) {
          report.Add("oracle", "Exhaustive",
                     "empty state is feasible but the oracle says infeasible");
        }
      }
    }
  }

  for (const std::string& name : cqp::AlgorithmNames()) {
    auto lookup = cqp::GetAlgorithm(name);
    if (!lookup.ok()) {
      report.Add("registry", name, std::string(lookup.status().message()));
      continue;
    }
    const cqp::Algorithm* algo = *lookup;
    if (!algo->Supports(instance.problem)) continue;
    ++report.algorithms_checked;

    cqp::Solution sol;
    if (name == "Exhaustive" && have_oracle) {
      sol = oracle;  // already solved above
    } else {
      cqp::SearchContext ctx;
      auto solved = algo->Solve(instance.space, instance.problem, ctx);
      ++report.solves;
      if (!solved.ok()) {
        report.Add("solve-error", name, std::string(solved.status().message()));
        continue;
      }
      sol = *solved;
    }

    if (sol.degraded) {
      report.Add("degraded-unlimited", name,
                 "degraded solution under an unlimited budget");
    }

    // (b) Feasibility: re-evaluate the chosen subset from scratch and check
    // the claimed params and the bounds.
    bool params_ok = true;
    if (options.check_feasibility) {
      if (!sol.chosen.empty() &&
          (sol.chosen.Min() < 0 ||
           static_cast<size_t>(sol.chosen.Max()) >= instance.K())) {
        report.Add("feasibility-range", name,
                   "chosen " + sol.chosen.ToString() + " out of [0,K)");
        params_ok = false;
      } else if (sol.feasible) {
        // Claimed params may come from an incremental ExtendWith chain in
        // the algorithm's own visitation order; demand agreement with the
        // canonical evaluation only up to ulp slack.
        estimation::StateParams recheck = evaluator.Evaluate(sol.chosen);
        if (!NearEq(recheck.doi, sol.params.doi, kUlpSlack) ||
            !NearEq(recheck.cost_ms, sol.params.cost_ms, kUlpSlack) ||
            !NearEq(recheck.size, sol.params.size, kUlpSlack) ||
            recheck.count != sol.params.count) {
          report.Add("feasibility-params", name,
                     "claimed " + P17(sol.params) + " but " +
                         sol.chosen.ToString() + " evaluates to " +
                         P17(recheck));
          params_ok = false;
        }
        if (BoundMargin(instance.problem, recheck) < -kUlpSlack) {
          report.Add("feasibility", name,
                     "claimed-feasible " + sol.chosen.ToString() + " = " +
                         P17(recheck) + " violates " +
                         instance.problem.ToString());
        }
      } else {
        // All-Preferences deliberately deviates from the "every algorithm
        // considers the empty state" contract (it only ever proposes all of
        // P), so "missed the empty state" is not a bug for it.
        if (empty_feasible && name != "All-Preferences") {
          report.Add("feasibility-missed-empty", name,
                     "reported infeasible but the empty state is feasible");
        }
      }
    }

    // (a) Exactness against the oracle. Both chosen subsets are re-evaluated
    // canonically first, so equal subsets compare bit-identically and the
    // comparison is independent of each algorithm's internal accumulation
    // order; residual cross-subset ulp noise is absorbed by kUlpSlack.
    // A feasible/infeasible disagreement is tolerated only when the feasible
    // side's solution sits within ulp slack of a bound (the boundary regime
    // pins bounds exactly on reachable states, where visitation order may
    // legitimately flip the verdict).
    if (have_oracle && params_ok && algo->IsExactFor(instance.problem) &&
        name != "Exhaustive") {
      if (sol.feasible != oracle.feasible) {
        const cqp::Solution& witness = sol.feasible ? sol : oracle;
        double margin = BoundMargin(instance.problem,
                                    evaluator.Evaluate(witness.chosen));
        if (std::fabs(margin) > kUlpSlack) {
          report.Add("oracle", name,
                     StrFormat("feasible=%d but oracle says %d (witness "
                               "margin %.3g)",
                               sol.feasible, oracle.feasible, margin));
        }
      } else if (sol.feasible) {
        estimation::StateParams oracle_canon = evaluator.Evaluate(oracle.chosen);
        double got = instance.problem.ObjectiveValue(
            evaluator.Evaluate(sol.chosen));
        double want = instance.problem.ObjectiveValue(oracle_canon);
        // When the oracle's optimum sits bit-exactly on a bound, whether
        // that state is feasible at all depends on fp evaluation order, so
        // "the" optimum is not well defined and a macroscopically different
        // answer is not evidence of a bug. Everywhere else exactness is
        // demanded to the last ulp.
        bool oracle_pinned =
            std::fabs(BoundMargin(instance.problem, oracle_canon)) <=
            kUlpSlack;
        if (got != want && !NearEq(got, want, kUlpSlack) && !oracle_pinned) {
          report.Add("oracle", name,
                     StrFormat("objective %.17g (chosen %s) != oracle %.17g "
                               "(chosen %s)",
                               got, sol.chosen.ToString().c_str(), want,
                               oracle.chosen.ToString().c_str()));
        }
      }
    }
    // A heuristic can be suboptimal but must never beat the oracle beyond
    // ulp slack (that would mean the oracle — or the solution — is wrong).
    if (have_oracle && params_ok && sol.feasible && oracle.feasible) {
      double got = instance.problem.ObjectiveValue(
          evaluator.Evaluate(sol.chosen));
      double want = instance.problem.ObjectiveValue(
          evaluator.Evaluate(oracle.chosen));
      if (got > want && !NearEq(got, want, kUlpSlack)) {
        report.Add("oracle-beaten", name,
                   "solution " + P17(sol.params) + " beats the oracle " +
                       P17(oracle.params));
      }
    }
    if (have_oracle && sol.feasible && !oracle.feasible && params_ok &&
        BoundMargin(instance.problem, evaluator.Evaluate(sol.chosen)) >
            kUlpSlack) {
      report.Add("oracle-beaten", name,
                 "found a robustly feasible state where the oracle found "
                 "none");
    }

    // Determinism: an identical Solve() must return an identical Solution.
    if (options.check_determinism && name != "Exhaustive") {
      cqp::SearchContext ctx;
      auto again = algo->Solve(instance.space, instance.problem, ctx);
      ++report.solves;
      if (!again.ok()) {
        report.Add("determinism", name, "second solve failed: " +
                                            std::string(again.status().message()));
      } else {
        std::string diff = DiffSolutions(sol, *again);
        if (!diff.empty()) report.Add("determinism", name, diff);
      }
    }

    // (d) EvalCache parity: memoized solves — cold cache, then warm cache —
    // must be field-for-field identical to the uncached solve.
    if (options.check_cache_parity && instance.K() < 64) {
      estimation::EvalCache cache;
      for (const char* phase : {"cold", "warm"}) {
        cqp::SearchContext ctx;
        ctx.eval_cache = &cache;
        auto cached = algo->Solve(instance.space, instance.problem, ctx);
        ++report.solves;
        if (!cached.ok()) {
          report.Add("cache-parity", name,
                     std::string(phase) + " solve failed: " +
                         std::string(cached.status().message()));
          break;
        }
        std::string diff = DiffSolutions(sol, *cached);
        if (!diff.empty()) {
          report.Add("cache-parity", name, std::string(phase) + ": " + diff);
        }
      }
    }

    // (g) Batch-evaluation parity, solution level: `sol` above ran with the
    // SoA/SIMD batch path enabled (the default cacheless context turns it
    // on), so a forced-scalar re-solve must reproduce it. Field-for-field
    // for every algorithm except MinCost-BB, whose batched tails evaluate
    // states its scalar recursion prunes and may therefore record a
    // different equal-cost incumbent; there feasibility (with the usual
    // exact-boundary escape) and the canonical objective value are compared.
    if (options.check_batch_parity && instance.K() < 64) {
      cqp::SearchContext ctx;
      ctx.allow_batch_eval = false;
      auto scalar = algo->Solve(instance.space, instance.problem, ctx);
      ++report.solves;
      if (!scalar.ok()) {
        report.Add("batch-parity", name,
                   "forced-scalar solve failed: " +
                       std::string(scalar.status().message()));
      } else if (name == "MinCost-BB") {
        const cqp::Solution& s = *scalar;
        if (sol.feasible != s.feasible) {
          const cqp::Solution& witness = sol.feasible ? sol : s;
          double margin = BoundMargin(instance.problem,
                                      evaluator.Evaluate(witness.chosen));
          if (std::fabs(margin) > kUlpSlack) {
            report.Add("batch-parity", name,
                       StrFormat("batch feasible=%d scalar=%d (witness "
                                 "margin %.3g)",
                                 sol.feasible, s.feasible, margin));
          }
        } else if (sol.feasible) {
          double got = instance.problem.ObjectiveValue(
              evaluator.Evaluate(sol.chosen));
          double want = instance.problem.ObjectiveValue(
              evaluator.Evaluate(s.chosen));
          if (got != want && !NearEq(got, want, kUlpSlack)) {
            report.Add("batch-parity", name,
                       StrFormat("batch objective %.17g (chosen %s) != "
                                 "scalar %.17g (chosen %s)",
                                 got, sol.chosen.ToString().c_str(), want,
                                 s.chosen.ToString().c_str()));
          }
        }
      } else {
        std::string diff = DiffSolutions(sol, *scalar);
        if (!diff.empty()) report.Add("batch-parity", name, diff);
      }
    }

    // (e) Tight budget: the solve must degrade (not error), stay feasible,
    // and be tagged; an untripped budget must not change the answer.
    if (options.check_budget) {
      SearchBudget budget;
      budget.max_expansions = options.budget_expansions;
      cqp::SearchContext ctx{budget};
      auto bounded = algo->Solve(instance.space, instance.problem, ctx);
      ++report.solves;
      if (!bounded.ok()) {
        report.Add("budget-error", name,
                   "tight budget produced an error instead of a degraded "
                   "solution: " +
                       std::string(bounded.status().message()));
      } else {
        const cqp::Solution& b = *bounded;
        if (ctx.exhausted() && !b.degraded) {
          report.Add("budget-untagged", name,
                     "budget tripped (" +
                         std::string(BudgetExhaustionName(ctx.exhaustion())) +
                         ") but Solution::degraded is false");
        }
        if (!ctx.exhausted()) {
          std::string diff = DiffSolutions(sol, b);
          if (!diff.empty()) {
            report.Add("budget-parity", name,
                       "untripped budget changed the answer: " + diff);
          }
        }
        if (b.feasible) {
          estimation::StateParams recheck = evaluator.Evaluate(b.chosen);
          if (BoundMargin(instance.problem, recheck) < -kUlpSlack) {
            report.Add("budget-feasibility", name,
                       "degraded solution " + b.chosen.ToString() + " = " +
                           P17(recheck) + " violates " +
                           instance.problem.ToString());
          }
        }
      }
    }
  }

  // (f) Prepared-space parity. The per-problem view of a shared
  // PreparedSpace must keep exactly the prefs the monotone bounds allow
  // (a pref with cost > cmax or size < smin can appear in no feasible
  // state, so dropping it is answer-preserving), and Exhaustive on the
  // view — cold and with a warm EvalCache — must reproduce the full-space
  // oracle once the view's indices are mapped back.
  if (options.check_prepared) {
    std::shared_ptr<const space::PreparedSpace> prepared =
        space::PreparedSpace::Create(instance.space);
    std::shared_ptr<const space::PreferenceSpaceResult> view =
        prepared->ForProblem(instance.problem);
    std::vector<int32_t> back;  // view index -> full-space index
    for (size_t i = 0; i < instance.K(); ++i) {
      if (!space::PrunedByProblem(instance.space.prefs[i], instance.problem)) {
        back.push_back(static_cast<int32_t>(i));
      }
    }
    if (back.size() != view->K()) {
      report.Add("prepared-view", "",
                 StrFormat("view has K=%zu but %zu prefs survive the bounds",
                           view->K(), back.size()));
    } else {
      bool fields_ok = true;
      for (size_t i = 0; i < view->K() && fields_ok; ++i) {
        const estimation::ScoredPreference& got = view->prefs[i];
        const estimation::ScoredPreference& want =
            instance.space.prefs[static_cast<size_t>(back[i])];
        if (got.doi != want.doi || got.cost_ms != want.cost_ms ||
            got.selectivity != want.selectivity || got.size != want.size) {
          report.Add("prepared-view", "",
                     StrFormat("view pref %zu is not full-space pref %d "
                               "bit-for-bit",
                               i, back[i]));
          fields_ok = false;
        }
      }
      if (fields_ok && have_oracle && view->K() <= options.max_oracle_k) {
        auto algo = cqp::GetAlgorithm("Exhaustive");
        if (algo.ok()) {
          estimation::EvalCache cache;
          for (const char* phase : {"cold", "warm"}) {
            cqp::SearchContext ctx;
            ctx.eval_cache = &cache;
            auto solved = (*algo)->Solve(*view, instance.problem, ctx);
            ++report.solves;
            if (!solved.ok()) {
              report.Add("prepared-oracle", "Exhaustive",
                         std::string(phase) + ": " +
                             std::string(solved.status().message()));
              break;
            }
            cqp::Solution remapped = *solved;
            std::vector<int32_t> mapped;
            for (int32_t i : solved->chosen) {
              mapped.push_back(back[static_cast<size_t>(i)]);
            }
            remapped.chosen = IndexSet::FromUnsorted(std::move(mapped));
            std::string diff = DiffSolutions(remapped, oracle);
            if (!diff.empty()) {
              report.Add("prepared-oracle", "Exhaustive",
                         std::string(phase) + ": " + diff);
            }
          }
        }
      }
    }
  }

  if (options.check_invariants) {
    CheckEvaluatorInvariants(instance, options, &report);
  }
  if (options.check_batch_parity) {
    CheckBatchKernelParity(instance, options, &report);
  }
  return report;
}

}  // namespace cqp::testing
