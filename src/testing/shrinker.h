#ifndef CQP_TESTING_SHRINKER_H_
#define CQP_TESTING_SHRINKER_H_

#include <functional>

#include "testing/instance.h"
#include "testing/oracle.h"

namespace cqp::testing {

struct ShrinkResult {
  CqpInstance instance;  ///< the minimized instance
  CheckReport report;    ///< CheckInstance() on the minimized instance
  int steps = 0;         ///< accepted reductions
  int probes = 0;        ///< candidate instances evaluated
};

/// Delta-debugging minimization of a failing instance: repeatedly drops
/// preference chunks (ddmin), simplifies surviving preference parameters
/// (selectivity -> 1, cost -> base, doi rounding) and rounds the constraint
/// bounds — accepting a candidate only while CheckInstance() still reports
/// at least one violation with a check name present in the ORIGINAL
/// report. That guard stops the shrinker from wandering to a different,
/// unrelated failure.
///
/// `instance` must actually fail under `options`; if it does not, the
/// result is the unchanged instance with an empty report.
ShrinkResult ShrinkInstance(const CqpInstance& instance,
                            const CheckOptions& options = CheckOptions());

/// Same minimization loop against an arbitrary predicate: a candidate is
/// kept while `fails` returns true for it (filling `*report` is optional —
/// pass what the caller should see for the final instance). Used by tests
/// and by harnesses with custom oracles.
///
/// Each probe runs in a forked child process, so a candidate that crashes
/// the code under test counts as "still failing" instead of killing the
/// caller; consequently the predicate must not rely on side effects being
/// visible to the parent (captured state mutates in the child only).
using FailurePredicate =
    std::function<bool(const CqpInstance& candidate, CheckReport* report)>;
ShrinkResult ShrinkInstanceWith(const CqpInstance& instance,
                                const FailurePredicate& fails);

}  // namespace cqp::testing

#endif  // CQP_TESTING_SHRINKER_H_
