#ifndef CQP_TESTING_PIPELINE_CHECK_H_
#define CQP_TESTING_PIPELINE_CHECK_H_

#include <cstdint>

#include "testing/oracle.h"

namespace cqp::testing {

/// Configuration of the end-to-end execution-path parity sweep.
struct PipelineCheckConfig {
  uint64_t seed = 1;
  size_t n_queries = 4;
  size_t n_profiles = 2;
  /// Preference-space cap for every request (keeps K small enough for
  /// exact solvers on every query).
  size_t max_k = 10;
  bool check_batch = true;       ///< serial vs PersonalizeBatch
  bool check_shared_cache = true;///< private vs shared warm EvalCache
  bool check_server = true;      ///< direct vs loopback server round trip
  bool check_failpoints = true;  ///< injected faults + tight budgets degrade
  bool check_prepared = true;    ///< Prepare()+Solve(), cold and plan-cached,
                                 ///< vs direct Personalize()
  bool check_batch_eval = true;  ///< SoA/SIMD batch evaluation vs forced
                                 ///< scalar (disable_batch_eval) answers
  bool check_rewrite = true;     ///< optimized vs unoptimized emission of the
                                 ///< SAME chosen solution executes to the
                                 ///< same personalized result set
                                 ///< (docs/rewriting.md)
};

struct PipelineCheckResult {
  CheckReport report;     ///< violations across all paths
  size_t requests = 0;    ///< personalization requests compared
};

/// Tentpole check (d)+(e) at the whole-pipeline level: builds a synthetic
/// movie database, generated profiles and an SPJ query workload, then
/// requires field-for-field agreement between
///   * sequential Personalize() calls (the reference),
///   * PersonalizeBatch() over the same requests,
///   * Personalize() with a shared, pre-warmed EvalCache,
///   * explicit Prepare()+Solve(), cold and with a warm plan cache,
///   * a loopback server round trip (JSON wire protocol),
///   * Personalize() with the SoA/SIMD batch evaluation path disabled
///     (objective-level for cost minimization, where branch-and-bound
///     tie-breaking may legitimately pick a different optimal set),
/// and — under injected failpoints plus tight expansion budgets — that
/// every answer is still OK, feasible solutions verify against their
/// problem bounds, and non-Primary answers are tagged degraded.
PipelineCheckResult RunPipelineCheck(
    const PipelineCheckConfig& config = PipelineCheckConfig());

}  // namespace cqp::testing

#endif  // CQP_TESTING_PIPELINE_CHECK_H_
