#ifndef CQP_TESTING_INSTANCE_H_
#define CQP_TESTING_INSTANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "cqp/problem.h"
#include "estimation/evaluator.h"
#include "space/preference_space.h"

namespace cqp::testing {

/// One self-contained CQP problem instance for the differential harness: a
/// synthetic preference space plus a constraint spec. Everything the search
/// layer consumes is here — no database, profile or SQL text is needed to
/// reproduce a search-level bug, which keeps reproducer files tiny.
struct CqpInstance {
  /// Seed and generator note, carried for provenance only ("# ..." lines in
  /// the reproducer file). Never affects behavior.
  uint64_t seed = 0;
  std::string note;

  cqp::ProblemSpec problem;
  space::PreferenceSpaceResult space;

  size_t K() const { return space.K(); }

  /// Rebuilds the D/C/S pointer vectors and re-sorts prefs doi-descending
  /// (stable). Call after any mutation of prefs — the search algorithms
  /// require P to be doi-sorted with D = identity, exactly as
  /// ExtractPreferenceSpace guarantees.
  void Canonicalize();

  /// Serializes to the `cqp-repro v1` text format. Doubles are printed with
  /// %.17g, so a parse of the output is bit-for-bit identical.
  std::string Serialize() const;

  /// Parses a reproducer produced by Serialize() (or written by hand; see
  /// docs/testing.md for the grammar). Unknown directives are an error so a
  /// typo cannot silently weaken a corpus entry.
  static StatusOr<CqpInstance> Parse(const std::string& text);

  /// Serialize() written to `path`; kInternal when the file cannot be
  /// created.
  Status WriteFile(const std::string& path) const;

  /// Parse() of the contents of `path`.
  static StatusOr<CqpInstance> ReadFile(const std::string& path);

  /// Short human description, e.g. "P2 K=8 cmax=350.5".
  std::string Summary() const;
};

/// Builds a ScoredPreference with the synthetic selection "R.a<i> = i" that
/// instance prefs use (search algorithms only read doi/cost_ms/selectivity/
/// size; the selection fields just have to be present and distinct).
estimation::ScoredPreference MakeSyntheticPref(size_t i, double doi,
                                               double cost_ms,
                                               double selectivity,
                                               double base_size);

}  // namespace cqp::testing

#endif  // CQP_TESTING_INSTANCE_H_
