#include "testing/pipeline_check.h"

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "construct/personalizer.h"
#include "estimation/eval_cache.h"
#include "exec/executor.h"
#include "prefs/graph.h"
#include "server/client.h"
#include "server/profile_store.h"
#include "server/protocol.h"
#include "server/server.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"
#include "workload/query_gen.h"

namespace cqp::testing {

namespace {

/// Field-for-field comparison of two full personalization results.
/// Metrics (wall times, cache hit counts) are intentionally excluded: they
/// legitimately differ across execution paths; the ANSWER must not.
std::string DiffResults(const construct::PersonalizeResult& a,
                        const construct::PersonalizeResult& b) {
  if (a.final_sql != b.final_sql) {
    return "final_sql '" + a.final_sql + "' vs '" + b.final_sql + "'";
  }
  if (a.rung != b.rung) {
    return StrFormat("rung %s vs %s", construct::FallbackRungName(a.rung),
                     construct::FallbackRungName(b.rung));
  }
  return DiffSolutions(a.solution, b.solution);
}

/// The problems the parity sweep cycles through (one per request, so all
/// constraint kinds cross every execution path).
cqp::ProblemSpec ProblemFor(size_t i) {
  switch (i % 4) {
    case 0: return cqp::ProblemSpec::Problem2(400.0);
    case 1: return cqp::ProblemSpec::Problem4(0.3);
    case 2: return cqp::ProblemSpec::Problem3(500.0, 1.0, 1e7);
    default: return cqp::ProblemSpec::Problem6(1.0, 1e6);
  }
}

}  // namespace

PipelineCheckResult RunPipelineCheck(const PipelineCheckConfig& config) {
  PipelineCheckResult result;
  CheckReport& report = result.report;

  // A small but non-trivial database: joins exist, selectivities vary.
  workload::MovieDbConfig movie_config;
  movie_config.seed = config.seed;
  movie_config.n_movies = 400;
  movie_config.n_directors = 40;
  movie_config.n_actors = 80;
  movie_config.cast_per_movie = 2;
  auto db = workload::BuildMovieDatabase(movie_config);
  if (!db.ok()) {
    report.Add("pipeline-setup", "", "BuildMovieDatabase: " +
                                         std::string(db.status().message()));
    return result;
  }

  struct User {
    std::string id;
    prefs::Profile profile;
    std::shared_ptr<prefs::PersonalizationGraph> graph;
  };
  std::vector<User> users;
  for (size_t u = 0; u < config.n_profiles; ++u) {
    workload::ProfileGenConfig profile_config;
    profile_config.seed = config.seed + 100 + u;
    auto profile = workload::GenerateProfile(profile_config, movie_config);
    if (!profile.ok()) {
      report.Add("pipeline-setup", "", "GenerateProfile: " +
                                           std::string(profile.status().message()));
      return result;
    }
    auto graph = prefs::PersonalizationGraph::Build(*profile, *db);
    if (!graph.ok()) {
      report.Add("pipeline-setup", "", "Graph build: " +
                                           std::string(graph.status().message()));
      return result;
    }
    users.push_back({"u" + std::to_string(u), *profile,
                     std::make_shared<prefs::PersonalizationGraph>(
                         *std::move(graph))});
  }

  workload::QueryGenConfig query_config;
  query_config.seed = config.seed + 200;
  query_config.n_queries = config.n_queries;
  auto queries = workload::GenerateQueries(query_config, movie_config);
  if (!queries.ok()) {
    report.Add("pipeline-setup", "", "GenerateQueries: " +
                                         std::string(queries.status().message()));
    return result;
  }

  // The reference path: one sequential Personalize() per (user, query).
  construct::Personalizer personalizer(&*db, users[0].graph.get());
  std::vector<construct::PersonalizeRequest> requests;
  std::vector<std::string> request_labels;
  for (size_t u = 0; u < users.size(); ++u) {
    for (size_t q = 0; q < queries->size(); ++q) {
      construct::PersonalizeRequest request;
      request.sql = (*queries)[q].ToSql();
      request.problem = ProblemFor(u * queries->size() + q);
      request.algorithm = "auto";
      request.space_options.max_k = config.max_k;
      request.graph = users[u].graph.get();
      requests.push_back(std::move(request));
      request_labels.push_back(users[u].id + "/q" + std::to_string(q));
    }
  }

  std::vector<construct::PersonalizeResult> reference;
  for (size_t i = 0; i < requests.size(); ++i) {
    auto r = personalizer.Personalize(requests[i]);
    if (!r.ok()) {
      report.Add("pipeline-serial", request_labels[i],
                 std::string(r.status().message()));
      return result;
    }
    reference.push_back(*std::move(r));
    ++result.requests;
  }

  // Path 2: PersonalizeBatch must be element-for-element identical.
  if (config.check_batch) {
    construct::BatchOptions batch_options;
    batch_options.num_threads = 4;
    construct::BatchResult batch =
        personalizer.PersonalizeBatch(requests, batch_options);
    if (batch.results.size() != requests.size()) {
      report.Add("batch-parity", "",
                 StrFormat("%zu results for %zu requests",
                           batch.results.size(), requests.size()));
    } else {
      for (size_t i = 0; i < requests.size(); ++i) {
        if (!batch.results[i].ok()) {
          report.Add("batch-parity", request_labels[i],
                     std::string(batch.results[i].status().message()));
          continue;
        }
        std::string diff = DiffResults(reference[i], *batch.results[i]);
        if (!diff.empty()) {
          report.Add("batch-parity", request_labels[i], diff);
        }
      }
    }
  }

  // Path 3: a shared EvalCache, cold then warm, must not change answers.
  if (config.check_shared_cache) {
    for (size_t i = 0; i < requests.size(); ++i) {
      estimation::EvalCache cache;
      construct::PersonalizeRequest request = requests[i];
      request.eval_cache = &cache;
      for (const char* phase : {"cold", "warm"}) {
        auto r = personalizer.Personalize(request);
        if (!r.ok()) {
          report.Add("cache-path-parity", request_labels[i],
                     std::string(phase) + ": " +
                         std::string(r.status().message()));
          break;
        }
        std::string diff = DiffResults(reference[i], *r);
        if (!diff.empty()) {
          report.Add("cache-path-parity", request_labels[i],
                     std::string(phase) + ": " + diff);
        }
      }
    }
  }

  // Path 4: the split pipeline. Explicit Prepare()+Solve() — cold, then
  // with the PreparedSpace served from a plan cache, then Personalize()
  // with the same cache — must all be field-for-field identical to the
  // direct Personalize() reference. This is the prepared-vs-direct parity
  // contract: one extraction, any problem, bit-identical answers.
  if (config.check_prepared) {
    construct::PlanCache plan_cache;
    for (size_t i = 0; i < requests.size(); ++i) {
      construct::PersonalizeRequest request = requests[i];
      request.plan_cache = &plan_cache;
      request.profile_id = users[i / queries->size()].id;
      request.profile_version = 1;
      bool failed = false;
      for (const char* phase : {"cold", "warm"}) {
        auto prepared = personalizer.Prepare(request);
        if (!prepared.ok()) {
          report.Add("prepared-parity", request_labels[i],
                     std::string(phase) + " Prepare: " +
                         std::string(prepared.status().message()));
          failed = true;
          break;
        }
        if ((std::string(phase) == "warm") != prepared->cache_hit) {
          report.Add("prepared-parity", request_labels[i],
                     StrFormat("%s Prepare reported cache_hit=%d", phase,
                               prepared->cache_hit));
        }
        auto solved = personalizer.Solve(*prepared, request);
        if (!solved.ok()) {
          report.Add("prepared-parity", request_labels[i],
                     std::string(phase) + " Solve: " +
                         std::string(solved.status().message()));
          failed = true;
          break;
        }
        std::string diff = DiffResults(reference[i], *solved);
        if (!diff.empty()) {
          report.Add("prepared-parity", request_labels[i],
                     std::string(phase) + ": " + diff);
        }
      }
      if (failed) continue;
      auto r = personalizer.Personalize(request);
      if (!r.ok()) {
        report.Add("prepared-parity", request_labels[i],
                   "cached Personalize: " + std::string(r.status().message()));
        continue;
      }
      if (!r->plan_cache_hit) {
        report.Add("prepared-parity", request_labels[i],
                   "cached Personalize missed the plan cache");
      }
      std::string diff = DiffResults(reference[i], *r);
      if (!diff.empty()) {
        report.Add("prepared-parity", request_labels[i], "cached: " + diff);
      }
    }
  }

  // Path 5: loopback server round trip. The wire response must reproduce
  // the direct result field for field, for every user and problem kind.
  if (config.check_server) {
    server::ProfileStore store(&*db);
    bool store_ok = true;
    for (const User& user : users) {
      Status put = store.Put(user.id, user.profile);
      if (!put.ok()) {
        report.Add("server-parity", user.id,
                   "profile Put: " + std::string(put.message()));
        store_ok = false;
      }
    }
    server::ServerOptions server_options;
    server_options.port = 0;  // ephemeral
    server::Server server(&*db, &store, server_options);
    Status started = store_ok ? server.Start() : Status::OK();
    if (!started.ok()) {
      report.Add("server-parity", "", "Start: " + std::string(started.message()));
    } else if (store_ok) {
      server::Client client;
      Status connected = client.Connect("127.0.0.1", server.port());
      if (!connected.ok()) {
        report.Add("server-parity", "",
                   "Connect: " + std::string(connected.message()));
      } else {
        for (size_t i = 0; i < requests.size(); ++i) {
          server::WireRequest wire;
          wire.op = server::RequestOp::kPersonalize;
          wire.id = request_labels[i];
          wire.personalize.sql = requests[i].sql;
          wire.personalize.profile_id = users[i / queries->size()].id;
          wire.personalize.algorithm = requests[i].algorithm;
          wire.personalize.max_k = config.max_k;
          wire.personalize.problem = requests[i].problem;
          auto response = client.Call(wire);
          if (!response.ok()) {
            report.Add("server-parity", request_labels[i],
                       "Call: " + std::string(response.status().message()));
            continue;
          }
          if (!response->ok() || !response->personalize.has_value()) {
            report.Add("server-parity", request_labels[i],
                       "error response: " + response->status.ToString());
            continue;
          }
          const server::PersonalizeResultPayload& p = *response->personalize;
          const construct::PersonalizeResult& want = reference[i];
          std::string diff;
          if (p.final_sql != want.final_sql) {
            diff = "final_sql '" + p.final_sql + "' vs '" + want.final_sql + "'";
          } else if (p.rung != construct::FallbackRungName(want.rung)) {
            diff = "rung " + p.rung;
          } else if (p.degraded != want.degraded()) {
            diff = StrFormat("degraded %d vs %d", p.degraded, want.degraded());
          } else if (p.feasible != want.solution.feasible) {
            diff = StrFormat("feasible %d vs %d", p.feasible,
                             want.solution.feasible);
          } else if (p.doi != want.solution.params.doi ||
                     p.cost_ms != want.solution.params.cost_ms ||
                     p.size != want.solution.params.size) {
            diff = StrFormat("params (%.17g %.17g %.17g) vs "
                             "(%.17g %.17g %.17g)",
                             p.doi, p.cost_ms, p.size, want.solution.params.doi,
                             want.solution.params.cost_ms,
                             want.solution.params.size);
          } else {
            std::vector<int32_t> chosen(want.solution.chosen.begin(),
                                        want.solution.chosen.end());
            if (p.chosen != chosen) diff = "chosen sets differ";
          }
          if (!diff.empty()) {
            report.Add("server-parity", request_labels[i], diff);
          }
        }
      }
    }
    server.Stop();
  }

  // Path 6: injected faults + tight expansion budgets. Every request must
  // still answer OK (the ladder's last rung always can); claimed-feasible
  // answers must verify against their bounds; non-Primary answers must be
  // tagged degraded.
  if (config.check_failpoints) {
    std::string spec = StrFormat(
        "space.extract=0.3:%llu,cqp.solve=0.3:%llu",
        static_cast<unsigned long long>(config.seed),
        static_cast<unsigned long long>(config.seed + 1));
    Status armed = failpoint::Configure(spec);
    if (!armed.ok()) {
      report.Add("failpoint-setup", "", std::string(armed.message()));
    } else {
      for (size_t i = 0; i < requests.size(); ++i) {
        construct::PersonalizeRequest request = requests[i];
        request.budget.max_expansions = 16;  // deterministic, very tight
        auto r = personalizer.Personalize(request);
        if (!r.ok()) {
          report.Add("failpoint-error", request_labels[i],
                     "fallback ladder surfaced an error: " +
                         std::string(r.status().message()));
          continue;
        }
        if (r->rung != construct::FallbackRung::kPrimary && !r->degraded()) {
          report.Add("failpoint-untagged", request_labels[i],
                     StrFormat("answered at rung %s but degraded() is false",
                               construct::FallbackRungName(r->rung)));
        }
        if (r->solution.feasible && r->space->K() > 0) {
          estimation::StateEvaluator evaluator = r->space->MakeEvaluator();
          estimation::StateParams recheck =
              evaluator.Evaluate(r->solution.chosen);
          if (!request.problem.IsFeasible(recheck)) {
            report.Add("failpoint-feasibility", request_labels[i],
                       "claimed-feasible degraded solution violates " +
                           request.problem.ToString());
          }
        }
        if (r->attempts.empty()) {
          report.Add("failpoint-trail", request_labels[i],
                     "no degradation-ladder attempts recorded");
        }
      }
    }
    failpoint::Reset();
  }

  // Path 7: the SoA/SIMD batch evaluation core. The reference results above
  // were produced with batch evaluation enabled (the default); re-solving
  // with `disable_batch_eval` forces every algorithm onto the scalar
  // StateEvaluator. Doi-maximization answers must agree field for field
  // (the batch traversals replay the scalar ones exactly — docs/simd.md).
  // Cost-minimization goes through MinCost-BB, whose batched tails preserve
  // the objective value but may break `chosen` ties differently, so those
  // are held to objective-level parity.
  if (config.check_batch_eval) {
    for (size_t i = 0; i < requests.size(); ++i) {
      construct::PersonalizeRequest request = requests[i];
      request.disable_batch_eval = true;
      auto r = personalizer.Personalize(request);
      if (!r.ok()) {
        report.Add("batch-eval-parity", request_labels[i],
                   "scalar re-solve: " + std::string(r.status().message()));
        continue;
      }
      const construct::PersonalizeResult& want = reference[i];
      std::string diff;
      if (request.problem.objective == cqp::Objective::kMinimizeCost) {
        if (r->rung != want.rung) {
          diff = StrFormat("rung %s vs %s",
                           construct::FallbackRungName(r->rung),
                           construct::FallbackRungName(want.rung));
        } else if (r->solution.feasible != want.solution.feasible) {
          diff = StrFormat("feasible %d vs %d", r->solution.feasible,
                           want.solution.feasible);
        } else if (r->solution.feasible) {
          double scalar_obj = request.problem.ObjectiveValue(r->solution.params);
          double batch_obj = request.problem.ObjectiveValue(want.solution.params);
          if (scalar_obj != batch_obj) {
            diff = StrFormat("objective %.17g vs %.17g", scalar_obj, batch_obj);
          }
        }
      } else {
        diff = DiffResults(want, *r);
      }
      if (!diff.empty()) {
        report.Add("batch-eval-parity", request_labels[i], diff);
      }
    }
  }

  // Path 8: the semantic rewrite layer (docs/rewriting.md). Re-emitting the
  // reference answer's OWN chosen solution with the optimizer off must
  // execute to the identical personalized result set — the fixed solution
  // isolates the emission-level passes from the (legitimately answer-
  // changing) pre-search pruning. Dois are compared with an epsilon:
  // subsumption merges regroup the noisy-or product, which can perturb the
  // last floating-point bits.
  if (config.check_rewrite) {
    for (size_t i = 0; i < requests.size(); ++i) {
      const construct::PersonalizeResult& want = reference[i];
      construct::BuildOptions unopt_options;
      unopt_options.optimize = false;
      auto unopt = construct::BuildPersonalizedQuery(
          *db, want.space->query, want.space->prefs,
          want.solution.feasible ? want.solution.chosen : IndexSet(),
          unopt_options);
      if (!unopt.ok()) {
        report.Add("rewrite-parity", request_labels[i],
                   "unoptimized emission: " +
                       std::string(unopt.status().message()));
        continue;
      }
      exec::ExecStats stats;
      auto rows_opt = personalizer.Execute(want, &stats);
      construct::PersonalizeResult unopt_result = want;
      unopt_result.personalized = *std::move(unopt);
      auto rows_unopt = personalizer.Execute(unopt_result, &stats);
      if (!rows_opt.ok() || !rows_unopt.ok()) {
        report.Add("rewrite-parity", request_labels[i],
                   "execution: " + (rows_opt.ok()
                                        ? rows_unopt.status().ToString()
                                        : rows_opt.status().ToString()));
        continue;
      }
      auto keyed = [](const exec::PersonalizedResultSet& rows) {
        std::map<std::string, double> out;
        for (const exec::PersonalizedRow& row : rows.rows) {
          out[row.row.ToString()] = row.doi;
        }
        return out;
      };
      std::map<std::string, double> opt_rows = keyed(*rows_opt);
      std::map<std::string, double> unopt_rows = keyed(*rows_unopt);
      if (opt_rows.size() != unopt_rows.size()) {
        report.Add("rewrite-parity", request_labels[i],
                   StrFormat("%zu rows optimized vs %zu unoptimized",
                             opt_rows.size(), unopt_rows.size()));
        continue;
      }
      auto a = opt_rows.begin();
      auto b = unopt_rows.begin();
      for (; a != opt_rows.end(); ++a, ++b) {
        if (a->first != b->first) {
          report.Add("rewrite-parity", request_labels[i],
                     "row '" + a->first + "' vs '" + b->first + "'");
          break;
        }
        if (std::fabs(a->second - b->second) > 1e-9) {
          report.Add("rewrite-parity", request_labels[i],
                     StrFormat("doi %.17g vs %.17g for row '%s'", a->second,
                               b->second, a->first.c_str()));
          break;
        }
      }
    }
  }

  return result;
}

}  // namespace cqp::testing
