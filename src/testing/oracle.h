#ifndef CQP_TESTING_ORACLE_H_
#define CQP_TESTING_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cqp/algorithm.h"
#include "testing/instance.h"

namespace cqp::testing {

/// One detected correctness violation. `check` is a stable machine-readable
/// name (the shrinker minimizes against it, so a shrink step that merely
/// trades one violation kind for another is rejected).
struct Violation {
  std::string check;      ///< e.g. "oracle", "feasibility", "cache-parity"
  std::string algorithm;  ///< empty for evaluator/transition invariants
  std::string detail;     ///< human-readable specifics
  std::string ToString() const;
};

/// Everything CheckInstance found on one instance.
struct CheckReport {
  std::vector<Violation> violations;
  uint64_t algorithms_checked = 0;
  uint64_t solves = 0;

  bool ok() const { return violations.empty(); }
  void Add(std::string check, std::string algorithm, std::string detail);
  /// All violations, one per line.
  std::string ToString() const;
  /// True when some violation has this check name (any algorithm).
  bool Has(const std::string& check) const;
};

struct CheckOptions {
  bool check_oracle = true;       ///< (a) exact == Exhaustive, bit-for-bit
  bool check_feasibility = true;  ///< (b) re-evaluate + bounds check
  bool check_invariants = true;   ///< (c) Formulas 6/8/10 + transition signs
  bool check_cache_parity = true; ///< (d) EvalCache on/off, cold and warm
  bool check_budget = true;       ///< (e) tight budgets stay feasible+tagged
  bool check_determinism = true;  ///< same Solve() twice, field-for-field
  bool check_prepared = true;     ///< (f) PreparedSpace per-problem view
                                  ///< partitions P correctly and solves to
                                  ///< the full-space optimum (remapped)
  bool check_batch_parity = true; ///< (g) SoA/SIMD batch evaluation path:
                                  ///< kernels vs EvaluateBits/ExtendWith
                                  ///< bit-for-bit, and each algorithm's
                                  ///< batch solve vs its forced-scalar
                                  ///< solve (docs/simd.md)

  /// Expansion cap for the tight-budget probe. Expansion counts are
  /// deterministic (unlike wall-clock deadlines), which keeps the shrinker's
  /// predicate stable across replays.
  uint64_t budget_expansions = 48;
  /// Random subsets/chains per metamorphic invariant.
  int invariant_trials = 32;
  /// Skip the Exhaustive oracle above this K (2^K states; Exhaustive itself
  /// refuses K > 25). Feasibility and invariant checks still run.
  size_t max_oracle_k = 20;
};

/// Runs every registered algorithm on `instance` and checks the tentpole's
/// oracle conditions (a)-(e) — see docs/testing.md for the full list.
/// Violations are appended to the report; an empty report means the
/// instance passed everything.
CheckReport CheckInstance(const CqpInstance& instance,
                          const CheckOptions& options = CheckOptions());

/// Field-for-field comparison of two solutions (feasible, degraded, chosen
/// set, params bit-for-bit). Returns "" when identical, else a description
/// of the first difference.
std::string DiffSolutions(const cqp::Solution& a, const cqp::Solution& b);

}  // namespace cqp::testing

#endif  // CQP_TESTING_ORACLE_H_
