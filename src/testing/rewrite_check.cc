#include "testing/rewrite_check.h"

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "construct/personalizer.h"
#include "exec/executor.h"
#include "prefs/graph.h"
#include "space/preference_space.h"
#include "sql/parser.h"
#include "storage/constraints.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"
#include "workload/query_gen.h"

namespace cqp::testing {

namespace {

/// Executed result set keyed by rendered row text. The §4.2 delivery orders
/// by doi then row text, but near-equal dois may legitimately swap under
/// noisy-or regrouping, so equality is checked as a keyed multiset with a
/// doi epsilon instead of as an ordered sequence.
using RowMap = std::map<std::string, double>;

RowMap ToRowMap(const exec::PersonalizedResultSet& rows) {
  RowMap out;
  for (const exec::PersonalizedRow& row : rows.rows) {
    out[row.row.ToString()] = row.doi;
  }
  return out;
}

/// "" when the two executed result sets agree (same rows, dois within
/// epsilon), else a description of the first difference.
std::string DiffRowMaps(const RowMap& opt, const RowMap& unopt) {
  if (opt.size() != unopt.size()) {
    return StrFormat("%zu rows optimized vs %zu unoptimized", opt.size(),
                     unopt.size());
  }
  auto a = opt.begin();
  auto b = unopt.begin();
  for (; a != opt.end(); ++a, ++b) {
    if (a->first != b->first) {
      return "row '" + a->first + "' vs '" + b->first + "'";
    }
    if (std::fabs(a->second - b->second) > 1e-9) {
      return StrFormat("doi %.17g vs %.17g for row '%s'", a->second,
                       b->second, a->first.c_str());
    }
  }
  return "";
}

std::string DiffAnswers(const construct::PersonalizeResult& a,
                        const construct::PersonalizeResult& b) {
  if (a.final_sql != b.final_sql) {
    return "final_sql '" + a.final_sql + "' vs '" + b.final_sql + "'";
  }
  return DiffSolutions(a.solution, b.solution);
}

cqp::ProblemSpec ProblemFor(size_t i) {
  switch (i % 4) {
    case 0: return cqp::ProblemSpec::Problem2(400.0);
    case 1: return cqp::ProblemSpec::Problem4(0.3);
    case 2: return cqp::ProblemSpec::Problem3(500.0, 1.0, 1e7);
    default: return cqp::ProblemSpec::Problem6(1.0, 1e6);
  }
}

}  // namespace

RewriteCheckResult RunRewriteCheck(const RewriteCheckConfig& config) {
  RewriteCheckResult result;
  CheckReport& report = result.report;

  workload::MovieDbConfig movie_config;
  movie_config.seed = config.seed;
  movie_config.n_movies = 400;
  movie_config.n_directors = 40;
  movie_config.n_actors = 80;
  movie_config.cast_per_movie = 2;
  auto db = workload::BuildMovieDatabase(movie_config);
  if (!db.ok()) {
    report.Add("rewrite-setup", "",
               "BuildMovieDatabase: " + std::string(db.status().message()));
    return result;
  }

  // The integrity constraints are mined from the data itself, so they hold
  // by construction and every constraint-based rewrite is result-preserving
  // on this database. CheckConstraints guards the miner, not the data.
  auto derived = storage::DeriveConstraints(*db);
  if (!derived.ok()) {
    report.Add("rewrite-setup", "",
               "DeriveConstraints: " + std::string(derived.status().message()));
    return result;
  }
  Status checked = storage::CheckConstraints(*db, *derived);
  if (!checked.ok()) {
    report.Add("rewrite-derive", "",
               "mined constraints fail on their own data: " +
                   std::string(checked.message()));
    return result;
  }
  db->SetConstraints(*std::move(derived));

  struct User {
    std::string id;
    std::shared_ptr<prefs::PersonalizationGraph> graph;
  };
  std::vector<User> users;
  for (size_t u = 0; u < config.n_profiles; ++u) {
    workload::ProfileGenConfig profile_config;
    profile_config.seed = config.seed + 100 + u;
    auto profile = workload::GenerateProfile(profile_config, movie_config);
    if (!profile.ok()) {
      report.Add("rewrite-setup", "",
                 "GenerateProfile: " + std::string(profile.status().message()));
      return result;
    }
    auto graph = prefs::PersonalizationGraph::Build(*profile, *db);
    if (!graph.ok()) {
      report.Add("rewrite-setup", "",
                 "Graph build: " + std::string(graph.status().message()));
      return result;
    }
    users.push_back({"u" + std::to_string(u),
                     std::make_shared<prefs::PersonalizationGraph>(
                         *std::move(graph))});
  }

  workload::QueryGenConfig query_config;
  query_config.seed = config.seed + 200;
  query_config.n_queries = config.n_queries;
  auto queries = workload::GenerateQueries(query_config, movie_config);
  if (!queries.ok()) {
    report.Add("rewrite-setup", "",
               "GenerateQueries: " + std::string(queries.status().message()));
    return result;
  }

  construct::Personalizer personalizer(&*db, users[0].graph.get());
  estimation::ParameterEstimator estimator(&*db);
  exec::Executor executor(&*db);

  for (size_t u = 0; u < users.size(); ++u) {
    for (size_t q = 0; q < queries->size(); ++q) {
      std::string label = users[u].id + "/q" + std::to_string(q);
      construct::PersonalizeRequest request;
      request.sql = (*queries)[q].ToSql();
      request.problem = ProblemFor(u * queries->size() + q);
      request.algorithm = "auto";
      request.space_options.max_k = config.max_k;
      request.graph = users[u].graph.get();

      auto r = personalizer.Personalize(request);
      if (!r.ok()) {
        report.Add("rewrite-solve", label, std::string(r.status().message()));
        continue;
      }
      ++result.requests;
      result.conjuncts_dropped += r->personalized.rewrite.conjuncts_dropped;
      result.branches_eliminated +=
          r->personalized.rewrite.branches_eliminated();
      result.prefs_pruned += r->space->constraint_pruned;

      // ---- Obligation 1: metamorphic emission equivalence. ----
      // The pre-search pruning legitimately changes WHICH solution the
      // search picks, so the comparison fixes the solution: the same chosen
      // subset is re-emitted with the optimizer off, and both rewritings
      // must execute to the same personalized result set.
      if (config.check_equivalence) {
        construct::BuildOptions unopt_options = request.build_options;
        unopt_options.optimize = false;
        auto unopt = construct::BuildPersonalizedQuery(
            *db, r->space->query, r->space->prefs,
            r->solution.feasible ? r->solution.chosen : IndexSet(),
            unopt_options);
        if (!unopt.ok()) {
          report.Add("rewrite-equivalence", label,
                     "unoptimized emission: " +
                         std::string(unopt.status().message()));
        } else {
          exec::ExecStats stats;
          auto rows_opt = personalizer.Execute(*r, &stats);
          construct::PersonalizeResult unopt_result = *r;
          unopt_result.personalized = *std::move(unopt);
          auto rows_unopt = personalizer.Execute(unopt_result, &stats);
          if (!rows_opt.ok() || !rows_unopt.ok()) {
            report.Add("rewrite-equivalence", label,
                       "execution: " +
                           (rows_opt.ok() ? rows_unopt.status().ToString()
                                          : rows_opt.status().ToString()));
          } else {
            std::string diff =
                DiffRowMaps(ToRowMap(*rows_opt), ToRowMap(*rows_unopt));
            if (!diff.empty()) {
              report.Add("rewrite-equivalence", label, diff);
            }
          }
        }
      }

      // ---- Obligation 2: the vacuity oracle. ----
      // Re-extract without pruning, flag each candidate the pruning pass
      // would reject, and require its actual sub-query to return zero rows.
      // A single row would prove the contradiction detector unsound.
      if (config.check_vacuity) {
        auto parsed = sql::ParseSelect(request.sql);
        if (!parsed.ok()) {
          report.Add("rewrite-vacuity", label,
                     "parse: " + std::string(parsed.status().message()));
          continue;
        }
        space::PreferenceSpaceOptions unpruned_options = request.space_options;
        unpruned_options.constraint_prune = false;
        auto unpruned = space::ExtractPreferenceSpace(
            *parsed, *users[u].graph, estimator, unpruned_options);
        if (!unpruned.ok()) {
          report.Add("rewrite-vacuity", label,
                     "extract: " + std::string(unpruned.status().message()));
          continue;
        }
        for (const estimation::ScoredPreference& p : unpruned->prefs) {
          if (!space::PreferenceContradictsQuery(*parsed, p.pref,
                                                 db->constraints())) {
            continue;
          }
          ++result.vacuity_probes;
          auto sub = construct::BuildSubQuery(*db, *parsed, p.pref, 1);
          if (!sub.ok()) {
            report.Add("rewrite-vacuity", label,
                       "BuildSubQuery: " + std::string(sub.status().message()));
            continue;
          }
          exec::ExecStats stats;
          auto rows = executor.Execute(*sub, &stats);
          if (!rows.ok()) {
            report.Add("rewrite-vacuity", label,
                       "execute: " + std::string(rows.status().message()));
            continue;
          }
          if (rows->row_count() != 0) {
            report.Add("rewrite-vacuity", label,
                       StrFormat("pruned preference '%s' returned %zu rows",
                                 p.pref.ConditionString().c_str(),
                                 rows->row_count()));
          }
        }
      }
    }
  }

  // ---- Obligation 3: constraint-revision plan invalidation. ----
  if (config.check_revision && !queries->empty()) {
    construct::PlanCache plan_cache;
    construct::PersonalizeRequest request;
    request.sql = (*queries)[0].ToSql();
    request.problem = ProblemFor(0);
    request.algorithm = "auto";
    request.space_options.max_k = config.max_k;
    request.graph = users[0].graph.get();
    request.plan_cache = &plan_cache;
    request.profile_id = "rw";
    request.profile_version = 1;
    auto cold = personalizer.Personalize(request);
    auto warm = personalizer.Personalize(request);
    if (!cold.ok() || !warm.ok()) {
      report.Add("rewrite-revision", "",
                 (cold.ok() ? warm.status() : cold.status()).ToString());
    } else {
      if (!warm->plan_cache_hit) {
        report.Add("rewrite-revision", "",
                   "second Personalize missed the plan cache");
      }
      // Bump the revision with a VALUE-identical constraint set: every
      // cached plan must become unreachable, and the fresh extraction must
      // reproduce the previous answer exactly.
      db->SetConstraints(catalog::ConstraintSet(db->constraints()));
      auto fresh = personalizer.Personalize(request);
      if (!fresh.ok()) {
        report.Add("rewrite-revision", "", fresh.status().ToString());
      } else {
        if (fresh->plan_cache_hit) {
          report.Add("rewrite-revision", "",
                     "stale plan served after SetConstraints bumped the "
                     "revision");
        }
        std::string diff = DiffAnswers(*warm, *fresh);
        if (!diff.empty()) {
          report.Add("rewrite-revision", "", "re-solve parity: " + diff);
        }
      }
    }
  }

  return result;
}

}  // namespace cqp::testing
