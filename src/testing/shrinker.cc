#include "testing/shrinker.h"

#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "testing/isolation.h"

namespace cqp::testing {

namespace {

/// The names of the checks the original instance fails; a shrink step must
/// keep at least one of them failing.
std::set<std::string> FailingChecks(const CheckReport& report) {
  std::set<std::string> names;
  for (const Violation& v : report.violations) names.insert(v.check);
  return names;
}

/// Runs the predicate in a forked child: smaller candidates of a genuinely
/// buggy instance often CHECK-abort outright (e.g. an off-by-one start
/// state indexing past a one-preference space), and such a crash must count
/// as "still failing", not take down the driver.
IsolatedOutcome Probe(const FailurePredicate& fails,
                      const CqpInstance& candidate) {
  return RunIsolated([&](std::string* text, int* solves) {
    CheckReport report;
    bool failed = fails(candidate, &report);
    *text = report.ToString();
    *solves = static_cast<int>(report.solves);
    return failed;
  });
}

struct Shrinker {
  const FailurePredicate& fails;
  CqpInstance best;
  IsolatedOutcome best_outcome;
  int steps = 0;
  int probes = 0;

  /// True (and adopts `candidate`) when it still fails the predicate.
  bool Try(CqpInstance candidate) {
    candidate.Canonicalize();
    if (!candidate.problem.Validate().ok()) return false;
    ++probes;
    IsolatedOutcome outcome = Probe(fails, candidate);
    if (!outcome.failed) return false;
    best = std::move(candidate);
    best_outcome = std::move(outcome);
    ++steps;
    return true;
  }

  /// Classic ddmin over the preference list: try dropping chunks of
  /// decreasing size until no single preference can be removed.
  void DdminPrefs() {
    size_t chunk = (best.K() + 1) / 2;
    while (chunk >= 1) {
      bool removed_any = false;
      for (size_t start = 0; start + chunk <= best.K();) {
        CqpInstance candidate = best;
        candidate.space.prefs.erase(
            candidate.space.prefs.begin() + static_cast<long>(start),
            candidate.space.prefs.begin() + static_cast<long>(start + chunk));
        if (candidate.K() > 0 && Try(std::move(candidate))) {
          removed_any = true;  // best shrank; same start now names new prefs
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) {
        if (!removed_any) break;
      } else if (!removed_any) {
        chunk /= 2;
      }
    }
  }

  /// Simplifies the surviving preferences' parameters toward "round"
  /// values, one field at a time.
  void SimplifyValues() {
    for (size_t i = 0; i < best.K(); ++i) {
      {
        CqpInstance candidate = best;
        candidate.space.prefs[i].selectivity = 1.0;
        Try(std::move(candidate));
      }
      {
        CqpInstance candidate = best;
        candidate.space.prefs[i].cost_ms = candidate.space.base.cost_ms;
        Try(std::move(candidate));
      }
      for (double digits : {1.0, 100.0}) {
        CqpInstance candidate = best;
        double rounded =
            std::round(candidate.space.prefs[i].doi * digits) / digits;
        if (rounded < 0.0 || rounded > 1.0 ||
            rounded == candidate.space.prefs[i].doi) {
          continue;
        }
        candidate.space.prefs[i].doi = rounded;
        Try(std::move(candidate));
      }
    }
    // Base parameters: a unit base is the easiest to reason about.
    for (double base_cost : {1.0, 100.0}) {
      CqpInstance candidate = best;
      candidate.space.base.cost_ms = base_cost;
      for (auto& p : candidate.space.prefs) {
        if (p.cost_ms < base_cost) p.cost_ms = base_cost;
      }
      Try(std::move(candidate));
    }
    for (double base_size : {1.0, 1000.0}) {
      CqpInstance candidate = best;
      candidate.space.base.size = base_size;
      Try(std::move(candidate));
    }
  }

  /// Rounds the constraint bounds; boundary-regime reproducers often carry
  /// 17 significant digits that are irrelevant to the bug.
  void SimplifyBounds() {
    auto try_rounded = [&](std::optional<double> cqp::ProblemSpec::*field) {
      if (!(best.problem.*field).has_value()) return;
      for (double digits : {1.0, 1000.0}) {
        CqpInstance candidate = best;
        double v = *(candidate.problem.*field);
        double rounded = std::round(v * digits) / digits;
        if (rounded == v) continue;
        candidate.problem.*field = rounded;
        Try(std::move(candidate));
      }
    };
    try_rounded(&cqp::ProblemSpec::cmax_ms);
    try_rounded(&cqp::ProblemSpec::dmin);
    try_rounded(&cqp::ProblemSpec::smin);
    try_rounded(&cqp::ProblemSpec::smax);
  }
};

}  // namespace

ShrinkResult ShrinkInstanceWith(const CqpInstance& instance,
                                const FailurePredicate& fails) {
  ShrinkResult result;
  result.instance = instance;
  IsolatedOutcome initial = Probe(fails, instance);
  if (!initial.failed) return result;  // nothing to shrink

  Shrinker shrinker{fails, instance, std::move(initial)};
  // Alternate removal and simplification to a fixpoint: simplified values
  // can unlock further removals and vice versa.
  int prev_steps = -1;
  for (int round = 0; round < 8 && shrinker.steps != prev_steps; ++round) {
    prev_steps = shrinker.steps;
    shrinker.DdminPrefs();
    shrinker.SimplifyValues();
    shrinker.SimplifyBounds();
  }

  result.instance = shrinker.best;
  result.instance.note += "\nshrunk from K=" + std::to_string(instance.K()) +
                          " in " + std::to_string(shrinker.steps) + " steps";
  result.instance.Canonicalize();
  // The minimized instance's report: re-run inline when the winning probe
  // exited cleanly (so callers get a structured CheckReport), synthesize a
  // crash entry otherwise — re-running a crasher inline would abort here.
  if (shrinker.best_outcome.crashed) {
    result.report.Add("crash", "", shrinker.best_outcome.report_text);
  } else {
    fails(shrinker.best, &result.report);
  }
  result.steps = shrinker.steps;
  result.probes = shrinker.probes;
  return result;
}

ShrinkResult ShrinkInstance(const CqpInstance& instance,
                            const CheckOptions& options) {
  // First verdict in isolation: the instance itself may crash the code
  // under test, and that is still a shrinkable failure.
  IsolatedOutcome first =
      Probe([&](const CqpInstance& candidate, CheckReport* report) {
        *report = CheckInstance(candidate, options);
        return !report->ok();
      },
            instance);
  if (!first.failed) {
    ShrinkResult result;
    result.instance = instance;
    return result;
  }
  if (first.crashed) {
    // Crash mode: keep only candidates that also crash (the predicate runs
    // the checks for their side effect of possibly aborting the child and
    // rejects every candidate that survives them).
    return ShrinkInstanceWith(
        instance, [&](const CqpInstance& candidate, CheckReport*) {
          CheckInstance(candidate, options);
          return false;
        });
  }
  // Non-crashing failure: the inline re-run is safe and yields the original
  // violation names, which gate every shrink step so the minimizer cannot
  // wander off to an unrelated failure.
  CheckReport original = CheckInstance(instance, options);
  std::set<std::string> targets = FailingChecks(original);
  return ShrinkInstanceWith(
      instance, [&](const CqpInstance& candidate, CheckReport* report) {
        CheckReport r = CheckInstance(candidate, options);
        bool still_fails = false;
        for (const Violation& v : r.violations) {
          if (targets.count(v.check) != 0) {
            still_fails = true;
            break;
          }
        }
        if (still_fails) *report = std::move(r);
        return still_fails;
      });
}

}  // namespace cqp::testing
