#include "testing/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/index_set.h"
#include "common/str_util.h"

namespace cqp::testing {

namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

/// Draws the per-preference doi values for the requested shape.
std::vector<double> DrawDois(Rng& rng, size_t k, DoiShape shape) {
  std::vector<double> dois(k);
  switch (shape) {
    case DoiShape::kUniform:
      for (double& d : dois) d = rng.UniformDouble(0.01, 0.99);
      break;
    case DoiShape::kClustered: {
      size_t centers = static_cast<size_t>(rng.Uniform(1, 3));
      std::vector<double> center(centers);
      for (double& c : center) c = rng.UniformDouble(0.1, 0.9);
      for (double& d : dois) {
        double c = center[static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(centers) - 1))];
        d = Clamp01(c + 0.05 * rng.Gaussian());
      }
      break;
    }
    case DoiShape::kTies: {
      // A handful of distinct levels, so many prefs share a doi exactly:
      // tie-breaking in the pointer vectors and set-vs-set comparisons in
      // the algorithms must stay deterministic.
      size_t levels = static_cast<size_t>(rng.Uniform(2, 4));
      std::vector<double> level(levels);
      for (double& l : level) l = rng.UniformDouble(0.05, 0.95);
      for (double& d : dois) {
        d = level[static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(levels) - 1))];
      }
      break;
    }
    case DoiShape::kExtreme:
      for (double& d : dois) {
        switch (rng.Uniform(0, 4)) {
          case 0: d = 0.0; break;
          case 1: d = 1.0; break;
          case 2: d = 1e-9; break;
          case 3: d = 1.0 - 1e-9; break;
          default: d = rng.UniformDouble(0.0, 1.0); break;
        }
      }
      break;
  }
  return dois;
}

/// A random (possibly empty) subset of [0, k) with each member included
/// independently; used to place boundary-regime bounds EXACTLY on a
/// reachable state's parameters.
IndexSet DrawSubset(Rng& rng, size_t k) {
  std::vector<int32_t> members;
  for (size_t i = 0; i < k; ++i) {
    if (rng.Bernoulli(0.5)) members.push_back(static_cast<int32_t>(i));
  }
  return IndexSet::FromUnsorted(std::move(members));
}

}  // namespace

const char* DoiShapeName(DoiShape shape) {
  switch (shape) {
    case DoiShape::kUniform: return "uniform";
    case DoiShape::kClustered: return "clustered";
    case DoiShape::kTies: return "ties";
    case DoiShape::kExtreme: return "extreme";
  }
  return "?";
}

const char* BoundRegimeName(BoundRegime regime) {
  switch (regime) {
    case BoundRegime::kTight: return "tight";
    case BoundRegime::kLoose: return "loose";
    case BoundRegime::kInfeasible: return "infeasible";
    case BoundRegime::kBoundary: return "boundary";
  }
  return "?";
}

CqpInstance GenerateInstance(Rng& rng, const GeneratorConfig& config) {
  CqpInstance instance;

  size_t k = static_cast<size_t>(
      rng.Uniform(static_cast<int64_t>(config.k_min),
                  static_cast<int64_t>(config.k_max)));
  int problem_class = config.problem_class > 0
                          ? config.problem_class
                          : static_cast<int>(rng.Uniform(1, 6));
  DoiShape shape = config.doi_shape >= 0
                       ? static_cast<DoiShape>(config.doi_shape)
                       : static_cast<DoiShape>(rng.Uniform(0, 3));
  BoundRegime regime = config.bound_regime >= 0
                           ? static_cast<BoundRegime>(config.bound_regime)
                           : static_cast<BoundRegime>(rng.Uniform(0, 3));

  double base_cost = rng.UniformDouble(1.0, 500.0);
  double base_size = rng.Bernoulli(0.05)
                         ? 0.0  // empty original answer: size stays 0
                         : rng.UniformDouble(1.0, 1e6);
  instance.space.base.cost_ms = base_cost;
  instance.space.base.size = base_size;

  std::vector<double> dois = DrawDois(rng, k, shape);
  for (size_t i = 0; i < k; ++i) {
    // Cost ties with the base (selection pushed into an existing scan) are
    // common in real plans and are where cost-sorted tie-breaks matter.
    double cost = rng.Bernoulli(0.2)
                      ? base_cost
                      : base_cost + rng.UniformDouble(0.1, 3.0 * base_cost);
    double sel;
    if (rng.Bernoulli(0.05)) {
      sel = 0.0;  // predicate matches nothing
    } else if (rng.Bernoulli(0.1)) {
      sel = 1.0;  // predicate filters nothing
    } else {
      sel = rng.UniformDouble(0.001, 0.999);
    }
    instance.space.prefs.push_back(
        MakeSyntheticPref(i, dois[i], cost, sel, base_size));
  }
  instance.Canonicalize();

  // Bounds are placed relative to the actually reachable parameter range:
  // empty state (max size, min cost, doi 0) .. supreme state (min size,
  // max cost, max doi).
  estimation::StateEvaluator evaluator = instance.space.MakeEvaluator();
  estimation::StateParams empty = evaluator.EmptyState();
  estimation::StateParams supreme = evaluator.SupremeState();
  estimation::StateParams pivot = evaluator.Evaluate(DrawSubset(rng, k));

  auto draw_cmax = [&]() -> double {
    switch (regime) {
      case BoundRegime::kTight:
        return rng.UniformDouble(empty.cost_ms, supreme.cost_ms);
      case BoundRegime::kLoose:
        return supreme.cost_ms * rng.UniformDouble(1.0, 2.0) + 1.0;
      case BoundRegime::kInfeasible:
        // Below even the original query's cost: no state qualifies.
        return empty.cost_ms * rng.UniformDouble(0.1, 0.9);
      case BoundRegime::kBoundary:
        return pivot.cost_ms;
    }
    return empty.cost_ms;
  };
  auto draw_dmin = [&]() -> double {
    switch (regime) {
      case BoundRegime::kTight:
        return rng.UniformDouble(0.0, supreme.doi);
      case BoundRegime::kLoose:
        return 0.0;  // doi >= 0 holds for every state
      case BoundRegime::kInfeasible: {
        // Above even the supreme doi. Noisy-or can reach exactly 1.0 (a
        // member with doi 1), in which case no infeasible dmin exists —
        // fall back to the boundary value.
        double d = std::nextafter(supreme.doi, 2.0);
        return d <= 1.0 ? d : supreme.doi;
      }
      case BoundRegime::kBoundary:
        return pivot.doi;
    }
    return 0.0;
  };
  // Sizes shrink from base_size (empty) down to supreme.size (all prefs).
  auto draw_size_band = [&](std::optional<double>* smin,
                            std::optional<double>* smax) {
    bool lo = rng.Bernoulli(0.7);
    bool hi = rng.Bernoulli(0.7);
    if (!lo && !hi) lo = true;  // the class needs at least one size bound
    switch (regime) {
      case BoundRegime::kTight: {
        double a = rng.UniformDouble(supreme.size, empty.size);
        double b = rng.UniformDouble(supreme.size, empty.size);
        if (a > b) std::swap(a, b);
        if (lo) *smin = a;
        if (hi) *smax = b;
        break;
      }
      case BoundRegime::kLoose:
        if (lo) *smin = 0.0;
        if (hi) *smax = empty.size * 2.0 + 1.0;
        break;
      case BoundRegime::kInfeasible:
        // A band above the largest reachable size: even the original query
        // is too small.
        *smin = empty.size * 1.5 + 1.0;
        *smax = empty.size * 3.0 + 2.0;
        break;
      case BoundRegime::kBoundary:
        if (lo) *smin = pivot.size;
        if (hi) *smax = pivot.size;
        if (lo && hi && *smin > *smax) std::swap(*smin, *smax);
        break;
    }
  };

  cqp::ProblemSpec& p = instance.problem;
  switch (problem_class) {
    case 1:
      p.objective = cqp::Objective::kMaximizeDoi;
      draw_size_band(&p.smin, &p.smax);
      break;
    case 2:
      p.objective = cqp::Objective::kMaximizeDoi;
      p.cmax_ms = draw_cmax();
      break;
    case 3:
      p.objective = cqp::Objective::kMaximizeDoi;
      p.cmax_ms = draw_cmax();
      draw_size_band(&p.smin, &p.smax);
      break;
    case 4:
      p.objective = cqp::Objective::kMinimizeCost;
      p.dmin = draw_dmin();
      break;
    case 5:
      p.objective = cqp::Objective::kMinimizeCost;
      p.dmin = draw_dmin();
      draw_size_band(&p.smin, &p.smax);
      break;
    case 6:
    default:
      p.objective = cqp::Objective::kMinimizeCost;
      draw_size_band(&p.smin, &p.smax);
      break;
  }

  instance.note = StrFormat("generated: class=P%d k=%zu doi=%s bounds=%s",
                            problem_class, k, DoiShapeName(shape),
                            BoundRegimeName(regime));
  return instance;
}

std::string RandomJunk(Rng& rng, size_t n) {
  static constexpr char kPrintable[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
      "{}[]\":,.\\/ ";
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out += kPrintable[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(sizeof(kPrintable)) - 2))];
  }
  return out;
}

std::string CorruptFrame(Rng& rng, const std::string& frame) {
  std::string out = frame;
  switch (rng.Uniform(0, 4)) {
    case 0: {  // truncate
      if (out.empty()) return out;
      out.resize(static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(out.size()) - 1)));
      break;
    }
    case 1: {  // flip random bytes
      if (out.empty()) return out;
      int flips = static_cast<int>(rng.Uniform(1, 8));
      for (int i = 0; i < flips; ++i) {
        size_t pos = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(out.size()) - 1));
        char c = static_cast<char>(rng.Uniform(1, 126));  // never '\0' here
        if (c == '\n') c = ' ';
        out[pos] = c;
      }
      break;
    }
    case 2: {  // inject NUL bytes
      size_t pos = out.empty() ? 0
                               : static_cast<size_t>(rng.Uniform(
                                     0, static_cast<int64_t>(out.size())));
      out.insert(pos, std::string(static_cast<size_t>(rng.Uniform(1, 4)),
                                  '\0'));
      break;
    }
    case 3: {  // inject invalid UTF-8 (lone continuation / overlong lead)
      static constexpr const char* kBad[] = {"\x80", "\xc0\xaf", "\xff\xfe",
                                             "\xed\xa0\x80"};
      size_t pos = out.empty() ? 0
                               : static_cast<size_t>(rng.Uniform(
                                     0, static_cast<int64_t>(out.size())));
      out.insert(pos, kBad[rng.Uniform(0, 3)]);
      break;
    }
    default: {  // splice printable junk into the middle
      size_t pos = out.empty() ? 0
                               : static_cast<size_t>(rng.Uniform(
                                     0, static_cast<int64_t>(out.size())));
      out.insert(pos, RandomJunk(rng, static_cast<size_t>(
                                          rng.Uniform(1, 64))));
      break;
    }
  }
  return out;
}

}  // namespace cqp::testing
