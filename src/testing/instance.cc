#include "testing/instance.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace cqp::testing {

namespace {

constexpr const char* kHeader = "cqp-repro v1";

/// %.17g: the shortest printf precision that round-trips every double
/// through strtod bit-for-bit.
std::string G17(double v) { return StrFormat("%.17g", v); }

StatusOr<double> ParseDouble(std::string_view token) {
  std::string s(token);
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return InvalidArgument("bad number '" + s + "'");
  }
  return v;
}

}  // namespace

estimation::ScoredPreference MakeSyntheticPref(size_t i, double doi,
                                               double cost_ms,
                                               double selectivity,
                                               double base_size) {
  estimation::ScoredPreference p;
  p.doi = doi;
  p.cost_ms = cost_ms;
  p.selectivity = selectivity;
  p.size = base_size * selectivity;
  p.pref.selection.relation = "R";
  p.pref.selection.attribute = "a" + std::to_string(i);
  p.pref.selection.value = catalog::Value(static_cast<int64_t>(i));
  p.pref.selection.doi = doi;
  return p;
}

void CqpInstance::Canonicalize() {
  std::stable_sort(space.prefs.begin(), space.prefs.end(),
                   [](const estimation::ScoredPreference& a,
                      const estimation::ScoredPreference& b) {
                     return a.doi > b.doi;
                   });
  for (size_t i = 0; i < space.prefs.size(); ++i) {
    estimation::ScoredPreference& p = space.prefs[i];
    p.size = space.base.size * p.selectivity;
    p = MakeSyntheticPref(i, p.doi, p.cost_ms, p.selectivity, space.base.size);
  }
  space::BuildPointerVectors(space.prefs, &space.D, &space.C, &space.S);
}

std::string CqpInstance::Summary() const {
  return StrFormat("P%d K=%zu %s", problem.ProblemNumber(), K(),
                   problem.ToString().c_str());
}

std::string CqpInstance::Serialize() const {
  std::string out = kHeader;
  out += "\n";
  if (!note.empty()) {
    for (const std::string& line : Split(note, '\n')) {
      out += "# " + line + "\n";
    }
  }
  out += "seed " + std::to_string(seed) + "\n";
  out += std::string("objective ") +
         (problem.objective == cqp::Objective::kMaximizeDoi ? "max_doi"
                                                            : "min_cost") +
         "\n";
  if (problem.cmax_ms) out += "cmax " + G17(*problem.cmax_ms) + "\n";
  if (problem.dmin) out += "dmin " + G17(*problem.dmin) + "\n";
  if (problem.smin) out += "smin " + G17(*problem.smin) + "\n";
  if (problem.smax) out += "smax " + G17(*problem.smax) + "\n";
  out += "base_cost " + G17(space.base.cost_ms) + "\n";
  out += "base_size " + G17(space.base.size) + "\n";
  for (const estimation::ScoredPreference& p : space.prefs) {
    out += "pref " + G17(p.doi) + " " + G17(p.cost_ms) + " " +
           G17(p.selectivity) + "\n";
  }
  return out;
}

StatusOr<CqpInstance> CqpInstance::Parse(const std::string& text) {
  CqpInstance instance;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  bool saw_base_cost = false, saw_base_size = false;
  std::vector<std::string> note_lines;
  struct RawPref {
    double doi, cost, sel;
  };
  std::vector<RawPref> raw;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    if (!saw_header) {
      if (stripped != kHeader) {
        return InvalidArgument("reproducer must start with '" +
                               std::string(kHeader) + "'");
      }
      saw_header = true;
      continue;
    }
    if (stripped[0] == '#') {
      note_lines.push_back(std::string(StripWhitespace(stripped.substr(1))));
      continue;
    }
    std::vector<std::string> tokens;
    for (const std::string& t : Split(std::string(stripped), ' ')) {
      if (!t.empty()) tokens.push_back(t);
    }
    const std::string& key = tokens[0];
    auto one_value = [&]() -> StatusOr<double> {
      if (tokens.size() != 2) {
        return InvalidArgument(StrFormat("line %d: '%s' needs one value",
                                         line_no, key.c_str()));
      }
      return ParseDouble(tokens[1]);
    };
    if (key == "seed") {
      CQP_ASSIGN_OR_RETURN(double v, one_value());
      instance.seed = static_cast<uint64_t>(v);
    } else if (key == "objective") {
      if (tokens.size() != 2) {
        return InvalidArgument("objective needs a value");
      }
      if (tokens[1] == "max_doi") {
        instance.problem.objective = cqp::Objective::kMaximizeDoi;
      } else if (tokens[1] == "min_cost") {
        instance.problem.objective = cqp::Objective::kMinimizeCost;
      } else {
        return InvalidArgument("unknown objective '" + tokens[1] + "'");
      }
    } else if (key == "cmax") {
      CQP_ASSIGN_OR_RETURN(double v, one_value());
      instance.problem.cmax_ms = v;
    } else if (key == "dmin") {
      CQP_ASSIGN_OR_RETURN(double v, one_value());
      instance.problem.dmin = v;
    } else if (key == "smin") {
      CQP_ASSIGN_OR_RETURN(double v, one_value());
      instance.problem.smin = v;
    } else if (key == "smax") {
      CQP_ASSIGN_OR_RETURN(double v, one_value());
      instance.problem.smax = v;
    } else if (key == "base_cost") {
      CQP_ASSIGN_OR_RETURN(double v, one_value());
      instance.space.base.cost_ms = v;
      saw_base_cost = true;
    } else if (key == "base_size") {
      CQP_ASSIGN_OR_RETURN(double v, one_value());
      instance.space.base.size = v;
      saw_base_size = true;
    } else if (key == "pref") {
      if (tokens.size() != 4) {
        return InvalidArgument(
            StrFormat("line %d: pref needs 'doi cost sel'", line_no));
      }
      RawPref p;
      CQP_ASSIGN_OR_RETURN(p.doi, ParseDouble(tokens[1]));
      CQP_ASSIGN_OR_RETURN(p.cost, ParseDouble(tokens[2]));
      CQP_ASSIGN_OR_RETURN(p.sel, ParseDouble(tokens[3]));
      raw.push_back(p);
    } else {
      return InvalidArgument(
          StrFormat("line %d: unknown directive '%s'", line_no, key.c_str()));
    }
  }
  if (!saw_header) return InvalidArgument("empty reproducer");
  if (!saw_base_cost || !saw_base_size) {
    return InvalidArgument("reproducer needs base_cost and base_size");
  }
  for (const RawPref& p : raw) {
    if (p.doi < 0.0 || p.doi > 1.0) {
      return InvalidArgument("pref doi out of [0,1]");
    }
    if (p.sel < 0.0 || p.sel > 1.0) {
      return InvalidArgument("pref selectivity out of [0,1]");
    }
    if (p.cost < instance.space.base.cost_ms) {
      return InvalidArgument("pref cost below the base cost");
    }
    instance.space.prefs.push_back(MakeSyntheticPref(
        instance.space.prefs.size(), p.doi, p.cost, p.sel,
        instance.space.base.size));
  }
  instance.note = Join(note_lines, "\n");
  instance.Canonicalize();
  CQP_RETURN_IF_ERROR(instance.problem.Validate());
  return instance;
}

Status CqpInstance::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Internal("cannot create " + path);
  out << Serialize();
  out.close();
  if (!out) return Internal("write to " + path + " failed");
  return Status::OK();
}

StatusOr<CqpInstance> CqpInstance::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = Parse(buf.str());
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  path + ": " + std::string(parsed.status().message()));
  }
  return parsed;
}

}  // namespace cqp::testing
