#ifndef CQP_TESTING_GENERATOR_H_
#define CQP_TESTING_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "testing/instance.h"

namespace cqp::testing {

/// Shape of the generated doi distribution. Each shape targets a different
/// failure mode: ties exercise pointer-vector tie-breaking and cache-key
/// collisions, extremes exercise the [0,1] boundaries of the noisy-or
/// composition, clusters mimic real profiles where a few interests dominate.
enum class DoiShape {
  kUniform = 0,
  kClustered,
  kTies,
  kExtreme,
};

/// Where the constraint bounds land relative to the instance's reachable
/// parameter range (empty state .. supreme state).
enum class BoundRegime {
  kTight = 0,   ///< inside the reachable range: the interesting search region
  kLoose,       ///< beyond the supreme state: everything feasible
  kInfeasible,  ///< stricter than every state, including the original query
  kBoundary,    ///< EXACTLY the parameters of a random state (off-by-one trap)
};

const char* DoiShapeName(DoiShape shape);
const char* BoundRegimeName(BoundRegime regime);

struct GeneratorConfig {
  /// K is drawn uniformly from [k_min, k_max]. Keep k_max <= 25 so the
  /// Exhaustive oracle stays willing (and fast) — the harness's whole point
  /// is comparing against it.
  size_t k_min = 2;
  size_t k_max = 12;
  /// Pin the Table 1 problem class (1-6); 0 draws one per instance.
  int problem_class = 0;
  /// Pin the doi shape; -1 draws one per instance.
  int doi_shape = -1;
  /// Pin the bound regime; -1 draws one per instance.
  int bound_regime = -1;
};

/// Generates one CQP instance. Deterministic in `rng`'s state; the drawn
/// class/shape/regime are recorded in the instance note. Always yields a
/// spec with ProblemSpec::Validate() == OK.
CqpInstance GenerateInstance(Rng& rng, const GeneratorConfig& config = {});

/// Deterministically corrupts one wire-protocol frame for robustness
/// corpora: truncation, random byte flips, NUL injection, invalid UTF-8
/// sequences, or junk insertion. The result is NOT guaranteed to be
/// invalid (a flip inside a string literal may keep the frame well-formed);
/// callers assert "parses or is rejected, never crashes" semantics.
std::string CorruptFrame(Rng& rng, const std::string& frame);

/// `n` bytes of printable junk (never '\n', so the result stays one frame).
std::string RandomJunk(Rng& rng, size_t n);

}  // namespace cqp::testing

#endif  // CQP_TESTING_GENERATOR_H_
