#ifndef CQP_TESTING_REWRITE_CHECK_H_
#define CQP_TESTING_REWRITE_CHECK_H_

#include <cstdint>

#include "testing/oracle.h"

namespace cqp::testing {

/// Configuration of the semantic-rewrite metamorphic sweep (docs/
/// rewriting.md). One run builds a synthetic database, mines its integrity
/// constraints, personalizes a generated workload with the rewrite layer on,
/// and checks the three soundness obligations below.
struct RewriteCheckConfig {
  uint64_t seed = 1;
  size_t n_queries = 5;
  size_t n_profiles = 2;
  size_t max_k = 10;
  /// Metamorphic equivalence: for every request, re-emit the SAME chosen
  /// solution with the optimizer off and require the executed result sets to
  /// match row for row (dois within 1e-9 — noisy-or regrouping is the only
  /// permitted difference).
  bool check_equivalence = true;
  /// Vacuity oracle: every preference the pre-search pruning pass would
  /// reject must build a sub-query that executes to ZERO rows on the
  /// (constraint-valid, because constraints were mined from it) data.
  bool check_vacuity = true;
  /// Constraint-revision invalidation: SetConstraints() must detach cached
  /// plans (next Prepare misses) and the re-solve under identical
  /// constraints must answer identically.
  bool check_revision = true;
};

struct RewriteCheckResult {
  CheckReport report;
  size_t requests = 0;          ///< personalization requests checked
  uint64_t conjuncts_dropped = 0;
  uint64_t branches_eliminated = 0;
  uint64_t prefs_pruned = 0;    ///< candidates rejected pre-search
  uint64_t vacuity_probes = 0;  ///< pruned-candidate zero-row executions
};

/// Runs the sweep; an empty report means every obligation held.
RewriteCheckResult RunRewriteCheck(
    const RewriteCheckConfig& config = RewriteCheckConfig());

}  // namespace cqp::testing

#endif  // CQP_TESTING_REWRITE_CHECK_H_
