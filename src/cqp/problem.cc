#include "cqp/problem.h"

#include "common/str_util.h"

namespace cqp::cqp {

ProblemSpec ProblemSpec::Problem1(double smin, double smax) {
  ProblemSpec s;
  s.objective = Objective::kMaximizeDoi;
  s.smin = smin;
  s.smax = smax;
  return s;
}

ProblemSpec ProblemSpec::Problem2(double cmax_ms) {
  ProblemSpec s;
  s.objective = Objective::kMaximizeDoi;
  s.cmax_ms = cmax_ms;
  return s;
}

ProblemSpec ProblemSpec::Problem3(double cmax_ms, double smin, double smax) {
  ProblemSpec s;
  s.objective = Objective::kMaximizeDoi;
  s.cmax_ms = cmax_ms;
  s.smin = smin;
  s.smax = smax;
  return s;
}

ProblemSpec ProblemSpec::Problem4(double dmin) {
  ProblemSpec s;
  s.objective = Objective::kMinimizeCost;
  s.dmin = dmin;
  return s;
}

ProblemSpec ProblemSpec::Problem5(double dmin, double smin, double smax) {
  ProblemSpec s;
  s.objective = Objective::kMinimizeCost;
  s.dmin = dmin;
  s.smin = smin;
  s.smax = smax;
  return s;
}

ProblemSpec ProblemSpec::Problem6(double smin, double smax) {
  ProblemSpec s;
  s.objective = Objective::kMinimizeCost;
  s.smin = smin;
  s.smax = smax;
  return s;
}

int ProblemSpec::ProblemNumber() const {
  bool size = smin.has_value() || smax.has_value();
  if (objective == Objective::kMaximizeDoi) {
    if (dmin.has_value()) return 0;  // redundant doi bound
    if (!cmax_ms && size) return 1;
    if (cmax_ms && !size) return 2;
    if (cmax_ms && size) return 3;
    return 0;  // unconstrained maximization: take all of P (trivial)
  }
  // kMinimizeCost
  if (cmax_ms.has_value()) return 0;  // redundant cost bound
  if (dmin && !size) return 4;
  if (dmin && size) return 5;
  if (!dmin && size) return 6;
  return 0;  // unconstrained minimization: empty Px (trivial)
}

Status ProblemSpec::Validate() const {
  if (smin && *smin < 0.0) return InvalidArgument("smin must be >= 0");
  if (smax && *smax < 0.0) return InvalidArgument("smax must be >= 0");
  if (smin && smax && *smin > *smax) {
    return InvalidArgument("smin must be <= smax");
  }
  if (cmax_ms && *cmax_ms < 0.0) return InvalidArgument("cmax must be >= 0");
  if (dmin && (*dmin < 0.0 || *dmin > 1.0)) {
    return InvalidArgument("dmin must be in [0,1]");
  }
  if (ProblemNumber() == 0) {
    return InvalidArgument(
        "objective/constraint combination is not a meaningful CQP problem "
        "(Table 1): " +
        ToString());
  }
  return Status::OK();
}

bool ProblemSpec::IsFeasible(const estimation::StateParams& p) const {
  if (cmax_ms && p.cost_ms > *cmax_ms) return false;
  if (dmin && p.doi < *dmin) return false;
  if (smin && p.size < *smin) return false;
  if (smax && p.size > *smax) return false;
  return true;
}

bool ProblemSpec::Better(const estimation::StateParams& a,
                         const estimation::StateParams& b) const {
  return ObjectiveValue(a) > ObjectiveValue(b);
}

double ProblemSpec::ObjectiveValue(const estimation::StateParams& p) const {
  switch (objective) {
    case Objective::kMaximizeDoi:
      return p.doi;
    case Objective::kMinimizeCost:
      return -p.cost_ms;
  }
  return 0.0;
}

std::string ProblemSpec::ToString() const {
  std::string out = objective == Objective::kMaximizeDoi ? "MAX doi" : "MIN cost";
  if (cmax_ms) out += StrFormat(", cost <= %.3fms", *cmax_ms);
  if (dmin) out += StrFormat(", doi >= %.4f", *dmin);
  if (smin && smax) {
    out += StrFormat(", %.1f <= size <= %.1f", *smin, *smax);
  } else if (smin) {
    out += StrFormat(", size >= %.1f", *smin);
  } else if (smax) {
    out += StrFormat(", size <= %.1f", *smax);
  }
  return out;
}

}  // namespace cqp::cqp
