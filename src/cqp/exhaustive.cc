#include <bit>
#include <optional>
#include <vector>

#include "common/stopwatch.h"
#include "cqp/algorithms.h"
#include "cqp/search_util.h"
#include "estimation/batch_evaluator.h"
#include "estimation/eval_cache.h"

namespace cqp::cqp {

namespace {

/// 2^K grows past interactive use beyond this; callers wanting larger K
/// should use the boundary or chain algorithms.
constexpr size_t kMaxExhaustiveK = 25;

/// Tail width of the batch enumeration: each prefix spawns one frontier of
/// 2^L sibling leaves evaluated in a single batch call.
constexpr size_t kBatchTailBits = 6;

struct ExhaustiveState {
  const estimation::StateEvaluator* evaluator;
  const ProblemSpec* problem;
  SearchContext* ctx;
  Solution best;
  std::vector<int32_t> current;
  /// Cache integration: K <= 25 guarantees a uint64_t key, and the
  /// recursion includes indices in ascending order — the evaluator's
  /// canonical order — so incrementally-extended params are bit-for-bit
  /// equal to EvaluateBits() results and may be memoized directly.
  estimation::EvalCache* cache = nullptr;
  uint64_t bits = 0;  ///< Bits() of `current`, maintained when cache set
};

void Recurse(ExhaustiveState& st, size_t i,
             const estimation::StateParams& params) {
  if (st.ctx->ShouldStop()) return;
  if (i >= st.evaluator->K()) {
    // Each subset of P reaches this point exactly once.
    ++st.ctx->metrics.states_examined;
    if (st.problem->IsFeasible(params) &&
        (!st.best.feasible || st.problem->Better(params, st.best.params))) {
      st.best.feasible = true;
      st.best.params = params;
      st.best.chosen = IndexSet::FromUnsorted(st.current);
    }
    return;
  }
  // Exclude preference i.
  Recurse(st, i + 1, params);
  // Include preference i.
  st.current.push_back(static_cast<int32_t>(i));
  if (st.cache != nullptr) {
    uint64_t child_bits = st.bits | (uint64_t{1} << i);
    estimation::StateParams child;
    if (st.cache->Find(child_bits, &child)) {
      ++st.ctx->metrics.eval_cache_hits;
    } else {
      child = st.evaluator->ExtendWith(params, static_cast<int32_t>(i));
      st.cache->Insert(child_bits, child);
      ++st.ctx->metrics.eval_cache_misses;
    }
    uint64_t saved_bits = st.bits;
    st.bits = child_bits;
    Recurse(st, i + 1, child);
    st.bits = saved_bits;
  } else {
    Recurse(st, i + 1,
            st.evaluator->ExtendWith(params, static_cast<int32_t>(i)));
  }
  st.current.pop_back();
}

/// Batch tail machinery: the DFS leaves below a prefix of K-L include
/// decisions form one frontier of 2^L sibling states over the last L
/// preferences, evaluated in a single EvaluateSequence call. Lane l maps
/// to the l-th leaf in the scalar DFS order (exclude-before-include, so
/// seq position j is included iff bit L-1-j of l is set); scanning lanes
/// in ascending order therefore examines leaves in the scalar order and
/// preserves its first-best tie behavior.
struct BatchTail {
  const estimation::BatchEvaluator* batch = nullptr;
  std::vector<int32_t> seq;          ///< tail P indices, ascending
  std::vector<uint64_t> lane_masks;  ///< 2^L membership masks over seq
  estimation::BatchEvaluator::Results results;
};

void BatchRecurse(ExhaustiveState& st, BatchTail& tail, size_t i,
                  const estimation::StateParams& params) {
  if (st.ctx->ShouldStop()) return;
  const size_t K = st.evaluator->K();
  const size_t L = tail.seq.size();
  if (i + L == K) {
    const size_t n = tail.lane_masks.size();
    tail.batch->EvaluateSequence(params, tail.seq.data(), L,
                                 tail.lane_masks.data(), n, &tail.results);
    SearchMetrics& metrics = st.ctx->metrics;
    metrics.states_examined += n;
    ++metrics.frontiers_evaluated;
    metrics.frontier_states += n;
    metrics.frontier_lanes_wasted += tail.batch->PaddedLanes(n) - n;
    for (size_t l = 0; l < n; ++l) {
      estimation::StateParams leaf = tail.results.Get(l);
      if (st.problem->IsFeasible(leaf) &&
          (!st.best.feasible || st.problem->Better(leaf, st.best.params))) {
        st.best.feasible = true;
        st.best.params = leaf;
        std::vector<int32_t> chosen = st.current;
        for (uint64_t rest = tail.lane_masks[l]; rest != 0;
             rest &= rest - 1) {
          chosen.push_back(
              static_cast<int32_t>(K - L + std::countr_zero(rest)));
        }
        st.best.chosen = IndexSet::FromUnsorted(std::move(chosen));
      }
    }
    return;
  }
  // Exclude preference i.
  BatchRecurse(st, tail, i + 1, params);
  // Include preference i (scalar-identical incremental extension).
  st.current.push_back(static_cast<int32_t>(i));
  BatchRecurse(st, tail, i + 1,
               tail.batch->ExtendWith(params, static_cast<int32_t>(i)));
  st.current.pop_back();
}

BatchTail MakeBatchTail(const estimation::BatchEvaluator* batch, size_t K) {
  BatchTail tail;
  tail.batch = batch;
  const size_t L = std::min(K, kBatchTailBits);
  tail.seq.reserve(L);
  for (size_t j = 0; j < L; ++j) {
    tail.seq.push_back(static_cast<int32_t>(K - L + j));
  }
  tail.lane_masks.resize(size_t{1} << L);
  for (size_t l = 0; l < tail.lane_masks.size(); ++l) {
    uint64_t mask = 0;
    for (size_t j = 0; j < L; ++j) {
      if ((l >> (L - 1 - j)) & 1) mask |= uint64_t{1} << j;
    }
    tail.lane_masks[l] = mask;
  }
  return tail;
}

}  // namespace

bool ExhaustiveAlgorithm::Supports(const ProblemSpec& problem) const {
  return problem.Validate().ok();
}

bool ExhaustiveAlgorithm::IsExactFor(const ProblemSpec& problem) const {
  return Supports(problem);
}

StatusOr<Solution> ExhaustiveAlgorithm::Solve(
    const space::PreferenceSpaceResult& space, const ProblemSpec& problem,
    SearchContext& ctx) const {
  CQP_RETURN_IF_ERROR(problem.Validate());
  if (space.K() > kMaxExhaustiveK) {
    return FailedPrecondition(
        "Exhaustive search refuses K > 25 (exponential state space)");
  }
  Stopwatch timer;
  estimation::StateEvaluator evaluator = space.MakeEvaluator(ctx.eval_cache);

  ExhaustiveState st;
  st.evaluator = &evaluator;
  st.problem = &problem;
  st.ctx = &ctx;
  st.cache = ctx.eval_cache;
  st.best = InfeasibleSolution(evaluator);
  // When an EvalCache is attached the cached scalar recursion stays in
  // charge — its memoized params feed other solves over the same space.
  // Cacheless (the differential harness's default and the profile's cold
  // path), the batched enumeration wins: nothing to share, so the leaves
  // are evaluated as 2^L-wide frontiers instead.
  std::optional<estimation::BatchEvaluator> local_batch;
  const estimation::BatchEvaluator* batch =
      ctx.eval_cache == nullptr
          ? ResolveBatchEvaluator(space, ctx, local_batch)
          : nullptr;
  // Note: both recursions visit states once each, evaluating
  // incrementally; they visit the empty state first, so the fallback
  // "original query" is always considered.
  if (batch != nullptr && space.K() > 0) {
    BatchTail tail = MakeBatchTail(batch, space.K());
    BatchRecurse(st, tail, 0, evaluator.EmptyState());
  } else {
    Recurse(st, 0, evaluator.EmptyState());
  }

  st.best.degraded = ctx.exhausted();
  ctx.metrics.wall_ms = timer.ElapsedMillis();
  return st.best;
}

}  // namespace cqp::cqp
