#include <vector>

#include "common/stopwatch.h"
#include "cqp/algorithms.h"
#include "cqp/search_util.h"

namespace cqp::cqp {

namespace {

/// 2^K grows past interactive use beyond this; callers wanting larger K
/// should use the boundary or chain algorithms.
constexpr size_t kMaxExhaustiveK = 25;

struct ExhaustiveContext {
  const estimation::StateEvaluator* evaluator;
  const ProblemSpec* problem;
  SearchMetrics* metrics;
  Solution best;
  std::vector<int32_t> current;
};

void Recurse(ExhaustiveContext& ctx, size_t i,
             const estimation::StateParams& params) {
  if (i >= ctx.evaluator->K()) {
    // Each subset of P reaches this point exactly once.
    if (ctx.metrics != nullptr) ++ctx.metrics->states_examined;
    if (ctx.problem->IsFeasible(params) &&
        (!ctx.best.feasible || ctx.problem->Better(params, ctx.best.params))) {
      ctx.best.feasible = true;
      ctx.best.params = params;
      ctx.best.chosen = IndexSet::FromUnsorted(ctx.current);
    }
    return;
  }
  // Exclude preference i.
  Recurse(ctx, i + 1, params);
  // Include preference i.
  ctx.current.push_back(static_cast<int32_t>(i));
  Recurse(ctx, i + 1,
          ctx.evaluator->ExtendWith(params, static_cast<int32_t>(i)));
  ctx.current.pop_back();
}

}  // namespace

bool ExhaustiveAlgorithm::Supports(const ProblemSpec& problem) const {
  return problem.Validate().ok();
}

bool ExhaustiveAlgorithm::IsExactFor(const ProblemSpec& problem) const {
  return Supports(problem);
}

StatusOr<Solution> ExhaustiveAlgorithm::Solve(
    const space::PreferenceSpaceResult& space, const ProblemSpec& problem,
    SearchMetrics* metrics) const {
  CQP_RETURN_IF_ERROR(problem.Validate());
  if (space.K() > kMaxExhaustiveK) {
    return FailedPrecondition(
        "Exhaustive search refuses K > 25 (exponential state space)");
  }
  Stopwatch timer;
  estimation::StateEvaluator evaluator = space.MakeEvaluator();

  ExhaustiveContext ctx;
  ctx.evaluator = &evaluator;
  ctx.problem = &problem;
  ctx.metrics = metrics;
  ctx.best = InfeasibleSolution(evaluator);
  // Note: Recurse visits states once each, evaluating incrementally; it
  // visits the empty state first, so the fallback "original query" is
  // always considered.
  Recurse(ctx, 0, evaluator.EmptyState());

  if (metrics != nullptr) metrics->wall_ms = timer.ElapsedMillis();
  return ctx.best;
}

}  // namespace cqp::cqp
