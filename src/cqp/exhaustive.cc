#include <vector>

#include "common/stopwatch.h"
#include "cqp/algorithms.h"
#include "cqp/search_util.h"
#include "estimation/eval_cache.h"

namespace cqp::cqp {

namespace {

/// 2^K grows past interactive use beyond this; callers wanting larger K
/// should use the boundary or chain algorithms.
constexpr size_t kMaxExhaustiveK = 25;

struct ExhaustiveState {
  const estimation::StateEvaluator* evaluator;
  const ProblemSpec* problem;
  SearchContext* ctx;
  Solution best;
  std::vector<int32_t> current;
  /// Cache integration: K <= 25 guarantees a uint64_t key, and the
  /// recursion includes indices in ascending order — the evaluator's
  /// canonical order — so incrementally-extended params are bit-for-bit
  /// equal to EvaluateBits() results and may be memoized directly.
  estimation::EvalCache* cache = nullptr;
  uint64_t bits = 0;  ///< Bits() of `current`, maintained when cache set
};

void Recurse(ExhaustiveState& st, size_t i,
             const estimation::StateParams& params) {
  if (st.ctx->ShouldStop()) return;
  if (i >= st.evaluator->K()) {
    // Each subset of P reaches this point exactly once.
    ++st.ctx->metrics.states_examined;
    if (st.problem->IsFeasible(params) &&
        (!st.best.feasible || st.problem->Better(params, st.best.params))) {
      st.best.feasible = true;
      st.best.params = params;
      st.best.chosen = IndexSet::FromUnsorted(st.current);
    }
    return;
  }
  // Exclude preference i.
  Recurse(st, i + 1, params);
  // Include preference i.
  st.current.push_back(static_cast<int32_t>(i));
  if (st.cache != nullptr) {
    uint64_t child_bits = st.bits | (uint64_t{1} << i);
    estimation::StateParams child;
    if (st.cache->Find(child_bits, &child)) {
      ++st.ctx->metrics.eval_cache_hits;
    } else {
      child = st.evaluator->ExtendWith(params, static_cast<int32_t>(i));
      st.cache->Insert(child_bits, child);
      ++st.ctx->metrics.eval_cache_misses;
    }
    uint64_t saved_bits = st.bits;
    st.bits = child_bits;
    Recurse(st, i + 1, child);
    st.bits = saved_bits;
  } else {
    Recurse(st, i + 1,
            st.evaluator->ExtendWith(params, static_cast<int32_t>(i)));
  }
  st.current.pop_back();
}

}  // namespace

bool ExhaustiveAlgorithm::Supports(const ProblemSpec& problem) const {
  return problem.Validate().ok();
}

bool ExhaustiveAlgorithm::IsExactFor(const ProblemSpec& problem) const {
  return Supports(problem);
}

StatusOr<Solution> ExhaustiveAlgorithm::Solve(
    const space::PreferenceSpaceResult& space, const ProblemSpec& problem,
    SearchContext& ctx) const {
  CQP_RETURN_IF_ERROR(problem.Validate());
  if (space.K() > kMaxExhaustiveK) {
    return FailedPrecondition(
        "Exhaustive search refuses K > 25 (exponential state space)");
  }
  Stopwatch timer;
  estimation::StateEvaluator evaluator = space.MakeEvaluator(ctx.eval_cache);

  ExhaustiveState st;
  st.evaluator = &evaluator;
  st.problem = &problem;
  st.ctx = &ctx;
  st.cache = ctx.eval_cache;
  st.best = InfeasibleSolution(evaluator);
  // Note: Recurse visits states once each, evaluating incrementally; it
  // visits the empty state first, so the fallback "original query" is
  // always considered.
  Recurse(st, 0, evaluator.EmptyState());

  st.best.degraded = ctx.exhausted();
  ctx.metrics.wall_ms = timer.ElapsedMillis();
  return st.best;
}

}  // namespace cqp::cqp
