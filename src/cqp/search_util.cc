#include "cqp/search_util.h"

#include <algorithm>

#include "cqp/transitions.h"

namespace cqp::cqp {

IndexSet GreedyMaxDoiBelow(const SpaceView& view, const IndexSet& boundary) {
  const int32_t k = static_cast<int32_t>(view.K());
  std::vector<int32_t> chosen;
  chosen.reserve(boundary.size());
  std::vector<bool> used(static_cast<size_t>(k), false);
  // Slots in decreasing position order: the most constrained candidate set
  // {j >= position} first. Candidate sets are nested, so taking the best
  // remaining doi per slot is exact (exchange argument).
  for (size_t i = boundary.size(); i-- > 0;) {
    int32_t slot = boundary[i];
    int32_t best_j = -1;
    int32_t best_pref = INT32_MAX;
    for (int32_t j = slot; j < k; ++j) {
      if (used[static_cast<size_t>(j)]) continue;
      // P is doi-sorted, so the smallest P index has the highest doi.
      int32_t pref = view.PrefIndexAt(j);
      if (pref < best_pref) {
        best_pref = pref;
        best_j = j;
      }
    }
    CQP_CHECK_GE(best_j, 0);
    used[static_cast<size_t>(best_j)] = true;
    chosen.push_back(best_j);
  }
  return IndexSet::FromUnsorted(std::move(chosen));
}

Solution MakeSolution(const SpaceView& view, const IndexSet& positions,
                      const estimation::StateParams& params) {
  Solution s;
  s.feasible = true;
  s.chosen = view.ToPrefIndices(positions);
  s.params = params;
  return s;
}

Solution InfeasibleSolution(const estimation::StateEvaluator& evaluator) {
  Solution s;
  s.feasible = false;
  s.params = evaluator.EmptyState();
  return s;
}

StatusOr<SpaceKind> BoundSpaceKindFor(const ProblemSpec& problem) {
  if (problem.cmax_ms.has_value()) return SpaceKind::kCost;
  if (problem.smin.has_value()) return SpaceKind::kSize;
  return FailedPrecondition(
      "boundary algorithms need a cost or size lower-bound constraint: " +
      problem.ToString());
}

const estimation::BatchEvaluator* ResolveBatchEvaluator(
    const space::PreferenceSpaceResult& space, SearchContext& ctx,
    std::optional<estimation::BatchEvaluator>& local) {
  if (!ctx.allow_batch_eval || space.prefs.size() >= 64) return nullptr;
  if (ctx.batch_eval != nullptr &&
      ctx.batch_eval->prefs_identity() == &space.prefs) {
    return ctx.batch_eval;
  }
  local.emplace(space.base, space.prefs, space.conjunction_model);
  return &*local;
}

FillResult GreedyFill(const SpaceView& view, IndexSet state,
                      estimation::StateParams params,
                      const std::vector<bool>* banned, SearchContext& ctx) {
  bool extended = true;
  while (extended && !ctx.ShouldStop()) {
    extended = false;
    for (int32_t j : Horizontal2Candidates(state, view.K())) {
      if (banned != nullptr && (*banned)[static_cast<size_t>(j)]) continue;
      estimation::StateParams next = view.ExtendWith(params, j, ctx.metrics);
      if (view.WithinBound(next)) {
        state = state.WithAdded(j);
        params = next;
        extended = true;
        break;
      }
    }
  }
  return FillResult{std::move(state), params};
}

BitFillResult GreedyFillBits(const SpaceView& view, uint64_t bits,
                             estimation::StateParams params,
                             SearchContext& ctx) {
  CQP_CHECK(view.batch_enabled());
  const size_t k = view.K();
  const uint64_t universe = (uint64_t{1} << k) - 1;
  // A few lanes per probe: candidates are tried in increasing position
  // order and the expected accept distance is short, so huge batches would
  // mostly waste lanes past the accepted candidate.
  constexpr size_t kChunk = 8;
  int32_t candidates[kChunk];
  estimation::BatchEvaluator::Results results;
  bool extended = true;
  while (extended && !ctx.ShouldStop()) {
    extended = false;
    uint64_t free = universe & ~bits;
    while (free != 0 && !extended) {
      size_t n = 0;
      for (uint64_t rest = free; rest != 0 && n < kChunk; rest &= rest - 1) {
        candidates[n++] = std::countr_zero(rest);
      }
      for (size_t i = 0; i < n; ++i) free &= free - 1;
      view.ExtendFrontier(params, candidates, n, &results, ctx.metrics);
      for (size_t l = 0; l < n; ++l) {
        estimation::StateParams next = results.Get(l);
        if (view.WithinBound(next)) {
          bits |= uint64_t{1} << candidates[l];
          params = next;
          extended = true;
          break;
        }
      }
    }
  }
  return BitFillResult{bits, params};
}

namespace {

/// Exhaustively scans the dominated cone of `boundary` for feasible states,
/// updating `best`. `visited` is shared across boundaries so overlapping
/// cones are not re-scanned.
void RegionScan(const SpaceView& view, const IndexSet& boundary,
                VisitedSet& visited, SearchContext& ctx, Solution* best) {
  StateQueue queue(ctx.metrics);
  if (visited.CheckAndInsert(boundary)) return;  // cone already scanned
  queue.PushBack(boundary);
  while (!queue.empty()) {
    if (ctx.ShouldStop()) break;
    IndexSet state = queue.PopFront();
    estimation::StateParams params = view.Evaluate(state, ctx.metrics);
    if (view.Feasible(params)) {
      if (!best->feasible || view.problem().Better(params, best->params)) {
        *best = MakeSolution(view, state, params);
      }
    }
    for (IndexSet& v : VerticalNeighbors(state, view.K())) {
      ++ctx.metrics.transitions;
      if (visited.CheckAndInsert(v)) continue;
      queue.PushBack(std::move(v));
    }
  }
}

/// RegionScan in the bitmask domain: identical traversal (BFS, neighbors
/// enqueued in generation order), with each pop's accepted neighbors
/// evaluated as one frontier at push time.
void RegionScanBits(const SpaceView& view, uint64_t boundary,
                    BitVisitedSet& visited, SearchContext& ctx,
                    Solution* best) {
  if (visited.CheckAndInsert(boundary)) return;  // cone already scanned
  BitStateQueue queue(ctx.metrics);
  estimation::BatchEvaluator::Results results;
  std::vector<uint64_t> pending;
  view.EvaluateFrontierBits(&boundary, 1, &results, ctx.metrics);
  queue.PushBack(BitState{boundary, results.Get(0)});
  while (!queue.empty()) {
    if (ctx.ShouldStop()) break;
    const BitState state = queue.PopFront();
    if (view.Feasible(state.params)) {
      if (!best->feasible ||
          view.problem().Better(state.params, best->params)) {
        *best = MakeSolution(view, IndexSet::FromBits(state.bits),
                             state.params);
      }
    }
    pending.clear();
    const size_t before = pending.size();
    VerticalNeighborsBits(state.bits, view.K(), &pending);
    ctx.metrics.transitions += pending.size() - before;
    size_t kept = 0;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (!visited.CheckAndInsert(pending[i])) pending[kept++] = pending[i];
    }
    pending.resize(kept);
    if (!pending.empty()) {
      view.EvaluateFrontierBits(pending.data(), pending.size(), &results,
                                ctx.metrics);
      for (size_t i = 0; i < pending.size(); ++i) {
        queue.PushBack(BitState{pending[i], results.Get(i)});
      }
    }
  }
}

}  // namespace

Solution BestFeasibleBelowBoundaries(const SpaceView& view,
                                     const std::vector<IndexSet>& boundaries,
                                     SearchContext& ctx) {
  CQP_CHECK(view.problem().objective == Objective::kMaximizeDoi)
      << "phase-2 boundary scan maximizes doi";
  Solution best = InfeasibleSolution(view.evaluator());
  // The empty state (the original query) is always a candidate.
  {
    estimation::StateParams empty = view.evaluator().EmptyState();
    ++ctx.metrics.states_examined;
    if (view.problem().IsFeasible(empty)) {
      best.feasible = true;
      best.chosen = IndexSet();
      best.params = empty;
    }
  }

  std::vector<IndexSet> ordered = boundaries;
  std::sort(ordered.begin(), ordered.end(),
            [](const IndexSet& a, const IndexSet& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });

  const bool greedy_exact = view.GreedyPhase2Exact();
  VisitedSet region_visited(ctx.metrics);
  BitVisitedSet bit_region_visited(ctx.metrics, view.K());
  const bool batch = view.batch_enabled();
  size_t current_group = SIZE_MAX;
  double group_bound = 1.0;

  for (const IndexSet& boundary : ordered) {
    if (ctx.ShouldStop()) break;
    if (boundary.empty()) continue;
    if (boundary.size() != current_group) {
      current_group = boundary.size();
      // Upper bound on the doi of any state in this or a smaller group
      // (BestExpectedDoi in the paper's C_FINDMAXDOI).
      group_bound = view.BestExpectedDoi(current_group);
      if (best.feasible && best.params.doi >= group_bound) break;
    }
    if (greedy_exact) {
      IndexSet candidate = GreedyMaxDoiBelow(view, boundary);
      estimation::StateParams params = view.Evaluate(candidate, ctx.metrics);
      // The slot-swap keeps the bound in real arithmetic (each member moves
      // to a position with a no-larger bound parameter), but the swapped
      // set's sum/product is computed over a different member sequence, so
      // with a bound sitting exactly on a reachable state it can land an
      // ulp outside. Such a candidate is simply not usable.
      if (!view.WithinBound(params)) continue;
      if (view.Feasible(params) &&
          (!best.feasible || view.problem().Better(params, best.params))) {
        best = MakeSolution(view, candidate, params);
      }
      continue;
    }
    // Constraints beyond the space key exist: the greedy result still upper
    // bounds the doi below this boundary, letting us skip hopeless cones.
    IndexSet greedy = GreedyMaxDoiBelow(view, boundary);
    estimation::StateParams greedy_params = view.Evaluate(greedy, ctx.metrics);
    if (best.feasible && !view.problem().Better(greedy_params, best.params)) {
      continue;
    }
    if (batch) {
      RegionScanBits(view, boundary.Bits(), bit_region_visited, ctx, &best);
    } else {
      RegionScan(view, boundary, region_visited, ctx, &best);
    }
  }
  best.degraded = ctx.exhausted();
  return best;
}

}  // namespace cqp::cqp
