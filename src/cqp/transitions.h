#ifndef CQP_CQP_TRANSITIONS_H_
#define CQP_CQP_TRANSITIONS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/index_set.h"

namespace cqp::cqp {

/// Syntactic state transitions (paper §5.1/§5.2.1).
///
/// States are sets of 0-based positions into a pointer vector (C, D or S)
/// of size K. Because the vector is sorted by the space's key parameter,
/// every transition has a *known* direction of change for that parameter —
/// the syntax-based partial orders of Observation 1.

/// Horizontal(Cx): Cx ∪ {i+1} where i is the largest member. Moves to the
/// next group (one more preference), adding the successor of the largest
/// member. Returns nullopt when the largest member is already K-1.
std::optional<IndexSet> Horizontal(const IndexSet& state, size_t k);

/// Vertical(Cx): every set obtained by replacing a member i with i+1 when
/// i+1 is not already a member. Stays in the same group; moves "down" the
/// key order (lower cost in the cost space, larger size in the size space).
/// Neighbors are returned in increasing replaced-position order (the paper
/// orders them by decreasing cost; any fixed order preserves correctness
/// since all neighbors are enqueued).
std::vector<IndexSet> VerticalNeighbors(const IndexSet& state, size_t k);

/// Horizontal2 candidates: the positions not in `state`, in increasing
/// position order — i.e. in decreasing key order, matching the paper's
/// "ordered in decreasing cost". The caller extends `state` with the first
/// candidate that satisfies the bound (greedy maximal fill).
std::vector<int32_t> Horizontal2Candidates(const IndexSet& state, size_t k);

// Bitmask fast paths of the same transitions, for the batch-evaluation
// search loops (k < 64; a state is a uint64 of position bits). They visit
// neighbors in the same order as their IndexSet counterparts.

/// Horizontal for a non-empty bitmask state; 0 when the largest member is
/// already K-1 (0 is never a valid successor — it would be the empty set).
uint64_t HorizontalBits(uint64_t state, size_t k);

/// VerticalNeighbors for a bitmask state, appended to `out` in increasing
/// replaced-position order.
void VerticalNeighborsBits(uint64_t state, size_t k,
                           std::vector<uint64_t>* out);

}  // namespace cqp::cqp

#endif  // CQP_CQP_TRANSITIONS_H_
