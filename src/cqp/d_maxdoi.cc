#include <algorithm>

#include "common/stopwatch.h"
#include "cqp/algorithms.h"
#include "cqp/search_util.h"
#include "cqp/transitions.h"

namespace cqp::cqp {

bool DMaxDoiAlgorithm::Supports(const ProblemSpec& problem) const {
  return problem.Validate().ok() &&
         problem.objective == Objective::kMaximizeDoi;
}

bool DMaxDoiAlgorithm::IsExactFor(const ProblemSpec& problem) const {
  // Exact when feasibility coincides with the binding bound (Theorem 3);
  // with an smax constraint the chain endpoints may skip feasible interior
  // states, so only best-effort there.
  return Supports(problem) && !problem.smax.has_value() &&
         !problem.dmin.has_value();
}

namespace {

StatusOr<Solution> SolveDMaxDoi(const space::PreferenceSpaceResult& space,
                                const ProblemSpec& problem, SearchContext& ctx,
                                bool suffix_prune) {
  CQP_RETURN_IF_ERROR(problem.Validate());
  Stopwatch timer;
  SearchMetrics& metrics = ctx.metrics;
  estimation::StateEvaluator evaluator = space.MakeEvaluator(ctx.eval_cache);
  SpaceView view =
      SpaceView::ForKind(&evaluator, &problem, SpaceKind::kDoi, space);
  const size_t k = view.K();

  Solution best = InfeasibleSolution(evaluator);
  // The empty state (original query) is the fallback candidate.
  {
    estimation::StateParams empty = evaluator.EmptyState();
    ++metrics.states_examined;
    if (problem.IsFeasible(empty)) {
      best.feasible = true;
      best.params = empty;
    }
  }
  if (k == 0) {
    metrics.wall_ms = timer.ElapsedMillis();
    return best;
  }

  // With suffix_prune (the "+Prune" variant, our extension beyond the
  // paper), the two phases are fused and the paper's phase-2
  // BestExpectedDoi early exit becomes a dequeue-time prune: every state
  // derived from `state` (chains add positions after the maximum, Verticals
  // move members right) keeps all positions >= state's minimum, so its doi
  // is bounded by the doi of the position suffix starting there. The
  // paper-faithful variant collects every chain endpoint first (FINDOPTIMAL,
  // Fig. 9) and only then scans them with the early exit (D_FINDMAXDOI) —
  // its phase 1 explores "unevenly larger parts of the search space" (§7.2.1)
  // exactly as the original.
  std::vector<double> suffix_doi(k + 1, 0.0);
  for (size_t m = k; m-- > 0;) {
    // doi of positions {m..k-1}: positions in the doi space are P indices
    // (D is the identity order).
    estimation::StateParams p = evaluator.EmptyState();
    p.doi = suffix_doi[m + 1];
    suffix_doi[m] = evaluator.ExtendWith(p, static_cast<int32_t>(m)).doi;
  }

  VisitedSet visited(metrics);
  StateQueue queue(metrics);
  IndexSet first({0});
  visited.CheckAndInsert(first);
  queue.PushBack(std::move(first));

  // Chain solutions found by phase 1, kept for the paper-faithful phase 2.
  std::vector<std::pair<IndexSet, estimation::StateParams>> solutions;

  auto consider = [&](const IndexSet& state,
                      const estimation::StateParams& params) {
    ++metrics.boundaries_found;
    if (suffix_prune) {
      if (!view.Feasible(params)) return;
      if (!best.feasible || problem.Better(params, best.params)) {
        best = MakeSolution(view, state, params);
      }
    } else {
      metrics.memory.Allocate(state.MemoryBytes());
      solutions.emplace_back(state, params);
    }
  };

  while (!queue.empty()) {
    if (ctx.ShouldStop()) break;
    IndexSet state = queue.PopFront();
    if (suffix_prune && best.feasible &&
        best.params.doi >= suffix_doi[static_cast<size_t>(state.Min())]) {
      continue;
    }
    estimation::StateParams params = view.Evaluate(state, metrics);

    IndexSet frontier;  // first chain node violating the bound (if any)
    bool have_frontier = false;
    if (view.WithinBound(params)) {
      // Apply Horizontal transitions while the bound holds.
      IndexSet chain = state;
      estimation::StateParams chain_params = params;
      while (!ctx.ShouldStop()) {
        ++metrics.transitions;
        std::optional<IndexSet> next = Horizontal(chain, k);
        if (!next.has_value()) break;
        estimation::StateParams next_params = view.Evaluate(*next, metrics);
        if (!view.WithinBound(next_params)) {
          frontier = std::move(*next);
          have_frontier = true;
          break;
        }
        chain = std::move(*next);
        chain_params = next_params;
      }
      consider(chain, chain_params);
      if (!have_frontier) {
        // The chain ran to the last position; explore the endpoint's
        // Vertical neighbors so sibling maximal chains are not missed
        // (defensive generalization of the pseudocode, which leaves this
        // case unspecified).
        frontier = std::move(chain);
        have_frontier = true;
      }
    } else {
      frontier = std::move(state);
      have_frontier = true;
    }

    if (have_frontier) {
      for (IndexSet& v : VerticalNeighbors(frontier, k)) {
        ++metrics.transitions;
        if (visited.CheckAndInsert(v)) continue;
        queue.PushFront(std::move(v));
      }
    }
  }

  if (!suffix_prune) {
    // ---- Phase 2: D_FINDMAXDOI over the collected solutions, largest
    // group first, with the BestExpectedDoi early exit. ----
    std::sort(solutions.begin(), solutions.end(),
              [](const auto& a, const auto& b) {
                if (a.first.size() != b.first.size()) {
                  return a.first.size() > b.first.size();
                }
                return a.first < b.first;
              });
    size_t current_group = SIZE_MAX;
    for (const auto& [state, params] : solutions) {
      if (state.size() != current_group) {
        current_group = state.size();
        double bound = view.BestExpectedDoi(current_group);
        if (best.feasible && best.params.doi > bound) break;
      }
      if (!view.Feasible(params)) continue;
      if (!best.feasible || problem.Better(params, best.params)) {
        best = MakeSolution(view, state, params);
      }
    }
  }

  best.degraded = ctx.exhausted();
  metrics.wall_ms = timer.ElapsedMillis();
  return best;
}

}  // namespace

StatusOr<Solution> DMaxDoiAlgorithm::Solve(
    const space::PreferenceSpaceResult& space, const ProblemSpec& problem,
    SearchContext& ctx) const {
  return SolveDMaxDoi(space, problem, ctx, /*suffix_prune=*/false);
}

bool DMaxDoiPrunedAlgorithm::Supports(const ProblemSpec& problem) const {
  return problem.Validate().ok() &&
         problem.objective == Objective::kMaximizeDoi;
}

bool DMaxDoiPrunedAlgorithm::IsExactFor(const ProblemSpec& problem) const {
  return Supports(problem) && !problem.smax.has_value() &&
         !problem.dmin.has_value();
}

StatusOr<Solution> DMaxDoiPrunedAlgorithm::Solve(
    const space::PreferenceSpaceResult& space, const ProblemSpec& problem,
    SearchContext& ctx) const {
  return SolveDMaxDoi(space, problem, ctx, /*suffix_prune=*/true);
}

}  // namespace cqp::cqp
