#ifndef CQP_CQP_ALGORITHMS_H_
#define CQP_CQP_ALGORITHMS_H_

#include "cqp/algorithm.h"

namespace cqp::cqp {

/// Exhaustive O(2^K) baseline (paper §5.2 opening). Exact for every CQP
/// problem; refuses K > 25 to bound runtime.
class ExhaustiveAlgorithm : public Algorithm {
 public:
  const char* name() const override { return "Exhaustive"; }
  bool Supports(const ProblemSpec& problem) const override;
  bool IsExactFor(const ProblemSpec& problem) const override;
  StatusOr<Solution> Solve(const space::PreferenceSpaceResult& space,
                           const ProblemSpec& problem,
                           SearchContext& ctx) const override;
};

/// C-BOUNDARIES (paper Fig. 5): exact two-phase boundary search on the
/// cost (or size) state space for doi-maximization problems.
class CBoundariesAlgorithm : public Algorithm {
 public:
  const char* name() const override { return "C-Boundaries"; }
  bool Supports(const ProblemSpec& problem) const override;
  bool IsExactFor(const ProblemSpec& problem) const override;
  StatusOr<Solution> Solve(const space::PreferenceSpaceResult& space,
                           const ProblemSpec& problem,
                           SearchContext& ctx) const override;
};

/// C-MAXBOUNDS (paper Fig. 7): heuristic maximal-boundary construction on
/// the cost (or size) state space.
class CMaxBoundsAlgorithm : public Algorithm {
 public:
  const char* name() const override { return "C-MaxBounds"; }
  bool Supports(const ProblemSpec& problem) const override;
  bool IsExactFor(const ProblemSpec& problem) const override;
  StatusOr<Solution> Solve(const space::PreferenceSpaceResult& space,
                           const ProblemSpec& problem,
                           SearchContext& ctx) const override;
};

/// D-MAXDOI (paper Fig. 9): exact chain search on the doi state space.
class DMaxDoiAlgorithm : public Algorithm {
 public:
  const char* name() const override { return "D-MaxDoi"; }
  bool Supports(const ProblemSpec& problem) const override;
  bool IsExactFor(const ProblemSpec& problem) const override;
  StatusOr<Solution> Solve(const space::PreferenceSpaceResult& space,
                           const ProblemSpec& problem,
                           SearchContext& ctx) const override;
};

/// "D-MaxDoi+Prune": our extension of D-MAXDOI that fuses the two phases
/// and applies the BestExpectedDoi bound *during* the chain search (any
/// state derived from a dequeued state keeps all positions at or after its
/// minimum, so the suffix doi bounds everything reachable). Identical
/// solutions, often orders of magnitude fewer states (ablated in
/// bench/fig12_times).
class DMaxDoiPrunedAlgorithm : public Algorithm {
 public:
  const char* name() const override { return "D-MaxDoi+Prune"; }
  bool Supports(const ProblemSpec& problem) const override;
  bool IsExactFor(const ProblemSpec& problem) const override;
  StatusOr<Solution> Solve(const space::PreferenceSpaceResult& space,
                           const ProblemSpec& problem,
                           SearchContext& ctx) const override;
};

/// D-SINGLEMAXDOI (paper Fig. 10): single-phase greedy maximal-set search
/// on the doi state space.
class DSingleMaxDoiAlgorithm : public Algorithm {
 public:
  const char* name() const override { return "D-SingleMaxDoi"; }
  bool Supports(const ProblemSpec& problem) const override;
  bool IsExactFor(const ProblemSpec& problem) const override;
  StatusOr<Solution> Solve(const space::PreferenceSpaceResult& space,
                           const ProblemSpec& problem,
                           SearchContext& ctx) const override;
};

/// D-HEURDOI (paper Fig. 11): greedy fill with prefix-drop refinement on
/// the doi state space.
class DHeurDoiAlgorithm : public Algorithm {
 public:
  const char* name() const override { return "D-HeurDoi"; }
  bool Supports(const ProblemSpec& problem) const override;
  bool IsExactFor(const ProblemSpec& problem) const override;
  StatusOr<Solution> Solve(const space::PreferenceSpaceResult& space,
                           const ProblemSpec& problem,
                           SearchContext& ctx) const override;
};

/// Exact branch-and-bound for the cost-minimization problems (4-6). The
/// paper states all its algorithms adapt to every CQP problem (§6) without
/// giving pseudocode for the MIN-cost family; this is our adaptation: a
/// depth-first search in cost-ascending order with the cost of the best
/// feasible state as bound and the monotone doi/size properties as prunes.
class MinCostBranchBoundAlgorithm : public Algorithm {
 public:
  const char* name() const override { return "MinCost-BB"; }
  bool Supports(const ProblemSpec& problem) const override;
  bool IsExactFor(const ProblemSpec& problem) const override;
  StatusOr<Solution> Solve(const space::PreferenceSpaceResult& space,
                           const ProblemSpec& problem,
                           SearchContext& ctx) const override;
};

/// The paper's motivating strawman (§1): integrate *all* related
/// preferences, maximizing interest with no regard for the constraints.
/// Solve() returns the full preference set; `feasible` reports whether the
/// over-personalized query happens to satisfy the problem's bounds (it
/// usually does not — it is expensive and frequently has an empty answer).
/// Used as the baseline in bench/motivation_bench.
class AllPreferencesAlgorithm : public Algorithm {
 public:
  const char* name() const override { return "All-Preferences"; }
  bool Supports(const ProblemSpec& problem) const override;
  bool IsExactFor(const ProblemSpec& problem) const override;
  StatusOr<Solution> Solve(const space::PreferenceSpaceResult& space,
                           const ProblemSpec& problem,
                           SearchContext& ctx) const override;
};

/// Greedy heuristic for the cost-minimization problems (4-6): adds the
/// preference with the best doi-per-cost ratio until feasible, then drops
/// redundant members.
class MinCostGreedyAlgorithm : public Algorithm {
 public:
  const char* name() const override { return "MinCost-Greedy"; }
  bool Supports(const ProblemSpec& problem) const override;
  bool IsExactFor(const ProblemSpec& problem) const override;
  StatusOr<Solution> Solve(const space::PreferenceSpaceResult& space,
                           const ProblemSpec& problem,
                           SearchContext& ctx) const override;
};

}  // namespace cqp::cqp

#endif  // CQP_CQP_ALGORITHMS_H_
