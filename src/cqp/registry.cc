#include "common/str_util.h"
#include "cqp/algorithms.h"

namespace cqp::cqp {

namespace {

/// Registered singletons in presentation order (matching the paper's
/// figures, with our additions last).
const Algorithm* const* Registered(size_t* count) {
  static const ExhaustiveAlgorithm exhaustive;
  static const CBoundariesAlgorithm c_boundaries;
  static const CMaxBoundsAlgorithm c_maxbounds;
  static const DMaxDoiAlgorithm d_maxdoi;
  static const DMaxDoiPrunedAlgorithm d_maxdoi_pruned;
  static const DSingleMaxDoiAlgorithm d_singlemaxdoi;
  static const DHeurDoiAlgorithm d_heurdoi;
  static const MinCostBranchBoundAlgorithm mincost_bb;
  static const MinCostGreedyAlgorithm mincost_greedy;
  static const AllPreferencesAlgorithm all_preferences;
  static const Algorithm* const algorithms[] = {
      &d_maxdoi,   &d_singlemaxdoi, &c_boundaries,   &c_maxbounds,
      &d_heurdoi,  &exhaustive,     &d_maxdoi_pruned, &mincost_bb,
      &mincost_greedy, &all_preferences,
  };
  *count = sizeof(algorithms) / sizeof(algorithms[0]);
  return algorithms;
}

}  // namespace

std::vector<std::string> AlgorithmNames() {
  size_t count = 0;
  const Algorithm* const* algorithms = Registered(&count);
  std::vector<std::string> names;
  names.reserve(count);
  for (size_t i = 0; i < count; ++i) names.push_back(algorithms[i]->name());
  return names;
}

StatusOr<const Algorithm*> GetAlgorithm(const std::string& name) {
  size_t count = 0;
  const Algorithm* const* algorithms = Registered(&count);
  for (size_t i = 0; i < count; ++i) {
    if (EqualsIgnoreCase(algorithms[i]->name(), name)) return algorithms[i];
  }
  return NotFound("algorithm " + name);
}

}  // namespace cqp::cqp
