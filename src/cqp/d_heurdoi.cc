#include <vector>

#include "common/stopwatch.h"
#include "cqp/algorithms.h"
#include "cqp/search_util.h"
#include "cqp/transitions.h"

namespace cqp::cqp {

bool DHeurDoiAlgorithm::Supports(const ProblemSpec& problem) const {
  return problem.Validate().ok() &&
         problem.objective == Objective::kMaximizeDoi;
}

bool DHeurDoiAlgorithm::IsExactFor(const ProblemSpec&) const {
  return false;  // heuristic by design (paper Fig. 11)
}

StatusOr<Solution> DHeurDoiAlgorithm::Solve(
    const space::PreferenceSpaceResult& space, const ProblemSpec& problem,
    SearchContext& ctx) const {
  CQP_RETURN_IF_ERROR(problem.Validate());
  Stopwatch timer;
  SearchMetrics& metrics = ctx.metrics;
  estimation::StateEvaluator evaluator = space.MakeEvaluator(ctx.eval_cache);
  SpaceView view =
      SpaceView::ForKind(&evaluator, &problem, SpaceKind::kDoi, space);
  const size_t k = view.K();

  Solution best = InfeasibleSolution(evaluator);
  {
    estimation::StateParams empty = evaluator.EmptyState();
    ++metrics.states_examined;
    if (problem.IsFeasible(empty)) {
      best.feasible = true;
      best.params = empty;
    }
  }

  auto consider = [&](const IndexSet& state,
                      const estimation::StateParams& params) {
    if (!view.Feasible(params)) return;
    if (!best.feasible || problem.Better(params, best.params)) {
      best = MakeSolution(view, state, params);
    }
  };

  for (size_t seed = 0; seed < k; ++seed) {
    if (ctx.ShouldStop()) break;
    // BestExpectedDoi stop: the doi of the whole remaining suffix.
    {
      estimation::StateParams suffix = evaluator.EmptyState();
      for (size_t j = seed; j < k; ++j) {
        suffix = evaluator.ExtendWith(
            suffix, view.PrefIndexAt(static_cast<int32_t>(j)));
      }
      if (best.feasible && best.params.doi > suffix.doi) break;
    }

    // (a) Greedy fill from the seed.
    IndexSet seed_state({static_cast<int32_t>(seed)});
    estimation::StateParams seed_params = view.Evaluate(seed_state, metrics);
    FillResult fill = GreedyFill(view, seed_state, seed_params, nullptr, ctx);
    if (!view.WithinBound(fill.params)) continue;  // seed alone too costly
    consider(fill.state, fill.params);

    // (b) Refinement: drop trailing members one at a time and refill with
    // the dropped member banned (paper step 2.5; the pseudocode's
    // "R'' != R'" is read as "do not rebuild the original node").
    metrics.memory.Allocate(fill.state.MemoryBytes());
    std::vector<bool> banned(k, false);
    for (size_t t = fill.state.size(); t >= 2; --t) {
      if (ctx.ShouldStop()) break;
      IndexSet prefix = fill.state.Prefix(t - 1);
      int32_t dropped = fill.state[t - 1];
      banned.assign(k, false);
      banned[static_cast<size_t>(dropped)] = true;
      estimation::StateParams prefix_params = view.Evaluate(prefix, metrics);
      FillResult refined = GreedyFill(view, prefix, prefix_params, &banned, ctx);
      if (view.WithinBound(refined.params)) {
        consider(refined.state, refined.params);
      }
    }
    metrics.memory.Release(fill.state.MemoryBytes());
  }

  best.degraded = ctx.exhausted();
  metrics.wall_ms = timer.ElapsedMillis();
  return best;
}

}  // namespace cqp::cqp
