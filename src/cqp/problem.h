#ifndef CQP_CQP_PROBLEM_H_
#define CQP_CQP_PROBLEM_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "estimation/evaluator.h"

namespace cqp::cqp {

/// Which query parameter a CQP problem optimizes (Table 1).
enum class Objective {
  kMaximizeDoi,
  kMinimizeCost,
};

/// A Constrained Query Personalization problem instance: one objective plus
/// range constraints on the remaining query parameters (paper §4.1,
/// Table 1). Per the parameter properties, doi may only be maximized or
/// lower-bounded, cost minimized or upper-bounded, and size kept within
/// [smin, smax] (smin defaults to 1: empty answers are always undesirable).
struct ProblemSpec {
  Objective objective = Objective::kMaximizeDoi;
  std::optional<double> cmax_ms;  ///< upper bound on execution cost
  std::optional<double> dmin;     ///< lower bound on doi
  std::optional<double> smin;     ///< lower bound on result size
  std::optional<double> smax;     ///< upper bound on result size

  /// Table 1 constructors.
  static ProblemSpec Problem1(double smin, double smax);
  static ProblemSpec Problem2(double cmax_ms);
  static ProblemSpec Problem3(double cmax_ms, double smin, double smax);
  static ProblemSpec Problem4(double dmin);
  static ProblemSpec Problem5(double dmin, double smin, double smax);
  static ProblemSpec Problem6(double smin, double smax);

  /// Classifies the spec as one of Table 1's problems (1-6), or 0 if the
  /// combination does not match a row of the table.
  int ProblemNumber() const;

  /// Rejects meaningless combinations (e.g. maximizing doi while also
  /// lower-bounding it is redundant; minimizing cost with no constraint at
  /// all has the trivial solution "empty Px").
  Status Validate() const;

  /// True iff a state with parameters `p` satisfies every constraint.
  bool IsFeasible(const estimation::StateParams& p) const;

  /// True iff `a` is strictly better than `b` under the objective.
  bool Better(const estimation::StateParams& a,
              const estimation::StateParams& b) const;

  /// Objective value (doi, or negated cost so that larger is better).
  double ObjectiveValue(const estimation::StateParams& p) const;

  std::string ToString() const;
};

}  // namespace cqp::cqp

#endif  // CQP_CQP_PROBLEM_H_
