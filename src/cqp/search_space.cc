#include "cqp/search_space.h"

#include <bit>
#include <limits>

#include "common/logging.h"

namespace cqp::cqp {

const char* SpaceKindName(SpaceKind kind) {
  switch (kind) {
    case SpaceKind::kCost:
      return "cost";
    case SpaceKind::kDoi:
      return "doi";
    case SpaceKind::kSize:
      return "size";
  }
  return "?";
}

SpaceView::SpaceView(const estimation::StateEvaluator* evaluator,
                     const ProblemSpec* problem, SpaceKind kind,
                     std::vector<int32_t> order)
    : evaluator_(evaluator),
      problem_(problem),
      kind_(kind),
      order_(std::move(order)) {
  CQP_CHECK(evaluator_ != nullptr);
  CQP_CHECK(problem_ != nullptr);
  CQP_CHECK_EQ(order_.size(), evaluator_->K());
}

SpaceView SpaceView::ForKind(const estimation::StateEvaluator* evaluator,
                             const ProblemSpec* problem, SpaceKind kind,
                             const space::PreferenceSpaceResult& result) {
  switch (kind) {
    case SpaceKind::kCost:
      CQP_CHECK_EQ(result.C.size(), result.prefs.size())
          << "cost vector missing: extract with build_cost_size_vectors";
      return SpaceView(evaluator, problem, kind, result.C);
    case SpaceKind::kDoi:
      return SpaceView(evaluator, problem, kind, result.D);
    case SpaceKind::kSize:
      CQP_CHECK_EQ(result.S.size(), result.prefs.size())
          << "size vector missing: extract with build_cost_size_vectors";
      return SpaceView(evaluator, problem, kind, result.S);
  }
  CQP_CHECK(false) << "unreachable";
  return SpaceView(evaluator, problem, kind, {});
}

IndexSet SpaceView::ToPrefIndices(const IndexSet& positions) const {
  std::vector<int32_t> indices;
  indices.reserve(positions.size());
  for (int32_t pos : positions) {
    indices.push_back(order_[static_cast<size_t>(pos)]);
  }
  return IndexSet::FromUnsorted(std::move(indices));
}

estimation::StateParams SpaceView::Evaluate(const IndexSet& positions,
                                            SearchMetrics& metrics) const {
  ++metrics.states_examined;
  if (evaluator_->K() < 64) {
    // Canonical path: integrate in ascending P-index order regardless of
    // this view's position order, so every space (C, D, S) computes
    // bit-for-bit identical floats for the same preference set — the
    // property that makes one EvalCache shareable across algorithms.
    uint64_t bits = 0;
    for (int32_t pos : positions) {
      bits |= uint64_t{1} << order_[static_cast<size_t>(pos)];
    }
    bool cache_hit = false;
    estimation::StateParams params =
        evaluator_->EvaluateBitsCached(bits, &cache_hit);
    if (evaluator_->cache() != nullptr) {
      if (cache_hit) {
        ++metrics.eval_cache_hits;
      } else {
        ++metrics.eval_cache_misses;
      }
    }
    return params;
  }
  // K >= 64 (never produced by extraction, possible in synthetic tests):
  // no uint64_t key exists, so evaluate directly — still in ascending
  // P-index order for consistency with the cached path.
  return evaluator_->Evaluate(ToPrefIndices(positions));
}

estimation::StateParams SpaceView::ExtendWith(
    const estimation::StateParams& parent, int32_t position,
    SearchMetrics& metrics) const {
  ++metrics.states_examined;
  ++metrics.transitions;
  return evaluator_->ExtendWith(parent,
                                order_[static_cast<size_t>(position)]);
}

bool SpaceView::WithinBound(const estimation::StateParams& params) const {
  switch (kind_) {
    case SpaceKind::kCost:
      // Phase-1 boundary search in the cost space is steered by the cost
      // bound only; other constraints are checked in phase 2, because
      // Vertical moves in this space have a known effect on cost alone.
      return !problem_->cmax_ms || params.cost_ms <= *problem_->cmax_ms;
    case SpaceKind::kSize:
      return !problem_->smin || params.size >= *problem_->smin;
    case SpaceKind::kDoi:
      // The doi-space chain algorithms only rely on the bound degrading
      // monotonically along Horizontal moves, which holds for the
      // conjunction of both degrading constraints.
      if (problem_->cmax_ms && params.cost_ms > *problem_->cmax_ms) {
        return false;
      }
      if (problem_->smin && params.size < *problem_->smin) return false;
      return true;
  }
  return true;
}

bool SpaceView::GreedyPhase2Exact() const {
  // The slot-swap scan below a boundary (C_FINDMAXDOI) relies on every swap
  // preserving the bound, which is only guaranteed for the space's own key
  // parameter. Constraints on other parameters force a region scan.
  switch (kind_) {
    case SpaceKind::kCost:
      return !problem_->smin.has_value() && !problem_->smax.has_value();
    case SpaceKind::kSize:
      return !problem_->cmax_ms.has_value() && !problem_->smax.has_value();
    case SpaceKind::kDoi:
      return false;  // phase-2 swaps are not used in the doi space
  }
  return false;
}

uint64_t SpaceView::PositionsToPrefBits(uint64_t pos_bits) const {
  uint64_t bits = 0;
  for (uint64_t rest = pos_bits; rest != 0; rest &= rest - 1) {
    bits |= uint64_t{1}
            << order_[static_cast<size_t>(std::countr_zero(rest))];
  }
  return bits;
}

void SpaceView::BumpFrontierCounters(size_t n, SearchMetrics& metrics) const {
  metrics.states_examined += n;
  ++metrics.frontiers_evaluated;
  metrics.frontier_states += n;
  metrics.frontier_lanes_wasted += batch_->PaddedLanes(n) - n;
}

void SpaceView::EvaluateFrontierBits(
    const uint64_t* pos_bits, size_t n,
    estimation::BatchEvaluator::Results* out, SearchMetrics& metrics) const {
  CQP_CHECK(batch_enabled());
  frontier_scratch_.resize(n);
  for (size_t l = 0; l < n; ++l) {
    frontier_scratch_[l] = PositionsToPrefBits(pos_bits[l]);
  }
  batch_->EvaluateMasks(frontier_scratch_.data(), n, out);
  BumpFrontierCounters(n, metrics);
}

void SpaceView::ExtendFrontier(const estimation::StateParams& parent,
                               const int32_t* positions, size_t n,
                               estimation::BatchEvaluator::Results* out,
                               SearchMetrics& metrics) const {
  CQP_CHECK(batch_enabled());
  extend_scratch_.resize(n);
  for (size_t l = 0; l < n; ++l) {
    extend_scratch_[l] = order_[static_cast<size_t>(positions[l])];
  }
  batch_->ExtendBatch(parent, extend_scratch_.data(), n, out);
  metrics.transitions += n;
  BumpFrontierCounters(n, metrics);
}

FrontierMasks ClassifyFrontier(const SpaceView& view,
                               const estimation::BatchEvaluator::Results& r) {
  CQP_CHECK_LE(r.n, size_t{64});
  const ProblemSpec& problem = view.problem();
  const double inf = std::numeric_limits<double>::infinity();
  const double cmax = problem.cmax_ms.value_or(inf);
  const double dmin = problem.dmin.value_or(-inf);
  const double smin = problem.smin.value_or(-inf);
  const double smax = problem.smax.value_or(inf);
  double bound_cmax = inf;
  double bound_smin = -inf;
  switch (view.kind()) {
    case SpaceKind::kCost:
      bound_cmax = cmax;
      break;
    case SpaceKind::kSize:
      bound_smin = smin;
      break;
    case SpaceKind::kDoi:
      bound_cmax = cmax;
      bound_smin = smin;
      break;
  }
  FrontierMasks masks;
  for (size_t l = 0; l < r.n; ++l) {
    const double cost = r.cost_ms[l];
    const double doi = r.doi[l];
    const double size = r.size[l];
    const bool feasible =
        cost <= cmax && doi >= dmin && size >= smin && size <= smax;
    const bool within = cost <= bound_cmax && size >= bound_smin;
    masks.feasible |= static_cast<uint64_t>(feasible) << l;
    masks.within_bound |= static_cast<uint64_t>(within) << l;
  }
  return masks;
}

double SpaceView::BestExpectedDoi(size_t n) const {
  estimation::StateParams params = evaluator_->EmptyState();
  size_t limit = std::min(n, evaluator_->K());
  // P is sorted by doi descending, so the first `limit` P-indices are the
  // best preferences.
  for (size_t i = 0; i < limit; ++i) {
    params = evaluator_->ExtendWith(params, static_cast<int32_t>(i));
  }
  return params.doi;
}

}  // namespace cqp::cqp
