#ifndef CQP_CQP_SEARCH_SPACE_H_
#define CQP_CQP_SEARCH_SPACE_H_

#include <cstdint>
#include <vector>

#include "common/index_set.h"
#include "cqp/metrics.h"
#include "cqp/problem.h"
#include "estimation/batch_evaluator.h"
#include "estimation/evaluator.h"
#include "space/preference_space.h"

namespace cqp::cqp {

/// Which pointer vector orders the positions of a search space.
enum class SpaceKind {
  kCost,  ///< C: cost(Q ∧ p) descending — position 0 is the most expensive
  kDoi,   ///< D: doi descending — position 0 is the most interesting
  kSize,  ///< S: size(Q ∧ p) ascending — position 0 shrinks the result most
};

const char* SpaceKindName(SpaceKind kind);

/// A view of the preference space P as a state space over one pointer
/// vector, bundled with the problem's constraints (paper §5.1, §6).
///
/// States are IndexSets of *positions*; the view translates them to P
/// indices for evaluation. It also classifies the problem's constraints:
///
///  * the *binding bound* — the monotonically degrading constraint matching
///    the space's key (cost ≤ cmax in the cost space, size ≥ smin in the
///    size space; their conjunction in the doi space, where only Horizontal
///    monotonicity is needed). Phase-1 boundary search is steered by this
///    bound; once a state violates it, every Horizontal successor does too.
///  * full feasibility — all of the problem's constraints; the ones not in
///    the binding bound are enforced during phase 2.
class SpaceView {
 public:
  /// `result` and `evaluator` must outlive the view. `order` is the pointer
  /// vector matching `kind` (C, D or S from the PreferenceSpaceResult).
  SpaceView(const estimation::StateEvaluator* evaluator,
            const ProblemSpec* problem, SpaceKind kind,
            std::vector<int32_t> order);

  /// Convenience factory picking the right pointer vector from `result`.
  static SpaceView ForKind(const estimation::StateEvaluator* evaluator,
                           const ProblemSpec* problem, SpaceKind kind,
                           const space::PreferenceSpaceResult& result);

  size_t K() const { return order_.size(); }
  SpaceKind kind() const { return kind_; }
  const ProblemSpec& problem() const { return *problem_; }
  const estimation::StateEvaluator& evaluator() const { return *evaluator_; }

  /// P index stored at `position`.
  int32_t PrefIndexAt(int32_t position) const {
    return order_[static_cast<size_t>(position)];
  }

  /// Translates a position-set into the P-index set it denotes.
  IndexSet ToPrefIndices(const IndexSet& positions) const;

  /// Evaluates the state's parameters; bumps metrics.states_examined.
  estimation::StateParams Evaluate(const IndexSet& positions,
                                   SearchMetrics& metrics) const;

  /// Incremental evaluation of `positions ∪ {position}` given the parent's
  /// parameters.
  estimation::StateParams ExtendWith(const estimation::StateParams& parent,
                                     int32_t position,
                                     SearchMetrics& metrics) const;

  /// The binding (monotonically degrading) bound.
  bool WithinBound(const estimation::StateParams& params) const;

  /// All constraints of the problem.
  bool Feasible(const estimation::StateParams& params) const {
    return problem_->IsFeasible(params);
  }

  /// True when feasibility equals the binding bound, i.e. no smax/dmin
  /// constraint exists. In that case the greedy slot-swap scan below a
  /// boundary (C_FINDMAXDOI) is exact; otherwise a region scan is needed.
  bool GreedyPhase2Exact() const;

  /// Upper bound on the doi of any state with `n` preferences: the doi of
  /// the n best preferences of P (P is doi-sorted).
  double BestExpectedDoi(size_t n) const;

  // --- SoA/SIMD batch evaluation (docs/simd.md) ---------------------------

  /// Attaches a batch evaluator built over the same preference space (see
  /// search_util's ResolveBatchEvaluator). nullptr detaches. A view is
  /// single-solve/single-threaded, so the frontier scratch is per-view.
  void set_batch(const estimation::BatchEvaluator* batch) { batch_ = batch; }
  const estimation::BatchEvaluator* batch() const { return batch_; }

  /// True when batch entry points below may be used: a batch evaluator is
  /// attached and states fit in a uint64 position mask.
  bool batch_enabled() const { return batch_ != nullptr && K() < 64; }

  /// Translates a position bitmask into the P-index bitmask it denotes.
  uint64_t PositionsToPrefBits(uint64_t pos_bits) const;

  /// Batch-evaluates `n` sibling states given as position bitmasks, each in
  /// canonical ascending P-index order (bit-for-bit equal to Evaluate()).
  /// Bumps states_examined and the frontier counters; the batch path is
  /// cacheless by design, so eval_cache_hits/misses stay untouched.
  void EvaluateFrontierBits(const uint64_t* pos_bits, size_t n,
                            estimation::BatchEvaluator::Results* out,
                            SearchMetrics& metrics) const;

  /// Batch ExtendWith: lane l is `parent` ⊕ positions[l] (bit-for-bit equal
  /// to ExtendWith per lane). Bumps states_examined/transitions per lane
  /// plus the frontier counters.
  void ExtendFrontier(const estimation::StateParams& parent,
                      const int32_t* positions, size_t n,
                      estimation::BatchEvaluator::Results* out,
                      SearchMetrics& metrics) const;

 private:
  void BumpFrontierCounters(size_t n, SearchMetrics& metrics) const;

  const estimation::StateEvaluator* evaluator_;
  const ProblemSpec* problem_;
  SpaceKind kind_;
  std::vector<int32_t> order_;
  const estimation::BatchEvaluator* batch_ = nullptr;
  mutable std::vector<uint64_t> frontier_scratch_;  ///< pref-bit masks
  mutable std::vector<int32_t> extend_scratch_;     ///< pref indices
};

/// Lane bitmasks classifying a batch of evaluated states; bit l refers to
/// lane l of `results` (requires results.n <= 64 — frontiers are bounded
/// by K or by the tail width, both < 64).
struct FrontierMasks {
  uint64_t feasible = 0;      ///< ProblemSpec::IsFeasible per lane
  uint64_t within_bound = 0;  ///< SpaceView::WithinBound per lane
};

/// Branchless feasibility/bound classification of a frontier. The
/// comparisons are the exact ones IsFeasible/WithinBound perform (absent
/// constraints resolve to ±infinity), so the masks agree with the scalar
/// predicates on every lane including exact-boundary hits.
FrontierMasks ClassifyFrontier(const SpaceView& view,
                               const estimation::BatchEvaluator::Results& r);

}  // namespace cqp::cqp

#endif  // CQP_CQP_SEARCH_SPACE_H_
