#ifndef CQP_CQP_SEARCH_SPACE_H_
#define CQP_CQP_SEARCH_SPACE_H_

#include <cstdint>
#include <vector>

#include "common/index_set.h"
#include "cqp/metrics.h"
#include "cqp/problem.h"
#include "estimation/evaluator.h"
#include "space/preference_space.h"

namespace cqp::cqp {

/// Which pointer vector orders the positions of a search space.
enum class SpaceKind {
  kCost,  ///< C: cost(Q ∧ p) descending — position 0 is the most expensive
  kDoi,   ///< D: doi descending — position 0 is the most interesting
  kSize,  ///< S: size(Q ∧ p) ascending — position 0 shrinks the result most
};

const char* SpaceKindName(SpaceKind kind);

/// A view of the preference space P as a state space over one pointer
/// vector, bundled with the problem's constraints (paper §5.1, §6).
///
/// States are IndexSets of *positions*; the view translates them to P
/// indices for evaluation. It also classifies the problem's constraints:
///
///  * the *binding bound* — the monotonically degrading constraint matching
///    the space's key (cost ≤ cmax in the cost space, size ≥ smin in the
///    size space; their conjunction in the doi space, where only Horizontal
///    monotonicity is needed). Phase-1 boundary search is steered by this
///    bound; once a state violates it, every Horizontal successor does too.
///  * full feasibility — all of the problem's constraints; the ones not in
///    the binding bound are enforced during phase 2.
class SpaceView {
 public:
  /// `result` and `evaluator` must outlive the view. `order` is the pointer
  /// vector matching `kind` (C, D or S from the PreferenceSpaceResult).
  SpaceView(const estimation::StateEvaluator* evaluator,
            const ProblemSpec* problem, SpaceKind kind,
            std::vector<int32_t> order);

  /// Convenience factory picking the right pointer vector from `result`.
  static SpaceView ForKind(const estimation::StateEvaluator* evaluator,
                           const ProblemSpec* problem, SpaceKind kind,
                           const space::PreferenceSpaceResult& result);

  size_t K() const { return order_.size(); }
  SpaceKind kind() const { return kind_; }
  const ProblemSpec& problem() const { return *problem_; }
  const estimation::StateEvaluator& evaluator() const { return *evaluator_; }

  /// P index stored at `position`.
  int32_t PrefIndexAt(int32_t position) const {
    return order_[static_cast<size_t>(position)];
  }

  /// Translates a position-set into the P-index set it denotes.
  IndexSet ToPrefIndices(const IndexSet& positions) const;

  /// Evaluates the state's parameters; bumps metrics.states_examined.
  estimation::StateParams Evaluate(const IndexSet& positions,
                                   SearchMetrics& metrics) const;

  /// Incremental evaluation of `positions ∪ {position}` given the parent's
  /// parameters.
  estimation::StateParams ExtendWith(const estimation::StateParams& parent,
                                     int32_t position,
                                     SearchMetrics& metrics) const;

  /// The binding (monotonically degrading) bound.
  bool WithinBound(const estimation::StateParams& params) const;

  /// All constraints of the problem.
  bool Feasible(const estimation::StateParams& params) const {
    return problem_->IsFeasible(params);
  }

  /// True when feasibility equals the binding bound, i.e. no smax/dmin
  /// constraint exists. In that case the greedy slot-swap scan below a
  /// boundary (C_FINDMAXDOI) is exact; otherwise a region scan is needed.
  bool GreedyPhase2Exact() const;

  /// Upper bound on the doi of any state with `n` preferences: the doi of
  /// the n best preferences of P (P is doi-sorted).
  double BestExpectedDoi(size_t n) const;

 private:
  const estimation::StateEvaluator* evaluator_;
  const ProblemSpec* problem_;
  SpaceKind kind_;
  std::vector<int32_t> order_;
};

}  // namespace cqp::cqp

#endif  // CQP_CQP_SEARCH_SPACE_H_
