#include <algorithm>
#include <bit>
#include <optional>
#include <vector>

#include "common/stopwatch.h"
#include "cqp/algorithms.h"
#include "cqp/search_util.h"
#include "estimation/batch_evaluator.h"

namespace cqp::cqp {

namespace {

/// Tail width of the batched enumeration: once a node has this many order
/// positions left, its whole subtree (2^4 = 16 subsets of the remaining
/// preferences) is evaluated as one frontier instead of recursing.
constexpr size_t kBbTailBits = 4;

/// Shared context of the branch-and-bound recursion. Preferences are
/// visited in cost-ascending order so that prefixes of the recursion tree
/// are the cheap ones.
struct BbContext {
  const estimation::StateEvaluator* evaluator = nullptr;
  const ProblemSpec* problem = nullptr;
  SearchContext* ctx = nullptr;
  std::vector<int32_t> order;       // cost-ascending P indices
  std::vector<double> suffix_doi;   // doi of order[i..] combined
  Solution best;
  std::vector<int32_t> current;     // chosen P indices (recursion stack)
  const estimation::BatchEvaluator* batch = nullptr;
  std::vector<uint64_t> tail_masks;  // 16 membership masks; mask l == l
  estimation::BatchEvaluator::Results results;
};

/// Evaluates the 2^kBbTailBits subsets of the remaining suffix in one
/// batch call. The node has already passed the scalar prunes, which are
/// admissible: every state they skip is provably no better than the final
/// incumbent, so evaluating the full (unpruned) tail can change which
/// equal-cost solution is recorded but never the objective value. Lane l's
/// members are { order[i+j] : bit j of l }, applied in the same
/// cost-ascending sequence the scalar recursion extends in, so each lane
/// is bit-for-bit the scalar chain of that subset.
void BbBatchTail(BbContext& ctx, size_t i,
                 const estimation::StateParams& params) {
  const size_t n = ctx.tail_masks.size();
  ctx.batch->EvaluateSequence(params, &ctx.order[i], kBbTailBits,
                              ctx.tail_masks.data(), n, &ctx.results);
  SearchMetrics& metrics = ctx.ctx->metrics;
  metrics.states_examined += n;
  ++metrics.frontiers_evaluated;
  metrics.frontier_states += n;
  metrics.frontier_lanes_wasted += ctx.batch->PaddedLanes(n) - n;
  const ProblemSpec& problem = *ctx.problem;
  for (size_t l = 0; l < n; ++l) {
    estimation::StateParams leaf = ctx.results.Get(l);
    if (!problem.IsFeasible(leaf)) continue;
    if (ctx.best.feasible && !problem.Better(leaf, ctx.best.params)) {
      continue;
    }
    ctx.best.feasible = true;
    ctx.best.params = leaf;
    std::vector<int32_t> chosen = ctx.current;
    for (uint64_t rest = ctx.tail_masks[l]; rest != 0; rest &= rest - 1) {
      chosen.push_back(
          ctx.order[i + static_cast<size_t>(std::countr_zero(rest))]);
    }
    ctx.best.chosen = IndexSet::FromUnsorted(std::move(chosen));
  }
}

void BbRecurse(BbContext& ctx, size_t i,
               const estimation::StateParams& params) {
  if (ctx.ctx->ShouldStop()) return;
  ++ctx.ctx->metrics.states_examined;
  const ProblemSpec& problem = *ctx.problem;

  if (problem.IsFeasible(params)) {
    // Feasible: extensions only add cost, so record and backtrack.
    if (!ctx.best.feasible || problem.Better(params, ctx.best.params)) {
      ctx.best.feasible = true;
      ctx.best.params = params;
      ctx.best.chosen = IndexSet::FromUnsorted(ctx.current);
    }
    return;
  }

  if (i >= ctx.order.size()) return;

  // Bound prunes (all constraints are monotone along extensions):
  //  * cost only grows; a state at or above the incumbent cannot win;
  //  * doi can at most reach the combination with the whole suffix;
  //  * size only shrinks, so smin, once violated, stays violated.
  // The doi/size bounds are admissible in real arithmetic but are computed
  // in a different operation order than a full evaluation, so they are
  // padded by an ulp-scale slack: without it a bound landing one ulp below
  // a dmin that exactly equals a reachable state's doi prunes the subtree
  // holding the optimum.
  constexpr double kFpSlack = 1e-12;
  if (ctx.best.feasible && params.cost_ms >= ctx.best.params.cost_ms) return;
  if (problem.dmin) {
    double max_doi =
        1.0 - (1.0 - params.doi) * (1.0 - ctx.suffix_doi[i]);
    if (ctx.evaluator->conjunction_model() ==
        prefs::ConjunctionModel::kSumCapped) {
      max_doi = std::min(1.0, params.doi + ctx.suffix_doi[i]);
    }
    if (max_doi < *problem.dmin - kFpSlack) return;
  }
  if (problem.smin && params.size < *problem.smin * (1.0 - kFpSlack)) return;

  // Batched tail: the prunes above have run for this node, so handing the
  // whole remaining subtree to one frontier evaluation preserves the
  // incumbent's objective (see BbBatchTail).
  if (ctx.batch != nullptr && ctx.order.size() - i == kBbTailBits) {
    BbBatchTail(ctx, i, params);
    return;
  }

  // Include order[i] first (cheapest-first tends to find good incumbents
  // early, tightening the cost bound).
  int32_t pref = ctx.order[i];
  ctx.current.push_back(pref);
  BbRecurse(ctx, i + 1, ctx.evaluator->ExtendWith(params, pref));
  ctx.current.pop_back();
  // Exclude order[i].
  BbRecurse(ctx, i + 1, params);
}

}  // namespace

bool MinCostBranchBoundAlgorithm::Supports(const ProblemSpec& problem) const {
  return problem.Validate().ok() &&
         problem.objective == Objective::kMinimizeCost;
}

bool MinCostBranchBoundAlgorithm::IsExactFor(
    const ProblemSpec& problem) const {
  return Supports(problem);
}

StatusOr<Solution> MinCostBranchBoundAlgorithm::Solve(
    const space::PreferenceSpaceResult& space, const ProblemSpec& problem,
    SearchContext& search_ctx) const {
  CQP_RETURN_IF_ERROR(problem.Validate());
  if (problem.objective != Objective::kMinimizeCost) {
    return FailedPrecondition("MinCost-BB solves cost-minimization problems");
  }
  Stopwatch timer;
  estimation::StateEvaluator evaluator =
      space.MakeEvaluator(search_ctx.eval_cache);

  BbContext ctx;
  ctx.evaluator = &evaluator;
  ctx.problem = &problem;
  ctx.ctx = &search_ctx;
  ctx.best = InfeasibleSolution(evaluator);
  std::optional<estimation::BatchEvaluator> local_batch;
  ctx.batch = ResolveBatchEvaluator(space, search_ctx, local_batch);
  if (ctx.batch != nullptr) {
    // Lane l's mask over the 4-preference suffix is l itself (bit j of
    // lane l selects order[i+j]).
    ctx.tail_masks.resize(size_t{1} << kBbTailBits);
    for (size_t l = 0; l < ctx.tail_masks.size(); ++l) {
      ctx.tail_masks[l] = static_cast<uint64_t>(l);
    }
  }
  ctx.order.resize(evaluator.K());
  for (size_t i = 0; i < ctx.order.size(); ++i) {
    ctx.order[i] = static_cast<int32_t>(i);
  }
  std::sort(ctx.order.begin(), ctx.order.end(), [&](int32_t a, int32_t b) {
    double ca = evaluator.pref(static_cast<size_t>(a)).cost_ms;
    double cb = evaluator.pref(static_cast<size_t>(b)).cost_ms;
    if (ca != cb) return ca < cb;
    return a < b;
  });
  // suffix_doi[i]: combined doi of order[i..K-1] under the noisy-or model
  // (or plain sum-cap), used as an admissible doi upper bound.
  ctx.suffix_doi.assign(evaluator.K() + 1, 0.0);
  for (size_t i = evaluator.K(); i-- > 0;) {
    double d = evaluator.pref(static_cast<size_t>(ctx.order[i])).doi;
    switch (evaluator.conjunction_model()) {
      case prefs::ConjunctionModel::kNoisyOr:
        ctx.suffix_doi[i] = 1.0 - (1.0 - ctx.suffix_doi[i + 1]) * (1.0 - d);
        break;
      case prefs::ConjunctionModel::kSumCapped:
        ctx.suffix_doi[i] = std::min(1.0, ctx.suffix_doi[i + 1] + d);
        break;
    }
  }

  BbRecurse(ctx, 0, evaluator.EmptyState());

  ctx.best.degraded = search_ctx.exhausted();
  search_ctx.metrics.wall_ms = timer.ElapsedMillis();
  return ctx.best;
}

bool MinCostGreedyAlgorithm::Supports(const ProblemSpec& problem) const {
  return problem.Validate().ok() &&
         problem.objective == Objective::kMinimizeCost;
}

bool MinCostGreedyAlgorithm::IsExactFor(const ProblemSpec&) const {
  return false;
}

StatusOr<Solution> MinCostGreedyAlgorithm::Solve(
    const space::PreferenceSpaceResult& space, const ProblemSpec& problem,
    SearchContext& ctx) const {
  CQP_RETURN_IF_ERROR(problem.Validate());
  if (problem.objective != Objective::kMinimizeCost) {
    return FailedPrecondition(
        "MinCost-Greedy solves cost-minimization problems");
  }
  Stopwatch timer;
  SearchMetrics& metrics = ctx.metrics;
  estimation::StateEvaluator evaluator = space.MakeEvaluator(ctx.eval_cache);
  const size_t k = evaluator.K();

  estimation::StateParams params = evaluator.EmptyState();
  std::vector<bool> used(k, false);
  std::vector<int32_t> chosen;
  ++metrics.states_examined;

  // Add the preference with the best doi-per-cost ratio (among those not
  // violating smin) until feasible or exhausted.
  while (!problem.IsFeasible(params) && !ctx.ShouldStop()) {
    // Pick the gain that addresses the violated constraint: doi per cost
    // while doi >= dmin is unmet, result shrinkage per cost while
    // size <= smax is unmet.
    bool need_doi = problem.dmin && params.doi < *problem.dmin;
    int32_t best_i = -1;
    double best_ratio = -1.0;
    for (size_t i = 0; i < k; ++i) {
      if (used[i]) continue;
      const estimation::ScoredPreference& p = evaluator.pref(i);
      if (problem.smin && params.size * p.selectivity < *problem.smin) {
        continue;
      }
      double gain = need_doi ? p.doi : (1.0 - p.selectivity) + 1e-9;
      double ratio = gain / std::max(p.cost_ms, 1e-9);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_i = static_cast<int32_t>(i);
      }
    }
    if (best_i < 0) break;
    used[static_cast<size_t>(best_i)] = true;
    chosen.push_back(best_i);
    params = evaluator.ExtendWith(params, best_i);
    ++metrics.states_examined;
  }

  if (!problem.IsFeasible(params)) {
    Solution s = InfeasibleSolution(evaluator);
    s.degraded = ctx.exhausted();
    metrics.wall_ms = timer.ElapsedMillis();
    return s;
  }

  // Drop pass: remove members whose removal keeps feasibility (cheapest
  // solution wins, so dropping is always an improvement when allowed).
  // Try most expensive members first.
  std::sort(chosen.begin(), chosen.end(), [&](int32_t a, int32_t b) {
    return evaluator.pref(static_cast<size_t>(a)).cost_ms >
           evaluator.pref(static_cast<size_t>(b)).cost_ms;
  });
  for (size_t drop = 0; drop < chosen.size() && !ctx.ShouldStop();) {
    std::vector<int32_t> trial;
    trial.reserve(chosen.size() - 1);
    for (size_t i = 0; i < chosen.size(); ++i) {
      if (i != drop) trial.push_back(chosen[i]);
    }
    estimation::StateParams trial_params =
        evaluator.Evaluate(IndexSet::FromUnsorted(trial));
    ++metrics.states_examined;
    if (problem.IsFeasible(trial_params)) {
      chosen = std::move(trial);
      params = trial_params;
      // restart scan: earlier drops may have become possible
      drop = 0;
    } else {
      ++drop;
    }
  }

  Solution s;
  s.feasible = true;
  s.degraded = ctx.exhausted();
  s.chosen = IndexSet::FromUnsorted(chosen);
  s.params = params;
  metrics.wall_ms = timer.ElapsedMillis();
  return s;
}

}  // namespace cqp::cqp
