#ifndef CQP_CQP_SEARCH_UTIL_H_
#define CQP_CQP_SEARCH_UTIL_H_

#include <deque>
#include <map>
#include <unordered_set>
#include <vector>

#include "common/index_set.h"
#include "cqp/algorithm.h"
#include "cqp/search_space.h"

namespace cqp::cqp {

/// Visited-state set with MemoryMeter accounting.
class VisitedSet {
 public:
  explicit VisitedSet(SearchMetrics& metrics) : metrics_(metrics) {}

  /// Returns true if `state` was already present; inserts it otherwise.
  bool CheckAndInsert(const IndexSet& state) {
    auto [it, inserted] = set_.insert(state);
    if (inserted) metrics_.memory.Allocate(state.MemoryBytes());
    return !inserted;
  }

  bool Contains(const IndexSet& state) const { return set_.count(state) > 0; }
  size_t size() const { return set_.size(); }

 private:
  std::unordered_set<IndexSet, IndexSetHash> set_;
  SearchMetrics& metrics_;
};

/// FIFO/LIFO hybrid work queue (Vertical neighbors go to the front so a
/// group is exhausted before the next one starts), with memory accounting.
class StateQueue {
 public:
  explicit StateQueue(SearchMetrics& metrics) : metrics_(metrics) {}

  void PushBack(IndexSet state) {
    metrics_.memory.Allocate(state.MemoryBytes());
    queue_.push_back(std::move(state));
  }
  void PushFront(IndexSet state) {
    metrics_.memory.Allocate(state.MemoryBytes());
    queue_.push_front(std::move(state));
  }
  IndexSet PopFront() {
    IndexSet out = std::move(queue_.front());
    queue_.pop_front();
    metrics_.memory.Release(out.MemoryBytes());
    return out;
  }
  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }

 private:
  std::deque<IndexSet> queue_;
  SearchMetrics& metrics_;
};

/// Boundaries found during phase 1, grouped by group size, with domination
/// queries used by prune() (paper: nodes below an already-found boundary
/// need not be visited).
class BoundaryStore {
 public:
  explicit BoundaryStore(SearchMetrics& metrics) : metrics_(metrics) {}

  /// Stores `boundary`, dropping previously stored boundaries of the same
  /// group it dominates: their cones are subsets of the new one (domination
  /// is transitive), so they are redundant for both pruning and phase 2.
  /// This keeps only the maximal boundaries without changing which states
  /// the search visits.
  void Add(const IndexSet& boundary) {
    std::vector<IndexSet>& group = by_size_[boundary.size()];
    for (size_t i = group.size(); i-- > 0;) {
      if (boundary.Dominates(group[i])) {
        metrics_.memory.Release(group[i].MemoryBytes());
        group.erase(group.begin() + static_cast<ptrdiff_t>(i));
      }
    }
    group.push_back(boundary);
    metrics_.memory.Allocate(boundary.MemoryBytes());
    ++metrics_.boundaries_found;
  }

  /// True if some stored boundary of the same group dominates `state`
  /// (i.e. `state` is reachable from it via Vertical transitions).
  bool DominatesAny(const IndexSet& state) const {
    auto it = by_size_.find(state.size());
    if (it == by_size_.end()) return false;
    for (const IndexSet& b : it->second) {
      if (b == state) continue;
      if (b.Dominates(state)) return true;
    }
    return false;
  }

  bool empty() const { return by_size_.empty(); }

  /// All boundaries ordered by decreasing group size (phase-2 order).
  std::vector<IndexSet> DescendingBySize() const {
    std::vector<IndexSet> out;
    for (auto it = by_size_.rbegin(); it != by_size_.rend(); ++it) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
    return out;
  }

 private:
  std::map<size_t, std::vector<IndexSet>> by_size_;
  SearchMetrics& metrics_;
};

/// The paper's C_FINDMAXDOI slot-swap: the maximum-doi state dominated by
/// `boundary` (positions), exact under SpaceView::GreedyPhase2Exact().
/// Returns a position-set.
IndexSet GreedyMaxDoiBelow(const SpaceView& view, const IndexSet& boundary);

/// Phase 2 for doi-maximization problems: the best feasible state at or
/// below any of `boundaries` (position-sets), also considering the empty
/// state. Uses the greedy slot-swap when exact for the view, otherwise an
/// exhaustive region scan of each boundary's dominated cone (needed when
/// constraints beyond the space's key exist, e.g. smax — the paper's
/// Up/Low-boundary enhancement of §6 generalized). Honors ctx's budget:
/// stops scanning on exhaustion, keeping the best state found so far.
Solution BestFeasibleBelowBoundaries(const SpaceView& view,
                                     const std::vector<IndexSet>& boundaries,
                                     SearchContext& ctx);

/// Wraps a position-set solution into P-index form.
Solution MakeSolution(const SpaceView& view, const IndexSet& positions,
                      const estimation::StateParams& params);

/// Space the boundary (C-family) algorithms search for `problem`: the cost
/// space when a cost bound exists, otherwise the size space (paper §6).
/// Fails for problems without a degrading bound.
StatusOr<SpaceKind> BoundSpaceKindFor(const ProblemSpec& problem);

/// Result of a greedy Horizontal2 fill.
struct FillResult {
  IndexSet state;
  estimation::StateParams params;
};

/// Extends `state` by repeatedly adding the first Horizontal2 candidate (in
/// increasing position order, i.e. decreasing key order) that keeps the
/// binding bound, until none fits. `banned`, if non-null, marks positions
/// that must not be added (used by D-HeurDoi's refinement). Stops early
/// (keeping the fill so far) when ctx's budget runs out.
FillResult GreedyFill(const SpaceView& view, IndexSet state,
                      estimation::StateParams params,
                      const std::vector<bool>* banned, SearchContext& ctx);

/// The infeasible sentinel (no state satisfies the constraints).
Solution InfeasibleSolution(const estimation::StateEvaluator& evaluator);

}  // namespace cqp::cqp

#endif  // CQP_CQP_SEARCH_UTIL_H_
