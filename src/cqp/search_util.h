#ifndef CQP_CQP_SEARCH_UTIL_H_
#define CQP_CQP_SEARCH_UTIL_H_

#include <bit>
#include <deque>
#include <map>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/index_set.h"
#include "cqp/algorithm.h"
#include "cqp/search_space.h"
#include "estimation/batch_evaluator.h"

namespace cqp::cqp {

/// Visited-state set with MemoryMeter accounting.
class VisitedSet {
 public:
  explicit VisitedSet(SearchMetrics& metrics) : metrics_(metrics) {}

  /// Returns true if `state` was already present; inserts it otherwise.
  bool CheckAndInsert(const IndexSet& state) {
    auto [it, inserted] = set_.insert(state);
    if (inserted) metrics_.memory.Allocate(state.MemoryBytes());
    return !inserted;
  }

  bool Contains(const IndexSet& state) const { return set_.count(state) > 0; }
  size_t size() const { return set_.size(); }

 private:
  std::unordered_set<IndexSet, IndexSetHash> set_;
  SearchMetrics& metrics_;
};

/// FIFO/LIFO hybrid work queue (Vertical neighbors go to the front so a
/// group is exhausted before the next one starts), with memory accounting.
class StateQueue {
 public:
  explicit StateQueue(SearchMetrics& metrics) : metrics_(metrics) {}

  void PushBack(IndexSet state) {
    metrics_.memory.Allocate(state.MemoryBytes());
    queue_.push_back(std::move(state));
  }
  void PushFront(IndexSet state) {
    metrics_.memory.Allocate(state.MemoryBytes());
    queue_.push_front(std::move(state));
  }
  IndexSet PopFront() {
    IndexSet out = std::move(queue_.front());
    queue_.pop_front();
    metrics_.memory.Release(out.MemoryBytes());
    return out;
  }
  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }

 private:
  std::deque<IndexSet> queue_;
  SearchMetrics& metrics_;
};

/// Boundaries found during phase 1, grouped by group size, with domination
/// queries used by prune() (paper: nodes below an already-found boundary
/// need not be visited).
class BoundaryStore {
 public:
  explicit BoundaryStore(SearchMetrics& metrics) : metrics_(metrics) {}

  /// Stores `boundary`, dropping previously stored boundaries of the same
  /// group it dominates: their cones are subsets of the new one (domination
  /// is transitive), so they are redundant for both pruning and phase 2.
  /// This keeps only the maximal boundaries without changing which states
  /// the search visits.
  void Add(const IndexSet& boundary) {
    std::vector<IndexSet>& group = by_size_[boundary.size()];
    for (size_t i = group.size(); i-- > 0;) {
      if (boundary.Dominates(group[i])) {
        metrics_.memory.Release(group[i].MemoryBytes());
        group.erase(group.begin() + static_cast<ptrdiff_t>(i));
      }
    }
    group.push_back(boundary);
    metrics_.memory.Allocate(boundary.MemoryBytes());
    ++metrics_.boundaries_found;
  }

  /// True if some stored boundary of the same group dominates `state`
  /// (i.e. `state` is reachable from it via Vertical transitions).
  bool DominatesAny(const IndexSet& state) const {
    auto it = by_size_.find(state.size());
    if (it == by_size_.end()) return false;
    for (const IndexSet& b : it->second) {
      if (b == state) continue;
      if (b.Dominates(state)) return true;
    }
    return false;
  }

  bool empty() const { return by_size_.empty(); }

  /// All boundaries ordered by decreasing group size (phase-2 order).
  std::vector<IndexSet> DescendingBySize() const {
    std::vector<IndexSet> out;
    for (auto it = by_size_.rbegin(); it != by_size_.rend(); ++it) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
    return out;
  }

 private:
  std::map<size_t, std::vector<IndexSet>> by_size_;
  SearchMetrics& metrics_;
};

// --- Bitmask-domain companions for the batch-evaluation search loops ----
//
// The gprof profile of the C-Boundaries hot path showed ~75% of the time
// in IndexSet hashing/allocation, EvalCache probes on a ~0%-hit cold path
// and Dominates() calls — not in Formula evaluation. The batch search
// loops therefore keep the whole phase-1 working set in the uint64
// position-bitmask domain (k < 64): states are plain uint64s carried next
// to their already-evaluated StateParams, visited sets hash an integer,
// and domination is a couple of countr_zero loops. docs/simd.md.

/// A frontier work item: the state as a position bitmask plus its batch-
/// evaluated parameters (evaluated at push time — evaluation is a pure
/// function of the state, so push-time vs pop-time changes nothing).
struct BitState {
  uint64_t bits = 0;
  estimation::StateParams params;
};

/// Deque of BitStates with the same memory accounting role as StateQueue.
class BitStateQueue {
 public:
  explicit BitStateQueue(SearchMetrics& metrics) : metrics_(metrics) {}
  ~BitStateQueue() { metrics_.memory.Release(queue_.size() * kEntryBytes); }

  void PushBack(BitState state) {
    metrics_.memory.Allocate(kEntryBytes);
    queue_.push_back(state);
  }
  void PushFront(BitState state) {
    metrics_.memory.Allocate(kEntryBytes);
    queue_.push_front(state);
  }
  BitState PopFront() {
    BitState out = queue_.front();
    queue_.pop_front();
    metrics_.memory.Release(kEntryBytes);
    return out;
  }
  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }

 private:
  static constexpr size_t kEntryBytes = sizeof(BitState);
  std::deque<BitState> queue_;
  SearchMetrics& metrics_;
};

/// Visited set over bitmask states, with memory accounting. For k up to
/// kDenseMaxK the whole 2^k state universe fits a direct bitmap (one bit
/// per state, 2 MiB at the cap), making CheckAndInsert a test-and-set —
/// the profiled scalar loop spent ~50% of its time hashing and rehashing
/// visited states, and the dense form removes that entirely. Larger k
/// (only reachable in synthetic tests) falls back to a hash set.
class BitVisitedSet {
 public:
  static constexpr size_t kDenseMaxK = 24;

  BitVisitedSet(SearchMetrics& metrics, size_t k) : metrics_(metrics) {
    if (k <= kDenseMaxK) {
      dense_.assign(((size_t{1} << k) + 63) / 64, 0);
      metrics_.memory.Allocate(dense_.size() * sizeof(uint64_t));
    }
  }
  ~BitVisitedSet() {
    metrics_.memory.Release((dense_.size() + set_.size()) *
                            sizeof(uint64_t));
  }

  /// Returns true if `state` was already present; inserts it otherwise.
  bool CheckAndInsert(uint64_t state) {
    if (!dense_.empty()) {
      uint64_t& word = dense_[state >> 6];
      const uint64_t bit = uint64_t{1} << (state & 63);
      if ((word & bit) != 0) return true;
      word |= bit;
      ++dense_count_;
      return false;
    }
    auto [it, inserted] = set_.insert(state);
    if (inserted) metrics_.memory.Allocate(sizeof(uint64_t));
    return !inserted;
  }

  size_t size() const {
    return dense_.empty() ? set_.size() : dense_count_;
  }

 private:
  std::vector<uint64_t> dense_;  ///< bit s set <=> state s visited
  size_t dense_count_ = 0;
  std::unordered_set<uint64_t> set_;  ///< k > kDenseMaxK fallback
  SearchMetrics& metrics_;
};

/// IndexSet::Dominates over equal-popcount bitmasks: true iff the j-th
/// smallest member of `a` is <= the j-th smallest member of `b` for all j.
inline bool DominatesBits(uint64_t a, uint64_t b) {
  while (b != 0) {
    if (std::countr_zero(a) > std::countr_zero(b)) return false;
    a &= a - 1;
    b &= b - 1;
  }
  return true;
}

/// BoundaryStore over bitmask states: same maximal-boundary maintenance
/// and queries, same boundaries_found accounting, uint64 domination.
class BitBoundaryStore {
 public:
  explicit BitBoundaryStore(SearchMetrics& metrics) : metrics_(metrics) {}
  ~BitBoundaryStore() {
    for (const auto& [size, group] : by_size_) {
      metrics_.memory.Release(group.size() * sizeof(uint64_t));
    }
  }

  void Add(uint64_t boundary) {
    std::vector<uint64_t>& group =
        by_size_[static_cast<size_t>(std::popcount(boundary))];
    for (size_t i = group.size(); i-- > 0;) {
      if (DominatesBits(boundary, group[i])) {
        metrics_.memory.Release(sizeof(uint64_t));
        group.erase(group.begin() + static_cast<ptrdiff_t>(i));
      }
    }
    group.push_back(boundary);
    metrics_.memory.Allocate(sizeof(uint64_t));
    ++metrics_.boundaries_found;
  }

  bool DominatesAny(uint64_t state) const {
    auto it = by_size_.find(static_cast<size_t>(std::popcount(state)));
    if (it == by_size_.end()) return false;
    for (uint64_t b : it->second) {
      if (b == state) continue;
      if (DominatesBits(b, state)) return true;
    }
    return false;
  }

  bool empty() const { return by_size_.empty(); }

  /// All boundaries as IndexSets, ordered by decreasing group size —
  /// drop-in replacement for BoundaryStore::DescendingBySize().
  std::vector<IndexSet> DescendingBySize() const {
    std::vector<IndexSet> out;
    for (auto it = by_size_.rbegin(); it != by_size_.rend(); ++it) {
      for (uint64_t b : it->second) out.push_back(IndexSet::FromBits(b));
    }
    return out;
  }

 private:
  std::map<size_t, std::vector<uint64_t>> by_size_;
  SearchMetrics& metrics_;
};

/// Resolves the batch evaluator a Solve() should use for `space`: the
/// shared artifact from ctx when it was built over the same preference
/// vector (PreparedSpace::BatchForProblem hands out the pruned space's
/// arrays), else one constructed into `local`. Returns nullptr — meaning
/// "stay on the scalar path" — when ctx.allow_batch_eval is false or the
/// space does not fit a uint64 mask.
const estimation::BatchEvaluator* ResolveBatchEvaluator(
    const space::PreferenceSpaceResult& space, SearchContext& ctx,
    std::optional<estimation::BatchEvaluator>& local);

/// The paper's C_FINDMAXDOI slot-swap: the maximum-doi state dominated by
/// `boundary` (positions), exact under SpaceView::GreedyPhase2Exact().
/// Returns a position-set.
IndexSet GreedyMaxDoiBelow(const SpaceView& view, const IndexSet& boundary);

/// Phase 2 for doi-maximization problems: the best feasible state at or
/// below any of `boundaries` (position-sets), also considering the empty
/// state. Uses the greedy slot-swap when exact for the view, otherwise an
/// exhaustive region scan of each boundary's dominated cone (needed when
/// constraints beyond the space's key exist, e.g. smax — the paper's
/// Up/Low-boundary enhancement of §6 generalized). Honors ctx's budget:
/// stops scanning on exhaustion, keeping the best state found so far.
Solution BestFeasibleBelowBoundaries(const SpaceView& view,
                                     const std::vector<IndexSet>& boundaries,
                                     SearchContext& ctx);

/// Wraps a position-set solution into P-index form.
Solution MakeSolution(const SpaceView& view, const IndexSet& positions,
                      const estimation::StateParams& params);

/// Space the boundary (C-family) algorithms search for `problem`: the cost
/// space when a cost bound exists, otherwise the size space (paper §6).
/// Fails for problems without a degrading bound.
StatusOr<SpaceKind> BoundSpaceKindFor(const ProblemSpec& problem);

/// Result of a greedy Horizontal2 fill.
struct FillResult {
  IndexSet state;
  estimation::StateParams params;
};

/// Extends `state` by repeatedly adding the first Horizontal2 candidate (in
/// increasing position order, i.e. decreasing key order) that keeps the
/// binding bound, until none fits. `banned`, if non-null, marks positions
/// that must not be added (used by D-HeurDoi's refinement). Stops early
/// (keeping the fill so far) when ctx's budget runs out.
FillResult GreedyFill(const SpaceView& view, IndexSet state,
                      estimation::StateParams params,
                      const std::vector<bool>* banned, SearchContext& ctx);

/// Bitmask result of a batch greedy Horizontal2 fill.
struct BitFillResult {
  uint64_t bits = 0;
  estimation::StateParams params;
};

/// GreedyFill in the bitmask domain, requires view.batch_enabled():
/// candidates are batch-extended in chunks of a few lanes and the first
/// in-bound one (in the same increasing-position order as GreedyFill) is
/// accepted per round, so the fill reaches the same maximal state.
BitFillResult GreedyFillBits(const SpaceView& view, uint64_t bits,
                             estimation::StateParams params,
                             SearchContext& ctx);

/// The infeasible sentinel (no state satisfies the constraints).
Solution InfeasibleSolution(const estimation::StateEvaluator& evaluator);

}  // namespace cqp::cqp

#endif  // CQP_CQP_SEARCH_UTIL_H_
