#ifndef CQP_CQP_MULTI_OBJECTIVE_H_
#define CQP_CQP_MULTI_OBJECTIVE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/index_set.h"
#include "common/status.h"
#include "cqp/algorithm.h"
#include "space/preference_space.h"

namespace cqp::cqp {

/// Multi-objective constrained query personalization — the future-work
/// direction the paper names in §8 ("more than one query parameter may be
/// optimized simultaneously"), implemented here as an extension.
///
/// Two complementary tools are provided:
///  * ParetoFront() enumerates the personalized queries that are
///    Pareto-optimal in (doi ↑, cost ↓) under optional size constraints —
///    the full interest/latency trade-off curve a context policy can pick
///    from;
///  * SolveScalarized() maximizes a weighted combination of the parameters
///    with an exact branch-and-bound.

/// A weighted-sum objective over the three query parameters. Cost and size
/// enter normalized (divide by the scale fields) so the weights are
/// comparable to doi's [0, 1] range:
///
///   score(s) = doi_weight·doi(s) − cost_weight·cost(s)/cost_scale
///                                − size_weight·size(s)/size_scale
struct MultiObjectiveSpec {
  double doi_weight = 1.0;
  double cost_weight = 0.0;
  double size_weight = 0.0;
  /// Normalizers; sensible defaults are the Supreme Cost and size(Q).
  double cost_scale = 1.0;
  double size_scale = 1.0;

  /// Optional hard constraints, same semantics as ProblemSpec.
  std::optional<double> cmax_ms;
  std::optional<double> dmin;
  std::optional<double> smin;
  std::optional<double> smax;

  /// Weights must be non-negative with at least one positive; scales
  /// must be positive.
  Status Validate() const;

  double Score(const estimation::StateParams& params) const;
  bool IsFeasible(const estimation::StateParams& params) const;

  std::string ToString() const;
};

/// One point of the trade-off curve.
struct ParetoPoint {
  IndexSet chosen;  ///< P indices
  estimation::StateParams params;
};

/// Enumerates all feasible states that are Pareto-optimal in
/// (doi maximal, cost minimal), subject to the spec's hard constraints.
/// Exhaustive over 2^K states; refuses K > 20. Points are returned in
/// increasing cost (hence increasing doi) order; ties on both parameters
/// keep one representative. A budget in `ctx` stops the enumeration early;
/// the front is then built from the states visited so far (ctx.metrics is
/// marked truncated).
StatusOr<std::vector<ParetoPoint>> ParetoFront(
    const space::PreferenceSpaceResult& space, const MultiObjectiveSpec& spec,
    SearchContext& ctx);

/// Maximizes spec.Score over all feasible states. Exact branch-and-bound:
/// the admissible bound combines the best doi still reachable (suffix
/// combination) with the facts that cost only grows and size only shrinks
/// along extensions.
StatusOr<Solution> SolveScalarized(const space::PreferenceSpaceResult& space,
                                   const MultiObjectiveSpec& spec,
                                   SearchContext& ctx);

}  // namespace cqp::cqp

#endif  // CQP_CQP_MULTI_OBJECTIVE_H_
