#ifndef CQP_CQP_ALGORITHM_H_
#define CQP_CQP_ALGORITHM_H_

#include <string>
#include <vector>

#include "common/index_set.h"
#include "common/status.h"
#include "cqp/problem.h"
#include "cqp/search_context.h"
#include "estimation/evaluator.h"
#include "space/preference_space.h"

namespace cqp::cqp {

/// The outcome of a CQP search: the subset of P to integrate into Q.
struct Solution {
  /// False when no personalized query (not even the original query, i.e.
  /// the empty subset) satisfies the problem's constraints.
  bool feasible = false;
  /// True when the search budget stopped the run early, so this is the best
  /// solution found *so far* rather than the algorithm's full answer. Exact
  /// algorithms lose their optimality guarantee on degraded solutions.
  bool degraded = false;
  /// Chosen preferences as indices into PreferenceSpaceResult::prefs.
  IndexSet chosen;
  /// Estimated parameters of the chosen state.
  estimation::StateParams params;
};

/// A CQP state-space search algorithm (paper §5.2).
///
/// Implementations are stateless; a single instance may be shared.
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// Paper name, e.g. "C-Boundaries".
  virtual const char* name() const = 0;

  /// True if Solve() can handle `problem` (possibly heuristically).
  virtual bool Supports(const ProblemSpec& problem) const = 0;

  /// True if Solve() is guaranteed to return the optimum for `problem`.
  virtual bool IsExactFor(const ProblemSpec& problem) const = 0;

  /// Searches the preference space under `ctx`'s budget, filling
  /// `ctx.metrics`. Returns a Solution with feasible == false when no state
  /// (including the empty one) satisfies the constraints, and with
  /// degraded == true when the budget stopped the search early (the
  /// solution is then the best feasible state found so far, if any).
  virtual StatusOr<Solution> Solve(const space::PreferenceSpaceResult& space,
                                   const ProblemSpec& problem,
                                   SearchContext& ctx) const = 0;
};

/// Names of all registered algorithms, in a stable presentation order.
std::vector<std::string> AlgorithmNames();

/// Looks up a registered algorithm by (case-insensitive) name.
StatusOr<const Algorithm*> GetAlgorithm(const std::string& name);

}  // namespace cqp::cqp

#endif  // CQP_CQP_ALGORITHM_H_
