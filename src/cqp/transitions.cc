#include "cqp/transitions.h"

#include <bit>

#include "common/logging.h"

namespace cqp::cqp {

std::optional<IndexSet> Horizontal(const IndexSet& state, size_t k) {
  CQP_CHECK(!state.empty()) << "Horizontal requires a non-empty state";
  int32_t max = state.Max();
  if (max + 1 >= static_cast<int32_t>(k)) return std::nullopt;
  return state.WithAdded(max + 1);
}

std::vector<IndexSet> VerticalNeighbors(const IndexSet& state, size_t k) {
  std::vector<IndexSet> out;
  for (int32_t member : state) {
    int32_t next = member + 1;
    if (next >= static_cast<int32_t>(k)) continue;
    if (state.Contains(next)) continue;
    out.push_back(state.WithReplaced(member, next));
  }
  return out;
}

uint64_t HorizontalBits(uint64_t state, size_t k) {
  CQP_CHECK(state != 0) << "Horizontal requires a non-empty state";
  const int max = 63 - std::countl_zero(state);
  if (max + 1 >= static_cast<int>(k)) return 0;
  return state | (uint64_t{1} << (max + 1));
}

void VerticalNeighborsBits(uint64_t state, size_t k,
                           std::vector<uint64_t>* out) {
  for (uint64_t rest = state; rest != 0; rest &= rest - 1) {
    const int member = std::countr_zero(rest);
    const int next = member + 1;
    if (next >= static_cast<int>(k)) continue;
    if ((state >> next) & 1) continue;
    out->push_back((state ^ (uint64_t{1} << member)) |
                   (uint64_t{1} << next));
  }
}

std::vector<int32_t> Horizontal2Candidates(const IndexSet& state, size_t k) {
  std::vector<int32_t> out;
  out.reserve(k - state.size());
  size_t member_pos = 0;
  for (int32_t i = 0; i < static_cast<int32_t>(k); ++i) {
    if (member_pos < state.size() && state[member_pos] == i) {
      ++member_pos;
      continue;
    }
    out.push_back(i);
  }
  return out;
}

}  // namespace cqp::cqp
