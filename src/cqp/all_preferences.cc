#include "common/stopwatch.h"
#include "cqp/algorithms.h"
#include "cqp/search_util.h"

namespace cqp::cqp {

bool AllPreferencesAlgorithm::Supports(const ProblemSpec& problem) const {
  return problem.Validate().ok();
}

bool AllPreferencesAlgorithm::IsExactFor(const ProblemSpec&) const {
  return false;  // it does not optimize anything under the constraints
}

StatusOr<Solution> AllPreferencesAlgorithm::Solve(
    const space::PreferenceSpaceResult& space, const ProblemSpec& problem,
    SearchContext& ctx) const {
  CQP_RETURN_IF_ERROR(problem.Validate());
  Stopwatch timer;
  estimation::StateEvaluator evaluator = space.MakeEvaluator(ctx.eval_cache);

  Solution s;
  std::vector<int32_t> all;
  all.reserve(evaluator.K());
  for (size_t i = 0; i < evaluator.K(); ++i) {
    all.push_back(static_cast<int32_t>(i));
  }
  s.chosen = IndexSet::FromUnsorted(std::move(all));
  s.params = evaluator.SupremeState();
  s.feasible = problem.IsFeasible(s.params);
  ++ctx.metrics.states_examined;
  ctx.metrics.wall_ms = timer.ElapsedMillis();
  return s;
}

}  // namespace cqp::cqp
