#include "common/stopwatch.h"
#include "cqp/algorithms.h"
#include "cqp/search_util.h"
#include "cqp/transitions.h"

namespace cqp::cqp {

bool DSingleMaxDoiAlgorithm::Supports(const ProblemSpec& problem) const {
  return problem.Validate().ok() &&
         problem.objective == Objective::kMaximizeDoi;
}

bool DSingleMaxDoiAlgorithm::IsExactFor(const ProblemSpec&) const {
  return false;  // greedy maximal sets; quality evaluated in Fig. 14
}

StatusOr<Solution> DSingleMaxDoiAlgorithm::Solve(
    const space::PreferenceSpaceResult& space, const ProblemSpec& problem,
    SearchContext& ctx) const {
  CQP_RETURN_IF_ERROR(problem.Validate());
  Stopwatch timer;
  SearchMetrics& metrics = ctx.metrics;
  estimation::StateEvaluator evaluator = space.MakeEvaluator(ctx.eval_cache);
  SpaceView view =
      SpaceView::ForKind(&evaluator, &problem, SpaceKind::kDoi, space);
  const size_t k = view.K();

  Solution best = InfeasibleSolution(evaluator);
  {
    estimation::StateParams empty = evaluator.EmptyState();
    ++metrics.states_examined;
    if (problem.IsFeasible(empty)) {
      best.feasible = true;
      best.params = empty;
    }
  }

  auto consider = [&](const IndexSet& state,
                      const estimation::StateParams& params) {
    if (!view.Feasible(params)) return;
    if (!best.feasible || problem.Better(params, best.params)) {
      best = MakeSolution(view, state, params);
    }
  };

  VisitedSet visited(metrics);

  // Rounds over seeds in decreasing doi order (paper Fig. 10); stop when
  // the best doi expected from the remaining suffix cannot improve.
  for (size_t seed = 0; seed < k; ++seed) {
    if (ctx.ShouldStop()) break;
    // BestExpectedDoi({p_seed..p_K}) — the suffix bound of the pseudocode.
    // (The greedy fill may add positions before the seed, so this bound is
    // the paper's heuristic stop, not a proof of optimality.)
    {
      estimation::StateParams suffix = evaluator.EmptyState();
      for (size_t j = seed; j < k; ++j) {
        suffix = evaluator.ExtendWith(
            suffix, view.PrefIndexAt(static_cast<int32_t>(j)));
      }
      if (best.feasible && best.params.doi > suffix.doi) break;
    }

    StateQueue queue(metrics);
    IndexSet seed_state({static_cast<int32_t>(seed)});
    if (visited.CheckAndInsert(seed_state)) continue;
    queue.PushBack(std::move(seed_state));

    while (!queue.empty()) {
      if (ctx.ShouldStop()) break;
      IndexSet state = queue.PopFront();
      estimation::StateParams params = view.Evaluate(state, metrics);
      FillResult fill = GreedyFill(view, state, params, nullptr, ctx);
      if (view.WithinBound(fill.params)) consider(fill.state, fill.params);

      // Paper Fig. 10 step 3.3.5: stop at the first neighbor that drops
      // the seed ("exit for").
      for (IndexSet& v : VerticalNeighbors(fill.state, k)) {
        ++metrics.transitions;
        if (!v.Contains(static_cast<int32_t>(seed))) break;
        if (visited.CheckAndInsert(v)) continue;
        queue.PushBack(std::move(v));
      }
    }
  }

  best.degraded = ctx.exhausted();
  metrics.wall_ms = timer.ElapsedMillis();
  return best;
}

}  // namespace cqp::cqp
