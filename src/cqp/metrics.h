#ifndef CQP_CQP_METRICS_H_
#define CQP_CQP_METRICS_H_

#include <cstdint>

#include "common/memory_meter.h"

namespace cqp::cqp {

/// Instrumentation of one search-algorithm run, feeding the Fig. 12/13
/// reproductions. Purely an output record: resource *limits* live in
/// cqp::SearchBudget, enforced by SearchContext. Collection is
/// unconditional — every Solve() call fills one of these.
///
/// Concurrency rule (no shared mutation): counters are PLAIN integers, not
/// atomics, on purpose. A SearchMetrics instance belongs to exactly one
/// worker — each request in a PersonalizeBatch owns its SearchContext and
/// therefore its metrics — and batch-level totals are produced by summing
/// the per-worker records after WaitAll(). Never point two threads at the
/// same instance; shared tallies (e.g. a process-wide cache hit rate) must
/// be aggregated from these per-run records, not mutated in place.
struct SearchMetrics {
  /// True when the budget stopped the search before completion; exact
  /// algorithms lose their optimality guarantee on truncated runs.
  bool truncated = false;
  /// Number of states whose parameters were evaluated.
  uint64_t states_examined = 0;
  /// Number of transitions generated (Horizontal + Vertical + Horizontal2
  /// extensions attempted).
  uint64_t transitions = 0;
  /// Boundaries / maximal boundaries / chain solutions found in phase 1.
  uint64_t boundaries_found = 0;
  /// Full state evaluations answered by the EvalCache attached to the run's
  /// evaluator (0 when no cache is attached). Incremental ExtendWith calls
  /// bypass the cache and count under states_examined only.
  uint64_t eval_cache_hits = 0;
  /// Full state evaluations that missed the cache and were computed (then
  /// inserted). hits + misses = cache-routed evaluations, not all states.
  uint64_t eval_cache_misses = 0;
  /// Batch (SoA/SIMD) evaluation calls issued through a BatchEvaluator;
  /// 0 on scalar-only runs. frontier_states / frontiers_evaluated is the
  /// average frontier width fed to the kernels.
  uint64_t frontiers_evaluated = 0;
  /// States evaluated through the batch path (these also count under
  /// states_examined).
  uint64_t frontier_states = 0;
  /// SIMD lanes burned on padding: frontiers whose width is not a multiple
  /// of the kernel lane width run roundup(width) lanes and mask the rest.
  uint64_t frontier_lanes_wasted = 0;
  /// Wall-clock time of Solve(), milliseconds.
  double wall_ms = 0.0;
  /// Logical working-set accounting (queues, visited sets, boundary lists).
  MemoryMeter memory;

  void Reset() { *this = SearchMetrics{}; }
};

}  // namespace cqp::cqp

#endif  // CQP_CQP_METRICS_H_
