#ifndef CQP_CQP_METRICS_H_
#define CQP_CQP_METRICS_H_

#include <cstdint>

#include "common/memory_meter.h"

namespace cqp::cqp {

/// Instrumentation of one search-algorithm run, feeding the Fig. 12/13
/// reproductions. Also carries optional *input* resource limits: a search
/// that hits one stops early, keeps its best solution so far and sets
/// `truncated` — truncation is always explicit, never silent.
struct SearchMetrics {
  // ---- inputs ----
  /// Stop after this many state evaluations (0 = unlimited).
  uint64_t state_limit = 0;
  /// Stop when the tracked working set exceeds this (0 = unlimited).
  size_t memory_limit_bytes = 0;

  // ---- outputs ----
  /// True when a limit stopped the search before completion; exact
  /// algorithms lose their optimality guarantee on truncated runs.
  bool truncated = false;
  /// Number of states whose parameters were evaluated.
  uint64_t states_examined = 0;
  /// Number of transitions generated (Horizontal + Vertical + Horizontal2
  /// extensions attempted).
  uint64_t transitions = 0;
  /// Boundaries / maximal boundaries / chain solutions found in phase 1.
  uint64_t boundaries_found = 0;
  /// Wall-clock time of Solve(), milliseconds.
  double wall_ms = 0.0;
  /// Logical working-set accounting (queues, visited sets, boundary lists).
  MemoryMeter memory;

  void Reset() { *this = SearchMetrics{}; }
};

/// True when `metrics` (may be nullptr) has exceeded one of its resource
/// limits; marks the run truncated. Search loops call this at their heads
/// and stop — keeping whatever solution they have — when it fires.
inline bool HitResourceLimit(SearchMetrics* metrics) {
  if (metrics == nullptr) return false;
  bool hit = (metrics->state_limit != 0 &&
              metrics->states_examined >= metrics->state_limit) ||
             (metrics->memory_limit_bytes != 0 &&
              metrics->memory.current_bytes() >= metrics->memory_limit_bytes);
  if (hit) metrics->truncated = true;
  return hit;
}

}  // namespace cqp::cqp

#endif  // CQP_CQP_METRICS_H_
