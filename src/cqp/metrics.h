#ifndef CQP_CQP_METRICS_H_
#define CQP_CQP_METRICS_H_

#include <cstdint>

#include "common/memory_meter.h"

namespace cqp::cqp {

/// Instrumentation of one search-algorithm run, feeding the Fig. 12/13
/// reproductions. Purely an output record: resource *limits* live in
/// cqp::SearchBudget, enforced by SearchContext. Collection is
/// unconditional — every Solve() call fills one of these.
struct SearchMetrics {
  /// True when the budget stopped the search before completion; exact
  /// algorithms lose their optimality guarantee on truncated runs.
  bool truncated = false;
  /// Number of states whose parameters were evaluated.
  uint64_t states_examined = 0;
  /// Number of transitions generated (Horizontal + Vertical + Horizontal2
  /// extensions attempted).
  uint64_t transitions = 0;
  /// Boundaries / maximal boundaries / chain solutions found in phase 1.
  uint64_t boundaries_found = 0;
  /// Wall-clock time of Solve(), milliseconds.
  double wall_ms = 0.0;
  /// Logical working-set accounting (queues, visited sets, boundary lists).
  MemoryMeter memory;

  void Reset() { *this = SearchMetrics{}; }
};

}  // namespace cqp::cqp

#endif  // CQP_CQP_METRICS_H_
