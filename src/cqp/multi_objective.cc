#include "cqp/multi_objective.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "cqp/search_util.h"

namespace cqp::cqp {

namespace {

/// 2^K enumeration guard for the Pareto front.
constexpr size_t kMaxParetoK = 20;
/// Branch-and-bound guard (prunes hard, but worst case is exponential).
constexpr size_t kMaxScalarizedK = 25;

}  // namespace

Status MultiObjectiveSpec::Validate() const {
  if (doi_weight < 0 || cost_weight < 0 || size_weight < 0) {
    return InvalidArgument("multi-objective weights must be >= 0");
  }
  if (doi_weight == 0 && cost_weight == 0 && size_weight == 0) {
    return InvalidArgument("at least one objective weight must be positive");
  }
  if (cost_scale <= 0 || size_scale <= 0) {
    return InvalidArgument("scales must be positive");
  }
  if (smin && smax && *smin > *smax) {
    return InvalidArgument("smin must be <= smax");
  }
  if (dmin && (*dmin < 0 || *dmin > 1)) {
    return InvalidArgument("dmin must be in [0,1]");
  }
  return Status::OK();
}

double MultiObjectiveSpec::Score(
    const estimation::StateParams& params) const {
  return doi_weight * params.doi - cost_weight * params.cost_ms / cost_scale -
         size_weight * params.size / size_scale;
}

bool MultiObjectiveSpec::IsFeasible(
    const estimation::StateParams& params) const {
  if (cmax_ms && params.cost_ms > *cmax_ms) return false;
  if (dmin && params.doi < *dmin) return false;
  if (smin && params.size < *smin) return false;
  if (smax && params.size > *smax) return false;
  return true;
}

std::string MultiObjectiveSpec::ToString() const {
  std::string out = StrFormat(
      "score = %.2f*doi - %.2f*cost/%.0f - %.2f*size/%.0f", doi_weight,
      cost_weight, cost_scale, size_weight, size_scale);
  if (cmax_ms) out += StrFormat(", cost <= %.1f", *cmax_ms);
  if (dmin) out += StrFormat(", doi >= %.2f", *dmin);
  if (smin) out += StrFormat(", size >= %.1f", *smin);
  if (smax) out += StrFormat(", size <= %.1f", *smax);
  return out;
}

StatusOr<std::vector<ParetoPoint>> ParetoFront(
    const space::PreferenceSpaceResult& space, const MultiObjectiveSpec& spec,
    SearchContext& ctx) {
  CQP_RETURN_IF_ERROR(spec.Validate());
  if (space.K() > kMaxParetoK) {
    return FailedPrecondition("ParetoFront enumerates 2^K states; K > 20");
  }
  Stopwatch timer;
  estimation::StateEvaluator evaluator = space.MakeEvaluator(ctx.eval_cache);

  std::vector<ParetoPoint> feasible;
  std::vector<int32_t> current;
  // Depth-first enumeration with incremental parameters.
  auto recurse = [&](auto&& self, size_t i,
                     const estimation::StateParams& params) -> void {
    if (ctx.ShouldStop()) return;
    if (i == evaluator.K()) {
      ++ctx.metrics.states_examined;
      if (spec.IsFeasible(params)) {
        feasible.push_back({IndexSet::FromUnsorted(current), params});
      }
      return;
    }
    self(self, i + 1, params);
    current.push_back(static_cast<int32_t>(i));
    self(self, i + 1, evaluator.ExtendWith(params, static_cast<int32_t>(i)));
    current.pop_back();
  };
  recurse(recurse, 0, evaluator.EmptyState());

  // Skyline over (cost ↓, doi ↑): sort by cost ascending (doi descending on
  // ties) and keep each point that strictly improves doi.
  std::sort(feasible.begin(), feasible.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.params.cost_ms != b.params.cost_ms) {
                return a.params.cost_ms < b.params.cost_ms;
              }
              if (a.params.doi != b.params.doi) {
                return a.params.doi > b.params.doi;
              }
              return a.chosen < b.chosen;
            });
  std::vector<ParetoPoint> front;
  double best_doi = -1.0;
  for (ParetoPoint& p : feasible) {
    if (p.params.doi > best_doi) {
      best_doi = p.params.doi;
      front.push_back(std::move(p));
    }
  }
  ctx.metrics.wall_ms = timer.ElapsedMillis();
  return front;
}

namespace {

struct ScalarizedContext {
  const estimation::StateEvaluator* evaluator = nullptr;
  const MultiObjectiveSpec* spec = nullptr;
  SearchContext* search = nullptr;
  std::vector<int32_t> order;        // cost-ascending P indices
  std::vector<double> suffix_doi;    // noisy-or doi of order[i..]
  std::vector<double> suffix_shrink; // product of selectivities of order[i..]
  Solution best;
  double best_score = 0.0;
  std::vector<int32_t> current;
};

void ScalarizedRecurse(ScalarizedContext& ctx, size_t i,
                       const estimation::StateParams& params) {
  if (ctx.search->ShouldStop()) return;
  ++ctx.search->metrics.states_examined;
  const MultiObjectiveSpec& spec = *ctx.spec;

  if (spec.IsFeasible(params)) {
    double score = spec.Score(params);
    if (!ctx.best.feasible || score > ctx.best_score) {
      ctx.best.feasible = true;
      ctx.best.params = params;
      ctx.best.chosen = IndexSet::FromUnsorted(ctx.current);
      ctx.best_score = score;
    }
  }
  if (i >= ctx.order.size()) return;

  // Monotone constraint prunes.
  if (spec.cmax_ms && params.cost_ms > *spec.cmax_ms) return;
  if (spec.smin && params.size < *spec.smin) return;
  double doi_ub;
  switch (ctx.evaluator->conjunction_model()) {
    case prefs::ConjunctionModel::kSumCapped:
      doi_ub = std::min(1.0, params.doi + ctx.suffix_doi[i]);
      break;
    case prefs::ConjunctionModel::kNoisyOr:
    default:
      doi_ub = 1.0 - (1.0 - params.doi) * (1.0 - ctx.suffix_doi[i]);
      break;
  }
  if (spec.dmin && doi_ub < *spec.dmin) return;

  // Admissible score bound: best doi still reachable, cost at its current
  // value (it only grows), size at its maximal shrink.
  if (ctx.best.feasible) {
    double min_size = params.size * ctx.suffix_shrink[i];
    double bound = spec.doi_weight * doi_ub -
                   spec.cost_weight * params.cost_ms / spec.cost_scale -
                   spec.size_weight * min_size / spec.size_scale;
    if (bound <= ctx.best_score) return;
  }

  int32_t pref = ctx.order[i];
  ctx.current.push_back(pref);
  ScalarizedRecurse(ctx, i + 1, ctx.evaluator->ExtendWith(params, pref));
  ctx.current.pop_back();
  ScalarizedRecurse(ctx, i + 1, params);
}

}  // namespace

StatusOr<Solution> SolveScalarized(const space::PreferenceSpaceResult& space,
                                   const MultiObjectiveSpec& spec,
                                   SearchContext& search) {
  CQP_RETURN_IF_ERROR(spec.Validate());
  if (space.K() > kMaxScalarizedK) {
    return FailedPrecondition("SolveScalarized refuses K > 25");
  }
  Stopwatch timer;
  estimation::StateEvaluator evaluator = space.MakeEvaluator(search.eval_cache);

  ScalarizedContext ctx;
  ctx.evaluator = &evaluator;
  ctx.spec = &spec;
  ctx.search = &search;
  ctx.best = InfeasibleSolution(evaluator);
  ctx.order.resize(evaluator.K());
  for (size_t i = 0; i < ctx.order.size(); ++i) {
    ctx.order[i] = static_cast<int32_t>(i);
  }
  std::sort(ctx.order.begin(), ctx.order.end(), [&](int32_t a, int32_t b) {
    double ca = evaluator.pref(static_cast<size_t>(a)).cost_ms;
    double cb = evaluator.pref(static_cast<size_t>(b)).cost_ms;
    if (ca != cb) return ca < cb;
    return a < b;
  });
  ctx.suffix_doi.assign(evaluator.K() + 1, 0.0);
  ctx.suffix_shrink.assign(evaluator.K() + 1, 1.0);
  for (size_t i = evaluator.K(); i-- > 0;) {
    const auto& p = evaluator.pref(static_cast<size_t>(ctx.order[i]));
    switch (evaluator.conjunction_model()) {
      case prefs::ConjunctionModel::kNoisyOr:
        ctx.suffix_doi[i] = 1.0 - (1.0 - ctx.suffix_doi[i + 1]) * (1.0 - p.doi);
        break;
      case prefs::ConjunctionModel::kSumCapped:
        ctx.suffix_doi[i] = std::min(1.0, ctx.suffix_doi[i + 1] + p.doi);
        break;
    }
    ctx.suffix_shrink[i] = ctx.suffix_shrink[i + 1] * p.selectivity;
  }

  ScalarizedRecurse(ctx, 0, evaluator.EmptyState());
  ctx.best.degraded = search.exhausted();
  search.metrics.wall_ms = timer.ElapsedMillis();
  return ctx.best;
}

}  // namespace cqp::cqp
