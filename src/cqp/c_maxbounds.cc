#include <algorithm>
#include <optional>

#include "common/stopwatch.h"
#include "cqp/algorithms.h"
#include "cqp/search_util.h"
#include "cqp/transitions.h"
#include "estimation/batch_evaluator.h"

namespace cqp::cqp {

bool CMaxBoundsAlgorithm::Supports(const ProblemSpec& problem) const {
  return problem.Validate().ok() &&
         problem.objective == Objective::kMaximizeDoi &&
         BoundSpaceKindFor(problem).ok();
}

bool CMaxBoundsAlgorithm::IsExactFor(const ProblemSpec&) const {
  // Heuristic: maximal boundaries may miss the optimum's cone (quality is
  // evaluated in Fig. 14).
  return false;
}

namespace {

/// Maximal-boundary collection with subset-based deduplication: none stored
/// is a subset of another (the property C-MAXBOUNDS aims for). Bitmask
/// views make the hot subset tests a single AND (K < 64 is guaranteed by
/// the preference-space extraction).
class MaxBoundStore {
 public:
  explicit MaxBoundStore(SearchMetrics& metrics) : metrics_(metrics) {}

  bool IsSubsetOfExisting(uint64_t bits) const {
    for (const auto& [stored_bits, stored] : bounds_) {
      if ((bits & ~stored_bits) == 0) return true;
    }
    return false;
  }

  bool IsSubsetOfExisting(const IndexSet& state) const {
    return IsSubsetOfExisting(state.Bits());
  }

  void Add(const IndexSet& state) {
    uint64_t bits = state.Bits();
    // Drop any stored bound subsumed by the new one.
    for (size_t i = bounds_.size(); i-- > 0;) {
      if ((bounds_[i].first & ~bits) == 0) {
        metrics_.memory.Release(bounds_[i].second.MemoryBytes());
        bounds_.erase(bounds_.begin() + static_cast<ptrdiff_t>(i));
      }
    }
    metrics_.memory.Allocate(state.MemoryBytes());
    ++metrics_.boundaries_found;
    max_size_ = std::max(max_size_, state.size());
    bounds_.emplace_back(bits, state);
  }

  void Add(uint64_t bits) { Add(IndexSet::FromBits(bits)); }

  size_t max_size() const { return max_size_; }
  std::vector<IndexSet> bounds() const {
    std::vector<IndexSet> out;
    out.reserve(bounds_.size());
    for (const auto& [bits, state] : bounds_) out.push_back(state);
    return out;
  }

 private:
  std::vector<std::pair<uint64_t, IndexSet>> bounds_;
  size_t max_size_ = 0;
  SearchMetrics& metrics_;
};

/// Phase 1 (FINDMAXBOUND rounds) in the bitmask domain with batch
/// evaluation. The traversal is the scalar loop below with only the state
/// representation changed: uint64 masks carried with their push-time batch
/// parameters, GreedyFillBits instead of GreedyFill (same accepted
/// candidates), and each pop's surviving Vertical neighbors evaluated as
/// one frontier. The seed-retention "exit for" cut and the subset checks
/// happen at the same points, so the stored maximal boundaries match.
void FindMaxBoundsBatch(const SpaceView& view, SearchContext& ctx,
                        MaxBoundStore& max_bounds) {
  SearchMetrics& metrics = ctx.metrics;
  const size_t k = view.K();
  BitVisitedSet visited(metrics, k);
  estimation::BatchEvaluator::Results results;
  std::vector<uint64_t> pending;
  std::vector<uint64_t> accepted;

  for (size_t seed = 0; seed < k; ++seed) {
    if (ctx.ShouldStop()) break;
    // Termination: once a maximal boundary covers every preference at or
    // after the seed, later seeds can only produce subsets of it.
    if (seed + max_bounds.max_size() >= k && max_bounds.max_size() > 0) break;

    BitStateQueue queue(metrics);
    const uint64_t seed_bits = uint64_t{1} << seed;
    if (visited.CheckAndInsert(seed_bits)) continue;
    view.EvaluateFrontierBits(&seed_bits, 1, &results, metrics);
    queue.PushBack(BitState{seed_bits, results.Get(0)});

    while (!queue.empty()) {
      if (ctx.ShouldStop()) break;
      const BitState state = queue.PopFront();
      if (max_bounds.IsSubsetOfExisting(state.bits)) continue;

      // Greedy maximal fill via Horizontal2.
      BitFillResult fill = GreedyFillBits(view, state.bits, state.params, ctx);

      if (view.WithinBound(fill.params) &&
          !max_bounds.IsSubsetOfExisting(fill.bits)) {
        // Deviation from the strict "R != R0" of the pseudocode: a seed
        // that is itself maximal (nothing fits next to it) is still a
        // useful boundary; storing it can only improve solution quality.
        max_bounds.Add(fill.bits);
      }

      // Explore Vertical neighbors that retain the seed. The paper's
      // FINDMAXBOUND stops at the first neighbor that drops the seed
      // ("exit for"), i.e. only members before the seed are bumped —
      // this aggressive cut is what keeps C-MAXBOUNDS cheap (§7.2.1).
      pending.clear();
      VerticalNeighborsBits(fill.bits, k, &pending);
      accepted.clear();
      for (uint64_t v : pending) {
        ++metrics.transitions;
        if (((v >> seed) & 1) == 0) break;
        if (visited.CheckAndInsert(v)) continue;
        if (max_bounds.IsSubsetOfExisting(v)) continue;
        accepted.push_back(v);
      }
      if (!accepted.empty()) {
        view.EvaluateFrontierBits(accepted.data(), accepted.size(), &results,
                                  metrics);
        for (size_t i = 0; i < accepted.size(); ++i) {
          queue.PushBack(BitState{accepted[i], results.Get(i)});
        }
      }
    }
  }
}

}  // namespace

StatusOr<Solution> CMaxBoundsAlgorithm::Solve(
    const space::PreferenceSpaceResult& space, const ProblemSpec& problem,
    SearchContext& ctx) const {
  CQP_RETURN_IF_ERROR(problem.Validate());
  CQP_ASSIGN_OR_RETURN(SpaceKind kind, BoundSpaceKindFor(problem));
  if (space.K() >= 64) {
    return FailedPrecondition(
        "C-MaxBounds uses 64-bit state masks; K must be < 64");
  }
  Stopwatch timer;
  SearchMetrics& metrics = ctx.metrics;
  estimation::StateEvaluator evaluator = space.MakeEvaluator(ctx.eval_cache);
  SpaceView view = SpaceView::ForKind(&evaluator, &problem, kind, space);
  std::optional<estimation::BatchEvaluator> local_batch;
  view.set_batch(ResolveBatchEvaluator(space, ctx, local_batch));
  const size_t k = view.K();

  // ---- Phase 1: FINDMAXBOUND rounds (paper Fig. 7) ----
  MaxBoundStore max_bounds(metrics);

  if (k > 0 && view.batch_enabled()) {
    FindMaxBoundsBatch(view, ctx, max_bounds);
  } else {
    VisitedSet visited(metrics);
    for (size_t seed = 0; seed < k; ++seed) {
      if (ctx.ShouldStop()) break;
      // Termination: once a maximal boundary covers every preference at or
      // after the seed, later seeds can only produce subsets of it.
      if (seed + max_bounds.max_size() >= k && max_bounds.max_size() > 0) {
        break;
      }

      StateQueue queue(metrics);
      IndexSet seed_state({static_cast<int32_t>(seed)});
      if (visited.CheckAndInsert(seed_state)) continue;
      queue.PushBack(std::move(seed_state));

      while (!queue.empty()) {
        if (ctx.ShouldStop()) break;
        IndexSet state = queue.PopFront();
        if (max_bounds.IsSubsetOfExisting(state)) continue;
        estimation::StateParams params = view.Evaluate(state, metrics);

        // Greedy maximal fill via Horizontal2.
        FillResult fill = GreedyFill(view, state, params, nullptr, ctx);

        if (view.WithinBound(fill.params) &&
            !max_bounds.IsSubsetOfExisting(fill.state)) {
          // Deviation from the strict "R != R0" of the pseudocode: a seed
          // that is itself maximal (nothing fits next to it) is still a
          // useful boundary; storing it can only improve solution quality.
          max_bounds.Add(fill.state);
        }

        // Explore Vertical neighbors that retain the seed. The paper's
        // FINDMAXBOUND stops at the first neighbor that drops the seed
        // ("exit for"), i.e. only members before the seed are bumped —
        // this aggressive cut is what keeps C-MAXBOUNDS cheap (§7.2.1).
        for (IndexSet& v : VerticalNeighbors(fill.state, k)) {
          ++metrics.transitions;
          if (!v.Contains(static_cast<int32_t>(seed))) break;
          if (visited.CheckAndInsert(v)) continue;
          if (max_bounds.IsSubsetOfExisting(v)) continue;
          queue.PushBack(std::move(v));
        }
      }
    }
  }

  // ---- Phase 2: C_FINDMAXDOI over the maximal boundaries ----
  Solution best = BestFeasibleBelowBoundaries(view, max_bounds.bounds(), ctx);

  best.degraded = ctx.exhausted();
  metrics.wall_ms = timer.ElapsedMillis();
  return best;
}

}  // namespace cqp::cqp
