#include "common/stopwatch.h"
#include "cqp/algorithms.h"
#include "cqp/search_util.h"
#include "cqp/transitions.h"

namespace cqp::cqp {

bool CBoundariesAlgorithm::Supports(const ProblemSpec& problem) const {
  return problem.Validate().ok() &&
         problem.objective == Objective::kMaximizeDoi &&
         BoundSpaceKindFor(problem).ok();
}

bool CBoundariesAlgorithm::IsExactFor(const ProblemSpec& problem) const {
  // Exact for all doi-maximization problems: phase 2 uses the exact greedy
  // slot-swap when feasibility coincides with the binding bound, and a full
  // region scan of the dominated cones otherwise.
  return Supports(problem);
}

StatusOr<Solution> CBoundariesAlgorithm::Solve(
    const space::PreferenceSpaceResult& space, const ProblemSpec& problem,
    SearchContext& ctx) const {
  CQP_RETURN_IF_ERROR(problem.Validate());
  CQP_ASSIGN_OR_RETURN(SpaceKind kind, BoundSpaceKindFor(problem));
  Stopwatch timer;
  SearchMetrics& metrics = ctx.metrics;
  estimation::StateEvaluator evaluator = space.MakeEvaluator(ctx.eval_cache);
  SpaceView view = SpaceView::ForKind(&evaluator, &problem, kind, space);
  const size_t k = view.K();

  // ---- Phase 1: FINDBOUNDARY (paper Fig. 5) ----
  // Breadth-first over groups: Vertical neighbors are pushed to the front
  // (finish the current group), Horizontal successors to the back (start
  // the next group).
  BoundaryStore boundaries(metrics);
  if (k > 0) {
    VisitedSet visited(metrics);
    StateQueue queue(metrics);
    IndexSet first({0});
    visited.CheckAndInsert(first);
    queue.PushBack(std::move(first));

    while (!queue.empty()) {
      if (ctx.ShouldStop()) break;
      IndexSet state = queue.PopFront();
      // prune(): nodes below an already-found boundary of the same group
      // satisfy the bound but are covered by phase 2 (paper's c2c5 case).
      if (boundaries.DominatesAny(state)) continue;
      estimation::StateParams params = view.Evaluate(state, metrics);
      if (view.WithinBound(params)) {
        boundaries.Add(state);
        ++metrics.transitions;
        if (std::optional<IndexSet> h = Horizontal(state, k)) {
          if (!visited.CheckAndInsert(*h)) queue.PushBack(std::move(*h));
        }
      } else {
        for (IndexSet& v : VerticalNeighbors(state, k)) {
          ++metrics.transitions;
          if (visited.CheckAndInsert(v)) continue;
          if (boundaries.DominatesAny(v)) continue;
          queue.PushFront(std::move(v));
        }
      }
    }
  }

  // ---- Phase 2: C_FINDMAXDOI ----
  Solution best =
      BestFeasibleBelowBoundaries(view, boundaries.DescendingBySize(), ctx);

  best.degraded = ctx.exhausted();
  metrics.wall_ms = timer.ElapsedMillis();
  return best;
}

}  // namespace cqp::cqp
