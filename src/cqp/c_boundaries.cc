#include <optional>

#include "common/stopwatch.h"
#include "cqp/algorithms.h"
#include "cqp/search_util.h"
#include "cqp/transitions.h"
#include "estimation/batch_evaluator.h"

namespace cqp::cqp {
namespace {

/// Phase 1 (FINDBOUNDARY) in the bitmask domain with batch evaluation:
/// the traversal — pop order, bound decisions, boundary set — is exactly
/// the scalar loop below, because states are evaluated by the bit-exact
/// batch kernels and neighbors are generated in the same order; only the
/// *representation* (uint64 + push-time frontier evaluation instead of
/// IndexSet + pop-time cached evaluation) changes. On the profiled
/// workload this removes the IndexSet hashing/allocation and the
/// ~0%-hit-rate EvalCache probes that dominated the scalar loop.
std::vector<IndexSet> FindBoundariesBatch(const SpaceView& view,
                                          SearchContext& ctx) {
  SearchMetrics& metrics = ctx.metrics;
  const size_t k = view.K();
  BitBoundaryStore boundaries(metrics);
  BitVisitedSet visited(metrics, k);
  BitStateQueue queue(metrics);
  estimation::BatchEvaluator::Results results;
  std::vector<uint64_t> pending;

  uint64_t first = 1;
  visited.CheckAndInsert(first);
  view.EvaluateFrontierBits(&first, 1, &results, metrics);
  queue.PushBack(BitState{first, results.Get(0)});

  while (!queue.empty()) {
    if (ctx.ShouldStop()) break;
    const BitState state = queue.PopFront();
    if (boundaries.DominatesAny(state.bits)) continue;
    if (view.WithinBound(state.params)) {
      boundaries.Add(state.bits);
      ++metrics.transitions;
      if (uint64_t h = HorizontalBits(state.bits, k)) {
        if (!visited.CheckAndInsert(h)) {
          view.EvaluateFrontierBits(&h, 1, &results, metrics);
          queue.PushBack(BitState{h, results.Get(0)});
        }
      }
    } else {
      pending.clear();
      VerticalNeighborsBits(state.bits, k, &pending);
      metrics.transitions += pending.size();
      size_t kept = 0;
      for (size_t i = 0; i < pending.size(); ++i) {
        const uint64_t v = pending[i];
        if (visited.CheckAndInsert(v)) continue;
        if (boundaries.DominatesAny(v)) continue;
        pending[kept++] = v;
      }
      pending.resize(kept);
      if (!pending.empty()) {
        // One frontier of sibling states per pop. The scalar loop pushes
        // each survivor to the front as it is generated, so front-pushing
        // in the same generation order reproduces its queue layout (the
        // last-generated neighbor ends up front-most either way).
        view.EvaluateFrontierBits(pending.data(), pending.size(), &results,
                                  metrics);
        for (size_t i = 0; i < pending.size(); ++i) {
          queue.PushFront(BitState{pending[i], results.Get(i)});
        }
      }
    }
  }
  return boundaries.DescendingBySize();
}

}  // namespace

bool CBoundariesAlgorithm::Supports(const ProblemSpec& problem) const {
  return problem.Validate().ok() &&
         problem.objective == Objective::kMaximizeDoi &&
         BoundSpaceKindFor(problem).ok();
}

bool CBoundariesAlgorithm::IsExactFor(const ProblemSpec& problem) const {
  // Exact for all doi-maximization problems: phase 2 uses the exact greedy
  // slot-swap when feasibility coincides with the binding bound, and a full
  // region scan of the dominated cones otherwise.
  return Supports(problem);
}

StatusOr<Solution> CBoundariesAlgorithm::Solve(
    const space::PreferenceSpaceResult& space, const ProblemSpec& problem,
    SearchContext& ctx) const {
  CQP_RETURN_IF_ERROR(problem.Validate());
  CQP_ASSIGN_OR_RETURN(SpaceKind kind, BoundSpaceKindFor(problem));
  Stopwatch timer;
  SearchMetrics& metrics = ctx.metrics;
  estimation::StateEvaluator evaluator = space.MakeEvaluator(ctx.eval_cache);
  SpaceView view = SpaceView::ForKind(&evaluator, &problem, kind, space);
  std::optional<estimation::BatchEvaluator> local_batch;
  view.set_batch(ResolveBatchEvaluator(space, ctx, local_batch));
  const size_t k = view.K();

  // ---- Phase 1: FINDBOUNDARY (paper Fig. 5) ----
  // Breadth-first over groups: Vertical neighbors are pushed to the front
  // (finish the current group), Horizontal successors to the back (start
  // the next group).
  std::vector<IndexSet> boundary_list;
  if (k > 0 && view.batch_enabled()) {
    boundary_list = FindBoundariesBatch(view, ctx);
  } else if (k > 0) {
    BoundaryStore boundaries(metrics);
    VisitedSet visited(metrics);
    StateQueue queue(metrics);
    IndexSet first({0});
    visited.CheckAndInsert(first);
    queue.PushBack(std::move(first));

    while (!queue.empty()) {
      if (ctx.ShouldStop()) break;
      IndexSet state = queue.PopFront();
      // prune(): nodes below an already-found boundary of the same group
      // satisfy the bound but are covered by phase 2 (paper's c2c5 case).
      if (boundaries.DominatesAny(state)) continue;
      estimation::StateParams params = view.Evaluate(state, metrics);
      if (view.WithinBound(params)) {
        boundaries.Add(state);
        ++metrics.transitions;
        if (std::optional<IndexSet> h = Horizontal(state, k)) {
          if (!visited.CheckAndInsert(*h)) queue.PushBack(std::move(*h));
        }
      } else {
        for (IndexSet& v : VerticalNeighbors(state, k)) {
          ++metrics.transitions;
          if (visited.CheckAndInsert(v)) continue;
          if (boundaries.DominatesAny(v)) continue;
          queue.PushFront(std::move(v));
        }
      }
    }
    boundary_list = boundaries.DescendingBySize();
  }

  // ---- Phase 2: C_FINDMAXDOI ----
  Solution best = BestFeasibleBelowBoundaries(view, boundary_list, ctx);

  best.degraded = ctx.exhausted();
  metrics.wall_ms = timer.ElapsedMillis();
  return best;
}

}  // namespace cqp::cqp
