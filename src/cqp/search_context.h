#ifndef CQP_CQP_SEARCH_CONTEXT_H_
#define CQP_CQP_SEARCH_CONTEXT_H_

#include <string>

#include "common/budget.h"
#include "common/status.h"
#include "cqp/metrics.h"

namespace cqp::estimation {
class BatchEvaluator;
class EvalCache;
}  // namespace cqp::estimation

namespace cqp::cqp {

/// Per-Solve() state threaded through every search algorithm: the resource
/// budget to honor and the metrics being collected. Algorithms call
/// ShouldStop() at expansion granularity (loop heads, recursion entries) and,
/// when it fires, return their best feasible solution so far with
/// Solution::degraded set instead of failing hard.
///
/// Exhaustion is sticky: once any limit trips, ShouldStop() stays true so a
/// search unwinding through nested loops stops everywhere. Reusing a context
/// for a fallback attempt requires ResetForRetry(); the budget itself is
/// kept, so an absolute deadline keeps shrinking across attempts.
class SearchContext {
 public:
  SearchContext() = default;
  explicit SearchContext(SearchBudget budget) : budget_(budget) {}

  SearchContext(const SearchContext&) = delete;
  SearchContext& operator=(const SearchContext&) = delete;

  const SearchBudget& budget() const { return budget_; }

  /// True when the search must stop now. Checks the cancel token, the
  /// expansion cap, the memory cap and (every kDeadlineStride calls, to
  /// amortize clock reads) the wall-clock deadline. Marks the run truncated.
  bool ShouldStop() {
    if (exhaustion_ != BudgetExhaustion::kNone) return true;
    if (budget_.IsUnlimited()) return false;
    if (budget_.cancel != nullptr && budget_.cancel->cancelled()) {
      return Exhaust(BudgetExhaustion::kCancelled);
    }
    if (budget_.max_expansions != 0 &&
        metrics.states_examined >= budget_.max_expansions) {
      return Exhaust(BudgetExhaustion::kExpansions);
    }
    if (budget_.max_memory_bytes != 0 &&
        metrics.memory.current_bytes() >= budget_.max_memory_bytes) {
      return Exhaust(BudgetExhaustion::kMemory);
    }
    if (budget_.deadline.has_value() && tick_++ % kDeadlineStride == 0 &&
        std::chrono::steady_clock::now() >= *budget_.deadline) {
      return Exhaust(BudgetExhaustion::kDeadline);
    }
    return false;
  }

  bool exhausted() const { return exhaustion_ != BudgetExhaustion::kNone; }
  BudgetExhaustion exhaustion() const { return exhaustion_; }

  /// The error a caller that cannot degrade would report: DeadlineExceeded
  /// for wall-clock/cancellation, ResourceExhausted for expansion/memory
  /// caps, OK when the budget never tripped.
  Status ExhaustionStatus() const {
    switch (exhaustion_) {
      case BudgetExhaustion::kNone:
        return Status::OK();
      case BudgetExhaustion::kDeadline:
        return DeadlineExceeded("search deadline exceeded");
      case BudgetExhaustion::kCancelled:
        return DeadlineExceeded("search cancelled");
      case BudgetExhaustion::kExpansions:
        return ResourceExhausted("search expansion budget exhausted");
      case BudgetExhaustion::kMemory:
        return ResourceExhausted("search memory budget exhausted");
    }
    return Status::OK();
  }

  /// Clears metrics and the sticky exhaustion flag for the next rung of a
  /// fallback chain. The budget stays: expansion/memory counters restart,
  /// but the absolute deadline naturally covers the whole chain.
  void ResetForRetry() {
    metrics.Reset();
    exhaustion_ = BudgetExhaustion::kNone;
    tick_ = 0;
  }

  /// Output record of the current (or last) Solve() run. Public: algorithms
  /// update counters directly, as do the container helpers they own.
  SearchMetrics metrics;

  /// Optional memo of full state evaluations for this run's (query,
  /// profile) pair; algorithms pass it to MakeEvaluator(). Deliberately
  /// NOT cleared by ResetForRetry() — every rung of a fallback chain
  /// serves the same pair, so warm entries stay valid across rungs.
  estimation::EvalCache* eval_cache = nullptr;

  /// Optional shared SoA batch-evaluation artifact for this run's pruned
  /// space (space::PreparedSpace::BatchForProblem), built once at Prepare
  /// time and reused across solves. Algorithms only trust it when its
  /// prefs_identity() matches the space they were handed (see
  /// search_util's ResolveBatchEvaluator) and build a local one otherwise.
  const estimation::BatchEvaluator* batch_eval = nullptr;

  /// Escape hatch for differential testing: false forces every algorithm
  /// onto the per-state scalar StateEvaluator path (the harness oracle),
  /// exactly as if no batch evaluator existed.
  bool allow_batch_eval = true;

 private:
  /// Deadline checks read the clock only every this many ShouldStop() calls;
  /// tick_ starts at 0 so the very first call does check.
  static constexpr uint32_t kDeadlineStride = 32;

  bool Exhaust(BudgetExhaustion why) {
    exhaustion_ = why;
    metrics.truncated = true;
    return true;
  }

  SearchBudget budget_;
  BudgetExhaustion exhaustion_ = BudgetExhaustion::kNone;
  uint32_t tick_ = 0;
};

}  // namespace cqp::cqp

#endif  // CQP_CQP_SEARCH_CONTEXT_H_
