#include "exec/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "catalog/compare.h"
#include "common/failpoint.h"
#include "common/str_util.h"

namespace cqp::exec {

namespace {

using catalog::Value;
using sql::ColumnRef;
using sql::Predicate;
using sql::SelectQuery;
using sql::TableRef;
using storage::Table;
using storage::Tuple;

/// A FROM entry bound to its storage table.
struct BoundTable {
  const TableRef* ref = nullptr;
  const Table* table = nullptr;
};

/// Fully resolved side of a predicate: which FROM entry, which column.
struct ResolvedColumn {
  int table_index = -1;   // index into the bound FROM list
  int column_index = -1;  // attribute position within that table
};

/// Resolves `col` against the bound FROM list. Qualified references match
/// the table alias; unqualified ones must match a unique attribute.
StatusOr<ResolvedColumn> Resolve(const ColumnRef& col,
                                 const std::vector<BoundTable>& tables) {
  ResolvedColumn out;
  if (!col.qualifier.empty()) {
    for (size_t t = 0; t < tables.size(); ++t) {
      if (!EqualsIgnoreCase(tables[t].ref->EffectiveAlias(), col.qualifier)) {
        continue;
      }
      CQP_ASSIGN_OR_RETURN(int idx,
                           tables[t].table->schema().AttributeIndex(
                               col.attribute));
      out.table_index = static_cast<int>(t);
      out.column_index = idx;
      return out;
    }
    return NotFound("table alias " + col.qualifier);
  }
  for (size_t t = 0; t < tables.size(); ++t) {
    auto idx = tables[t].table->schema().AttributeIndex(col.attribute);
    if (!idx.ok()) continue;
    if (out.table_index >= 0) {
      return InvalidArgument("ambiguous column " + col.attribute);
    }
    out.table_index = static_cast<int>(t);
    out.column_index = *idx;
  }
  if (out.table_index < 0) return NotFound("column " + col.attribute);
  return out;
}

/// A predicate with both sides resolved.
struct ResolvedPredicate {
  const Predicate* pred = nullptr;
  ResolvedColumn lhs;
  ResolvedColumn rhs;  // join predicates only
  bool applied = false;
};

/// Computes a 64-bit key for hash-join build/probe.
size_t HashValues(const Tuple& row, const std::vector<int>& cols) {
  size_t h = 1469598103934665603ull;
  for (int c : cols) {
    h ^= row.at(static_cast<size_t>(c)).Hash() + 0x9e3779b97f4a7c15ull +
         (h << 6) + (h >> 2);
  }
  return h;
}

bool KeysEqual(const Tuple& a, const std::vector<int>& acols, const Tuple& b,
               const std::vector<int>& bcols) {
  for (size_t i = 0; i < acols.size(); ++i) {
    if (a.at(static_cast<size_t>(acols[i])) !=
        b.at(static_cast<size_t>(bcols[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

Executor::Executor(const storage::Database* db, CostModelParams params)
    : db_(db), params_(params) {
  CQP_CHECK(db_ != nullptr);
}

StatusOr<RowSet> Executor::Execute(const SelectQuery& query,
                                   ExecStats* stats) const {
  CQP_FAILPOINT("exec.execute");
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;

  if (query.from.empty()) {
    return InvalidArgument("query has no FROM clause");
  }

  // Bind tables and check alias uniqueness.
  std::vector<BoundTable> tables;
  tables.reserve(query.from.size());
  std::unordered_set<std::string> aliases;
  for (const TableRef& ref : query.from) {
    CQP_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(ref.relation));
    std::string alias = ToUpper(ref.EffectiveAlias());
    if (!aliases.insert(alias).second) {
      return InvalidArgument("duplicate table alias " + ref.EffectiveAlias());
    }
    tables.push_back({&ref, table});
  }

  // Resolve all predicates up front.
  std::vector<ResolvedPredicate> preds;
  preds.reserve(query.where.size());
  for (const Predicate& p : query.where) {
    ResolvedPredicate rp;
    rp.pred = &p;
    CQP_ASSIGN_OR_RETURN(rp.lhs, Resolve(p.lhs, tables));
    if (p.kind == Predicate::Kind::kJoin) {
      CQP_ASSIGN_OR_RETURN(rp.rhs, Resolve(p.rhs, tables));
      // Type agreement keeps EvalCompare well-defined.
      const auto& lt = tables[rp.lhs.table_index].table->schema()
                           .attribute(rp.lhs.column_index).type;
      const auto& rt = tables[rp.rhs.table_index].table->schema()
                           .attribute(rp.rhs.column_index).type;
      if (lt != rt) {
        return InvalidArgument("join compares incompatible types: " +
                               p.ToSql());
      }
    } else {
      const auto& lt = tables[rp.lhs.table_index].table->schema()
                           .attribute(rp.lhs.column_index).type;
      if (lt != p.literal.type()) {
        return InvalidArgument("selection compares incompatible types: " +
                               p.ToSql());
      }
    }
    preds.push_back(rp);
  }

  // Incrementally build the join result, one FROM entry at a time.
  // `offset_of[t]` is the first output column of table t once included.
  std::vector<int> offset_of(tables.size(), -1);
  RowSet current;

  auto scan_into_rowset = [&](size_t t) -> RowSet {
    const Table& table = *tables[t].table;
    st->blocks_read += table.blocks();
    RowSet out;
    const std::string& alias = tables[t].ref->EffectiveAlias();
    for (size_t c = 0; c < table.schema().arity(); ++c) {
      out.AddColumnName(alias + "." + table.schema().attribute(c).name);
    }
    // Single-table selections on t are applied during the scan.
    std::vector<const ResolvedPredicate*> local;
    for (ResolvedPredicate& rp : preds) {
      if (rp.applied) continue;
      if (rp.pred->kind == Predicate::Kind::kSelection &&
          rp.lhs.table_index == static_cast<int>(t)) {
        local.push_back(&rp);
        rp.applied = true;
      } else if (rp.pred->kind == Predicate::Kind::kJoin &&
                 rp.lhs.table_index == static_cast<int>(t) &&
                 rp.rhs.table_index == static_cast<int>(t)) {
        local.push_back(&rp);
        rp.applied = true;
      }
    }
    for (const Tuple& row : table.rows()) {
      ++st->tuples_processed;
      bool keep = true;
      for (const ResolvedPredicate* rp : local) {
        if (rp->pred->kind == Predicate::Kind::kSelection) {
          if (!catalog::EvalCompare(
                  row.at(static_cast<size_t>(rp->lhs.column_index)),
                  rp->pred->op, rp->pred->literal)) {
            keep = false;
            break;
          }
        } else {
          if (!catalog::EvalCompare(
                  row.at(static_cast<size_t>(rp->lhs.column_index)),
                  rp->pred->op,
                  row.at(static_cast<size_t>(rp->rhs.column_index)))) {
            keep = false;
            break;
          }
        }
      }
      if (keep) out.AddRow(row);
    }
    return out;
  };

  current = scan_into_rowset(0);
  offset_of[0] = 0;
  int current_arity = static_cast<int>(tables[0].table->schema().arity());

  for (size_t t = 1; t < tables.size(); ++t) {
    RowSet next = scan_into_rowset(t);

    // Split unapplied cross predicates between `current` and table t into
    // equality keys (hash join) and residual theta predicates.
    struct CrossPred {
      const ResolvedPredicate* rp;
      int left_col;   // column in `current`
      int right_col;  // column in `next`
    };
    std::vector<CrossPred> eq_keys;
    std::vector<CrossPred> residual;
    for (ResolvedPredicate& rp : preds) {
      if (rp.applied || rp.pred->kind != Predicate::Kind::kJoin) continue;
      int lt = rp.lhs.table_index, rt = rp.rhs.table_index;
      bool l_in_cur = lt != static_cast<int>(t) && offset_of[lt] >= 0;
      bool r_in_cur = rt != static_cast<int>(t) && offset_of[rt] >= 0;
      CrossPred cp{&rp, -1, -1};
      if (l_in_cur && rt == static_cast<int>(t)) {
        cp.left_col = offset_of[lt] + rp.lhs.column_index;
        cp.right_col = rp.rhs.column_index;
      } else if (r_in_cur && lt == static_cast<int>(t)) {
        cp.left_col = offset_of[rt] + rp.rhs.column_index;
        cp.right_col = rp.lhs.column_index;
      } else {
        continue;  // involves a table not yet joined
      }
      rp.applied = true;
      // A reversed non-symmetric operator must stay residual with correct
      // orientation; only keep kEq in the hash keys.
      if (rp.pred->op == catalog::CompareOp::kEq) {
        eq_keys.push_back(cp);
      } else {
        residual.push_back(cp);
      }
    }

    RowSet joined;
    for (const std::string& name : current.column_names()) {
      joined.AddColumnName(name);
    }
    for (const std::string& name : next.column_names()) {
      joined.AddColumnName(name);
    }

    auto eval_residual = [&](const Tuple& left, const Tuple& right) {
      for (const CrossPred& cp : residual) {
        const Value& lv = left.at(static_cast<size_t>(cp.left_col));
        const Value& rv = right.at(static_cast<size_t>(cp.right_col));
        // Orientation: the stored op applies as lhs-op-rhs of the original
        // predicate. left_col always holds the side living in `current`.
        bool original_lhs_in_current =
            cp.rp->lhs.table_index != static_cast<int>(t);
        bool ok = original_lhs_in_current
                      ? catalog::EvalCompare(lv, cp.rp->pred->op, rv)
                      : catalog::EvalCompare(rv, cp.rp->pred->op, lv);
        if (!ok) return false;
      }
      return true;
    };

    if (!eq_keys.empty()) {
      // Hash join: build on `next` (typically the smaller side has been
      // filtered already; simplicity over micro-optimality).
      std::vector<int> build_cols, probe_cols;
      for (const CrossPred& cp : eq_keys) {
        build_cols.push_back(cp.right_col);
        probe_cols.push_back(cp.left_col);
      }
      std::unordered_multimap<size_t, const Tuple*> ht;
      ht.reserve(next.row_count());
      for (const Tuple& row : next.rows()) {
        ht.emplace(HashValues(row, build_cols), &row);
      }
      for (const Tuple& left : current.rows()) {
        size_t h = HashValues(left, probe_cols);
        auto range = ht.equal_range(h);
        for (auto it = range.first; it != range.second; ++it) {
          const Tuple& right = *it->second;
          if (!KeysEqual(left, probe_cols, right, build_cols)) continue;
          if (!eval_residual(left, right)) continue;
          ++st->tuples_processed;
          joined.AddRow(Tuple::Concat(left, right));
        }
      }
    } else {
      // Filtered nested-loop product.
      for (const Tuple& left : current.rows()) {
        for (const Tuple& right : next.rows()) {
          if (!eval_residual(left, right)) continue;
          ++st->tuples_processed;
          joined.AddRow(Tuple::Concat(left, right));
        }
      }
    }

    offset_of[t] = current_arity;
    current_arity += static_cast<int>(tables[t].table->schema().arity());
    current = std::move(joined);
  }

  // Any predicate still unapplied references a single table through two
  // aliases handled above, so this indicates an internal inconsistency.
  for (const ResolvedPredicate& rp : preds) {
    if (!rp.applied) {
      return Internal("predicate not applied: " + rp.pred->ToSql());
    }
  }

  // Projection.
  RowSet projected;
  if (query.select_list.empty()) {
    projected = std::move(current);
  } else {
    std::vector<int> positions;
    positions.reserve(query.select_list.size());
    for (const ColumnRef& col : query.select_list) {
      CQP_ASSIGN_OR_RETURN(int pos, current.ResolveColumn(col));
      positions.push_back(pos);
      projected.AddColumnName(col.qualifier.empty()
                                  ? col.attribute
                                  : col.qualifier + "." + col.attribute);
    }
    for (const Tuple& row : current.rows()) {
      projected.AddRow(row.Project(positions));
    }
    st->tuples_processed += current.row_count();
  }

  if (query.distinct) {
    std::vector<Tuple> unique;
    // Buckets hold indices into `unique` (stable across reallocation).
    std::unordered_multimap<size_t, size_t> buckets;
    for (const Tuple& row : projected.rows()) {
      ++st->tuples_processed;
      size_t h = row.Hash();
      bool duplicate = false;
      auto range = buckets.equal_range(h);
      for (auto it = range.first; it != range.second; ++it) {
        if (unique[it->second] == row) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        buckets.emplace(h, unique.size());
        unique.push_back(row);
      }
    }
    projected = RowSet(projected.column_names(), std::move(unique));
  }

  if (!query.order_by.empty()) {
    // ORDER BY keys resolve against the projected columns.
    std::vector<std::pair<int, bool>> keys;  // (column, descending)
    keys.reserve(query.order_by.size());
    for (const sql::OrderItem& item : query.order_by) {
      CQP_ASSIGN_OR_RETURN(int pos, projected.ResolveColumn(item.column));
      keys.emplace_back(pos, item.descending);
    }
    st->tuples_processed += projected.row_count();
    std::stable_sort(projected.mutable_rows().begin(),
                     projected.mutable_rows().end(),
                     [&keys](const Tuple& a, const Tuple& b) {
                       for (const auto& [pos, descending] : keys) {
                         const Value& va = a.at(static_cast<size_t>(pos));
                         const Value& vb = b.at(static_cast<size_t>(pos));
                         if (va == vb) continue;
                         return descending ? vb < va : va < vb;
                       }
                       return false;
                     });
  }

  if (query.limit.has_value()) {
    size_t cap = static_cast<size_t>(*query.limit);
    if (projected.row_count() > cap) {
      projected.mutable_rows().resize(cap);
    }
  }

  return projected;
}

StatusOr<RowSet> Executor::ExecuteUnionGroup(const sql::UnionGroupQuery& query,
                                             ExecStats* stats) const {
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;
  if (query.branches.empty()) {
    return InvalidArgument("union has no branches");
  }
  if (query.having_count < 1 ||
      query.having_count > static_cast<int64_t>(query.branches.size())) {
    return InvalidArgument("HAVING COUNT(*) outside [1, #branches]");
  }

  // GROUP BY the full projected row over the concatenated branch outputs.
  std::unordered_map<Tuple, int64_t, storage::TupleHash> groups;
  size_t arity = 0;
  for (size_t b = 0; b < query.branches.size(); ++b) {
    CQP_ASSIGN_OR_RETURN(RowSet rows, Execute(query.branches[b], st));
    if (b == 0) {
      arity = rows.arity();
      if (arity != query.select_list.size()) {
        return InvalidArgument(
            "outer select list arity does not match the branches");
      }
    } else if (rows.arity() != arity) {
      return InvalidArgument("union branches project different arities");
    }
    for (const Tuple& row : rows.rows()) {
      ++st->tuples_processed;  // group-by insertion work
      ++groups[row];
    }
  }

  RowSet out;
  for (const sql::ColumnRef& col : query.select_list) {
    out.AddColumnName(col.attribute);
  }
  for (const auto& [row, count] : groups) {
    if (count == query.having_count) out.AddRow(row);
  }
  // Deterministic output order (hash-map iteration is not).
  std::sort(out.mutable_rows().begin(), out.mutable_rows().end(),
            [](const Tuple& a, const Tuple& b) {
              return a.ToString() < b.ToString();
            });
  return out;
}

}  // namespace cqp::exec
