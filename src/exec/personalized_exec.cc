#include "exec/personalized_exec.h"

#include <algorithm>
#include <unordered_map>

#include "storage/tuple.h"

namespace cqp::exec {

namespace {

using storage::Tuple;
using storage::TupleHash;

double ConjunctionDoi(const IndexSet& satisfied,
                      const std::vector<double>& dois) {
  double miss = 1.0;
  for (int32_t i : satisfied) {
    miss *= 1.0 - dois[static_cast<size_t>(i)];
  }
  return 1.0 - miss;
}

}  // namespace

StatusOr<PersonalizedResultSet> ExecutePersonalized(
    const Executor& executor, const std::vector<sql::SelectQuery>& subqueries,
    const std::vector<double>& dois, CombineMode mode, ExecStats* stats) {
  if (subqueries.empty()) {
    return InvalidArgument("personalized execution needs >= 1 sub-query");
  }
  if (dois.size() != subqueries.size()) {
    return InvalidArgument("dois must parallel subqueries");
  }

  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;

  PersonalizedResultSet result;
  // Map projected row -> set of sub-queries that produced it.
  std::unordered_map<Tuple, std::vector<int32_t>, TupleHash> groups;

  for (size_t s = 0; s < subqueries.size(); ++s) {
    // DISTINCT per sub-query: exact intersection semantics for the
    // HAVING COUNT(*) = L grouping (see header).
    sql::SelectQuery sub = subqueries[s];
    sub.distinct = true;
    CQP_ASSIGN_OR_RETURN(RowSet rows, executor.Execute(sub, st));
    if (s == 0) {
      result.column_names = rows.column_names();
    } else if (rows.arity() != result.column_names.size()) {
      return InvalidArgument("sub-queries project different arities");
    }
    for (const Tuple& row : rows.rows()) {
      ++st->tuples_processed;  // group-by insertion work
      groups[row].push_back(static_cast<int32_t>(s));
    }
  }

  const size_t want = subqueries.size();
  for (auto& [row, members] : groups) {
    if (mode == CombineMode::kIntersection && members.size() != want) {
      continue;
    }
    PersonalizedRow out;
    out.row = row;
    out.satisfied = IndexSet::FromUnsorted(members);
    out.doi = ConjunctionDoi(out.satisfied, dois);
    result.rows.push_back(std::move(out));
  }

  std::sort(result.rows.begin(), result.rows.end(),
            [](const PersonalizedRow& a, const PersonalizedRow& b) {
              if (a.doi != b.doi) return a.doi > b.doi;
              // Deterministic tie-break on the row rendering.
              return a.row.ToString() < b.row.ToString();
            });
  return result;
}

}  // namespace cqp::exec
