#ifndef CQP_EXEC_EXEC_STATS_H_
#define CQP_EXEC_EXEC_STATS_H_

#include <cstdint>

namespace cqp::exec {

/// Knobs of the simulated execution clock.
///
/// The paper's evaluation (§7.1) charges `b = 1 ms` per block read and
/// assumes I/O-dominated cost; we additionally charge a small per-tuple CPU
/// term so that the *measured* time of a personalized query is close to, but
/// not identical with, the block-only estimate (this is the gap Fig. 15
/// visualizes).
struct CostModelParams {
  double millis_per_block = 1.0;  ///< `b` in the paper
  double micros_per_tuple = 0.2;  ///< CPU charge per tuple processed
};

/// Counters accumulated while executing a query.
struct ExecStats {
  uint64_t blocks_read = 0;
  uint64_t tuples_processed = 0;

  /// Simulated wall time under `params`.
  double SimulatedMillis(const CostModelParams& params) const {
    return static_cast<double>(blocks_read) * params.millis_per_block +
           static_cast<double>(tuples_processed) * params.micros_per_tuple /
               1000.0;
  }

  void Add(const ExecStats& other) {
    blocks_read += other.blocks_read;
    tuples_processed += other.tuples_processed;
  }

  void Reset() { *this = ExecStats{}; }
};

}  // namespace cqp::exec

#endif  // CQP_EXEC_EXEC_STATS_H_
